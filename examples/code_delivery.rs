//! Mobile-code delivery: the paper's introduction scenario.
//!
//! Compresses a corpus program every way the paper considers, then asks,
//! per channel: which representation gets the workload *finished* first?
//! ("Computer programs are delivered to the CPU via networks, disks, and
//! caches, all of which can be bottlenecks.")
//!
//! Run with `cargo run --example code_delivery [program]`.

use code_compression::brisc::{compress as brisc_compress, BriscOptions};
use code_compression::corpus::{benchmark, benchmarks};
use code_compression::flate::{gzip_compress, CompressionLevel};
use code_compression::memsim::{total_time, Channel, CpuModel, DeliveryPlan, Overlap};
use code_compression::vm::codegen::compile_module;
use code_compression::vm::isa::IsaConfig;
use code_compression::vm::native::X86Encoder;
use code_compression::wire::{compress as wire_compress, DemandImage, WireOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "sortlib".to_string());
    let Some(bench) = benchmark(&name) else {
        eprintln!(
            "unknown program {name:?}; available: {}",
            benchmarks()
                .iter()
                .map(|b| b.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    };
    println!("program: {} — {}", bench.name, bench.description);

    let ir = bench.compile()?;
    let vm = compile_module(&ir, IsaConfig::full())?;
    let mut enc = X86Encoder::new();
    enc.emit_program(&vm);
    let native = enc.into_bytes();
    let gzip = gzip_compress(&native, CompressionLevel::Best);
    let wire = wire_compress(&ir, WireOptions::default())?;
    let brisc = brisc_compress(&vm, BriscOptions::default())?;

    println!("\nsizes:");
    println!("  native (x86-64):   {:>7} bytes", native.len());
    println!("  gzip(native):      {:>7} bytes", gzip.len());
    println!("  wire format:       {:>7} bytes", wire.total());
    println!(
        "  brisc image:       {:>7} bytes",
        brisc.image.total_bytes()
    );
    println!("  brisc code alone:  {:>7} bytes", brisc.image.code_size());

    // A hypothetical one-second workload on a period machine.
    let cpu = CpuModel::pentium_like(1.0);
    let plans = [
        (
            "native",
            DeliveryPlan::Native {
                bytes: native.len(),
            },
        ),
        (
            "gzip+native",
            DeliveryPlan::CompressedNative {
                compressed: gzip.len(),
                native: native.len(),
            },
        ),
        (
            "wire+jit",
            DeliveryPlan::Wire {
                compressed: wire.total(),
                native: native.len(),
            },
        ),
        (
            "brisc+jit",
            DeliveryPlan::BriscJit {
                compressed: brisc.image.total_bytes(),
                native: native.len(),
            },
        ),
        (
            "brisc interp",
            DeliveryPlan::BriscInterp {
                compressed: brisc.image.total_bytes(),
            },
        ),
    ];
    let channels = [
        ("28.8k modem", Channel::modem_28k8()),
        ("10 Mbit LAN", Channel::lan_10mbit()),
        ("disk", Channel::disk()),
    ];
    println!("\ntotal time to finish a 1s workload (delivery can mask translation):");
    for (cname, ch) in &channels {
        println!("  over {cname}:");
        let mut best = ("", f64::INFINITY);
        for (pname, plan) in &plans {
            let t = total_time(plan, ch, &cpu, Overlap::Pipelined);
            if t < best.1 {
                best = (pname, t);
            }
            println!("    {pname:>12}: {t:8.2}s");
        }
        println!("    winner: {}", best.0);
    }

    // Function-at-a-time delivery (§2: "decompressing a function at a
    // time"): a run that only touches part of the program only pays for
    // the functions it calls.
    let demand = DemandImage::build(&ir, WireOptions::default())?;
    let all = demand.total_units();
    let called: Vec<&str> = demand.names().take(2).collect();
    let partial = demand.demand_bytes(called.iter().copied());
    println!(
        "\ndemand loading: whole program {all} B as per-function units; \
         a run calling only {:?} transfers {partial} B ({:.0}%)",
        called,
        100.0 * partial as f64 / all as f64
    );
    Ok(())
}
