//! Quickstart: compile a C program, compress it both ways, run every
//! execution tier, and print the size/behaviour summary.
//!
//! Run with `cargo run --example quickstart`.

use code_compression::brisc::interp::BriscMachine;
use code_compression::brisc::translate::translate;
use code_compression::brisc::{compress as brisc_compress, BriscOptions};
use code_compression::front::compile;
use code_compression::ir::eval::Evaluator;
use code_compression::vm::codegen::compile_module;
use code_compression::vm::interp::Machine;
use code_compression::vm::isa::IsaConfig;
use code_compression::wire::{compress as wire_compress, decompress, WireOptions};

const SOURCE: &str = r#"
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}

int main() {
    int i;
    for (i = 5; i <= 10; i++) print_int(fib(i));
    return fib(15);
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile mini-C to lcc-style IR trees.
    let ir = compile(SOURCE)?;
    println!(
        "compiled {} functions, {} IR nodes",
        ir.functions.len(),
        ir.node_count()
    );

    // 2. The wire format: maximum density, linear decompression.
    let packed = wire_compress(&ir, WireOptions::default())?;
    let raw = code_compression::ir::binary::encode_module(&ir)?;
    println!(
        "wire format: {} bytes (uncompressed tree code: {} bytes, {:.1}x)",
        packed.total(),
        raw.len(),
        raw.len() as f64 / packed.total() as f64,
    );
    assert_eq!(decompress(&packed.bytes)?, ir, "wire round-trips exactly");

    // 3. Generate OmniVM-style register code and compress to BRISC.
    let vm = compile_module(&ir, IsaConfig::full())?;
    let report = brisc_compress(&vm, BriscOptions::default())?;
    println!(
        "brisc: {} code bytes from {} VM bytes; dictionary {} entries ({} base), {} passes",
        report.image.code_size(),
        report.input_bytes,
        report.dictionary_entries,
        report.base_entries,
        report.passes,
    );

    // 4. Run all four execution tiers and check they agree.
    let reference = Evaluator::new(&ir, 1 << 20, 1 << 26)?.run("main", &[])?;
    let mut vm_machine = Machine::new(&vm, 1 << 20, 1 << 26)?;
    let vm_out = vm_machine.run("main", &[])?;
    let mut brisc_machine = BriscMachine::new(&report.image, 1 << 20, 1 << 26)?;
    let brisc_out = brisc_machine.run("main", &[])?;
    let translated = translate(&report.image)?;
    let mut fast = Machine::new(&translated, 1 << 20, 1 << 26)?;
    let fast_out = fast.run("main", &[])?;

    assert_eq!(vm_out.value, reference.value);
    assert_eq!(brisc_out.value, reference.value);
    assert_eq!(fast_out.value, reference.value);
    assert_eq!(brisc_out.output, reference.output);
    println!(
        "all tiers agree: fib(15) = {} (interpreted the compressed form \
         in place: {} items decoded for {} instructions)",
        reference.value, brisc_out.items_decoded, brisc_out.instructions,
    );
    println!(
        "program output:\n{}",
        String::from_utf8_lossy(&reference.output)
    );
    Ok(())
}
