//! Pipeline inspector: dissects both compressors on any corpus program,
//! showing where the bytes go — per-stream wire sections, BRISC
//! dictionary growth per pass, and the Markov model's shape.
//!
//! Run with `cargo run --example pipeline_inspector [program]`.

use code_compression::brisc::{compress as brisc_compress, BriscOptions};
use code_compression::coding::model::ContextModel;
use code_compression::core::streams::SplitStreams;
use code_compression::corpus::{benchmark, benchmarks};
use code_compression::vm::codegen::compile_module;
use code_compression::vm::isa::IsaConfig;
use code_compression::wire::{compress as wire_compress, Coder, WireOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "calc".to_string());
    let Some(bench) = benchmark(&name) else {
        eprintln!(
            "unknown program {name:?}; available: {}",
            benchmarks()
                .iter()
                .map(|b| b.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    };
    let ir = bench.compile()?;
    println!("program: {} ({} IR nodes)\n", bench.name, ir.node_count());

    println!("== wire format: where the bytes go ==\n");
    let packed = wire_compress(&ir, WireOptions::default())?;
    let mut sections = packed.sections.clone();
    sections.sort_by_key(|s| std::cmp::Reverse(s.1));
    for (key, bytes) in &sections {
        println!(
            "  {key:>12}: {bytes:>6} bytes  {}",
            "#".repeat((bytes * 60 / packed.total()).max(1))
        );
    }
    println!("  {:>12}: {:>6} bytes total", "", packed.total());

    // How much does finite-context modeling predict the operator stream?
    // (§2: "should the coder use finite-context or Markov modeling?")
    let trees: Vec<_> = ir
        .functions
        .iter()
        .flat_map(|f| f.body.iter().cloned())
        .collect();
    let split = SplitStreams::split(&trees);
    println!("\n== pattern-stream predictability (static entropy estimate) ==\n");
    let alphabet = split.patterns.len().max(1);
    for order in 0..3 {
        let mut model = ContextModel::new(order, alphabet);
        model.train(&split.pattern_stream)?;
        let bits = model.estimate_bits(&split.pattern_stream);
        println!(
            "  order-{order}: {:.2} bits/symbol over {} symbols ({} contexts)",
            bits / split.pattern_stream.len().max(1) as f64,
            split.pattern_stream.len(),
            model.context_count(),
        );
    }

    println!("\n== wire format under different coders ==\n");
    for (label, coder) in [
        ("huffman", Coder::Huffman),
        ("arithmetic", Coder::Arithmetic),
        ("raw", Coder::Raw),
    ] {
        let p = wire_compress(
            &ir,
            WireOptions {
                coder,
                ..WireOptions::default()
            },
        )?;
        println!("  {label:>10}: {} bytes", p.total());
    }

    println!("\n== brisc ==\n");
    let vm = compile_module(&ir, IsaConfig::full())?;
    let report = brisc_compress(&vm, BriscOptions::default())?;
    println!("  input (base VM encoding): {} bytes", report.input_bytes);
    println!(
        "  compressed code:          {} bytes",
        report.image.code_size()
    );
    println!(
        "  whole image:              {} bytes",
        report.image.total_bytes()
    );
    println!(
        "  dictionary: {} entries ({} base), built in {} passes from {} candidates",
        report.dictionary_entries, report.base_entries, report.passes, report.candidates_tested
    );
    println!(
        "  markov model: {} contexts, max {} successors (paper's gcc dictionary: \
         981 patterns, max 244 successors)",
        report.image.markov.context_count(),
        report.image.markov.max_successors()
    );
    let combined = report
        .image
        .dictionary
        .iter()
        .filter(|e| e.len() > 1)
        .count();
    let specialized = report
        .image
        .dictionary
        .iter()
        .skip(report.base_entries)
        .filter(|e| e.len() == 1)
        .count();
    println!("  discovered: {specialized} specialized, {combined} combined patterns");
    let mut shown = 0;
    println!("\n  sample entries:");
    for e in report.image.dictionary.iter().skip(report.base_entries) {
        println!("    {e}");
        shown += 1;
        if shown >= 12 {
            break;
        }
    }
    Ok(())
}
