//! Demand-loading under fault: corrupt one function per corpus program
//! and report what survives — the table behind EXPERIMENTS.md's
//! "Partial-module recovery" section.
//!
//! For each corpus program this builds a [`DemandImage`], clobbers the
//! first byte of one non-`main` unit (the unit's wire magic), and then:
//! salvage-scans the image, demand-loads everything salvageable, runs
//! `main` on the partial module, and retries the poisoned function with
//! a raised budget to show the quarantine is permanent for corruption
//! (unlike limit trips, which are recoverable).
//!
//! The run is flight-recorded: a ring-buffer trace sink captures the
//! structured quarantine/salvage events the demand loader emits, and
//! they are replayed as JSON lines at the end.
//!
//! Run with `cargo run --release --example demand_salvage`.

use code_compression::core::telemetry::{self, Collector, RingSink, TraceKind};
use code_compression::core::DecodeLimits;
use code_compression::corpus::benchmarks;
use code_compression::wire::{DemandError, DemandImage, DemandLoader, WireOptions};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ring = Arc::new(RingSink::new(4096));
    telemetry::install(Collector::with_trace(ring.clone()));
    println!(
        "| program | fns | image B | poisoned | resident B (run main) | main outcome |"
    );
    println!("|---|---|---|---|---|---|");
    for b in benchmarks() {
        let module = b.compile()?;
        let image = DemandImage::build(&module, WireOptions::default())?;
        let names: Vec<String> = image.names().map(str::to_string).collect();
        let Some(victim) = names.iter().rev().find(|n| *n != "main") else {
            continue;
        };

        // Corrupt the victim's unit inside the serialized image.
        let unit = image.unit_bytes(victim).expect("unit exists").to_vec();
        let mut bytes = image.to_bytes();
        let pos = bytes
            .windows(unit.len())
            .position(|w| w == unit)
            .expect("unit appears in image");
        bytes[pos] ^= 0xFF;
        let total = bytes.len();
        let image = DemandImage::from_bytes(&bytes)?;

        let scan = image.salvage_scan(DecodeLimits::default());
        let mut loader = DemandLoader::new(&image, DecodeLimits::default());
        let outcome = match loader.run("main", &[], 1 << 22, 1 << 28) {
            Ok(out) => format!("ran, => {}", out.value),
            Err(DemandError::Quarantined { name, .. }) => {
                format!("trapped at `{name}`")
            }
            Err(e) => format!("error: {e}"),
        };
        let report = loader.report();
        println!(
            "| {} | {} | {} | {} ({}) | {} | {} |",
            b.name,
            names.len(),
            total,
            scan.poisoned.len(),
            victim,
            report.resident_bytes,
            outcome,
        );

        // Corruption is not recoverable by raising the budget.
        assert!(
            loader.retry_with(victim, DecodeLimits::default()).is_err(),
            "corrupt unit must stay poisoned"
        );
    }

    // Replay the flight recording: every quarantine and salvage event
    // the loaders emitted, straight from the trace ring.
    println!("\nquarantine events from the trace ring:");
    for e in ring.dump() {
        if e.kind == TraceKind::Event && e.name.starts_with("demand.") {
            println!("  {}", e.to_json_line());
        }
    }
    Ok(())
}
