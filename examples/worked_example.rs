//! The paper's worked example, §3 and §4: the `salt`/`pepper` program,
//! followed from C source through IR trees, patternization, the MTF
//! streams, OmniVM code, and BRISC compression.
//!
//! Run with `cargo run --example worked_example`.

use code_compression::brisc::{compress as brisc_compress, BriscOptions};
use code_compression::coding::mtf::mtf_encode;
use code_compression::core::streams::SplitStreams;
use code_compression::core::treepat::TreePattern;
use code_compression::front::compile;
use code_compression::ir::Literal;
use code_compression::vm::codegen::compile_module;
use code_compression::vm::isa::IsaConfig;

const SOURCE: &str = r#"
int pepper(int a, int b) { return a + b; }

int salt(int j, int i) {
    if (j > 0) {
        pepper(i, j);
        j--;
    }
    return j;
}

int main() { return salt(3, 9); }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== step 1 (paper §3): compile the input program into trees ==\n");
    let ir = compile(SOURCE)?;
    let salt = ir.function("salt").expect("salt exists");
    for stmt in &salt.body {
        println!("  {stmt}");
    }

    println!("\n== step 2: patternize and form streams ==\n");
    let split = SplitStreams::split(&salt.body);
    println!(
        "operator-pattern stream ({} patterns):",
        split.patterns.len()
    );
    for stmt in &salt.body {
        println!("  {}", TreePattern::of(stmt));
    }
    println!("\nliteral streams:");
    for (key, lits) in &split.literals {
        let rendered: Vec<String> = lits.iter().map(Literal::to_string).collect();
        println!("  {key:>8}: [{}]", rendered.join(" "));
    }

    println!("\n== step 3: move-to-front code each stream in isolation ==\n");
    for (key, lits) in &split.literals {
        let enc = mtf_encode(lits);
        println!(
            "  {key:>8}: {:?} (0 denotes a symbol not seen previously)",
            enc.indices
        );
    }

    println!("\n== §4: the OmniVM register code for salt ==\n");
    let vm = compile_module(&ir, IsaConfig::full())?;
    let vm_salt = vm.function("salt").expect("salt exists");
    for inst in &vm_salt.code {
        if inst.is_label() {
            println!("{inst}");
        } else {
            println!("    {inst}");
        }
    }
    let input_bytes: usize = vm_salt
        .code
        .iter()
        .map(code_compression::vm::encode::inst_size)
        .sum();
    println!("\nbase (quantized) encoding of salt: {input_bytes} bytes");

    println!("\n== BRISC compression ==\n");
    let report = brisc_compress(&vm, BriscOptions::default())?;
    println!(
        "whole program: {} VM bytes -> {} compressed code bytes",
        report.input_bytes,
        report.image.code_size(),
    );
    println!(
        "dictionary: {} entries ({} base + {} discovered), {} candidates tested, {} passes",
        report.dictionary_entries,
        report.base_entries,
        report.dictionary_entries - report.base_entries,
        report.candidates_tested,
        report.passes,
    );
    println!("\ndiscovered dictionary entries (specialized/combined patterns):");
    for e in report.image.dictionary.iter().skip(report.base_entries) {
        println!("  {e}");
    }
    println!(
        "\nthe paper's example compresses its 60-byte salt to 17 bytes using a \
         dictionary trained on gcc; small inputs cannot amortize their own \
         dictionary, which is why the cost metric rejects most candidates here \
         (B = P - W with W the native-expansion table cost)."
    );
    Ok(())
}
