#!/usr/bin/env bash
# Local CI gate: build, test, lint. Run from anywhere; works fully
# offline (the workspace has no crates.io dependencies).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

# Differential smoke: the full suite already ran under `cargo test`
# with the default mutation budget; re-run the seeded fuzz here with a
# reduced, fixed budget (6 payloads x 84 mutations ~= 500 cases) as a
# fast deterministic gate that the two inflate implementations agree.
echo "==> differential fuzz smoke (~500 mutations)"
CODECOMP_DIFF_MUTATIONS=84 cargo test -q --offline --test differential \
    seeded_mutations -- --nocapture

# Ratio-regression smoke: compress the corpus payload at every level
# and assert the compressed size stays within 1% of the baseline
# recorded in BENCH_deflate.json (no timing — deterministic).
echo "==> deflate ratio smoke (corpus size within 1% per level)"
cargo run --release --offline -q -p codecomp-bench --bin bench_deflate -- --ratio-smoke

# Wire decode smoke: round-trip the full corpus byte-exactly and gate
# decode throughput against a fixed floor well below the measured
# figure — catches a cached-table decode-path regression without being
# sensitive to machine speed.
echo "==> wire decode smoke (byte-exact roundtrip + throughput floor)"
cargo run --release --offline -q -p codecomp-bench --bin bench_wire -- --decode-smoke

# Low-limits fault-injection smoke: decode every corpus program under
# starved DecodeLimits (all knobs below the measured footprint) and
# hammer the decoded-structure mutators. Every failure must surface as
# a clean Limit/Corrupt error — never a panic, never a misclassified
# Malformed. Runtime is printed so regressions in this gate are visible.
echo "==> low-limits fault-injection smoke (full corpus)"
smoke_start=$SECONDS
cargo test -q --offline --test limits
cargo test -q --offline --test fault_injection mutated_
echo "==> low-limits smoke took $((SECONDS - smoke_start))s"

# Telemetry smoke: exercise the CLI surfacing end to end — pack and
# decode a corpus-shaped program with --stats/--metrics/--trace, then
# validate every emitted trace line with the in-tree schema checker
# (`codecomp telemetry check`).
echo "==> telemetry smoke (--stats/--metrics/--trace + schema check)"
tdir=$(mktemp -d)
trap 'rm -rf "$tdir"' EXIT
cat > "$tdir/smoke.c" <<'EOS'
int twice(int x) { return x * 2; }
int main() { print_int(twice(21)); return twice(21); }
EOS
bin=target/release/code-compression
"$bin" wire pack "$tdir/smoke.c" --stats --trace="$tdir/pack.jsonl" \
    --metrics="$tdir/pack-metrics.json" > "$tdir/pack.out" 2> "$tdir/pack.err"
grep -q "per-stage stream breakdown" "$tdir/pack.err"
if grep -q "WARNING" "$tdir/pack.err"; then
    echo "ci.sh: --stats sections do not sum to the image size" >&2
    exit 1
fi
"$bin" run "$tdir/smoke.ccwf" --trace="$tdir/run.jsonl" > /dev/null
"$bin" brisc pack "$tdir/smoke.c" > /dev/null
"$bin" brisc run "$tdir/smoke.ccbr" --trace="$tdir/brisc.jsonl" > /dev/null
for trace in "$tdir"/pack.jsonl "$tdir"/run.jsonl "$tdir"/brisc.jsonl; do
    "$bin" telemetry check "$trace"
done

# Demand-paging soak smoke: a reduced serve-sim run (deterministic,
# virtual-time) across all three channel models at a 2% fault rate
# with two units corrupted at the source. `serve-sim` exits nonzero on
# any stuck client or silently undelivered function, and the summary
# event lands in the trace, which the schema checker then validates.
echo "==> demand-paging soak smoke (serve-sim)"
soak_start=$SECONDS
"$bin" serve-sim --clients 9 --requests 300 --seed 7 --fault-rate 2 \
    --corrupt 2 --trace="$tdir/soak.jsonl" > "$tdir/soak.out"
grep -q "survived" "$tdir/soak.out"
"$bin" telemetry check "$tdir/soak.jsonl"
echo "==> soak smoke took $((SECONDS - soak_start))s"

# Metrics-stream smoke: the same soak with live sampling on. serve-sim
# exits nonzero if the span/counter reconcile fails; the stream must
# pass the schema checker and be byte-identical across same-seed runs.
echo "==> metrics-stream smoke (delta encoding, determinism, reconcile)"
"$bin" serve-sim --clients 9 --requests 120 --seed 7 --fault-rate 2 \
    --corrupt 2 --metrics-interval 25 --metrics-stream "$tdir/m1.jsonl" \
    > "$tdir/m1.out"
grep -q "reconcile: ok" "$tdir/m1.out"
"$bin" telemetry check --stream "$tdir/m1.jsonl"
"$bin" serve-sim --clients 9 --requests 120 --seed 7 --fault-rate 2 \
    --corrupt 2 --metrics-interval 25 --metrics-stream "$tdir/m2.jsonl" \
    > /dev/null
cmp "$tdir/m1.jsonl" "$tdir/m2.jsonl"

# Self-profiler smoke: build with the `profile` feature, profile a wire
# unpack, and validate the collapsed-stack output. The profiled decode
# must attribute samples to the decode stages (frame/huffman/mtf/join).
echo "==> self-profiler smoke (collapsed stacks + schema check)"
prof_start=$SECONDS
cargo build --release --offline -q --features profile
pbin=target/release/code-compression
"$pbin" profile --out "$tdir/wire.folded" --passes 50 --period 500 \
    wire unpack "$tdir/smoke.ccwf" -o /dev/null > /dev/null
"$pbin" telemetry check --collapsed "$tdir/wire.folded"
grep -q "wire.decode" "$tdir/wire.folded"
echo "==> profiler smoke took $((SECONDS - prof_start))s"

# Coverage-guided fuzz smoke: a budgeted campaign over every decoder
# with the `coverage` feature on. `codecomp fuzz` exits nonzero on any
# panic or limit violation and writes reproducers for the regression
# harness to replay, so a finding fails CI with the input preserved.
# CODECOMP_FUZZ_CASES scales the budget (default ~30s on a dev box).
echo "==> coverage-guided fuzz smoke (all decoders)"
fuzz_start=$SECONDS
cargo build --release --offline -q --features coverage
cbin=target/release/code-compression
"$cbin" fuzz --target all --cases "${CODECOMP_FUZZ_CASES:-3000}" --seed 1 \
    --save-repros
cargo test -q --offline --test regressions
echo "==> fuzz smoke took $((SECONDS - fuzz_start))s"

echo "==> ci.sh: all checks passed"
