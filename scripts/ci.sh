#!/usr/bin/env bash
# Local CI gate: build, test, lint. Run from anywhere; works fully
# offline (the workspace has no crates.io dependencies).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --offline -- -D warnings

echo "==> ci.sh: all checks passed"
