#!/usr/bin/env bash
# Inflate perf tracker: measures decode throughput on the corpus
# payloads and updates BENCH_inflate.json (keeping the recorded
# baseline unless --record-baseline is passed). Run from anywhere;
# works fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release --offline -p codecomp-bench --bin bench_inflate -- "$@"
