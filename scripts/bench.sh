#!/usr/bin/env bash
# Perf trackers: measure decode throughput for the inflate, wire, and
# brisc stages plus compressor throughput/ratio per level, and update
# BENCH_{inflate,deflate,wire,brisc}.json (keeping each recorded
# baseline unless --record-baseline is passed; every dump carries a
# telemetry-registry snapshot). Run from anywhere; works fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release --offline -p codecomp-bench --bin bench_inflate -- "$@"
cargo run --release --offline -p codecomp-bench --bin bench_deflate -- "$@"
cargo run --release --offline -p codecomp-bench --bin bench_wire -- "$@"
cargo run --release --offline -p codecomp-bench --bin bench_brisc -- "$@"
