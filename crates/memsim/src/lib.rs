//! Transmission and paging cost models.
//!
//! The paper's introduction argues from *system-wide* cost: "Computer
//! programs are delivered to the CPU via networks, disks, and caches,
//! all of which can be bottlenecks. In some important scenarios, it can
//! be significantly faster to send compressed code that is then
//! interpreted or decompressed and executed." This crate provides the
//! models those claims are evaluated with:
//!
//! - [`Channel`]: bandwidth/latency delivery channels (28.8k modem,
//!   10 Mbit LAN, disk).
//! - [`DeliveryPlan`] / [`total_time`]: end-to-end time to useful work —
//!   transfer + decompress + translate ("JIT") + run — with optional
//!   overlap of translation and transfer ("the delivery time … can mask
//!   some or even all of the recompilation time").
//! - [`Pager`]: an LRU paging simulator over code-touch traces, for the
//!   working-set experiments ("we have seen the CPU idle for most of the
//!   time during paging, so compressing pages can increase total
//!   performance").

use std::collections::VecDeque;

/// A delivery channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Channel {
    /// Bytes per second.
    pub bandwidth: f64,
    /// Fixed startup latency in seconds.
    pub latency: f64,
}

impl Channel {
    /// A 28.8 kbit/s modem (the paper's canonical slow link).
    pub fn modem_28k8() -> Channel {
        Channel {
            bandwidth: 28_800.0 / 8.0,
            latency: 0.1,
        }
    }

    /// A 10 Mbit/s local-area network.
    pub fn lan_10mbit() -> Channel {
        Channel {
            bandwidth: 10_000_000.0 / 8.0,
            latency: 0.005,
        }
    }

    /// A mid-1990s disk (~5 MB/s sustained, ~12 ms seek).
    pub fn disk() -> Channel {
        Channel {
            bandwidth: 5_000_000.0,
            latency: 0.012,
        }
    }

    /// An arbitrary channel of `bits_per_sec`.
    pub fn from_bits_per_sec(bits_per_sec: f64) -> Channel {
        Channel {
            bandwidth: bits_per_sec / 8.0,
            latency: 0.0,
        }
    }

    /// Seconds to transfer `bytes`.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// CPU-side cost parameters, normalized to the native tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Native execution time for the whole workload, in seconds.
    pub native_run_time: f64,
    /// Interpreted-tier slowdown relative to native (the paper's ~12×).
    pub interp_slowdown: f64,
    /// Translation ("JIT") rate in bytes of *produced* native code per
    /// second (the paper's 2.5 MB/s on a 120 MHz Pentium).
    pub jit_rate: f64,
    /// Wire-format decompression rate in input bytes per second.
    pub decompress_rate: f64,
}

impl CpuModel {
    /// Parameters shaped like the paper's 120 MHz Pentium measurements.
    pub fn pentium_like(native_run_time: f64) -> CpuModel {
        CpuModel {
            native_run_time,
            interp_slowdown: 12.0,
            jit_rate: 2_500_000.0,
            decompress_rate: 4_000_000.0,
        }
    }
}

/// How the code arrives and is made runnable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeliveryPlan {
    /// Native code shipped as-is and executed.
    Native {
        /// Native image size.
        bytes: usize,
    },
    /// gzip-compressed native code: decompress, then run natively.
    CompressedNative {
        /// Compressed transfer size.
        compressed: usize,
        /// Decompressed native size (drives decompression cost).
        native: usize,
    },
    /// Wire-format code: decompress, translate, run natively.
    Wire {
        /// Compressed transfer size.
        compressed: usize,
        /// Native code size produced by translation.
        native: usize,
    },
    /// BRISC: ship compressed, translate directly (overlappable), run.
    BriscJit {
        /// BRISC image size.
        compressed: usize,
        /// Native code size produced.
        native: usize,
    },
    /// BRISC: ship compressed and interpret in place — no translation.
    BriscInterp {
        /// BRISC image size.
        compressed: usize,
    },
}

impl DeliveryPlan {
    /// Bytes that cross the channel.
    pub fn transfer_bytes(&self) -> usize {
        match *self {
            DeliveryPlan::Native { bytes } => bytes,
            DeliveryPlan::CompressedNative { compressed, .. }
            | DeliveryPlan::Wire { compressed, .. }
            | DeliveryPlan::BriscJit { compressed, .. }
            | DeliveryPlan::BriscInterp { compressed } => compressed,
        }
    }

    /// CPU preparation time after (or during) delivery.
    pub fn prep_time(&self, cpu: &CpuModel) -> f64 {
        match *self {
            DeliveryPlan::Native { .. } => 0.0,
            DeliveryPlan::CompressedNative { native, .. } => native as f64 / cpu.decompress_rate,
            DeliveryPlan::Wire { native, .. } => {
                // Decompression then code generation, both proportional
                // to the produced size.
                native as f64 / cpu.decompress_rate + native as f64 / cpu.jit_rate
            }
            DeliveryPlan::BriscJit { native, .. } => native as f64 / cpu.jit_rate,
            DeliveryPlan::BriscInterp { .. } => 0.0,
        }
    }

    /// Execution time.
    pub fn run_time(&self, cpu: &CpuModel) -> f64 {
        match self {
            DeliveryPlan::BriscInterp { .. } => cpu.native_run_time * cpu.interp_slowdown,
            _ => cpu.native_run_time,
        }
    }
}

/// Whether preparation may overlap the transfer (streamed translation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overlap {
    /// Strictly sequential: transfer, then prepare, then run.
    Sequential,
    /// Preparation is masked by the transfer where possible.
    Pipelined,
}

/// End-to-end time from request to workload completion.
pub fn total_time(plan: &DeliveryPlan, channel: &Channel, cpu: &CpuModel, overlap: Overlap) -> f64 {
    codecomp_core::telemetry::counter_add("memsim.scenarios", 1);
    let transfer = channel.transfer_time(plan.transfer_bytes());
    let prep = plan.prep_time(cpu);
    let startup = match overlap {
        Overlap::Sequential => transfer + prep,
        Overlap::Pipelined => transfer.max(prep),
    };
    startup + plan.run_time(cpu)
}

/// Finds the bandwidth (bits/s) at which two plans cost the same, by
/// bisection over `lo..hi`. Returns `None` when no crossover exists in
/// the range.
pub fn crossover_bandwidth(
    a: &DeliveryPlan,
    b: &DeliveryPlan,
    cpu: &CpuModel,
    overlap: Overlap,
    lo_bits: f64,
    hi_bits: f64,
) -> Option<f64> {
    let diff = |bits: f64| {
        let ch = Channel::from_bits_per_sec(bits);
        total_time(a, &ch, cpu, overlap) - total_time(b, &ch, cpu, overlap)
    };
    let (mut lo, mut hi) = (lo_bits, hi_bits);
    let (dlo, dhi) = (diff(lo), diff(hi));
    if dlo == 0.0 {
        return Some(lo);
    }
    if dhi == 0.0 {
        return Some(hi);
    }
    if dlo.signum() == dhi.signum() {
        return None;
    }
    for _ in 0..200 {
        let mid = (lo * hi).sqrt(); // geometric midpoint: bandwidths are log-scaled
        let dmid = diff(mid);
        if dmid == 0.0 {
            return Some(mid);
        }
        if dmid.signum() == dlo.signum() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some((lo * hi).sqrt())
}

/// An LRU paging simulator over byte-address accesses.
#[derive(Debug)]
pub struct Pager {
    page_size: u32,
    capacity: usize,
    /// Resident pages, most recently used at the back.
    resident: VecDeque<u32>,
    faults: u64,
    accesses: u64,
    /// All distinct pages ever touched.
    touched: std::collections::HashSet<u32>,
}

impl Pager {
    /// A pager with `capacity` resident pages of `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero or `capacity` is zero.
    pub fn new(page_size: u32, capacity: usize) -> Pager {
        assert!(page_size > 0, "page size must be positive");
        assert!(capacity > 0, "capacity must be positive");
        Pager {
            page_size,
            capacity,
            resident: VecDeque::new(),
            faults: 0,
            accesses: 0,
            touched: std::collections::HashSet::new(),
        }
    }

    /// Touches one byte address.
    pub fn access(&mut self, addr: u32) {
        let page = addr / self.page_size;
        self.accesses += 1;
        self.touched.insert(page);
        if let Some(pos) = self.resident.iter().position(|&p| p == page) {
            self.resident.remove(pos);
            self.resident.push_back(page);
            return;
        }
        self.faults += 1;
        if self.resident.len() == self.capacity {
            self.resident.pop_front();
        }
        self.resident.push_back(page);
    }

    /// Touches a byte run `(offset, len)`.
    pub fn access_run(&mut self, offset: u32, len: u32) {
        if len == 0 {
            return;
        }
        let first = offset / self.page_size;
        let last = (offset + len - 1) / self.page_size;
        for page in first..=last {
            self.access(page * self.page_size);
        }
    }

    /// Page faults so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Distinct pages touched (the working set over the whole run).
    pub fn working_set_pages(&self) -> usize {
        self.touched.len()
    }

    /// Working set in bytes.
    pub fn working_set_bytes(&self) -> usize {
        self.touched.len() * self.page_size as usize
    }
}

/// Total time of an execution whose code faults from a backing channel:
/// CPU time plus fault service time ("we have seen the CPU idle for most
/// of the time during paging").
pub fn paged_run_time(cpu_seconds: f64, faults: u64, page_size: u32, channel: &Channel) -> f64 {
    cpu_seconds + faults as f64 * channel.transfer_time(page_size as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_arithmetic() {
        let modem = Channel::modem_28k8();
        // 3600 bytes/s: 36 KB takes ~10s + latency.
        let t = modem.transfer_time(36_000);
        assert!((t - 10.1).abs() < 1e-9);
        assert!(Channel::lan_10mbit().transfer_time(36_000) < 0.1);
    }

    #[test]
    fn compressed_delivery_wins_on_slow_links() {
        // 1 MB native vs 250 KB BRISC.
        let cpu = CpuModel::pentium_like(1.0);
        let native = DeliveryPlan::Native { bytes: 1_000_000 };
        let brisc = DeliveryPlan::BriscJit {
            compressed: 250_000,
            native: 1_080_000,
        };
        let modem = Channel::modem_28k8();
        assert!(
            total_time(&brisc, &modem, &cpu, Overlap::Sequential)
                < total_time(&native, &modem, &cpu, Overlap::Sequential),
            "compressed must win over a modem"
        );
        // On an infinitely fast channel, native wins (no prep).
        let fast = Channel::from_bits_per_sec(1e12);
        assert!(
            total_time(&native, &fast, &cpu, Overlap::Sequential)
                < total_time(&brisc, &fast, &cpu, Overlap::Sequential)
        );
    }

    #[test]
    fn crossover_exists_between_extremes() {
        let cpu = CpuModel::pentium_like(1.0);
        let native = DeliveryPlan::Native { bytes: 1_000_000 };
        let brisc = DeliveryPlan::BriscJit {
            compressed: 250_000,
            native: 1_080_000,
        };
        let x = crossover_bandwidth(&native, &brisc, &cpu, Overlap::Sequential, 1e3, 1e12)
            .expect("a crossover must exist");
        // At the crossover, the two times agree.
        let ch = Channel::from_bits_per_sec(x);
        let ta = total_time(&native, &ch, &cpu, Overlap::Sequential);
        let tb = total_time(&brisc, &ch, &cpu, Overlap::Sequential);
        assert!(
            (ta - tb).abs() / ta < 1e-3,
            "times at crossover: {ta} vs {tb}"
        );
    }

    #[test]
    fn pipelining_masks_jit_time() {
        let cpu = CpuModel::pentium_like(0.0);
        let brisc = DeliveryPlan::BriscJit {
            compressed: 250_000,
            native: 1_000_000,
        };
        let modem = Channel::modem_28k8();
        let seq = total_time(&brisc, &modem, &cpu, Overlap::Sequential);
        let pipe = total_time(&brisc, &modem, &cpu, Overlap::Pipelined);
        // Transfer dominates; pipelined time is just the transfer.
        assert!(pipe < seq);
        assert!((pipe - modem.transfer_time(250_000)).abs() < 1e-9);
    }

    #[test]
    fn interpretation_pays_cpu_but_no_prep() {
        let cpu = CpuModel::pentium_like(1.0);
        let interp = DeliveryPlan::BriscInterp {
            compressed: 250_000,
        };
        assert_eq!(interp.prep_time(&cpu), 0.0);
        assert!((interp.run_time(&cpu) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn pager_counts_faults_lru() {
        let mut p = Pager::new(100, 2);
        p.access(0); // fault: page 0
        p.access(50); // hit
        p.access(150); // fault: page 1
        p.access(0); // hit
        p.access(250); // fault: page 2, evicts LRU (page 1)
        p.access(150); // fault again
        assert_eq!(p.faults(), 4);
        assert_eq!(p.accesses(), 6);
        assert_eq!(p.working_set_pages(), 3);
    }

    #[test]
    fn runs_touch_every_spanned_page() {
        let mut p = Pager::new(100, 10);
        p.access_run(95, 10); // spans pages 0 and 1
        assert_eq!(p.working_set_pages(), 2);
        p.access_run(300, 0); // empty run: nothing
        assert_eq!(p.working_set_pages(), 2);
        p.access_run(0, 1000); // pages 0..=9
        assert_eq!(p.working_set_pages(), 10);
    }

    #[test]
    fn smaller_code_means_smaller_working_set() {
        // The same logical trace, expressed over native (large) and
        // compressed (small) layouts.
        let mut native = Pager::new(4096, 1000);
        let mut compressed = Pager::new(4096, 1000);
        for i in 0..100u32 {
            native.access_run(i * 1000, 400); // spread out
            compressed.access_run(i * 380, 150); // ~2.6x denser
        }
        assert!(compressed.working_set_pages() < native.working_set_pages());
    }

    #[test]
    fn paged_run_time_adds_fault_service() {
        let disk = Channel::disk();
        let t = paged_run_time(1.0, 100, 4096, &disk);
        assert!(t > 1.0 + 100.0 * 0.012);
    }

    #[test]
    fn fewer_faults_can_beat_interpretation_overhead() {
        // The intro's scenario: interpretation is 12x slower on the CPU
        // but halves the paged working set; with a slow disk and tight
        // memory the interpreted run can still win on total time.
        let disk = Channel::disk();
        let cpu_native = 0.05;
        let native_faults = 2000u64;
        let interp_faults = 600u64;
        let native_total = paged_run_time(cpu_native, native_faults, 4096, &disk);
        let interp_total = paged_run_time(cpu_native * 12.0, interp_faults, 4096, &disk);
        assert!(interp_total < native_total);
    }
}
