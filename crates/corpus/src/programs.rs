//! The bundled mini-C benchmark sources.
//!
//! Each program ends with a `main` that runs a fixed workload and
//! returns a checksum, so all execution tiers can be compared exactly.

/// A stack-machine interpreter running small bytecode programs — the
/// "interpreter" shape (lcc's role in the paper's corpus).
pub const VMSIM: &str = r#"
/* A tiny stack VM: opcodes over a byte-coded program. */
int stack[64];
int sp;
int prog[128];
int pc;

void push(int v) { stack[sp] = v; sp++; }
int pop() { sp--; return stack[sp]; }

/* opcodes: 0 halt, 1 push imm, 2 add, 3 sub, 4 mul, 5 dup,
   6 swap, 7 jnz offset, 8 dec, 9 mod imm */
int run(int entry) {
    pc = entry;
    int steps = 0;
    while (steps < 10000) {
        int op = prog[pc];
        pc++;
        steps++;
        if (op == 0) {
            return pop();
        } else if (op == 1) {
            push(prog[pc]);
            pc++;
        } else if (op == 2) {
            int b = pop();
            push(pop() + b);
        } else if (op == 3) {
            int b = pop();
            push(pop() - b);
        } else if (op == 4) {
            int b = pop();
            push(pop() * b);
        } else if (op == 5) {
            int v = pop();
            push(v);
            push(v);
        } else if (op == 6) {
            int b = pop();
            int a = pop();
            push(b);
            push(a);
        } else if (op == 7) {
            int t = prog[pc];
            pc++;
            if (pop() != 0) pc = t;
        } else if (op == 8) {
            push(pop() - 1);
        } else if (op == 9) {
            int m = prog[pc];
            pc++;
            push(pop() % m);
        } else {
            return -1;
        }
    }
    return -2;
}

int emit(int at, int op, int arg, int has_arg) {
    prog[at] = op;
    at++;
    if (has_arg) {
        prog[at] = arg;
        at++;
    }
    return at;
}

/* factorial(n) as bytecode: acc=1; while (n) { acc*=n; n--; } */
int build_fact(int at, int n) {
    at = emit(at, 1, 1, 1);   /* push 1 (acc) */
    at = emit(at, 1, n, 1);   /* push n */
    int loop = at;
    at = emit(at, 5, 0, 0);   /* dup n */
    int patch = at + 1;
    at = emit(at, 7, 0, 1);   /* jnz body */
    /* fallthrough: drop n, halt with acc */
    at = emit(at, 3, 0, 0);   /* acc - 0? no: n==0, sub -> acc-n = acc */
    at = emit(at, 0, 0, 0);   /* halt */
    int body = at;
    prog[patch] = body;
    at = emit(at, 5, 0, 0);   /* n n */
    at = emit(at, 1, 3, 1);   /* rotate via stack juggling: n n 3 */
    at = emit(at, 3, 0, 0);   /* n (n-3) — arbitrary mix to vary opcodes */
    at = emit(at, 3, 0, 0);   /* n - (n-3) = 3?  keep arithmetic lively */
    at = emit(at, 1, 3, 1);
    at = emit(at, 3, 0, 0);   /* 0 */
    at = emit(at, 2, 0, 0);   /* n + 0 */
    at = emit(at, 6, 0, 0);   /* swap acc n */
    at = emit(at, 5, 0, 0);
    /* stack: n acc acc ; need acc*n and n-1 */
    at = emit(at, 6, 0, 0);
    at = emit(at, 8, 0, 0);
    /* stack: n' ... this toy just decrements and loops on n' */
    at = emit(at, 6, 0, 0);
    at = emit(at, 4, 0, 0);   /* multiply the two tops */
    at = emit(at, 6, 0, 0);
    at = emit(at, 7, loop, 1);
    at = emit(at, 0, 0, 0);
    return at;
}

int main() {
    int sum = 0;
    int n;
    for (n = 1; n <= 6; n++) {
        sp = 0;
        build_fact(0, n);
        sum = sum * 31 + run(0);
    }
    /* A second program: sum of squares mod 97 via the VM. */
    int at = 0;
    at = emit(at, 1, 0, 1);
    int k;
    for (k = 1; k <= 12; k++) {
        at = emit(at, 1, k * k, 1);
        at = emit(at, 2, 0, 0);
    }
    at = emit(at, 9, 97, 1);
    at = emit(at, 0, 0, 0);
    sp = 0;
    sum = sum * 31 + run(0);
    print_int(sum);
    return sum;
}
"#;

/// DSP kernels: FIR filtering, matrix multiplication, dot products.
pub const DSP: &str = r#"
int signal[256];
int coeff[16];
int output[256];
int mata[64];
int matb[64];
int matc[64];

void gen_signal() {
    int i;
    int x = 7;
    for (i = 0; i < 256; i++) {
        x = x * 1103515245 + 12345;
        signal[i] = (x >> 16) % 100;
    }
}

void gen_coeff() {
    int i;
    for (i = 0; i < 16; i++) coeff[i] = (i * 7 % 13) - 6;
}

void fir() {
    int i;
    for (i = 0; i < 256; i++) {
        int acc = 0;
        int j;
        for (j = 0; j < 16; j++) {
            if (i - j >= 0) acc += signal[i - j] * coeff[j];
        }
        output[i] = acc;
    }
}

int dot(int *a, int *b, int n) {
    int acc = 0;
    int i;
    for (i = 0; i < n; i++) acc += a[i] * b[i];
    return acc;
}

void matmul(int *a, int *b, int *c, int n) {
    int i;
    int j;
    int k;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            int acc = 0;
            for (k = 0; k < n; k++) acc += a[i * n + k] * b[k * n + j];
            c[i * n + j] = acc;
        }
    }
}

int saturate(int v, int lo, int hi) {
    return v < lo ? lo : (v > hi ? hi : v);
}

int main() {
    gen_signal();
    gen_coeff();
    fir();
    int check = 0;
    int i;
    for (i = 0; i < 256; i++) check = check * 17 + saturate(output[i], -5000, 5000) % 257;
    for (i = 0; i < 64; i++) {
        mata[i] = (i * 3 + 1) % 11;
        matb[i] = (i * 5 + 2) % 7;
    }
    matmul(mata, matb, matc, 8);
    check = check * 31 + dot(matc, mata, 64) % 10007;
    check = check * 31 + dot(signal, output, 256) % 10007;
    print_int(check);
    return check;
}
"#;

/// A run-length compressor/decompressor with verification — the "wcp"
/// compression-utility shape.
pub const PACK: &str = r#"
char input[512];
char packed[1024];
char unpacked[512];

void fill_input() {
    int i = 0;
    int runlen = 1;
    char value = 'a';
    while (i < 512) {
        int j;
        for (j = 0; j < runlen && i < 512; j++) {
            input[i] = value;
            i++;
        }
        value = value + 1;
        if (value > 'f') value = 'a';
        runlen = runlen * 2 + 1;
        if (runlen > 40) runlen = 1;
    }
}

/* RLE: (count, byte) pairs; count 1..255. Returns packed length. */
int pack(char *src, int n, char *dst) {
    int i = 0;
    int out = 0;
    while (i < n) {
        int run = 1;
        while (i + run < n && src[i + run] == src[i] && run < 255) run++;
        dst[out] = run;
        out++;
        dst[out] = src[i];
        out++;
        i += run;
    }
    return out;
}

int unpack(char *src, int n, char *dst) {
    int i = 0;
    int out = 0;
    while (i + 1 < n) {
        int run = src[i];
        if (run < 0) run += 256;
        char v = src[i + 1];
        int j;
        for (j = 0; j < run; j++) {
            dst[out] = v;
            out++;
        }
        i += 2;
    }
    return out;
}

int verify(char *a, char *b, int n) {
    int i;
    for (i = 0; i < n; i++) {
        if (a[i] != b[i]) return 0;
    }
    return 1;
}

int checksum(char *p, int n) {
    int h = 5381;
    int i;
    for (i = 0; i < n; i++) h = h * 33 + p[i];
    return h;
}

int main() {
    fill_input();
    int plen = pack(input, 512, packed);
    int ulen = unpack(packed, plen, unpacked);
    int ok = verify(input, unpacked, 512);
    if (ulen != 512) ok = 0;
    int result = checksum(packed, plen) % 1000003;
    if (!ok) result = -1;
    print_int(plen);
    print_int(result);
    return result;
}
"#;

/// Sorting and searching library routines.
pub const SORTLIB: &str = r#"
int data[200];
int copy1[200];
int copy2[200];

void regen(int *dst, int n, int seed) {
    int i;
    int x = seed;
    for (i = 0; i < n; i++) {
        x = x * 1664525 + 1013904223;
        dst[i] = (x >> 8) % 1000;
        if (dst[i] < 0) dst[i] += 1000;
    }
}

void insertion_sort(int *a, int n) {
    int i;
    for (i = 1; i < n; i++) {
        int v = a[i];
        int j = i - 1;
        while (j >= 0 && a[j] > v) {
            a[j + 1] = a[j];
            j--;
        }
        a[j + 1] = v;
    }
}

void sift_down(int *a, int start, int end) {
    int root = start;
    while (root * 2 + 1 <= end) {
        int child = root * 2 + 1;
        if (child + 1 <= end && a[child] < a[child + 1]) child++;
        if (a[root] < a[child]) {
            int t = a[root];
            a[root] = a[child];
            a[child] = t;
            root = child;
        } else {
            return;
        }
    }
}

void heap_sort(int *a, int n) {
    int start = (n - 2) / 2;
    while (start >= 0) {
        sift_down(a, start, n - 1);
        start--;
    }
    int end = n - 1;
    while (end > 0) {
        int t = a[end];
        a[end] = a[0];
        a[0] = t;
        end--;
        sift_down(a, 0, end);
    }
}

int binary_search(int *a, int n, int key) {
    int lo = 0;
    int hi = n - 1;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        if (a[mid] == key) return mid;
        if (a[mid] < key) lo = mid + 1;
        else hi = mid - 1;
    }
    return -1;
}

int is_sorted(int *a, int n) {
    int i;
    for (i = 1; i < n; i++) {
        if (a[i - 1] > a[i]) return 0;
    }
    return 1;
}

int main() {
    regen(data, 200, 42);
    int i;
    for (i = 0; i < 200; i++) {
        copy1[i] = data[i];
        copy2[i] = data[i];
    }
    insertion_sort(copy1, 200);
    heap_sort(copy2, 200);
    int ok = is_sorted(copy1, 200) && is_sorted(copy2, 200);
    int agree = 1;
    for (i = 0; i < 200; i++) {
        if (copy1[i] != copy2[i]) agree = 0;
    }
    int hits = 0;
    for (i = 0; i < 200; i++) {
        if (binary_search(copy1, 200, data[i]) >= 0) hits++;
    }
    int misses = 0;
    for (i = 0; i < 50; i++) {
        if (binary_search(copy1, 200, 1000 + i) < 0) misses++;
    }
    int check = ok * 1000000 + agree * 100000 + hits * 100 + misses;
    print_int(check);
    return check;
}
"#;

/// A recursive-descent expression parser and evaluator — the compiler
/// front-end shape.
pub const CALC: &str = r#"
char expr[128];
int pos;

int parse_expr();

int parse_num() {
    int v = 0;
    while (expr[pos] >= '0' && expr[pos] <= '9') {
        v = v * 10 + (expr[pos] - '0');
        pos++;
    }
    return v;
}

int parse_atom() {
    if (expr[pos] == '(') {
        pos++;
        int v = parse_expr();
        if (expr[pos] == ')') pos++;
        return v;
    }
    if (expr[pos] == '-') {
        pos++;
        return -parse_atom();
    }
    return parse_num();
}

int parse_term() {
    int v = parse_atom();
    while (expr[pos] == '*' || expr[pos] == '/' || expr[pos] == '%') {
        char op = expr[pos];
        pos++;
        int rhs = parse_atom();
        if (op == '*') v = v * rhs;
        else if (rhs != 0) {
            if (op == '/') v = v / rhs;
            else v = v % rhs;
        }
    }
    return v;
}

int parse_expr() {
    int v = parse_term();
    while (expr[pos] == '+' || expr[pos] == '-') {
        char op = expr[pos];
        pos++;
        int rhs = parse_term();
        if (op == '+') v = v + rhs;
        else v = v - rhs;
    }
    return v;
}

int put(int at, char c) {
    expr[at] = c;
    return at + 1;
}

int put_num(int at, int v) {
    if (v >= 10) at = put_num(at, v / 10);
    return put(at, '0' + v % 10);
}

/* Builds ((1*2+3)*(4%3)+...) style expressions of varying depth. */
int build(int at, int depth, int seed) {
    if (depth == 0) {
        return put_num(at, seed % 90 + 1);
    }
    at = put(at, '(');
    at = build(at, depth - 1, seed * 3 + 1);
    char ops[5];
    ops[0] = '+'; ops[1] = '-'; ops[2] = '*'; ops[3] = '/'; ops[4] = '%';
    at = put(at, ops[seed % 5]);
    at = build(at, depth - 1, seed * 7 + 2);
    return put(at, ')');
}

int main() {
    int check = 0;
    int s;
    for (s = 1; s <= 12; s++) {
        int end = build(0, 3, s);
        expr[end] = 0;
        pos = 0;
        int v = parse_expr();
        check = check * 37 + v % 9973;
    }
    print_int(check);
    return check;
}
"#;

/// Conway's Game of Life on a toroidal grid.
pub const LIFE: &str = r#"
char grid[576];
char next[576];

int wrap(int v, int n) {
    if (v < 0) return v + n;
    if (v >= n) return v - n;
    return v;
}

int at(int r, int c) {
    return grid[wrap(r, 24) * 24 + wrap(c, 24)];
}

void step() {
    int r;
    int c;
    for (r = 0; r < 24; r++) {
        for (c = 0; c < 24; c++) {
            int n = at(r-1,c-1) + at(r-1,c) + at(r-1,c+1)
                  + at(r,c-1) + at(r,c+1)
                  + at(r+1,c-1) + at(r+1,c) + at(r+1,c+1);
            int alive = at(r, c);
            if (alive) next[r * 24 + c] = (n == 2 || n == 3) ? 1 : 0;
            else next[r * 24 + c] = (n == 3) ? 1 : 0;
        }
    }
    int i;
    for (i = 0; i < 576; i++) grid[i] = next[i];
}

int population() {
    int i;
    int p = 0;
    for (i = 0; i < 576; i++) p += grid[i];
    return p;
}

void seed_glider(int r, int c) {
    grid[wrap(r, 24) * 24 + wrap(c + 1, 24)] = 1;
    grid[wrap(r + 1, 24) * 24 + wrap(c + 2, 24)] = 1;
    grid[wrap(r + 2, 24) * 24 + wrap(c, 24)] = 1;
    grid[wrap(r + 2, 24) * 24 + wrap(c + 1, 24)] = 1;
    grid[wrap(r + 2, 24) * 24 + wrap(c + 2, 24)] = 1;
}

int main() {
    seed_glider(1, 1);
    seed_glider(10, 5);
    seed_glider(5, 15);
    int check = 0;
    int gen;
    for (gen = 0; gen < 30; gen++) {
        step();
        check = check * 31 + population();
    }
    print_int(check);
    return check;
}
"#;

/// Hashing, PRNG streams, and checksum chains over byte buffers.
pub const HASH: &str = r#"
char buf[256];
unsigned state;

unsigned next_rand() {
    state = state ^ (state << 13);
    state = state ^ (state >> 17);
    state = state ^ (state << 5);
    return state;
}

int djb2(char *s, int n) {
    int h = 5381;
    int i;
    for (i = 0; i < n; i++) h = h * 33 ^ s[i];
    return h;
}

int fnv(char *s, int n) {
    int h = 2166136261;
    int i;
    for (i = 0; i < n; i++) {
        h = h ^ s[i];
        h = h * 16777619;
    }
    return h;
}

int adler(char *s, int n) {
    int a = 1;
    int b = 0;
    int i;
    for (i = 0; i < n; i++) {
        int v = s[i];
        if (v < 0) v += 256;
        a = (a + v) % 65521;
        b = (b + a) % 65521;
    }
    return b * 65536 + a;
}

int main() {
    state = 2463534242;
    int rounds;
    int check = 0;
    for (rounds = 0; rounds < 20; rounds++) {
        int i;
        for (i = 0; i < 256; i++) {
            buf[i] = next_rand() % 256;
        }
        check ^= djb2(buf, 256);
        check = check * 31 + fnv(buf, 128) % 100003;
        check ^= adler(buf, 200);
    }
    print_int(check);
    return check;
}
"#;

/// N-queens backtracking — deep recursion, boolean pruning.
pub const QUEENS: &str = r#"
int cols[16];
int diag1[32];
int diag2[32];
int n;

int solve(int row) {
    if (row == n) return 1;
    int count = 0;
    int c;
    for (c = 0; c < n; c++) {
        if (!cols[c] && !diag1[row + c] && !diag2[row - c + n]) {
            cols[c] = 1;
            diag1[row + c] = 1;
            diag2[row - c + n] = 1;
            count += solve(row + 1);
            cols[c] = 0;
            diag1[row + c] = 0;
            diag2[row - c + n] = 0;
        }
    }
    return count;
}

int clear() {
    int i;
    for (i = 0; i < 16; i++) cols[i] = 0;
    for (i = 0; i < 32; i++) {
        diag1[i] = 0;
        diag2[i] = 0;
    }
    return 0;
}

int main() {
    int check = 0;
    for (n = 4; n <= 8; n++) {
        clear();
        check = check * 100 + solve(0);
    }
    print_int(check);
    return check;
}
"#;

/// A backtracking regular-expression matcher (literal, `.`, `*`, `^`, `$`)
/// — the classic Pike/Kernighan matcher, a text-processing shape.
pub const REGEX: &str = r#"
char text[256];
int matches;

int match_here(char *re, char *s);

int match_star(char c, char *re, char *s) {
    do {
        if (match_here(re, s)) return 1;
    } while (*s != 0 && (*s == c || c == '.') && s++ != 0);
    return 0;
}

int match_here(char *re, char *s) {
    if (re[0] == 0) return 1;
    if (re[1] == '*') return match_star(re[0], re + 2, s);
    if (re[0] == '$' && re[1] == 0) return *s == 0;
    if (*s != 0 && (re[0] == '.' || re[0] == *s)) return match_here(re + 1, s + 1);
    return 0;
}

int match(char *re, char *s) {
    if (re[0] == '^') return match_here(re + 1, s);
    do {
        if (match_here(re, s)) return 1;
    } while (*s++ != 0);
    return 0;
}

void fill_text() {
    char *phrase = "the quick brown fox jumps over the lazy dog and the cat ";
    int i = 0;
    int j = 0;
    while (i < 255) {
        if (phrase[j] == 0) j = 0;
        text[i] = phrase[j];
        i++;
        j++;
    }
    text[255] = 0;
}

int count_matches(char *re) {
    int n = 0;
    char *s = text;
    while (*s) {
        if (match(re, s)) n++;
        s++;
    }
    return n;
}

int main() {
    fill_text();
    int check = 0;
    check = check * 31 + count_matches("the");
    check = check * 31 + count_matches("q.ick");
    check = check * 31 + count_matches("o*g");
    check = check * 31 + count_matches("^the");
    check = check * 31 + count_matches("ca*t");
    check = check * 31 + match("dog$", "lazy dog");
    check = check * 31 + match("^f.x$", "fox");
    check = check * 31 + match("xyz", text);
    print_int(check);
    return check;
}
"#;

/// Fixed-precision big-number arithmetic (school multiplication,
/// factorials, Fibonacci) over digit arrays — the numeric-library shape.
pub const BIGNUM: &str = r#"
/* Numbers are little-endian base-10000 digit arrays of length 32. */
int scratch_a[32];
int scratch_b[32];
int scratch_c[32];

void zero(int *x) {
    int i;
    for (i = 0; i < 32; i++) x[i] = 0;
}

void set_small(int *x, int v) {
    zero(x);
    x[0] = v % 10000;
    x[1] = v / 10000;
}

void copy(int *dst, int *src) {
    int i;
    for (i = 0; i < 32; i++) dst[i] = src[i];
}

void add(int *out, int *a, int *b) {
    int carry = 0;
    int i;
    for (i = 0; i < 32; i++) {
        int t = a[i] + b[i] + carry;
        out[i] = t % 10000;
        carry = t / 10000;
    }
}

void mul_small(int *out, int *a, int m) {
    int carry = 0;
    int i;
    for (i = 0; i < 32; i++) {
        int t = a[i] * m + carry;
        out[i] = t % 10000;
        carry = t / 10000;
    }
}

int digits(int *x) {
    int top = 31;
    while (top > 0 && x[top] == 0) top--;
    int head = x[top];
    int n = top * 4;
    while (head > 0) {
        n++;
        head /= 10;
    }
    if (n == 0) n = 1;
    return n;
}

int fold(int *x) {
    int h = 0;
    int i;
    for (i = 0; i < 32; i++) h = (h * 31 + x[i]) % 1000003;
    return h;
}

int factorial_hash(int n) {
    set_small(scratch_a, 1);
    int k;
    for (k = 2; k <= n; k++) {
        mul_small(scratch_b, scratch_a, k);
        copy(scratch_a, scratch_b);
    }
    return fold(scratch_a) * 100 + digits(scratch_a);
}

int fib_hash(int n) {
    set_small(scratch_a, 0);
    set_small(scratch_b, 1);
    int k;
    for (k = 0; k < n; k++) {
        add(scratch_c, scratch_a, scratch_b);
        copy(scratch_a, scratch_b);
        copy(scratch_b, scratch_c);
    }
    return fold(scratch_a) * 100 + digits(scratch_a);
}

int main() {
    int check = 0;
    check ^= factorial_hash(20);
    check = check * 37 + factorial_hash(40) % 99991;
    check ^= fib_hash(90);
    check = check * 37 + fib_hash(150) % 99991;
    print_int(check);
    return check;
}
"#;
