//! The benchmark corpus.
//!
//! The paper measures lcc, gcc-2.6.3, wcp, and Word97 — binaries we
//! cannot ship. This crate substitutes a corpus with the same *shape*:
//! [`benchmarks`] returns a suite of realistic mini-C programs (an
//! interpreter, DSP kernels, a compressor, sorting/searching, a parser,
//! cellular automata, hashing, and a backtracking search), each with a
//! deterministic entry point so every execution tier can be compared;
//! [`synthetic`] generates seeded random programs of arbitrary size for
//! gcc-scale experiments.

pub mod programs;
pub mod synth;

pub use synth::{synthetic, synthetic_modules, MultiModuleConfig, SynthConfig};

use codecomp_front::{compile, FrontError};
use codecomp_ir::Module;

/// One corpus program.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Short name (used in experiment tables).
    pub name: &'static str,
    /// What the program exercises.
    pub description: &'static str,
    /// Mini-C source text.
    pub source: &'static str,
}

impl Benchmark {
    /// Compiles the benchmark to IR.
    ///
    /// # Errors
    ///
    /// Propagates front-end diagnostics (the suite is tested to compile).
    pub fn compile(&self) -> Result<Module, FrontError> {
        compile(self.source)
    }
}

/// The bundled benchmark suite.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "vmsim",
            description: "stack-machine interpreter running bytecode programs",
            source: programs::VMSIM,
        },
        Benchmark {
            name: "dsp",
            description: "FIR filter, matrix multiply, and dot-product kernels",
            source: programs::DSP,
        },
        Benchmark {
            name: "pack",
            description: "run-length compressor and decompressor with verification",
            source: programs::PACK,
        },
        Benchmark {
            name: "sortlib",
            description: "insertion sort, heapsort, and binary search over arrays",
            source: programs::SORTLIB,
        },
        Benchmark {
            name: "calc",
            description: "recursive-descent expression parser and evaluator",
            source: programs::CALC,
        },
        Benchmark {
            name: "life",
            description: "cellular automaton generations on a toroidal grid",
            source: programs::LIFE,
        },
        Benchmark {
            name: "hash",
            description: "string hashing, PRNG streams, and checksum chains",
            source: programs::HASH,
        },
        Benchmark {
            name: "regex",
            description: "backtracking regular-expression matcher over text buffers",
            source: programs::REGEX,
        },
        Benchmark {
            name: "bignum",
            description: "fixed-precision big-number factorials and Fibonacci",
            source: programs::BIGNUM,
        },
        Benchmark {
            name: "queens",
            description: "recursive backtracking N-queens counter",
            source: programs::QUEENS,
        },
    ]
}

/// Finds a benchmark by name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use codecomp_ir::eval::Evaluator;

    #[test]
    fn all_benchmarks_compile() {
        for b in benchmarks() {
            let m = b
                .compile()
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}", b.name));
            assert!(!m.functions.is_empty(), "{} has no functions", b.name);
            assert!(m.function("main").is_some(), "{} has no main", b.name);
        }
    }

    #[test]
    fn all_benchmarks_run_deterministically() {
        for b in benchmarks() {
            let m = b.compile().unwrap();
            let a = Evaluator::new(&m, 1 << 22, 1 << 26)
                .unwrap()
                .run("main", &[])
                .unwrap_or_else(|e| panic!("{} failed to run: {e}", b.name));
            let c = Evaluator::new(&m, 1 << 22, 1 << 26)
                .unwrap()
                .run("main", &[])
                .unwrap();
            assert_eq!(a.value, c.value, "{} is nondeterministic", b.name);
            assert!(a.stats.statements > 100, "{} does too little work", b.name);
        }
    }

    #[test]
    fn benchmark_lookup() {
        assert!(benchmark("dsp").is_some());
        assert!(benchmark("nope").is_none());
    }

    #[test]
    fn corpus_is_nontrivial_in_size() {
        let total: usize = benchmarks()
            .iter()
            .map(|b| b.compile().unwrap().node_count())
            .sum();
        assert!(total > 3000, "corpus too small: {total} IR nodes");
    }
}
