//! Seeded synthetic program generation for large-scale experiments.
//!
//! The paper's largest subject (gcc-2.6.3) is ~1.4 MB of SPARC code; the
//! generator scales the corpus to that order by emitting any number of
//! realistic functions — arithmetic over locals and globals, bounded
//! loops, conditionals, and calls into earlier functions — all
//! deterministic from the seed and guaranteed to terminate.

use codecomp_core::fault::XorShift64;
use std::fmt::Write;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Number of functions to generate.
    pub functions: usize,
    /// Statements per function body (approximate).
    pub statements_per_function: usize,
    /// Number of global scalars/arrays shared across functions.
    pub globals: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            functions: 40,
            statements_per_function: 10,
            globals: 6,
        }
    }
}

/// Generates a mini-C translation unit from a seed.
///
/// The output always compiles under [`codecomp_front::compile`], defines
/// `main`, and terminates within a bounded number of statements.
pub fn synthetic(seed: u64, config: SynthConfig) -> String {
    let mut rng = XorShift64::new(seed);
    let mut src = String::new();

    for g in 0..config.globals {
        if rng.chance(1, 2) {
            let _ = writeln!(src, "int g{g} = {};", rng.range_i64(-100, 100));
        } else {
            let n = rng.range_usize(4, 32);
            let _ = writeln!(src, "int g{g}[{n}];");
        }
    }

    let mut array_sizes: Vec<Option<usize>> = Vec::new();
    {
        // Re-derive which globals are arrays from a second pass of the
        // same distribution: simpler to just reparse our own text.
        for line in src.lines() {
            if line.contains('[') {
                let n: usize = line
                    .split('[')
                    .nth(1)
                    .and_then(|s| s.split(']').next())
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(4);
                array_sizes.push(Some(n));
            } else {
                array_sizes.push(None);
            }
        }
    }

    // Fix every function's arity up front so call sites can match it
    // exactly (an arity mismatch would read stale stack slots, which is
    // undefined in C and tier-dependent here).
    let arities: Vec<usize> = (0..config.functions)
        .map(|_| rng.range_usize(0, 4))
        .collect();

    for f in 0..config.functions {
        let params = arities[f];
        let mut header = format!("int f{f}(");
        for p in 0..params {
            if p > 0 {
                header.push_str(", ");
            }
            let _ = write!(header, "int p{p}");
        }
        header.push_str(") {");
        let _ = writeln!(src, "{header}");
        let _ = writeln!(src, "    int acc = {};", rng.range_i64(0, 10));
        let locals = rng.range_usize(1, 4);
        for l in 0..locals {
            let _ = writeln!(src, "    int v{l} = {};", rng.range_i64(-20, 20));
        }

        for s in 0..config.statements_per_function {
            match rng.below(6) {
                0 => {
                    // Bounded loop accumulating arithmetic.
                    let bound = rng.range_i64(2, 12);
                    let expr = arith_expr(&mut rng, params, locals, f, &array_sizes);
                    let _ = writeln!(
                        src,
                        "    {{ int i{s}; for (i{s} = 0; i{s} < {bound}; i{s}++) acc += {expr}; }}"
                    );
                }
                1 => {
                    let expr = arith_expr(&mut rng, params, locals, f, &array_sizes);
                    let cmp = ["<", "<=", ">", ">=", "==", "!="][rng.range_usize(0, 6)];
                    let rhs = rng.range_i64(-50, 50);
                    let delta = rng.range_i64(1, 9);
                    let _ = writeln!(
                        src,
                        "    if (acc {cmp} {rhs}) acc += {expr}; else acc -= {delta};"
                    );
                }
                2 if f > 0 => {
                    // Call an earlier function (keeps the call graph acyclic).
                    let callee = rng.range_usize(0, f);
                    let args = callee_args(&mut rng, arities[callee], params, locals);
                    let _ = writeln!(src, "    acc = acc * 3 + f{callee}({args}) % 1009;");
                }
                3 => {
                    let l = rng.range_usize(0, locals);
                    let expr = arith_expr(&mut rng, params, locals, f, &array_sizes);
                    let _ = writeln!(src, "    v{l} = ({expr}) % 2003;");
                }
                4 if !array_sizes.is_empty() => {
                    // Touch a global array deterministically.
                    if let Some((gi, n)) = pick_array(&mut rng, &array_sizes) {
                        let idx = rng.range_usize(0, n);
                        let _ = writeln!(src, "    g{gi}[{idx}] = acc % 251;");
                        let _ = writeln!(src, "    acc += g{gi}[{idx}] * 2;");
                    }
                }
                _ => {
                    let expr = arith_expr(&mut rng, params, locals, f, &array_sizes);
                    let shift = rng.range_i64(1, 5);
                    let _ = writeln!(src, "    acc = (acc ^ ({expr})) + (acc >> {shift});");
                }
            }
        }
        let _ = writeln!(src, "    return acc % 65521;");
        let _ = writeln!(src, "}}");
    }

    // main repeatedly calls a sample of functions and folds their
    // results, so execution-time measurements see a real workload rather
    // than startup cost.
    let _ = writeln!(src, "int main() {{");
    let _ = writeln!(src, "    int total = 0;");
    let _ = writeln!(src, "    int rep;");
    let _ = writeln!(src, "    for (rep = 0; rep < 40; rep++) {{");
    let calls = config.functions.min(24);
    for c in 0..calls {
        let f = if config.functions <= calls {
            c
        } else {
            rng.range_usize(0, config.functions)
        };
        let _ = writeln!(
            src,
            "        total = total * 31 + f{f}({});",
            main_args(&mut rng, arities[f])
        );
    }
    let _ = writeln!(src, "    }}");
    let _ = writeln!(src, "    return total % 1000003;");
    let _ = writeln!(src, "}}");
    src
}

fn pick_array(rng: &mut XorShift64, array_sizes: &[Option<usize>]) -> Option<(usize, usize)> {
    let arrays: Vec<(usize, usize)> = array_sizes
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.map(|n| (i, n)))
        .collect();
    if arrays.is_empty() {
        None
    } else {
        Some(arrays[rng.range_usize(0, arrays.len())])
    }
}

fn operand(rng: &mut XorShift64, params: usize, locals: usize) -> String {
    match rng.below(4) {
        0 if params > 0 => format!("p{}", rng.range_usize(0, params)),
        1 => format!("v{}", rng.range_usize(0, locals)),
        2 => "acc".to_string(),
        _ => format!("{}", rng.range_i64(-30, 30)),
    }
}

fn arith_expr(
    rng: &mut XorShift64,
    params: usize,
    locals: usize,
    _f: usize,
    _arrays: &[Option<usize>],
) -> String {
    let a = operand(rng, params, locals);
    let b = operand(rng, params, locals);
    let op = ["+", "-", "*", "&", "|", "^"][rng.range_usize(0, 6)];
    if rng.chance(3, 10) {
        let c = operand(rng, params, locals);
        let op2 = ["+", "-", "*"][rng.range_usize(0, 3)];
        format!("({a} {op} {b}) {op2} {c}")
    } else {
        format!("{a} {op} {b}")
    }
}

fn callee_args(rng: &mut XorShift64, arity: usize, params: usize, locals: usize) -> String {
    (0..arity)
        .map(|_| operand(rng, params, locals))
        .collect::<Vec<_>>()
        .join(", ")
}

fn main_args(rng: &mut XorShift64, arity: usize) -> String {
    (0..arity)
        .map(|_| rng.range_i64(-9, 9).to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use codecomp_front::compile;
    use codecomp_ir::eval::Evaluator;

    #[test]
    fn synthetic_compiles_and_runs() {
        for seed in [1u64, 7, 42] {
            let src = synthetic(seed, SynthConfig::default());
            let m = compile(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            let out = Evaluator::new(&m, 1 << 22, 1 << 26)
                .unwrap()
                .run("main", &[]);
            let out = out.unwrap_or_else(|e| panic!("seed {seed} failed to run: {e}"));
            // Deterministic across repeated runs.
            let again = Evaluator::new(&m, 1 << 22, 1 << 26)
                .unwrap()
                .run("main", &[])
                .unwrap();
            assert_eq!(out.value, again.value);
        }
    }

    #[test]
    fn same_seed_same_program() {
        let a = synthetic(5, SynthConfig::default());
        let b = synthetic(5, SynthConfig::default());
        assert_eq!(a, b);
        let c = synthetic(6, SynthConfig::default());
        assert_ne!(a, c);
    }

    #[test]
    fn scales_to_many_functions() {
        let cfg = SynthConfig {
            functions: 200,
            statements_per_function: 8,
            globals: 10,
        };
        let src = synthetic(99, cfg);
        let m = compile(&src).unwrap();
        assert_eq!(m.functions.len(), 201); // + main
        assert!(m.node_count() > 10_000);
    }
}
