//! Seeded synthetic program generation for large-scale experiments.
//!
//! The paper's largest subject (gcc-2.6.3) is ~1.4 MB of SPARC code; the
//! generator scales the corpus to that order by emitting any number of
//! realistic functions — arithmetic over locals and globals, bounded
//! loops, conditionals, and calls into earlier functions — all
//! deterministic from the seed and guaranteed to terminate.

use codecomp_core::fault::XorShift64;
use std::fmt::Write;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Number of functions to generate.
    pub functions: usize,
    /// Statements per function body (approximate).
    pub statements_per_function: usize,
    /// Number of global scalars/arrays shared across functions.
    pub globals: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            functions: 40,
            statements_per_function: 10,
            globals: 6,
        }
    }
}

/// Generates a mini-C translation unit from a seed.
///
/// The output always compiles under [`codecomp_front::compile`], defines
/// `main`, and terminates within a bounded number of statements.
pub fn synthetic(seed: u64, config: SynthConfig) -> String {
    let mut rng = XorShift64::new(seed);
    let mut src = String::new();

    for g in 0..config.globals {
        if rng.chance(1, 2) {
            let _ = writeln!(src, "int g{g} = {};", rng.range_i64(-100, 100));
        } else {
            let n = rng.range_usize(4, 32);
            let _ = writeln!(src, "int g{g}[{n}];");
        }
    }

    let mut array_sizes: Vec<Option<usize>> = Vec::new();
    {
        // Re-derive which globals are arrays from a second pass of the
        // same distribution: simpler to just reparse our own text.
        for line in src.lines() {
            if line.contains('[') {
                let n: usize = line
                    .split('[')
                    .nth(1)
                    .and_then(|s| s.split(']').next())
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(4);
                array_sizes.push(Some(n));
            } else {
                array_sizes.push(None);
            }
        }
    }

    // Fix every function's arity up front so call sites can match it
    // exactly (an arity mismatch would read stale stack slots, which is
    // undefined in C and tier-dependent here).
    let arities: Vec<usize> = (0..config.functions)
        .map(|_| rng.range_usize(0, 4))
        .collect();

    for f in 0..config.functions {
        let params = arities[f];
        let mut header = format!("int f{f}(");
        for p in 0..params {
            if p > 0 {
                header.push_str(", ");
            }
            let _ = write!(header, "int p{p}");
        }
        header.push_str(") {");
        let _ = writeln!(src, "{header}");
        let _ = writeln!(src, "    int acc = {};", rng.range_i64(0, 10));
        let locals = rng.range_usize(1, 4);
        for l in 0..locals {
            let _ = writeln!(src, "    int v{l} = {};", rng.range_i64(-20, 20));
        }

        for s in 0..config.statements_per_function {
            match rng.below(6) {
                0 => {
                    // Bounded loop accumulating arithmetic.
                    let bound = rng.range_i64(2, 12);
                    let expr = arith_expr(&mut rng, params, locals, f, &array_sizes);
                    let _ = writeln!(
                        src,
                        "    {{ int i{s}; for (i{s} = 0; i{s} < {bound}; i{s}++) acc += {expr}; }}"
                    );
                }
                1 => {
                    let expr = arith_expr(&mut rng, params, locals, f, &array_sizes);
                    let cmp = ["<", "<=", ">", ">=", "==", "!="][rng.range_usize(0, 6)];
                    let rhs = rng.range_i64(-50, 50);
                    let delta = rng.range_i64(1, 9);
                    let _ = writeln!(
                        src,
                        "    if (acc {cmp} {rhs}) acc += {expr}; else acc -= {delta};"
                    );
                }
                2 if f > 0 => {
                    // Call an earlier function (keeps the call graph acyclic).
                    let callee = rng.range_usize(0, f);
                    let args = callee_args(&mut rng, arities[callee], params, locals);
                    let _ = writeln!(src, "    acc = acc * 3 + f{callee}({args}) % 1009;");
                }
                3 => {
                    let l = rng.range_usize(0, locals);
                    let expr = arith_expr(&mut rng, params, locals, f, &array_sizes);
                    let _ = writeln!(src, "    v{l} = ({expr}) % 2003;");
                }
                4 if !array_sizes.is_empty() => {
                    // Touch a global array deterministically.
                    if let Some((gi, n)) = pick_array(&mut rng, &array_sizes) {
                        let idx = rng.range_usize(0, n);
                        let _ = writeln!(src, "    g{gi}[{idx}] = acc % 251;");
                        let _ = writeln!(src, "    acc += g{gi}[{idx}] * 2;");
                    }
                }
                _ => {
                    let expr = arith_expr(&mut rng, params, locals, f, &array_sizes);
                    let shift = rng.range_i64(1, 5);
                    let _ = writeln!(src, "    acc = (acc ^ ({expr})) + (acc >> {shift});");
                }
            }
        }
        let _ = writeln!(src, "    return acc % 65521;");
        let _ = writeln!(src, "}}");
    }

    // main repeatedly calls a sample of functions and folds their
    // results, so execution-time measurements see a real workload rather
    // than startup cost.
    let _ = writeln!(src, "int main() {{");
    let _ = writeln!(src, "    int total = 0;");
    let _ = writeln!(src, "    int rep;");
    let _ = writeln!(src, "    for (rep = 0; rep < 40; rep++) {{");
    let calls = config.functions.min(24);
    for c in 0..calls {
        let f = if config.functions <= calls {
            c
        } else {
            rng.range_usize(0, config.functions)
        };
        let _ = writeln!(
            src,
            "        total = total * 31 + f{f}({});",
            main_args(&mut rng, arities[f])
        );
    }
    let _ = writeln!(src, "    }}");
    let _ = writeln!(src, "    return total % 1000003;");
    let _ = writeln!(src, "}}");
    src
}

/// Parameters for [`synthetic_modules`].
#[derive(Debug, Clone, Copy)]
pub struct MultiModuleConfig {
    /// Number of translation units to generate.
    pub modules: usize,
    /// Functions emitted *identically* into every module. Their bodies
    /// (and the globals they touch) are byte-for-byte the same text in
    /// each unit, so each module's compressed image carries the same
    /// pattern and code-length descriptions — the repetition that makes
    /// cross-module decode-table interning observable.
    pub shared_functions: usize,
    /// Module-private functions per unit (on top of the shared pool).
    pub functions_per_module: usize,
    /// Statements per function body (approximate).
    pub statements_per_function: usize,
    /// Module-private global scalars/arrays per unit.
    pub globals: usize,
    /// Depth of the nested expression trees some statements carry; the
    /// deep spines stress tree-structured pattern extraction.
    pub max_expr_depth: usize,
}

impl Default for MultiModuleConfig {
    fn default() -> Self {
        Self {
            modules: 4,
            shared_functions: 12,
            functions_per_module: 40,
            statements_per_function: 8,
            globals: 5,
            max_expr_depth: 6,
        }
    }
}

/// A callable the statement generator may target.
#[derive(Debug, Clone)]
struct Callee {
    name: String,
    arity: usize,
}

/// Generates a multi-module program: `config.modules` translation units
/// that each compile independently under [`codecomp_front::compile`]
/// and define their own `main`.
///
/// Every unit starts with an identical shared prelude (globals plus
/// `shared_functions` function bodies) followed by module-private
/// globals and functions, so compressing the units one after another
/// re-presents the same decode-table descriptions across module
/// boundaries. Deterministic in `seed`.
pub fn synthetic_modules(seed: u64, config: MultiModuleConfig) -> Vec<String> {
    // The shared prelude comes from its own generator so its text does
    // not depend on how many modules consume it.
    let mut pool_rng = XorShift64::new(seed ^ 0x5EED_0F00_D5EA_D00Du64);
    let mut prelude = String::new();
    let mut shared_arrays: Vec<(String, usize)> = Vec::new();
    for g in 0..config.globals.max(2) {
        if pool_rng.chance(1, 2) {
            let _ = writeln!(prelude, "int s{g} = {};", pool_rng.range_i64(-100, 100));
        } else {
            let n = pool_rng.range_usize(4, 32);
            let _ = writeln!(prelude, "int s{g}[{n}];");
            shared_arrays.push((format!("s{g}"), n));
        }
    }
    let mut shared_callees: Vec<Callee> = Vec::new();
    for f in 0..config.shared_functions {
        let name = format!("shared{f}");
        let arity = pool_rng.range_usize(0, 4);
        emit_synth_function(
            &mut prelude,
            &mut pool_rng,
            &name,
            arity,
            config.statements_per_function,
            &shared_callees,
            &shared_arrays,
            config.max_expr_depth,
        );
        shared_callees.push(Callee { name, arity });
    }

    (0..config.modules)
        .map(|m| {
            let mut rng =
                XorShift64::new(seed ^ (m as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut src = prelude.clone();
            let mut arrays = shared_arrays.clone();
            for g in 0..config.globals {
                if rng.chance(1, 2) {
                    let _ = writeln!(src, "int h{g} = {};", rng.range_i64(-100, 100));
                } else {
                    let n = rng.range_usize(4, 32);
                    let _ = writeln!(src, "int h{g}[{n}];");
                    arrays.push((format!("h{g}"), n));
                }
            }
            let mut callees = shared_callees.clone();
            for f in 0..config.functions_per_module {
                let name = format!("local{f}");
                let arity = rng.range_usize(0, 4);
                emit_synth_function(
                    &mut src,
                    &mut rng,
                    &name,
                    arity,
                    config.statements_per_function,
                    &callees,
                    &arrays,
                    config.max_expr_depth,
                );
                callees.push(Callee { name, arity });
            }
            let _ = writeln!(src, "int main() {{");
            let _ = writeln!(src, "    int total = 0;");
            let _ = writeln!(src, "    int rep;");
            let _ = writeln!(src, "    for (rep = 0; rep < 10; rep++) {{");
            let calls = callees.len().min(16);
            for _ in 0..calls {
                let c = &callees[rng.range_usize(0, callees.len())];
                let _ = writeln!(
                    src,
                    "        total = total * 31 + {}({});",
                    c.name,
                    main_args(&mut rng, c.arity)
                );
            }
            let _ = writeln!(src, "    }}");
            let _ = writeln!(src, "    return total % 1000003;");
            let _ = writeln!(src, "}}");
            src
        })
        .collect()
}

/// Emits one terminating function body using the same statement mix as
/// [`synthetic`], plus deep nested expression statements.
#[allow(clippy::too_many_arguments)] // one-shot emitter, not an API surface
fn emit_synth_function(
    src: &mut String,
    rng: &mut XorShift64,
    name: &str,
    params: usize,
    statements: usize,
    callees: &[Callee],
    arrays: &[(String, usize)],
    max_expr_depth: usize,
) {
    let mut header = format!("int {name}(");
    for p in 0..params {
        if p > 0 {
            header.push_str(", ");
        }
        let _ = write!(header, "int p{p}");
    }
    header.push_str(") {");
    let _ = writeln!(src, "{header}");
    let _ = writeln!(src, "    int acc = {};", rng.range_i64(0, 10));
    let locals = rng.range_usize(1, 4);
    for l in 0..locals {
        let _ = writeln!(src, "    int v{l} = {};", rng.range_i64(-20, 20));
    }
    for s in 0..statements {
        match rng.below(7) {
            0 => {
                let bound = rng.range_i64(2, 12);
                let expr = flat_expr(rng, params, locals);
                let _ = writeln!(
                    src,
                    "    {{ int i{s}; for (i{s} = 0; i{s} < {bound}; i{s}++) acc += {expr}; }}"
                );
            }
            1 => {
                let expr = flat_expr(rng, params, locals);
                let cmp = ["<", "<=", ">", ">=", "==", "!="][rng.range_usize(0, 6)];
                let rhs = rng.range_i64(-50, 50);
                let delta = rng.range_i64(1, 9);
                let _ = writeln!(
                    src,
                    "    if (acc {cmp} {rhs}) acc += {expr}; else acc -= {delta};"
                );
            }
            2 if !callees.is_empty() => {
                let c = &callees[rng.range_usize(0, callees.len())];
                let args = callee_args(rng, c.arity, params, locals);
                let _ = writeln!(src, "    acc = acc * 3 + {}({args}) % 1009;", c.name);
            }
            3 => {
                let l = rng.range_usize(0, locals);
                let expr = flat_expr(rng, params, locals);
                let _ = writeln!(src, "    v{l} = ({expr}) % 2003;");
            }
            4 if !arrays.is_empty() => {
                let (gname, n) = &arrays[rng.range_usize(0, arrays.len())];
                let idx = rng.range_usize(0, *n);
                let _ = writeln!(src, "    {gname}[{idx}] = acc % 251;");
                let _ = writeln!(src, "    acc += {gname}[{idx}] * 2;");
            }
            5 if max_expr_depth > 0 => {
                let expr = deep_expr(rng, params, locals, max_expr_depth);
                let _ = writeln!(src, "    acc = ({expr}) % 9973;");
            }
            _ => {
                let expr = flat_expr(rng, params, locals);
                let shift = rng.range_i64(1, 5);
                let _ = writeln!(src, "    acc = (acc ^ ({expr})) + (acc >> {shift});");
            }
        }
    }
    let _ = writeln!(src, "    return acc % 65521;");
    let _ = writeln!(src, "}}");
}

/// A shallow two-or-three operand expression (the [`synthetic`] mix).
fn flat_expr(rng: &mut XorShift64, params: usize, locals: usize) -> String {
    arith_expr(rng, params, locals, 0, &[])
}

/// A nested expression whose parse tree has depth `depth`: one spine
/// always recurses, and siblings occasionally recurse too, so the tree
/// is deep without exploding exponentially.
fn deep_expr(rng: &mut XorShift64, params: usize, locals: usize, depth: usize) -> String {
    if depth == 0 {
        return operand(rng, params, locals);
    }
    let op = ["+", "-", "*", "&", "|", "^"][rng.range_usize(0, 6)];
    let spine = deep_expr(rng, params, locals, depth - 1);
    let side = if rng.chance(1, 3) {
        deep_expr(rng, params, locals, depth - 1)
    } else {
        operand(rng, params, locals)
    };
    if rng.chance(1, 2) {
        format!("({spine} {op} {side})")
    } else {
        format!("({side} {op} {spine})")
    }
}

fn pick_array(rng: &mut XorShift64, array_sizes: &[Option<usize>]) -> Option<(usize, usize)> {
    let arrays: Vec<(usize, usize)> = array_sizes
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.map(|n| (i, n)))
        .collect();
    if arrays.is_empty() {
        None
    } else {
        Some(arrays[rng.range_usize(0, arrays.len())])
    }
}

fn operand(rng: &mut XorShift64, params: usize, locals: usize) -> String {
    match rng.below(4) {
        0 if params > 0 => format!("p{}", rng.range_usize(0, params)),
        1 => format!("v{}", rng.range_usize(0, locals)),
        2 => "acc".to_string(),
        _ => format!("{}", rng.range_i64(-30, 30)),
    }
}

fn arith_expr(
    rng: &mut XorShift64,
    params: usize,
    locals: usize,
    _f: usize,
    _arrays: &[Option<usize>],
) -> String {
    let a = operand(rng, params, locals);
    let b = operand(rng, params, locals);
    let op = ["+", "-", "*", "&", "|", "^"][rng.range_usize(0, 6)];
    if rng.chance(3, 10) {
        let c = operand(rng, params, locals);
        let op2 = ["+", "-", "*"][rng.range_usize(0, 3)];
        format!("({a} {op} {b}) {op2} {c}")
    } else {
        format!("{a} {op} {b}")
    }
}

fn callee_args(rng: &mut XorShift64, arity: usize, params: usize, locals: usize) -> String {
    (0..arity)
        .map(|_| operand(rng, params, locals))
        .collect::<Vec<_>>()
        .join(", ")
}

fn main_args(rng: &mut XorShift64, arity: usize) -> String {
    (0..arity)
        .map(|_| rng.range_i64(-9, 9).to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use codecomp_front::compile;
    use codecomp_ir::eval::Evaluator;

    #[test]
    fn synthetic_compiles_and_runs() {
        for seed in [1u64, 7, 42] {
            let src = synthetic(seed, SynthConfig::default());
            let m = compile(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            let out = Evaluator::new(&m, 1 << 22, 1 << 26)
                .unwrap()
                .run("main", &[]);
            let out = out.unwrap_or_else(|e| panic!("seed {seed} failed to run: {e}"));
            // Deterministic across repeated runs.
            let again = Evaluator::new(&m, 1 << 22, 1 << 26)
                .unwrap()
                .run("main", &[])
                .unwrap();
            assert_eq!(out.value, again.value);
        }
    }

    #[test]
    fn same_seed_same_program() {
        let a = synthetic(5, SynthConfig::default());
        let b = synthetic(5, SynthConfig::default());
        assert_eq!(a, b);
        let c = synthetic(6, SynthConfig::default());
        assert_ne!(a, c);
    }

    #[test]
    fn multi_module_units_compile_run_and_share_the_prelude() {
        let cfg = MultiModuleConfig {
            modules: 3,
            shared_functions: 6,
            functions_per_module: 10,
            statements_per_function: 6,
            globals: 4,
            max_expr_depth: 5,
        };
        let units = synthetic_modules(21, cfg);
        assert_eq!(units.len(), 3);
        // Every unit opens with the identical shared prelude, ending at
        // the last shared function's closing brace.
        let marker = "int shared5(";
        let prelude_end = units[0].find(marker).expect("shared function present");
        let prelude = &units[0][..prelude_end];
        for u in &units {
            assert!(u.starts_with(prelude), "shared prelude diverges");
        }
        for (i, u) in units.iter().enumerate() {
            let m = compile(u).unwrap_or_else(|e| panic!("module {i}: {e}\n{u}"));
            // shared + locals + main
            assert_eq!(m.functions.len(), 6 + 10 + 1, "module {i} function count");
            let out = Evaluator::new(&m, 1 << 22, 1 << 26)
                .unwrap()
                .run("main", &[])
                .unwrap_or_else(|e| panic!("module {i} failed to run: {e}"));
            let again = Evaluator::new(&m, 1 << 22, 1 << 26)
                .unwrap()
                .run("main", &[])
                .unwrap();
            assert_eq!(out.value, again.value, "module {i} nondeterministic");
        }
    }

    #[test]
    fn multi_module_is_deterministic_and_scales_to_hundreds_of_functions() {
        let cfg = MultiModuleConfig::default();
        let a = synthetic_modules(3, cfg);
        let b = synthetic_modules(3, cfg);
        assert_eq!(a, b);
        // Default shape: 4 modules × (12 shared + 40 local + main).
        let total: usize = a
            .iter()
            .map(|u| compile(u).unwrap().functions.len())
            .sum();
        assert!(total >= 200, "only {total} functions across modules");
    }

    #[test]
    fn deep_expressions_nest() {
        let mut rng = XorShift64::new(77);
        let e = deep_expr(&mut rng, 2, 2, 8);
        let depth = e
            .chars()
            .scan(0i32, |d, c| {
                match c {
                    '(' => *d += 1,
                    ')' => *d -= 1,
                    _ => {}
                }
                Some(*d)
            })
            .max()
            .unwrap_or(0);
        assert!(depth >= 8, "expression not deep enough: {depth} in {e}");
    }

    #[test]
    fn scales_to_many_functions() {
        let cfg = SynthConfig {
            functions: 200,
            statements_per_function: 8,
            globals: 10,
        };
        let src = synthetic(99, cfg);
        let m = compile(&src).unwrap();
        assert_eq!(m.functions.len(), 201); // + main
        assert!(m.node_count() > 10_000);
    }
}
