//! In-tree sampling self-profiler (feature `profile`).
//!
//! The paper's performance claims are about where decode time goes —
//! framing, entropy decoding, MTF, tree reassembly — and the
//! `DecodeStats` nanosecond counters answer *how much* but not *in
//! what shape*. This module answers the shape question with zero
//! dependencies: instrumented stages push scoped markers
//! ([`scope`]) onto a per-thread stack, and elapsed time (or explicit
//! virtual [`tick`]s) is credited to the current stack at a sampling
//! period, accumulating into collapsed-stack counts — the
//! `a;b;c count` format every flamegraph renderer consumes.
//!
//! Like [`crate::coverage`], the whole module compiles to empty
//! `#[inline(always)]` stubs unless the `profile` cargo feature is
//! enabled, so instrumented hot paths cost literally nothing in normal
//! builds. With the feature on, a scope transition is two `Instant`
//! reads plus a thread-local update; the global sample map is only
//! locked when a period boundary credits samples.
//!
//! Two clocks are supported:
//!
//! - **wall** — scope enter/exit measures real elapsed nanoseconds;
//!   [`set_wall_period_nanos`] arms it with a sampling period
//!   (disarmed by default, so instrumented builds stay cheap until a
//!   driver asks). This is what `codecomp profile <subcommand>` uses.
//! - **virtual** — deterministic callers (the soak's virtual event
//!   loop, unit tests) disable the wall clock
//!   (`set_wall_period_nanos(0)`) and call [`tick`] with explicit
//!   units; [`set_virtual_period`] controls the crediting granularity.
//!   Same inputs, same collapsed output, byte for byte.
//!
//! The collapsed output ([`render_collapsed`]) is validated by
//! [`validate_collapsed_line`], which `codecomp telemetry check
//! --collapsed` applies in CI. The validator is compiled
//! unconditionally — a non-`profile` build can still check profiles
//! produced elsewhere.

/// Whether this build carries live profiler instrumentation (the
/// `profile` feature). When `false`, every recording function in this
/// module is an inert stub and all sample counts are zero.
#[must_use]
#[inline]
pub fn enabled() -> bool {
    cfg!(feature = "profile")
}

/// An open profiler scope; pops its frame on drop.
///
/// Hold it in a named binding (`let _scope = profile::scope("join")`)
/// — a bare `_` would drop immediately.
pub use imp::ScopeGuard;

/// Pushes `name` onto the calling thread's stage stack, crediting the
/// elapsed wall time since the last transition to the previous stack
/// first. The returned guard pops the frame on drop.
#[inline(always)]
pub fn scope(name: &'static str) -> ScopeGuard {
    imp::scope(name)
}

/// Credits `units` virtual ticks to the calling thread's current
/// stack (sampled at the virtual period). The deterministic
/// alternative to wall sampling.
#[inline(always)]
pub fn tick(units: u64) {
    imp::tick(units);
}

/// Sets the wall sampling period in nanoseconds; one sample is
/// credited per elapsed period. `0` disarms wall sampling entirely
/// (virtual [`tick`]s still credit). Default: 0 — even an
/// instrumented build records nothing until a driver (the
/// `codecomp profile` command) arms it, so carrying the feature costs
/// only the frame-stack bookkeeping, never clock reads.
pub fn set_wall_period_nanos(period: u64) {
    imp::set_wall_period_nanos(period);
}

/// Sets the virtual crediting period: one sample per `period` ticks
/// (minimum 1). Default: 1.
pub fn set_virtual_period(period: u64) {
    imp::set_virtual_period(period);
}

/// Clears accumulated samples and the calling thread's clock state.
/// Other threads' in-flight carry is not reclaimed; reset between
/// passes from the thread that profiles.
pub fn reset() {
    imp::reset();
}

/// The accumulated collapsed stacks, sorted: `("a;b;c", samples)`.
#[must_use]
pub fn collapsed() -> Vec<(String, u64)> {
    imp::collapsed()
}

/// Renders the accumulated samples in collapsed-stack form, one
/// `stack;frames count` line each (flamegraph-compatible). Empty
/// string when nothing was sampled.
#[must_use]
pub fn render_collapsed() -> String {
    let mut out = String::new();
    for (stack, n) in collapsed() {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&n.to_string());
        out.push('\n');
    }
    out
}

/// Validates one line of collapsed-stack output: `frame[;frame]* N`
/// with non-empty, space-free frames and a positive sample count.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate_collapsed_line(line: &str) -> Result<(), String> {
    let (stack, count) = line
        .rsplit_once(' ')
        .ok_or_else(|| "missing sample count (expected `stack count`)".to_string())?;
    let n: u64 = count
        .parse()
        .map_err(|_| format!("sample count {count:?} is not an integer"))?;
    if n == 0 {
        return Err("sample count must be positive".into());
    }
    if stack.is_empty() {
        return Err("empty stack".into());
    }
    for frame in stack.split(';') {
        if frame.is_empty() {
            return Err("empty frame in stack".into());
        }
        if frame.contains(' ') {
            return Err(format!("frame {frame:?} contains a space"));
        }
    }
    Ok(())
}

#[cfg(feature = "profile")]
mod imp {
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::Instant;

    // 0 = disarmed: an instrumented build pays only the frame-stack
    // push/pop until a driver arms wall sampling (or ticks virtually).
    static WALL_PERIOD: AtomicU64 = AtomicU64::new(0);
    static VIRT_PERIOD: AtomicU64 = AtomicU64::new(1);
    // BTreeMap so `collapsed()` is sorted without a post-pass; the map
    // is only touched when a period boundary credits samples.
    static SAMPLES: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

    struct ThreadProf {
        frames: Vec<&'static str>,
        last: Option<Instant>,
        carry_nanos: u64,
        carry_ticks: u64,
    }

    thread_local! {
        static PROF: RefCell<ThreadProf> = const {
            RefCell::new(ThreadProf {
                frames: Vec::new(),
                last: None,
                carry_nanos: 0,
                carry_ticks: 0,
            })
        };
    }

    fn credit(frames: &[&'static str], samples: u64) {
        if samples == 0 || frames.is_empty() {
            return;
        }
        let key = frames.join(";");
        let mut map = SAMPLES.lock().expect("profile sample lock");
        *map.entry(key).or_insert(0) += samples;
    }

    /// Credits wall time elapsed since the previous transition to the
    /// *current* (pre-transition) stack, then restarts the clock.
    fn advance_wall(p: &mut ThreadProf) {
        let period = WALL_PERIOD.load(Ordering::Relaxed);
        if period == 0 {
            p.last = None;
            return;
        }
        let now = Instant::now();
        if let Some(last) = p.last {
            let elapsed = u64::try_from(now.duration_since(last).as_nanos()).unwrap_or(u64::MAX);
            p.carry_nanos = p.carry_nanos.saturating_add(elapsed);
            let samples = p.carry_nanos / period;
            if samples > 0 {
                p.carry_nanos %= period;
                credit(&p.frames, samples);
            }
        }
        p.last = Some(now);
    }

    /// RAII frame: pops on drop.
    #[derive(Debug)]
    pub struct ScopeGuard(());

    impl Drop for ScopeGuard {
        fn drop(&mut self) {
            PROF.with(|prof| {
                let mut p = prof.borrow_mut();
                advance_wall(&mut p);
                p.frames.pop();
            });
        }
    }

    pub fn scope(name: &'static str) -> ScopeGuard {
        PROF.with(|prof| {
            let mut p = prof.borrow_mut();
            advance_wall(&mut p);
            p.frames.push(name);
        });
        ScopeGuard(())
    }

    pub fn tick(units: u64) {
        PROF.with(|prof| {
            let mut p = prof.borrow_mut();
            let period = VIRT_PERIOD.load(Ordering::Relaxed).max(1);
            p.carry_ticks = p.carry_ticks.saturating_add(units);
            let samples = p.carry_ticks / period;
            if samples > 0 {
                p.carry_ticks %= period;
                credit(&p.frames, samples);
            }
        });
    }

    pub fn set_wall_period_nanos(period: u64) {
        WALL_PERIOD.store(period, Ordering::Relaxed);
    }

    pub fn set_virtual_period(period: u64) {
        VIRT_PERIOD.store(period.max(1), Ordering::Relaxed);
    }

    pub fn reset() {
        SAMPLES.lock().expect("profile sample lock").clear();
        PROF.with(|prof| {
            let mut p = prof.borrow_mut();
            p.last = None;
            p.carry_nanos = 0;
            p.carry_ticks = 0;
        });
    }

    pub fn collapsed() -> Vec<(String, u64)> {
        SAMPLES
            .lock()
            .expect("profile sample lock")
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }
}

#[cfg(not(feature = "profile"))]
mod imp {
    /// Inert stub guard (zero-sized; constructing and dropping it
    /// compiles to nothing). The no-op `Drop` keeps explicit
    /// `drop(guard)` calls at instrumentation sites meaningful in
    /// both feature configurations.
    #[derive(Debug)]
    pub struct ScopeGuard(pub(super) ());

    impl Drop for ScopeGuard {
        #[inline(always)]
        fn drop(&mut self) {}
    }

    #[inline(always)]
    pub fn scope(_name: &'static str) -> ScopeGuard {
        ScopeGuard(())
    }

    #[inline(always)]
    pub fn tick(_units: u64) {}

    pub fn set_wall_period_nanos(_period: u64) {}

    pub fn set_virtual_period(_period: u64) {}

    pub fn reset() {}

    pub fn collapsed() -> Vec<(String, u64)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sample map and periods are process-global; tests that reset
    // them must not interleave.
    #[cfg(feature = "profile")]
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[cfg(feature = "profile")]
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_collapsed_line("a 5").unwrap();
        validate_collapsed_line("wire.decode;frame;inflate 123").unwrap();
        for bad in ["", "a", "a 0", "a x", " 5", "a;;b 5", "a b;c 5"] {
            assert!(validate_collapsed_line(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn disabled_build_records_nothing() {
        if enabled() {
            return;
        }
        reset();
        let _a = scope("a");
        tick(100);
        assert!(collapsed().is_empty());
        assert_eq!(render_collapsed(), "");
    }

    #[test]
    #[cfg(feature = "profile")]
    fn virtual_ticks_attribute_to_the_current_stack() {
        let _serial = serial();
        reset();
        set_wall_period_nanos(0); // deterministic: virtual clock only
        set_virtual_period(10);
        {
            let _a = scope("a");
            tick(30);
            {
                let _b = scope("b");
                tick(25);
            }
            tick(15);
        }
        tick(100); // empty stack: dropped, not attributed
        let got = collapsed();
        // a: 30/10 = 3 samples, then 15 ticks + 5 carried from a;b = 2.
        // a;b: 25/10 = 2 samples, 5 ticks carry to the outer scope.
        assert_eq!(got, vec![("a".to_string(), 5), ("a;b".to_string(), 2)]);
        let rendered = render_collapsed();
        assert_eq!(rendered, "a 5\na;b 2\n");
        for line in rendered.lines() {
            validate_collapsed_line(line).unwrap();
        }
        reset();
        assert!(collapsed().is_empty());
    }

    #[test]
    #[cfg(feature = "profile")]
    fn same_tick_sequence_is_deterministic() {
        let _serial = serial();
        let run = || {
            reset();
            set_wall_period_nanos(0);
            set_virtual_period(3);
            let _outer = scope("decode");
            for i in 0..50u64 {
                let _inner = scope(if i % 2 == 0 { "mtf" } else { "join" });
                tick(i % 7);
            }
            drop(_outer);
            render_collapsed()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[cfg(feature = "profile")]
    fn concurrent_ticks_sum_exactly() {
        let _serial = serial();
        reset();
        set_wall_period_nanos(0);
        set_virtual_period(1);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = scope("shared");
                    for _ in 0..1000 {
                        tick(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let total: u64 = collapsed()
            .iter()
            .filter(|(k, _)| k == "shared")
            .map(|&(_, n)| n)
            .sum();
        assert_eq!(total, 4000);
        reset();
    }
}
