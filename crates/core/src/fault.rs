//! Deterministic fault injection for decoder hardening.
//!
//! The decoders are the trust boundary of a code-compression system —
//! compressed images arrive over a wire and must never take the process
//! down. This module supplies the two ingredients the workspace
//! fault-injection harness (`tests/fault_injection.rs`) needs with no
//! external dependencies: a seeded xorshift PRNG and a small set of
//! byte-level mutators (truncation, bit flips, splices). Everything is
//! deterministic in the seed so a failure reproduces from its seed
//! alone.

/// A seeded xorshift64* PRNG.
///
/// Not cryptographic; chosen for determinism, statelessness across
/// platforms, and zero dependencies.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed (zero is remapped internally).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            // xorshift has a fixed point at zero; displace it.
            state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed },
        }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Returns a value uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0) has no valid range");
        // Multiply-shift reduction; the tiny modulo bias is irrelevant
        // for test-input generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Returns a value uniform in `[lo, hi)`; the range must be nonempty.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi, "empty range");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// Returns a value uniform in `[lo, hi)`; the range must be nonempty.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Returns `true` with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// One deterministic corruption of a byte payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Keep only the first `len` bytes.
    Truncate {
        /// Bytes to keep.
        len: usize,
    },
    /// Flip one bit.
    BitFlip {
        /// Byte offset.
        offset: usize,
        /// Bit index within the byte, 0–7.
        bit: u8,
    },
    /// Overwrite a run of bytes with PRNG output.
    Splice {
        /// Byte offset of the run.
        offset: usize,
        /// Run length.
        len: usize,
        /// Seed for the replacement bytes.
        seed: u64,
    },
}

impl Mutation {
    /// Applies the mutation, returning the corrupted payload.
    ///
    /// Out-of-range offsets are clamped so any (mutation, payload) pair
    /// is usable; an empty payload passes through unchanged except for
    /// truncation (which is a no-op on it anyway). When a trace sink is
    /// installed, each application emits a `fault.mutation` event so
    /// flight recordings tie a decoder failure to the exact corruption
    /// that provoked it.
    pub fn apply(&self, data: &[u8]) -> Vec<u8> {
        if crate::telemetry::enabled() {
            let (kind, offset, amount) = match *self {
                Mutation::Truncate { len } => ("truncate", len, 0),
                Mutation::BitFlip { offset, bit } => ("bit_flip", offset, usize::from(bit)),
                Mutation::Splice { offset, len, .. } => ("splice", offset, len),
            };
            crate::telemetry::event(
                "fault.mutation",
                vec![
                    ("kind", kind.into()),
                    ("offset", offset.into()),
                    ("amount", amount.into()),
                    ("payload_len", data.len().into()),
                ],
            );
        }
        let mut out = data.to_vec();
        match *self {
            Mutation::Truncate { len } => out.truncate(len),
            Mutation::BitFlip { offset, bit } => {
                if !out.is_empty() {
                    let i = offset % out.len();
                    out[i] ^= 1 << (bit & 7);
                }
            }
            Mutation::Splice { offset, len, seed } => {
                if !out.is_empty() && len > 0 {
                    let start = offset % out.len();
                    let end = (start + len).min(out.len());
                    let mut rng = XorShift64::new(seed);
                    for b in &mut out[start..end] {
                        *b = rng.next_u64() as u8;
                    }
                }
            }
        }
        out
    }
}

/// Generates `count` seeded mutations covering all three classes.
///
/// The schedule is deterministic in `seed` and `payload_len`: every
/// prefix boundary appears as a truncation while `count` allows (long
/// payloads get an even sampling), and the rest splits between bit
/// flips and splices.
pub fn mutation_schedule(seed: u64, payload_len: usize, count: usize) -> Vec<Mutation> {
    let mut rng = XorShift64::new(seed ^ (payload_len as u64).rotate_left(32));
    let mut out = Vec::with_capacity(count);
    // A third of the budget (at most one per prefix) goes to truncation.
    let truncations = (count / 3).min(payload_len);
    for i in 0..truncations {
        // Spread evenly over [0, payload_len).
        let len = if truncations == payload_len {
            i
        } else {
            (i * payload_len) / truncations.max(1)
        };
        out.push(Mutation::Truncate { len });
    }
    while out.len() < count {
        if rng.chance(1, 2) {
            out.push(Mutation::BitFlip {
                offset: rng.below(payload_len.max(1) as u64) as usize,
                bit: rng.below(8) as u8,
            });
        } else {
            out.push(Mutation::Splice {
                offset: rng.below(payload_len.max(1) as u64) as usize,
                len: rng.range_usize(1, 17),
                seed: rng.next_u64(),
            });
        }
    }
    out
}

/// One hostile input from [`sweep_decoder`]: a strict prefix of the
/// payload or one seeded mutation of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepCase {
    /// The first `len` bytes of the payload.
    Prefix {
        /// Bytes kept.
        len: usize,
    },
    /// Mutation number `index` from the schedule.
    Mutation {
        /// Position in the schedule (for reproduction messages).
        index: usize,
        /// The applied corruption.
        mutation: Mutation,
    },
}

impl std::fmt::Display for SweepCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepCase::Prefix { len } => write!(f, "{len}-byte prefix"),
            SweepCase::Mutation { index, mutation } => {
                write!(f, "mutation {index} ({mutation:?})")
            }
        }
    }
}

/// The shared mutation-sweep loop behind every per-decoder totality
/// test: runs `decode` over each strict prefix of `payload` (when
/// `prefixes` is set) and over `mutations` seeded corruptions from
/// [`mutation_schedule`], asserting that no input panics. After every
/// hostile case `after_each` runs — the hook cache-poisoning tests use
/// to verify the hostile attempt left no observable residue.
///
/// Deterministic in `seed`, so a failure message's case description
/// reproduces the exact input.
///
/// # Panics
///
/// Panics (failing the calling test) when `decode` panics on any case.
pub fn sweep_decoder(
    what: &str,
    payload: &[u8],
    seed: u64,
    mutations: usize,
    prefixes: bool,
    mut decode: impl FnMut(&[u8]),
    mut after_each: impl FnMut(&SweepCase),
) {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let mut run = |case: SweepCase, input: &[u8]| {
        let r = catch_unwind(AssertUnwindSafe(|| decode(input)));
        assert!(
            r.is_ok(),
            "{what}: decoder panicked on {case} (seed {seed:#x})"
        );
        after_each(&case);
    };
    if prefixes {
        for len in 0..payload.len() {
            run(SweepCase::Prefix { len }, &payload[..len]);
        }
    }
    for (index, mutation) in mutation_schedule(seed, payload.len(), mutations)
        .into_iter()
        .enumerate()
    {
        let mutated = mutation.apply(payload);
        run(SweepCase::Mutation { index, mutation }, &mutated);
    }
}

/// [`sweep_decoder`] with prefixes on and no per-case hook — the shape
/// every plain per-decoder totality test uses.
pub fn assert_decoder_total(
    what: &str,
    payload: &[u8],
    seed: u64,
    mutations: usize,
    decode: impl FnMut(&[u8]),
) {
    sweep_decoder(what, payload, seed, mutations, true, decode, |_| {});
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prng_is_deterministic() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = XorShift64::new(7);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
            let v = rng.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
            let u = rng.range_usize(3, 9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn below_covers_range() {
        let mut rng = XorShift64::new(11);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[rng.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mutations_apply_safely_to_any_payload() {
        for payload in [&b""[..], &b"a"[..], &b"hello world"[..]] {
            for m in mutation_schedule(1, payload.len(), 64) {
                let _ = m.apply(payload);
            }
        }
    }

    #[test]
    fn truncations_cover_prefixes() {
        let schedule = mutation_schedule(3, 10, 30);
        let lens: Vec<usize> = schedule
            .iter()
            .filter_map(|m| match m {
                Mutation::Truncate { len } => Some(*len),
                _ => None,
            })
            .collect();
        assert_eq!(lens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_is_deterministic() {
        assert_eq!(mutation_schedule(9, 100, 50), mutation_schedule(9, 100, 50));
    }

    #[test]
    fn sweep_visits_every_prefix_and_mutation() {
        let payload = b"sweep target payload";
        let mut decoded = 0usize;
        let mut cases = Vec::new();
        sweep_decoder(
            "sweep-test",
            payload,
            0xBEEF,
            25,
            true,
            |_| decoded += 1,
            |c| cases.push(c.clone()),
        );
        assert_eq!(decoded, payload.len() + 25);
        assert_eq!(cases.len(), decoded);
        assert!(matches!(cases[0], SweepCase::Prefix { len: 0 }));
        assert!(matches!(
            cases[payload.len()],
            SweepCase::Mutation { index: 0, .. }
        ));
    }

    #[test]
    fn sweep_without_prefixes_runs_mutations_only() {
        let payload = b"mutations only";
        let mut decoded = 0usize;
        sweep_decoder("sweep-test", payload, 7, 12, false, |_| decoded += 1, |_| {});
        assert_eq!(decoded, 12);
    }

    #[test]
    #[should_panic(expected = "decoder panicked")]
    fn sweep_surfaces_decoder_panics() {
        assert_decoder_total("sweep-test", b"abcd", 1, 8, |bytes| {
            assert!(bytes.len() < 3, "planted panic");
        });
    }

    #[test]
    fn bitflip_flips_exactly_one_bit() {
        let data = vec![0u8; 16];
        let m = Mutation::BitFlip { offset: 5, bit: 3 };
        let out = m.apply(&data);
        assert_eq!(out[5], 8);
        assert_eq!(out.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
    }
}
