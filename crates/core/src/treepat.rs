//! Tree patternization.
//!
//! "Patternization accepts an actual program and proposes specialized
//! instructions … The patterns replace each combination of operands with
//! wildcards" (§2). The wire format uses the fully-wildcarded pattern of
//! each statement tree as its operator-stream symbol.

use codecomp_ir::op::{Literal, Op, Opcode, Width};
use codecomp_ir::tree::Tree;
use std::fmt;

/// A tree with every literal operand replaced by a wildcard.
///
/// The operator identity keeps the width flag for offset operators
/// (`ADDRLP8` vs `ADDRLP`), since the paper treats those as distinct
/// specialized operators.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TreePattern {
    /// The operator.
    pub op: Op,
    /// Width flag (only meaningful for offset-carrying operators).
    pub width: Width,
    /// Whether the node carries a (wildcarded) literal.
    pub has_literal: bool,
    /// Child patterns.
    pub kids: Vec<TreePattern>,
}

impl TreePattern {
    /// The fully-wildcarded pattern of a tree.
    pub fn of(tree: &Tree) -> TreePattern {
        TreePattern {
            op: tree.op(),
            width: tree.width(),
            has_literal: tree.literal().is_some(),
            kids: tree.kids().iter().map(TreePattern::of).collect(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        1 + self.kids.iter().map(TreePattern::node_count).sum::<usize>()
    }

    /// Number of wildcarded literal slots, in prefix order.
    pub fn literal_slots(&self) -> usize {
        usize::from(self.has_literal)
            + self
                .kids
                .iter()
                .map(TreePattern::literal_slots)
                .sum::<usize>()
    }

    /// The literal-stream key of this node, e.g. `"ADDRLP8"` or `"CNSTC"`.
    pub fn stream_key(&self) -> StreamKeyStr {
        StreamKeyStr(stream_key_of(self.op, self.width))
    }

    /// Visits nodes in prefix order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a TreePattern)) {
        f(self);
        for k in &self.kids {
            k.walk(f);
        }
    }

    /// Rebuilds a tree from this pattern, drawing literals from `next`,
    /// which receives the stream key of each literal slot in prefix order.
    ///
    /// # Errors
    ///
    /// Whatever `next` returns, or a build error string, when the
    /// supplied literals do not fit the operator signature.
    pub fn rebuild(
        &self,
        next: &mut impl FnMut(&str) -> Result<Literal, crate::CoreError>,
    ) -> Result<Tree, crate::CoreError> {
        let literal = if self.has_literal {
            Some(next(&stream_key_of(self.op, self.width))?)
        } else {
            None
        };
        let mut kids = Vec::with_capacity(self.kids.len());
        for k in &self.kids {
            kids.push(k.rebuild(next)?);
        }
        Tree::build(self.op, literal, kids).map_err(|e| crate::CoreError::Mismatch(e.to_string()))
    }

    /// Keyless [`Self::rebuild`]: draws one literal per slot in prefix
    /// order without rendering stream keys. Callers that resolved the
    /// slot→stream mapping up front (via [`Self::slot_stream_keys`])
    /// use this to skip the per-slot `String` allocation.
    ///
    /// # Errors
    ///
    /// As [`Self::rebuild`].
    pub fn rebuild_slots(
        &self,
        next: &mut impl FnMut() -> Result<Literal, crate::CoreError>,
    ) -> Result<Tree, crate::CoreError> {
        let literal = if self.has_literal { Some(next()?) } else { None };
        let mut kids = Vec::with_capacity(self.kids.len());
        for k in &self.kids {
            kids.push(k.rebuild_slots(next)?);
        }
        Tree::build(self.op, literal, kids).map_err(|e| crate::CoreError::Mismatch(e.to_string()))
    }

    /// Stream key of every literal slot, in the prefix order
    /// [`Self::rebuild`] and [`Self::rebuild_slots`] consume them.
    pub fn slot_stream_keys(&self) -> Vec<String> {
        let mut keys = Vec::with_capacity(self.literal_slots());
        self.walk(&mut |node| {
            if node.has_literal {
                keys.push(stream_key_of(node.op, node.width));
            }
        });
        keys
    }
}

/// A literal-stream key rendered as the paper renders it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamKeyStr(pub String);

impl fmt::Display for StreamKeyStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The stream key for an operator/width pair.
pub fn stream_key_of(op: Op, width: Width) -> String {
    let mut key = op.mnemonic();
    if matches!(op.opcode, Opcode::AddrL | Opcode::AddrF) && width != Width::W32 {
        key.push_str(width.print_suffix());
    }
    key
}

impl fmt::Display for TreePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op.mnemonic())?;
        if matches!(self.op.opcode, Opcode::AddrL | Opcode::AddrF) && self.width != Width::W32 {
            write!(f, "{}", self.width.print_suffix())?;
        }
        if self.has_literal {
            write!(f, "[*]")?;
        }
        if !self.kids.is_empty() {
            write!(f, "(")?;
            for (i, k) in self.kids.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codecomp_ir::op::IrType;
    use codecomp_ir::parse::parse_tree;

    #[test]
    fn paper_patternization_example() {
        // §3 step 2: the patternized operator stream for the salt example.
        let t = parse_tree("ASGNI(ADDRLP8[72],SUBI(INDIRI(ADDRLP8[72]),CNSTC[1]))").unwrap();
        let p = TreePattern::of(&t);
        assert_eq!(
            p.to_string(),
            "ASGNI(ADDRLP8[*],SUBI(INDIRI(ADDRLP8[*]),CNSTC[*]))"
        );
        assert_eq!(p.literal_slots(), 3);
        assert_eq!(p.node_count(), 6);
    }

    #[test]
    fn branch_and_call_patterns() {
        let t = parse_tree("LEI[1](INDIRI(ADDRLP8[68]),CNSTC[0])").unwrap();
        assert_eq!(
            TreePattern::of(&t).to_string(),
            "LEI[*](INDIRI(ADDRLP8[*]),CNSTC[*])"
        );
        let t = parse_tree("CALLI(ADDRGP[pepper])").unwrap();
        assert_eq!(TreePattern::of(&t).to_string(), "CALLI(ADDRGP[*])");
    }

    #[test]
    fn identical_shapes_share_a_pattern() {
        let a = parse_tree("ASGNI(ADDRLP8[72],SUBI(INDIRI(ADDRLP8[72]),CNSTC[1]))").unwrap();
        let b = parse_tree("ASGNI(ADDRLP8[68],SUBI(INDIRI(ADDRLP8[68]),CNSTC[1]))").unwrap();
        assert_eq!(TreePattern::of(&a), TreePattern::of(&b));
        // Different width flags are different patterns.
        let c = parse_tree("ASGNI(ADDRLP16[300],SUBI(INDIRI(ADDRLP16[300]),CNSTC[1]))").unwrap();
        assert_ne!(TreePattern::of(&a), TreePattern::of(&c));
    }

    #[test]
    fn stream_keys() {
        assert_eq!(
            TreePattern::of(&Tree::addr_local(72)).stream_key().0,
            "ADDRLP8"
        );
        assert_eq!(
            TreePattern::of(&Tree::addr_local(300)).stream_key().0,
            "ADDRLP16"
        );
        assert_eq!(
            TreePattern::of(&Tree::addr_local(100_000)).stream_key().0,
            "ADDRLP"
        );
        assert_eq!(
            TreePattern::of(&Tree::cnst(IrType::C, 1)).stream_key().0,
            "CNSTC"
        );
        assert_eq!(TreePattern::of(&Tree::label(1)).stream_key().0, "LABELV");
    }

    #[test]
    fn rebuild_inverts_patternization() {
        let original = parse_tree("ASGNI(ADDRLP8[72],SUBI(INDIRI(ADDRLP8[72]),CNSTC[1]))").unwrap();
        let pattern = TreePattern::of(&original);
        // Collect literals in prefix order, then replay them.
        let mut lits = Vec::new();
        collect(&original, &mut lits);
        let mut iter = lits.into_iter();
        let rebuilt = pattern
            .rebuild(&mut |_key| {
                iter.next()
                    .ok_or_else(|| crate::CoreError::StreamUnderflow("out".into()))
            })
            .unwrap();
        assert_eq!(rebuilt, original);
    }

    fn collect(t: &Tree, out: &mut Vec<Literal>) {
        if let Some(l) = t.literal() {
            out.push(l.clone());
        }
        for k in t.kids() {
            collect(k, out);
        }
    }
}
