//! Greedy benefit-driven dictionary construction.
//!
//! §4: "The compressor maintains a heap of candidate instructions,
//! sorted by B. After each pass over the input program, the compressor
//! removes the K best candidates from the heap and adds them to the
//! dictionary. … The compressor ceases to hunt for useful patterns
//! after a pass that doesn't yield at least K patterns for which B is
//! positive." The candidate generation is compressor-specific; the
//! selection discipline lives here.

use std::collections::BinaryHeap;

/// A scored candidate: `benefit = size_reduction - table_cost`
/// (`B = P − W` in the paper's notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Benefit {
    /// Program-size reduction in bytes, *including* the dictionary-entry
    /// transmission cost (`P`).
    pub size_reduction: i64,
    /// Decompressor working-set cost in bytes (`W`).
    pub table_cost: i64,
}

impl Benefit {
    /// `B = P − W`.
    pub fn value(self) -> i64 {
        self.size_reduction - self.table_cost
    }

    /// The abundant-memory variant the paper mentions: "of course, in
    /// abundant memory situations we can set B equal to P".
    pub fn value_ignoring_memory(self) -> i64 {
        self.size_reduction
    }
}

/// The memory regime the benefit metric runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryRegime {
    /// `B = P − W` (the paper's default).
    #[default]
    Constrained,
    /// `B = P` (abundant memory).
    Abundant,
}

impl MemoryRegime {
    /// Scores a benefit under this regime.
    pub fn score(self, b: Benefit) -> i64 {
        match self {
            MemoryRegime::Constrained => b.value(),
            MemoryRegime::Abundant => b.value_ignoring_memory(),
        }
    }
}

/// Selects the top-`k` positive-benefit candidates from one pass.
///
/// Returns at most `k` items ordered best-first; ties break on the
/// supplied sequence number so selection is deterministic.
pub fn select_top_k<T>(
    candidates: Vec<(T, Benefit)>,
    k: usize,
    regime: MemoryRegime,
) -> Vec<(T, Benefit)> {
    struct Entry<T> {
        score: i64,
        seq: usize,
        item: T,
        benefit: Benefit,
    }
    impl<T> PartialEq for Entry<T> {
        fn eq(&self, other: &Self) -> bool {
            self.score == other.score && self.seq == other.seq
        }
    }
    impl<T> Eq for Entry<T> {}
    impl<T> PartialOrd for Entry<T> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<T> Ord for Entry<T> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.score.cmp(&other.score).then(other.seq.cmp(&self.seq))
        }
    }

    let mut heap: BinaryHeap<Entry<T>> = candidates
        .into_iter()
        .enumerate()
        .filter(|(_, (_, b))| regime.score(*b) > 0)
        .map(|(seq, (item, benefit))| Entry {
            score: regime.score(benefit),
            seq,
            item,
            benefit,
        })
        .collect();
    let mut out = Vec::with_capacity(k.min(heap.len()));
    for _ in 0..k {
        match heap.pop() {
            Some(e) => out.push((e.item, e.benefit)),
            None => break,
        }
    }
    out
}

/// Pass-loop bookkeeping: the construction stops "after a pass that
/// doesn't yield at least K patterns for which B is positive".
#[derive(Debug, Clone, Copy)]
pub struct PassPolicy {
    /// Candidates adopted per pass.
    pub k: usize,
    /// Hard cap on passes (a safety net the paper does not need).
    pub max_passes: usize,
    /// Memory regime for scoring.
    pub regime: MemoryRegime,
}

impl Default for PassPolicy {
    fn default() -> Self {
        // K=20 is the value the paper's results table uses.
        Self {
            k: 20,
            max_passes: 64,
            regime: MemoryRegime::Constrained,
        }
    }
}

impl PassPolicy {
    /// Whether another pass should run after one that adopted `adopted`
    /// candidates.
    pub fn continue_after(&self, adopted: usize, passes_done: usize) -> bool {
        adopted >= self.k && passes_done < self.max_passes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benefit_matches_paper_example() {
        // §4: [enter sp,*,*] saves 1 byte, costs 2 bytes of dictionary
        // entry, and W = 25 (mean of 17 Pentium + 28 PowerPC, rounded
        // as the paper rounds): B = P − W = −26, so it is not adopted.
        let b = Benefit {
            size_reduction: 1 - 2,
            table_cost: 25,
        };
        assert_eq!(b.value(), -26);
        assert!(select_top_k(vec![((), b)], 20, MemoryRegime::Constrained).is_empty());
        // In abundant memory, still negative (P = −1).
        assert!(select_top_k(vec![((), b)], 20, MemoryRegime::Abundant).is_empty());
    }

    #[test]
    fn top_k_orders_by_benefit() {
        let cands = vec![
            (
                "a",
                Benefit {
                    size_reduction: 10,
                    table_cost: 2,
                },
            ),
            (
                "b",
                Benefit {
                    size_reduction: 50,
                    table_cost: 20,
                },
            ),
            (
                "c",
                Benefit {
                    size_reduction: 5,
                    table_cost: 10,
                },
            ), // negative
            (
                "d",
                Benefit {
                    size_reduction: 9,
                    table_cost: 0,
                },
            ),
        ];
        let picked = select_top_k(cands, 2, MemoryRegime::Constrained);
        let names: Vec<&str> = picked.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["b", "d"]);
    }

    #[test]
    fn abundant_memory_ignores_table_cost() {
        let cands = vec![
            (
                "heavy",
                Benefit {
                    size_reduction: 30,
                    table_cost: 100,
                },
            ),
            (
                "light",
                Benefit {
                    size_reduction: 10,
                    table_cost: 0,
                },
            ),
        ];
        let constrained = select_top_k(cands.clone(), 2, MemoryRegime::Constrained);
        assert_eq!(constrained.len(), 1);
        assert_eq!(constrained[0].0, "light");
        let abundant = select_top_k(cands, 2, MemoryRegime::Abundant);
        assert_eq!(abundant[0].0, "heavy");
        assert_eq!(abundant.len(), 2);
    }

    #[test]
    fn ties_break_deterministically() {
        let cands = vec![
            (
                "first",
                Benefit {
                    size_reduction: 5,
                    table_cost: 0,
                },
            ),
            (
                "second",
                Benefit {
                    size_reduction: 5,
                    table_cost: 0,
                },
            ),
        ];
        let picked = select_top_k(cands, 1, MemoryRegime::Constrained);
        assert_eq!(picked[0].0, "first");
    }

    #[test]
    fn pass_policy_stops_on_thin_pass() {
        let p = PassPolicy {
            k: 20,
            max_passes: 10,
            regime: MemoryRegime::Constrained,
        };
        assert!(p.continue_after(20, 1));
        assert!(p.continue_after(25, 1));
        assert!(!p.continue_after(19, 1));
        assert!(!p.continue_after(20, 10));
    }
}
