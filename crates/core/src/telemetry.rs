//! Zero-dependency observability: pipeline metrics and structured tracing.
//!
//! The paper's argument is quantitative — bits per instruction per
//! stream, compression ratios, total-time scenarios — so the
//! reproduction needs a way to *observe* where bytes and time go
//! without pulling in any external crate (the workspace builds fully
//! offline). This module has three faces:
//!
//! - **Metrics** — a [`Registry`] of named [`Counter`]s, [`Gauge`]s and
//!   power-of-2-bucket [`Histogram`]s. Updates are plain atomics
//!   (lock-free); name resolution takes a read lock and is meant to
//!   happen once per pipeline call, not per symbol. Hot loops
//!   accumulate into a [`LocalHistogram`] / local integers and flush
//!   once at the end.
//! - **Tracing** — structured [`TraceEvent`] records (stage spans with
//!   monotonic nanos, limit trips, quarantine/salvage events, fault
//!   injections) delivered to a [`TraceSink`]: either a JSON-lines
//!   writer ([`JsonLinesSink`], in-tree serializer, no serde) or an
//!   always-on flight recorder ([`RingSink`]) dumped on error.
//! - **The global collector** — [`install`] publishes a [`Collector`]
//!   once per process; every instrumentation site goes through the
//!   free functions ([`counter_add`], [`event`], [`span`], …) which
//!   reduce to a single atomic load and a branch when nothing is
//!   installed. Without a collector the pipeline stays exactly as it
//!   was: no state is created, nothing is observable.
//!
//! # Metric naming
//!
//! Names are `<crate>.<stage>.<metric>` with dynamic suffixes for
//! per-stream metrics (`wire.encode.section_bytes.$patterns`). The
//! full scheme is documented in DESIGN.md § Observability.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

pub mod reconcile;
pub mod stream;

// ---- metrics ---------------------------------------------------------------

/// A monotonically increasing, saturating counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`, saturating at `u64::MAX` instead of wrapping.
    pub fn add(&self, n: u64) {
        if n == 0 {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins (or running-maximum) value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to at least `v` (high-water mark).
    pub fn max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `0` holds the value `0`, bucket
/// `i > 0` holds values in `[2^(i-1), 2^i - 1]` — `bit_length(v)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket index a value lands in.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// A fixed power-of-2-bucket histogram with atomic cells.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // The sum saturates rather than wraps so ratios stay sane.
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Merges a hot-loop-local histogram in one pass.
    pub fn merge(&self, local: &LocalHistogram) {
        for (i, &n) in local.buckets.iter().enumerate() {
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(local.count, Ordering::Relaxed);
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(local.sum);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the bucket counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// A plain (non-atomic) histogram for hot loops; merge it into a
/// registry [`Histogram`] once per pipeline call.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    /// Bucket counts, same layout as [`Histogram`].
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl LocalHistogram {
    /// Records one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }
}

/// A registry of named metrics.
///
/// Handles are interned: asking for the same name twice returns the
/// same metric. Updates through a handle are lock-free; the name
/// lookup itself takes a read lock, so resolve handles once per
/// pipeline call, outside hot loops.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(m) = map.read().expect("registry lock").get(name) {
        return Arc::clone(m);
    }
    let mut w = map.write().expect("registry lock");
    Arc::clone(w.entry(name.to_string()).or_default())
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    /// Zeroes every existing gauge whose name starts with `prefix`.
    ///
    /// This is the reset half of the per-section "reset-and-set"
    /// contract: stages that publish one gauge per dynamic name (e.g.
    /// `wire.encode.section_bytes.<key>`) zero the whole family first so
    /// a later snapshot never mixes sections from two different inputs.
    /// Walks under the read lock without allocating.
    pub fn zero_gauges_with_prefix(&self, prefix: &str) {
        for (name, gauge) in self.gauges.read().expect("registry lock").iter() {
            if name.starts_with(prefix) {
                gauge.set(0);
            }
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            count: v.count(),
                            sum: v.sum(),
                            buckets: v.buckets(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Frozen histogram state inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Bucket counts (see [`bucket_of`] for the layout).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time registry copy, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, state)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Serializes the snapshot as one JSON object (in-tree writer).
    ///
    /// Histogram buckets are sparse `[bucket_index, count]` pairs;
    /// bucket `i > 0` covers `[2^(i-1), 2^i - 1]` and bucket `0` the
    /// value `0`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", json_string(k)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", json_string(k)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"buckets\":[",
                json_string(k),
                h.count,
                h.sum
            ));
            let mut first = true;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n > 0 {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!("[{b},{n}]"));
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

// ---- tracing ---------------------------------------------------------------

/// A scalar field value on a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// The record kind: stage spans bracket work, events are points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A stage span opened.
    SpanBegin,
    /// A stage span closed (`dur_nanos` is set).
    SpanEnd,
    /// A point event (limit trip, quarantine, mutation, …).
    Event,
}

impl TraceKind {
    fn as_str(self) -> &'static str {
        match self {
            TraceKind::SpanBegin => "span_begin",
            TraceKind::SpanEnd => "span_end",
            TraceKind::Event => "event",
        }
    }
}

/// One structured trace record.
///
/// Serialized as one JSON line by [`TraceEvent::to_json_line`]; the
/// schema is pinned by a golden test and validated by
/// [`validate_trace_line`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotonic nanoseconds since the process trace epoch.
    pub t_nanos: u64,
    /// Record kind.
    pub kind: TraceKind,
    /// Span or event name (`wire.decompress`, `limit.trip`, …).
    pub name: String,
    /// Span duration in nanoseconds; `span_end` only.
    pub dur_nanos: Option<u64>,
    /// Structured payload, in insertion order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TraceEvent {
    /// Serializes the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"t\":{},\"kind\":\"{}\",\"name\":{}",
            self.t_nanos,
            self.kind.as_str(),
            json_string(&self.name)
        );
        if let Some(d) = self.dur_nanos {
            out.push_str(&format!(",\"dur\":{d}"));
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(k));
                out.push(':');
                match v {
                    FieldValue::U64(n) => out.push_str(&n.to_string()),
                    FieldValue::I64(n) => out.push_str(&n.to_string()),
                    FieldValue::Str(s) => out.push_str(&json_string(s)),
                    FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Destination for trace records. Implementations must be cheap and
/// non-blocking enough for always-on use.
pub trait TraceSink: Send + Sync {
    /// Delivers one record.
    fn record(&self, event: &TraceEvent);

    /// Pushes any buffered records to their final destination. The
    /// default is a no-op; buffering sinks override it. Callers that
    /// own a process exit path should arrange for a flush on *every*
    /// exit — including panics — e.g. via a `Drop` guard around
    /// [`flush_trace`], so truncated runs still yield parseable traces.
    fn flush(&self) {}
}

/// A [`TraceSink`] writing one JSON line per record to any writer.
///
/// Records are buffered (high-volume traces — a soak emits tens of
/// thousands of lines — must not pay a syscall per record); call
/// [`TraceSink::flush`] (or the global [`flush_trace`]) before the
/// output is read. Because the global collector lives in a `static`
/// that is never dropped, an explicit flush on process exit is the
/// *only* thing that lands the tail of the trace.
pub struct JsonLinesSink {
    w: Mutex<std::io::BufWriter<Box<dyn std::io::Write + Send>>>,
}

impl std::fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

impl JsonLinesSink {
    /// A sink over an arbitrary writer.
    pub fn new(w: Box<dyn std::io::Write + Send>) -> JsonLinesSink {
        JsonLinesSink {
            w: Mutex::new(std::io::BufWriter::new(w)),
        }
    }

    /// A sink appending to (truncating) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &str) -> std::io::Result<JsonLinesSink> {
        Ok(JsonLinesSink::new(Box::new(std::fs::File::create(path)?)))
    }
}

impl TraceSink for JsonLinesSink {
    fn record(&self, event: &TraceEvent) {
        let mut w = self.w.lock().expect("trace sink lock");
        // A broken pipe must not panic the pipeline; tracing is
        // best-effort by construction.
        let _ = writeln!(w, "{}", event.to_json_line());
    }

    fn flush(&self) {
        let _ = self.w.lock().expect("trace sink lock").flush();
    }
}

/// An always-on flight recorder: the last `capacity` records, dumped
/// on demand (typically when an error surfaces).
#[derive(Debug)]
pub struct RingSink {
    buf: Mutex<std::collections::VecDeque<TraceEvent>>,
    capacity: usize,
}

impl RingSink {
    /// A ring holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            buf: Mutex::new(std::collections::VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// The retained records, oldest first.
    pub fn dump(&self) -> Vec<TraceEvent> {
        self.buf
            .lock()
            .expect("ring lock")
            .iter()
            .cloned()
            .collect()
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: &TraceEvent) {
        let mut buf = self.buf.lock().expect("ring lock");
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Fans one record out to several sinks (e.g. a file plus a ring).
#[derive(Default)]
pub struct TeeSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for TeeSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl TeeSink {
    /// A tee over the given sinks.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> TeeSink {
        TeeSink { sinks }
    }
}

impl TraceSink for TeeSink {
    fn record(&self, event: &TraceEvent) {
        for s in &self.sinks {
            s.record(event);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

// ---- global collector -------------------------------------------------------

/// The installed observability surface: a metrics registry and an
/// optional trace sink.
#[derive(Clone)]
pub struct Collector {
    /// Named metrics.
    pub metrics: Arc<Registry>,
    /// Structured trace destination, if tracing is on.
    pub trace: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("trace", &self.trace.is_some())
            .finish_non_exhaustive()
    }
}

impl Collector {
    /// A metrics-only collector.
    pub fn metrics_only() -> Collector {
        Collector {
            metrics: Arc::new(Registry::new()),
            trace: None,
        }
    }

    /// A collector with both metrics and the given trace sink.
    pub fn with_trace(trace: Arc<dyn TraceSink>) -> Collector {
        Collector {
            metrics: Arc::new(Registry::new()),
            trace: Some(trace),
        }
    }
}

static COLLECTOR: OnceLock<Collector> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the first telemetry use in this process.
pub fn now_nanos() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Installs the process-wide collector. First install wins; returns
/// whether this call installed it.
pub fn install(collector: Collector) -> bool {
    COLLECTOR.set(collector).is_ok()
}

/// The installed collector, if any. One atomic load when disabled.
#[inline]
pub fn collector() -> Option<&'static Collector> {
    COLLECTOR.get()
}

/// Whether a collector is installed.
#[inline]
pub fn enabled() -> bool {
    COLLECTOR.get().is_some()
}

/// Adds to a named counter (no-op when disabled).
#[inline]
pub fn counter_add(name: &str, n: u64) {
    if let Some(c) = collector() {
        c.metrics.counter(name).add(n);
    }
}

/// Sets a named gauge (no-op when disabled).
#[inline]
pub fn gauge_set(name: &str, v: u64) {
    if let Some(c) = collector() {
        c.metrics.gauge(name).set(v);
    }
}

/// Raises a named gauge to at least `v` (no-op when disabled).
#[inline]
pub fn gauge_max(name: &str, v: u64) {
    if let Some(c) = collector() {
        c.metrics.gauge(name).max(v);
    }
}

/// Records one observation in a named histogram (no-op when disabled).
#[inline]
pub fn histogram_record(name: &str, v: u64) {
    if let Some(c) = collector() {
        c.metrics.histogram(name).record(v);
    }
}

/// Merges a hot-loop-local histogram into a named histogram (no-op
/// when disabled).
#[inline]
pub fn histogram_merge(name: &str, local: &LocalHistogram) {
    if local.count == 0 {
        return;
    }
    if let Some(c) = collector() {
        c.metrics.histogram(name).merge(local);
    }
}

/// Flushes the installed trace sink, if any. Call on every process
/// exit path (the collector static is never dropped, so nothing else
/// lands a buffering sink's tail).
pub fn flush_trace() {
    if let Some(sink) = collector().and_then(|c| c.trace.as_ref()) {
        sink.flush();
    }
}

/// Emits a point trace event (no-op unless a trace sink is installed).
pub fn event(name: &str, fields: Vec<(&'static str, FieldValue)>) {
    if let Some(sink) = collector().and_then(|c| c.trace.as_ref()) {
        sink.record(&TraceEvent {
            t_nanos: now_nanos(),
            kind: TraceKind::Event,
            name: name.to_string(),
            dur_nanos: None,
            fields,
        });
    }
}

/// An open stage span; emits `span_end` with its duration on drop.
#[derive(Debug)]
pub struct Span {
    // `None` when tracing is disabled: the whole guard is inert.
    name: Option<String>,
    start: Option<Instant>,
}

impl Span {
    /// Ends the span now (otherwise it ends on drop).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(name), Some(start)) = (self.name.take(), self.start) {
            if let Some(sink) = collector().and_then(|c| c.trace.as_ref()) {
                sink.record(&TraceEvent {
                    t_nanos: now_nanos(),
                    kind: TraceKind::SpanEnd,
                    name,
                    dur_nanos: Some(
                        u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    ),
                    fields: Vec::new(),
                });
            }
        }
    }
}

/// Opens a stage span (emits `span_begin` now, `span_end` on drop).
/// Inert when no trace sink is installed.
pub fn span(name: &str) -> Span {
    match collector().and_then(|c| c.trace.as_ref()) {
        Some(sink) => {
            sink.record(&TraceEvent {
                t_nanos: now_nanos(),
                kind: TraceKind::SpanBegin,
                name: name.to_string(),
                dur_nanos: None,
                fields: Vec::new(),
            });
            Span {
                name: Some(name.to_string()),
                start: Some(Instant::now()),
            }
        }
        None => Span {
            name: None,
            start: None,
        },
    }
}

// ---- JSON helpers and the trace-schema checker ------------------------------

/// Escapes `s` as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value (the subset the trace schema uses).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Object(Vec<(String, Json)>),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
    Array(Vec<Json>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        JsonParser {
            s: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .s
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                char::from(b),
                self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.s[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                other => return Err(format!("expected , or }} got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => return Err(format!("expected , or ] got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.s.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.s.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.s[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().ok_or("empty tail")?;
                    if b < 0x20 {
                        return Err("unescaped control character".into());
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        if self.s.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .s
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn finish(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos == self.s.len() {
            Ok(())
        } else {
            Err(format!("trailing bytes at {}", self.pos))
        }
    }
}

/// Validates one JSON line against the pinned trace schema.
///
/// Required: `t` (non-negative integer), `kind` (one of `span_begin`,
/// `span_end`, `event`), `name` (non-empty string). `dur` is a
/// non-negative integer, required on `span_end` and forbidden
/// elsewhere. `fields`, when present, is an object of scalar values.
/// No other top-level keys are allowed.
///
/// # Errors
///
/// A human-readable description of the first schema violation.
pub fn validate_trace_line(line: &str) -> Result<(), String> {
    let mut p = JsonParser::new(line);
    let v = p.value()?;
    p.finish()?;
    let obj = match &v {
        Json::Object(pairs) => pairs,
        _ => return Err("record is not a JSON object".into()),
    };
    for (k, _) in obj {
        if !matches!(k.as_str(), "t" | "kind" | "name" | "dur" | "fields") {
            return Err(format!("unknown key {k:?}"));
        }
    }
    match v.get("t") {
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => {}
        _ => return Err("t must be a non-negative integer".into()),
    }
    let kind = match v.get("kind") {
        Some(Json::Str(s)) if matches!(s.as_str(), "span_begin" | "span_end" | "event") => {
            s.clone()
        }
        _ => return Err("kind must be span_begin | span_end | event".into()),
    };
    match v.get("name") {
        Some(Json::Str(s)) if !s.is_empty() => {}
        _ => return Err("name must be a non-empty string".into()),
    }
    match (kind.as_str(), v.get("dur")) {
        ("span_end", Some(Json::Num(n))) if *n >= 0.0 && n.fract() == 0.0 => {}
        ("span_end", _) => return Err("span_end requires integer dur".into()),
        (_, None) => {}
        (_, Some(_)) => return Err("dur is only valid on span_end".into()),
    }
    match v.get("fields") {
        None => {}
        Some(Json::Object(pairs)) => {
            for (k, fv) in pairs {
                match fv {
                    Json::Num(_) | Json::Str(_) | Json::Bool(_) => {}
                    _ => return Err(format!("field {k:?} is not a scalar")),
                }
            }
        }
        Some(_) => return Err("fields must be an object".into()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::default();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
        c.add(1);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn concurrent_counter_increments_are_exact() {
        let c = Arc::new(Counter::default());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.add(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_set_and_max() {
        let g = Gauge::default();
        g.set(10);
        g.max(5);
        assert_eq!(g.get(), 10);
        g.max(20);
        assert_eq!(g.get(), 20);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 holds only 0; bucket i holds [2^(i-1), 2^i - 1].
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8] {
            h.record(v);
        }
        let b = h.buckets();
        assert_eq!(b[0], 1);
        assert_eq!(b[1], 1);
        assert_eq!(b[2], 2);
        assert_eq!(b[3], 2);
        assert_eq!(b[4], 1);
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 25);
    }

    #[test]
    fn histogram_sum_saturates() {
        let h = Histogram::default();
        h.record(u64::MAX);
        h.record(10);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn local_histogram_merges() {
        let mut local = LocalHistogram::default();
        local.record(3);
        local.record(100);
        let h = Histogram::default();
        h.record(3);
        h.merge(&local);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[7], 1);
    }

    #[test]
    fn registry_interns_handles() {
        let r = Registry::new();
        r.counter("a").add(1);
        r.counter("a").add(2);
        r.gauge("g").set(7);
        r.histogram("h").record(4);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a"), Some(3));
        assert_eq!(snap.gauge("g"), Some(7));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn snapshot_json_is_valid_and_sorted() {
        let r = Registry::new();
        r.counter("b.two").add(2);
        r.counter("a.one").add(1);
        r.histogram("h").record(5);
        let json = r.snapshot().to_json();
        // Names sort lexicographically inside each section.
        let a = json.find("a.one").unwrap();
        let b = json.find("b.two").unwrap();
        assert!(a < b);
        // The writer's output parses with the in-tree parser.
        let mut p = JsonParser::new(&json);
        let v = p.value().unwrap();
        p.finish().unwrap();
        assert!(v.get("counters").is_some());
        assert!(v.get("histograms").is_some());
    }

    #[test]
    fn snapshot_json_quotes_hostile_names() {
        // Dynamic metric suffixes come from stream keys and (in
        // principle) user-controlled names; quoting must hold for all
        // of them or the dump is not JSON.
        let r = Registry::new();
        r.counter("wire.encode.section_bytes.$patterns").add(7);
        r.counter("we\"ird\\name\nwith\tctrl\u{1}").add(1);
        r.gauge("ga\"uge").set(2);
        r.histogram("hi\\st").record(3);
        let json = r.snapshot().to_json();
        let mut p = JsonParser::new(&json);
        let v = p.value().unwrap();
        p.finish().unwrap();
        // The hostile names round-trip through the parser intact.
        let counters = v.get("counters").unwrap();
        assert_eq!(
            counters.get("we\"ird\\name\nwith\tctrl\u{1}"),
            Some(&Json::Num(1.0))
        );
        assert_eq!(
            counters.get("wire.encode.section_bytes.$patterns"),
            Some(&Json::Num(7.0))
        );
        assert_eq!(v.get("gauges").unwrap().get("ga\"uge"), Some(&Json::Num(2.0)));
        assert!(v.get("histograms").unwrap().get("hi\\st").is_some());
    }

    #[test]
    fn trace_event_serialization_golden() {
        // Golden strings: changing them is a schema break — update
        // DESIGN.md § Observability and validate_trace_line together.
        let begin = TraceEvent {
            t_nanos: 12,
            kind: TraceKind::SpanBegin,
            name: "wire.decompress".into(),
            dur_nanos: None,
            fields: Vec::new(),
        };
        assert_eq!(
            begin.to_json_line(),
            r#"{"t":12,"kind":"span_begin","name":"wire.decompress"}"#
        );
        let end = TraceEvent {
            t_nanos: 99,
            kind: TraceKind::SpanEnd,
            name: "wire.decompress".into(),
            dur_nanos: Some(87),
            fields: Vec::new(),
        };
        assert_eq!(
            end.to_json_line(),
            r#"{"t":99,"kind":"span_end","name":"wire.decompress","dur":87}"#
        );
        let event = TraceEvent {
            t_nanos: 5,
            kind: TraceKind::Event,
            name: "limit.trip".into(),
            dur_nanos: None,
            fields: vec![
                ("what", FieldValue::Str("decode fuel".into())),
                ("limit", FieldValue::U64(10)),
                ("fatal", FieldValue::Bool(false)),
            ],
        };
        assert_eq!(
            event.to_json_line(),
            r#"{"t":5,"kind":"event","name":"limit.trip","fields":{"what":"decode fuel","limit":10,"fatal":false}}"#
        );
        for line in [
            begin.to_json_line(),
            end.to_json_line(),
            event.to_json_line(),
        ] {
            validate_trace_line(&line).unwrap();
        }
    }

    #[test]
    fn validator_rejects_schema_violations() {
        let bad = [
            "",                                                // not JSON
            "[]",                                              // not an object
            r#"{"kind":"event","name":"x"}"#,                  // missing t
            r#"{"t":1,"kind":"nope","name":"x"}"#,             // bad kind
            r#"{"t":1,"kind":"event","name":""}"#,             // empty name
            r#"{"t":1,"kind":"span_end","name":"x"}"#,         // missing dur
            r#"{"t":1,"kind":"event","name":"x","dur":3}"#,    // dur off span_end
            r#"{"t":1,"kind":"event","name":"x","extra":1}"#,  // unknown key
            r#"{"t":1.5,"kind":"event","name":"x"}"#,          // fractional t
            r#"{"t":1,"kind":"event","name":"x","fields":[]}"#, // fields not object
            r#"{"t":1,"kind":"event","name":"x","fields":{"y":[1]}}"#, // non-scalar field
        ];
        for line in bad {
            assert!(validate_trace_line(line).is_err(), "accepted: {line}");
        }
        validate_trace_line(r#"{"t":1,"kind":"event","name":"x"}"#).unwrap();
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        validate_trace_line(&format!(
            "{{\"t\":1,\"kind\":\"event\",\"name\":{}}}",
            json_string("we\"ird\nname")
        ))
        .unwrap();
    }

    #[test]
    fn ring_sink_keeps_last_n() {
        let ring = RingSink::new(2);
        for i in 0..5u64 {
            ring.record(&TraceEvent {
                t_nanos: i,
                kind: TraceKind::Event,
                name: format!("e{i}"),
                dur_nanos: None,
                fields: Vec::new(),
            });
        }
        let dumped = ring.dump();
        assert_eq!(dumped.len(), 2);
        assert_eq!(dumped[0].name, "e3");
        assert_eq!(dumped[1].name, "e4");
    }

    #[test]
    fn json_lines_sink_writes_valid_lines() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonLinesSink::new(Box::new(Shared(Arc::clone(&buf))));
        sink.record(&TraceEvent {
            t_nanos: 1,
            kind: TraceKind::Event,
            name: "x".into(),
            dur_nanos: None,
            fields: vec![("n", FieldValue::U64(3))],
        });
        // The sink buffers: nothing reaches the writer until a flush.
        assert!(buf.lock().unwrap().is_empty());
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        for line in text.lines() {
            validate_trace_line(line).unwrap();
        }
        assert_eq!(text.lines().count(), 1);
    }

    // NOTE: no test in this crate installs the global collector — the
    // process-wide install-once semantics are covered by the workspace
    // integration tests (`tests/telemetry.rs`, `tests/telemetry_disabled.rs`)
    // where each binary is its own process.
    #[test]
    fn disabled_helpers_are_inert() {
        // Must hold regardless of test ordering: nothing in this crate
        // installs a collector.
        assert!(!enabled());
        counter_add("never.recorded", 1);
        gauge_set("never.recorded", 1);
        histogram_record("never.recorded", 1);
        let _span = span("never.recorded");
        event("never.recorded", vec![("k", FieldValue::U64(1))]);
        assert!(collector().is_none(), "helpers must not install state");
    }
}
