//! The shared decode-error taxonomy.
//!
//! Every decoder in the workspace — `flate::inflate`, gzip,
//! `wire::decompress`, the BRISC image loader, the interpreters — is
//! *total*: for any input byte sequence it either reproduces the encoded
//! value exactly or returns one of these four errors. No input may
//! panic, abort on allocation, or loop without a resource bound. Crate
//! errors (`CodingError`, `FlateError`, `WireError`, `BriscError`)
//! carry the local detail and fold into [`DecodeError`] at the
//! boundary via `From` impls in their own crates.

use std::error::Error;
use std::fmt;

/// A structured decoder failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The input ended before the encoded value was complete.
    Truncated,
    /// The input is complete enough to read but violates the format.
    Malformed {
        /// What was wrong, for diagnostics.
        what: String,
    },
    /// The input asked for more resources than the decoder allows.
    LimitExceeded {
        /// Which limit tripped.
        what: String,
        /// The configured ceiling.
        limit: u64,
    },
    /// An internal invariant failed; indicates a bug, not bad input.
    Internal(String),
}

impl DecodeError {
    /// Shorthand for a [`DecodeError::Malformed`] with a description.
    pub fn malformed(what: impl Into<String>) -> Self {
        DecodeError::Malformed { what: what.into() }
    }

    /// Shorthand for a [`DecodeError::LimitExceeded`].
    pub fn limit(what: impl Into<String>, limit: u64) -> Self {
        DecodeError::LimitExceeded {
            what: what.into(),
            limit,
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::Malformed { what } => write!(f, "malformed input: {what}"),
            DecodeError::LimitExceeded { what, limit } => {
                write!(f, "limit exceeded: {what} (limit {limit})")
            }
            DecodeError::Internal(m) => write!(f, "internal decoder error: {m}"),
        }
    }
}

impl Error for DecodeError {}

impl From<crate::CoreError> for DecodeError {
    fn from(e: crate::CoreError) -> Self {
        DecodeError::malformed(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(DecodeError::Truncated.to_string(), "input truncated");
        assert_eq!(
            DecodeError::malformed("bad magic").to_string(),
            "malformed input: bad magic"
        );
        assert_eq!(
            DecodeError::limit("output bytes", 16).to_string(),
            "limit exceeded: output bytes (limit 16)"
        );
        assert_eq!(
            DecodeError::Internal("oops".into()).to_string(),
            "internal decoder error: oops"
        );
    }
}
