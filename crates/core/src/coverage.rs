//! Edge-coverage instrumentation for the fuzzing campaign.
//!
//! AFL-style coverage: every instrumented branch site calls
//! [`cov_hit!`](crate::cov_hit), which folds the site into a process-wide
//! *edge* bitmap — `edge = prev_site ^ site`, with `prev_site` shifted so
//! A→B and B→A light different bits. The fuzz driver ([`crate::fuzz`])
//! clears the map before each case and diffs it against the set of edges
//! ever seen; an input that lights a new bit has reached decoder state no
//! earlier input reached and earns a place in the corpus.
//!
//! The whole module is compiled to empty inline stubs unless the
//! `coverage` cargo feature is enabled, so instrumented decode paths cost
//! literally nothing in normal builds — the macro expands to a call to an
//! empty `#[inline(always)]` function taking a constant. The feature
//! lives on `codecomp-core` alone; downstream crates instrument with
//! `cov_hit!` unconditionally and inherit whichever mode the final
//! artifact selected.

/// Words in the edge bitmap; 1024 × 64 = 65,536 edge bits, the classic
/// AFL map size — small enough to scan per case, sparse enough that
/// hash collisions between sites stay rare at our instrumentation
/// density (~200 sites).
pub const MAP_WORDS: usize = 1024;

/// Bits in the edge bitmap.
pub const MAP_BITS: u32 = (MAP_WORDS * 64) as u32;

/// Compile-time FNV-1a over a site label, reduced to the map domain.
///
/// `cov_hit!` invokes this in `const` position over `file!()`/`line!()`
/// (or an explicit label), so every instrumentation site gets a stable
/// pseudo-unique id with no central registry to maintain.
#[must_use]
pub const fn site_id(label: &str, line: u32, column: u32) -> u32 {
    let bytes = label.as_bytes();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    hash ^= line as u64;
    hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    hash ^= column as u64;
    hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    (hash % MAP_BITS as u64) as u32
}

/// Records one hit of an instrumentation site.
///
/// Sites are folded into *edges* against the previous site on the same
/// thread; use [`cov_hit!`](crate::cov_hit) rather than calling this
/// directly so the site id is computed at compile time.
#[inline(always)]
pub fn hit(site: u32) {
    imp::hit(site);
}

/// Whether this build carries live instrumentation (the `coverage`
/// feature). When `false` every other function in this module is an
/// inert stub and all counts are zero.
#[must_use]
#[inline]
pub fn enabled() -> bool {
    cfg!(feature = "coverage")
}

/// Clears the edge map and the per-thread edge predecessor, making the
/// next execution's coverage attributable to that execution alone.
/// Call before each fuzz case.
pub fn reset() {
    imp::reset();
}

/// Folds the current edge map into `seen` (a `MAP_WORDS`-word bitmap of
/// every edge the campaign has observed) and returns how many bits were
/// new. `seen` shorter than `MAP_WORDS` is extended.
pub fn new_edges(seen: &mut Vec<u64>) -> u32 {
    seen.resize(MAP_WORDS, 0);
    imp::new_edges(seen)
}

/// Copies the current edge map into a fresh bitmap (all zeros without
/// the `coverage` feature).
#[must_use]
pub fn snapshot() -> Vec<u64> {
    let mut out = vec![0u64; MAP_WORDS];
    imp::copy_into(&mut out);
    out
}

/// Number of edge bits currently set in the map.
#[must_use]
pub fn edges_hit() -> u32 {
    let mut tmp = vec![0u64; MAP_WORDS];
    imp::copy_into(&mut tmp);
    tmp.iter().map(|w| w.count_ones()).sum()
}

#[cfg(feature = "coverage")]
mod imp {
    use super::MAP_WORDS;
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    // Interior mutability in a `const` is exactly what a static atomic
    // array initializer needs; each array element is its own atomic.
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    static MAP: [AtomicU64; MAP_WORDS] = [ZERO; MAP_WORDS];

    thread_local! {
        static PREV: Cell<u32> = const { Cell::new(0) };
    }

    #[inline]
    pub fn hit(site: u32) {
        let edge = PREV.with(|prev| {
            let e = prev.get() ^ site;
            // Shift so a tight A→A loop still lights a bit and A→B is
            // distinct from B→A.
            prev.set(site >> 1);
            e
        }) % (MAP_WORDS as u32 * 64);
        MAP[(edge / 64) as usize].fetch_or(1 << (edge % 64), Ordering::Relaxed);
    }

    pub fn reset() {
        for w in &MAP {
            w.store(0, Ordering::Relaxed);
        }
        PREV.with(|prev| prev.set(0));
    }

    pub fn copy_into(out: &mut [u64]) {
        for (dst, src) in out.iter_mut().zip(&MAP) {
            *dst = src.load(Ordering::Relaxed);
        }
    }

    pub fn new_edges(seen: &mut [u64]) -> u32 {
        let mut new = 0;
        for (s, w) in seen.iter_mut().zip(&MAP) {
            let cur = w.load(Ordering::Relaxed);
            new += (cur & !*s).count_ones();
            *s |= cur;
        }
        new
    }
}

#[cfg(not(feature = "coverage"))]
mod imp {
    #[inline(always)]
    pub fn hit(_site: u32) {}

    pub fn reset() {}

    pub fn copy_into(_out: &mut [u64]) {}

    pub fn new_edges(_seen: &mut [u64]) -> u32 {
        0
    }
}

/// Marks an edge-coverage instrumentation site.
///
/// `cov_hit!()` derives the site id from `file!()`/`line!()`/`column!()`
/// at compile time; `cov_hit!("label")` hashes an explicit label instead
/// (useful when one lexical site stands for a semantic event). Both
/// forms compile to a call to an empty inline function unless the
/// `coverage` feature of `codecomp-core` is enabled.
#[macro_export]
macro_rules! cov_hit {
    () => {{
        const SITE: u32 =
            $crate::coverage::site_id(::core::file!(), ::core::line!(), ::core::column!());
        $crate::coverage::hit(SITE);
    }};
    ($label:expr) => {{
        const SITE: u32 = $crate::coverage::site_id($label, 0, 0);
        $crate::coverage::hit(SITE);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_ids_are_stable_and_in_range() {
        let a = site_id("src/a.rs", 10, 4);
        assert_eq!(a, site_id("src/a.rs", 10, 4));
        assert!(a < MAP_BITS);
        assert_ne!(a, site_id("src/a.rs", 11, 4));
        assert_ne!(a, site_id("src/b.rs", 10, 4));
    }

    #[test]
    fn disabled_build_reports_nothing() {
        if enabled() {
            return;
        }
        reset();
        crate::cov_hit!("x");
        crate::cov_hit!();
        let mut seen = Vec::new();
        assert_eq!(new_edges(&mut seen), 0);
        assert_eq!(edges_hit(), 0);
        assert_eq!(seen.len(), MAP_WORDS);
    }

    #[test]
    #[cfg(feature = "coverage")]
    fn edges_accumulate_and_reset() {
        reset();
        crate::cov_hit!("a");
        crate::cov_hit!("b");
        assert!(edges_hit() >= 1);
        let mut seen = Vec::new();
        let first = new_edges(&mut seen);
        assert!(first >= 1);
        // Same path again: nothing new.
        reset();
        crate::cov_hit!("a");
        crate::cov_hit!("b");
        assert_eq!(new_edges(&mut seen), 0);
        // A different successor is a different edge.
        reset();
        crate::cov_hit!("a");
        crate::cov_hit!("c");
        assert!(new_edges(&mut seen) >= 1);
        reset();
        assert_eq!(edges_hit(), 0);
    }
}
