//! Request-scoped span log and the span ↔ counter reconciliation
//! checker.
//!
//! The serve soak emits one [`ReqSpan`] per lifecycle edge of every
//! request — the request itself, each wire attempt, the channel
//! delivery window, the server cache verdict, and breaker/shed waits —
//! all carrying the request id and attempt number, so each request's
//! span tree is reconstructable from the flat log
//! ([`SpanLog::request_tree`]).
//!
//! [`reconcile`] is the cross-check that makes the tracing
//! trustworthy: every `serve.*` counter the soak publishes must equal
//! the corresponding span population, *exactly* — the span log and the
//! counters are produced by independent code paths, so any drift
//! (a span emitted without its counter, a counter bumped without its
//! span) is a real accounting bug. CI runs this after every
//! `serve-sim --metrics-interval` smoke and fails on the first
//! mismatch.

use std::collections::BTreeMap;

use super::Snapshot;

/// Span name for a whole request (attempt 0).
pub const SPAN_REQUEST: &str = "serve.request";
/// Span name for one wire attempt.
pub const SPAN_ATTEMPT: &str = "serve.attempt";
/// Span name for the channel delivery window of one attempt.
pub const SPAN_CHANNEL: &str = "serve.channel";
/// Span name for the server cache verdict of one attempt.
pub const SPAN_CACHE: &str = "serve.cache";
/// Span name for the client-side decode verdict of delivered bytes.
pub const SPAN_DECODE: &str = "serve.decode";
/// Span name for a shed-and-wait (pushback, not an attempt).
pub const SPAN_WAIT_SHED: &str = "serve.wait.shed";
/// Span name for a breaker-refused wait (no wire traffic).
pub const SPAN_WAIT_BREAKER: &str = "serve.wait.breaker";

/// One request-scoped span: a named interval in virtual time carrying
/// the request id and attempt number it belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReqSpan {
    /// Span name (one of the `SPAN_*` constants for soak spans).
    pub name: String,
    /// Request id the span belongs to.
    pub req: u64,
    /// Attempt number within the request (1-based; 0 for the
    /// request-level span and for waits that consumed no attempt).
    pub attempt: u32,
    /// Client id that issued the request.
    pub client: u64,
    /// Virtual start time (nanos).
    pub start: u64,
    /// Virtual end time (nanos, `>= start`).
    pub end: u64,
    /// Outcome label (`delivered`, `failed`, `timeout`, `hit`, …).
    pub outcome: String,
}

/// A flat, append-only log of [`ReqSpan`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanLog {
    /// The recorded spans, in emission order.
    pub spans: Vec<ReqSpan>,
}

impl SpanLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> SpanLog {
        SpanLog::default()
    }

    /// Appends one span.
    pub fn push(&mut self, span: ReqSpan) {
        self.spans.push(span);
    }

    /// Number of recorded spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans named `name`.
    #[must_use]
    pub fn count(&self, name: &str) -> u64 {
        self.spans.iter().filter(|s| s.name == name).count() as u64
    }

    /// Spans named `name` with outcome `outcome`.
    #[must_use]
    pub fn count_outcome(&self, name: &str, outcome: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name && s.outcome == outcome)
            .count() as u64
    }

    /// The span tree of request `req`: all its spans sorted by start
    /// time, then attempt number (the request-level span first among
    /// ties). Reconstructs the per-request story from the flat log.
    #[must_use]
    pub fn request_tree(&self, req: u64) -> Vec<&ReqSpan> {
        let mut tree: Vec<&ReqSpan> = self.spans.iter().filter(|s| s.req == req).collect();
        tree.sort_by_key(|s| (s.start, s.attempt, s.end));
        tree
    }
}

/// What [`reconcile`] verified, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconcileReport {
    /// Spans examined.
    pub spans: usize,
    /// Request-level spans (== `serve.requests`).
    pub requests: u64,
    /// Attempt spans (== `serve.attempts`).
    pub attempts: u64,
    /// Individual invariants checked.
    pub checks: usize,
}

/// Asserts that the span populations in `log` match the `serve.*`
/// counters in `snap`, and that the spans nest structurally (every
/// non-request span lies inside its request's window, attempt numbers
/// are 1..=n without gaps).
///
/// # Errors
///
/// Every violated invariant, one human-readable line each.
pub fn reconcile(log: &SpanLog, snap: &Snapshot) -> Result<ReconcileReport, Vec<String>> {
    let mut errors = Vec::new();
    let mut checks = 0usize;
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    let mut check = |what: &str, spans: u64, counters: u64| {
        checks += 1;
        if spans != counters {
            errors.push(format!("{what}: {spans} spans vs {counters} from counters"));
        }
    };

    // Population counts: every counter equals its span population.
    check("serve.requests", log.count(SPAN_REQUEST), counter("serve.requests"));
    check(
        "serve.delivered",
        log.count_outcome(SPAN_REQUEST, "delivered"),
        counter("serve.delivered"),
    );
    check("serve.failed", log.count_outcome(SPAN_REQUEST, "failed"), counter("serve.failed"));
    check("serve.attempts", log.count(SPAN_ATTEMPT), counter("serve.attempts"));
    check("serve.timeouts", log.count_outcome(SPAN_ATTEMPT, "timeout"), counter("serve.timeouts"));
    check(
        "serve.corrupt_deliveries",
        log.count_outcome(SPAN_ATTEMPT, "corrupt_delivery"),
        counter("serve.corrupt_deliveries"),
    );
    check(
        "serve.source_corrupt",
        log.count_outcome(SPAN_ATTEMPT, "source_corrupt"),
        counter("serve.source_corrupt"),
    );
    check("serve.shed", log.count(SPAN_WAIT_SHED), counter("serve.shed"));
    check(
        "serve.breaker.rejects",
        log.count(SPAN_WAIT_BREAKER),
        counter("serve.breaker.rejects"),
    );
    // Retries: attempts beyond each request's first.
    let mut attempts_per_req: BTreeMap<u64, u64> = BTreeMap::new();
    for s in log.spans.iter().filter(|s| s.name == SPAN_ATTEMPT) {
        *attempts_per_req.entry(s.req).or_insert(0) += 1;
    }
    let retries: u64 = attempts_per_req.values().map(|&n| n - 1).sum();
    check("serve.retries", retries, counter("serve.retries"));
    // Cache verdicts: the server counts a hit or a miss for every
    // attempt that reaches it with a known name; raw fallbacks and
    // source-corrupt verdicts are misses that degraded.
    check("serve.cache.hits", log.count_outcome(SPAN_CACHE, "hit"), counter("serve.cache.hits"));
    check(
        "serve.cache.misses",
        log.count_outcome(SPAN_CACHE, "miss")
            + log.count_outcome(SPAN_CACHE, "raw")
            + log.count_outcome(SPAN_CACHE, "source_corrupt"),
        counter("serve.cache.misses"),
    );
    check(
        "serve.raw_fallbacks",
        log.count_outcome(SPAN_CACHE, "raw"),
        counter("serve.raw_fallbacks"),
    );

    // Structural checks: spans nest inside their request's window and
    // attempt numbers count 1..=n.
    let mut windows: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for s in &log.spans {
        checks += 1;
        if s.end < s.start {
            errors.push(format!("{} req {}: end {} before start {}", s.name, s.req, s.end, s.start));
        }
        if s.name == SPAN_REQUEST && windows.insert(s.req, (s.start, s.end)).is_some() {
            errors.push(format!("request {}: duplicate {SPAN_REQUEST} span", s.req));
        }
    }
    let mut max_attempt: BTreeMap<u64, u32> = BTreeMap::new();
    for s in &log.spans {
        if s.name == SPAN_REQUEST {
            continue;
        }
        checks += 1;
        match windows.get(&s.req) {
            None => errors.push(format!("{} req {}: no request span", s.name, s.req)),
            Some(&(start, end)) => {
                if s.start < start || s.end > end {
                    errors.push(format!(
                        "{} req {}: [{}, {}] outside request window [{start}, {end}]",
                        s.name, s.req, s.start, s.end
                    ));
                }
            }
        }
        if s.name == SPAN_ATTEMPT {
            let prev = max_attempt.entry(s.req).or_insert(0);
            if s.attempt != *prev + 1 {
                errors.push(format!(
                    "req {}: attempt numbers skip from {} to {}",
                    s.req, *prev, s.attempt
                ));
            }
            *prev = s.attempt.max(*prev);
        }
    }

    if errors.is_empty() {
        Ok(ReconcileReport {
            spans: log.len(),
            requests: log.count(SPAN_REQUEST),
            attempts: log.count(SPAN_ATTEMPT),
            checks,
        })
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::super::Registry;
    use super::*;

    fn span(name: &str, req: u64, attempt: u32, start: u64, end: u64, outcome: &str) -> ReqSpan {
        ReqSpan {
            name: name.to_string(),
            req,
            attempt,
            client: 0,
            start,
            end,
            outcome: outcome.to_string(),
        }
    }

    fn totals_snapshot(totals: &[(&str, u64)]) -> Snapshot {
        let r = Registry::new();
        for (name, v) in totals {
            r.counter(name).add(*v);
        }
        r.snapshot()
    }

    #[test]
    fn matching_log_reconciles() {
        let mut log = SpanLog::new();
        // Request 0: two attempts (one timeout, then delivered).
        log.push(span(SPAN_REQUEST, 0, 0, 10, 100, "delivered"));
        log.push(span(SPAN_ATTEMPT, 0, 1, 10, 40, "timeout"));
        log.push(span(SPAN_ATTEMPT, 0, 2, 60, 100, "delivered"));
        log.push(span(SPAN_CACHE, 0, 2, 70, 70, "miss"));
        log.push(span(SPAN_CHANNEL, 0, 2, 70, 100, "delivered"));
        // Request 1: shed once, then delivered from cache.
        log.push(span(SPAN_REQUEST, 1, 0, 20, 90, "delivered"));
        log.push(span(SPAN_WAIT_SHED, 1, 1, 20, 50, "shed"));
        log.push(span(SPAN_ATTEMPT, 1, 1, 55, 90, "delivered"));
        log.push(span(SPAN_CACHE, 1, 1, 60, 60, "hit"));
        log.push(span(SPAN_CHANNEL, 1, 1, 60, 90, "delivered"));
        let snap = totals_snapshot(&[
            ("serve.requests", 2),
            ("serve.delivered", 2),
            ("serve.attempts", 3),
            ("serve.retries", 1),
            ("serve.timeouts", 1),
            ("serve.shed", 1),
            ("serve.cache.hits", 1),
            ("serve.cache.misses", 1),
        ]);
        let report = reconcile(&log, &snap).unwrap();
        assert_eq!(report.requests, 2);
        assert_eq!(report.attempts, 3);
        assert!(report.checks > 10);
    }

    #[test]
    fn drifted_counter_is_caught() {
        let mut log = SpanLog::new();
        log.push(span(SPAN_REQUEST, 0, 0, 0, 10, "delivered"));
        log.push(span(SPAN_ATTEMPT, 0, 1, 0, 10, "delivered"));
        let snap = totals_snapshot(&[
            ("serve.requests", 1),
            ("serve.delivered", 1),
            ("serve.attempts", 2), // drift: one attempt span, two counted
        ]);
        let errors = reconcile(&log, &snap).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("serve.attempts")), "{errors:?}");
    }

    #[test]
    fn structural_violations_are_caught() {
        // Attempt span outside its request window.
        let mut log = SpanLog::new();
        log.push(span(SPAN_REQUEST, 0, 0, 10, 20, "failed"));
        log.push(span(SPAN_ATTEMPT, 0, 1, 5, 20, "timeout"));
        let snap = totals_snapshot(&[
            ("serve.requests", 1),
            ("serve.failed", 1),
            ("serve.attempts", 1),
            ("serve.timeouts", 1),
        ]);
        let errors = reconcile(&log, &snap).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("outside request window")), "{errors:?}");

        // Attempt numbering must count 1..=n.
        let mut log = SpanLog::new();
        log.push(span(SPAN_REQUEST, 0, 0, 0, 30, "failed"));
        log.push(span(SPAN_ATTEMPT, 0, 1, 0, 10, "timeout"));
        log.push(span(SPAN_ATTEMPT, 0, 3, 10, 30, "timeout"));
        let snap = totals_snapshot(&[
            ("serve.requests", 1),
            ("serve.failed", 1),
            ("serve.attempts", 2),
            ("serve.retries", 1),
            ("serve.timeouts", 2),
        ]);
        let errors = reconcile(&log, &snap).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("attempt numbers skip")), "{errors:?}");

        // An orphan span with no request-level parent.
        let mut log = SpanLog::new();
        log.push(span(SPAN_ATTEMPT, 7, 1, 0, 10, "timeout"));
        let snap = totals_snapshot(&[("serve.attempts", 1), ("serve.timeouts", 1)]);
        let errors = reconcile(&log, &snap).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("no request span")), "{errors:?}");
    }

    #[test]
    fn request_tree_orders_spans() {
        let mut log = SpanLog::new();
        log.push(span(SPAN_ATTEMPT, 0, 1, 10, 40, "timeout"));
        log.push(span(SPAN_REQUEST, 0, 0, 10, 100, "delivered"));
        log.push(span(SPAN_ATTEMPT, 0, 2, 60, 100, "delivered"));
        log.push(span(SPAN_REQUEST, 1, 0, 0, 5, "failed"));
        let tree = log.request_tree(0);
        assert_eq!(tree.len(), 3);
        assert_eq!(tree[0].name, SPAN_REQUEST);
        assert_eq!(tree[1].attempt, 1);
        assert_eq!(tree[2].attempt, 2);
    }
}
