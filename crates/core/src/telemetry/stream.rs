//! Time-series streaming: periodic registry samples as delta-encoded
//! JSON lines.
//!
//! A [`MetricsStreamer`] turns a sequence of [`Snapshot`]s into one
//! JSON line per sampling interval: counters as **deltas** since the
//! previous sample (unchanged counters are omitted), gauges as
//! **levels** (emitted only when they change), histograms as bucket
//! deltas plus p50/p95/p99 computed from the power-of-2 buckets of the
//! interval's observations alone. Everything is integer arithmetic
//! over snapshot state, so a stream driven by virtual time is
//! byte-identical across runs of the same seed — the property the
//! serve soak's `--metrics-interval` determinism smoke pins.
//!
//! The line schema is validated by [`validate_stream_line`] (wired
//! into `codecomp telemetry check --stream`):
//!
//! ```json
//! {"t":250,"seq":3,"counters":{"serve.requests":41},
//!  "gauges":{"serve.cache.peak_bytes":65536},
//!  "histograms":{"serve.request.latency_ns":
//!    {"count":41,"sum":901,"p50":16383,"p95":65535,"p99":65535,
//!     "buckets":[[14,30],[16,11]]}}}
//! ```

use super::{json_string, HistogramSnapshot, Json, JsonParser, Snapshot, HISTOGRAM_BUCKETS};

/// Largest value bucket `i` can hold: 0 for bucket 0, `2^i - 1` for
/// `0 < i < 64`, and `u64::MAX` for bucket 64 (see
/// [`super::bucket_of`]).
#[must_use]
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// The `num/den` quantile of a bucketed distribution with `count`
/// observations, reported as the upper bound of the bucket holding the
/// rank-`ceil(count * num / den)` observation. Returns 0 for an empty
/// distribution.
#[must_use]
pub fn quantile(buckets: &[u64; HISTOGRAM_BUCKETS], count: u64, num: u64, den: u64) -> u64 {
    if count == 0 || den == 0 {
        return 0;
    }
    let rank = (u128::from(count) * u128::from(num))
        .div_ceil(u128::from(den))
        .clamp(1, u128::from(count));
    let mut seen: u128 = 0;
    for (i, &n) in buckets.iter().enumerate() {
        seen += u128::from(n);
        if seen >= rank {
            return bucket_upper_bound(i);
        }
    }
    bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
}

/// Incremental sampler: holds the previous snapshot and a sequence
/// number, and renders each new snapshot as one delta line.
#[derive(Debug, Default)]
pub struct MetricsStreamer {
    prev: Snapshot,
    seq: u64,
}

impl MetricsStreamer {
    /// A streamer whose first sample deltas against an empty registry.
    #[must_use]
    pub fn new() -> MetricsStreamer {
        MetricsStreamer::default()
    }

    /// Samples `cur` at time `t` (caller-defined units; the soak uses
    /// virtual milliseconds), returning the delta line and advancing
    /// the previous-snapshot state. A line is emitted even when nothing
    /// changed, so interval boundaries stay visible in the stream.
    pub fn sample(&mut self, t: u64, cur: &Snapshot) -> String {
        let line = delta_line(t, self.seq, &self.prev, cur);
        self.seq += 1;
        self.prev = cur.clone();
        line
    }
}

/// Renders one stream line: the delta from `prev` to `cur` stamped
/// `t`/`seq`. Both snapshots must be name-sorted (as
/// [`super::Registry::snapshot`] produces them).
#[must_use]
pub fn delta_line(t: u64, seq: u64, prev: &Snapshot, cur: &Snapshot) -> String {
    let mut out = format!("{{\"t\":{t},\"seq\":{seq},\"counters\":{{");
    let mut first = true;
    merge_walk(&prev.counters, &cur.counters, |name, old, new| {
        let delta = new.saturating_sub(old.unwrap_or(0));
        if delta > 0 {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{}:{delta}", json_string(name)));
        }
    });
    out.push_str("},\"gauges\":{");
    let mut first = true;
    merge_walk(&prev.gauges, &cur.gauges, |name, old, new| {
        // Levels, not deltas: a gauge is emitted when it first appears
        // and whenever it moves.
        if old != Some(new) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{}:{new}", json_string(name)));
        }
    });
    out.push_str("},\"histograms\":{");
    let mut first = true;
    merge_walk_hist(&prev.histograms, &cur.histograms, |name, old, new| {
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        };
        let old = old.unwrap_or(&empty);
        let dcount = new.count.saturating_sub(old.count);
        if dcount == 0 {
            return;
        }
        let dsum = new.sum.saturating_sub(old.sum);
        let dbuckets: [u64; HISTOGRAM_BUCKETS] =
            std::array::from_fn(|i| new.buckets[i].saturating_sub(old.buckets[i]));
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{}:{{\"count\":{dcount},\"sum\":{dsum},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
            json_string(name),
            quantile(&dbuckets, dcount, 50, 100),
            quantile(&dbuckets, dcount, 95, 100),
            quantile(&dbuckets, dcount, 99, 100),
        ));
        let mut bfirst = true;
        for (i, &n) in dbuckets.iter().enumerate() {
            if n > 0 {
                if !bfirst {
                    out.push(',');
                }
                bfirst = false;
                out.push_str(&format!("[{i},{n}]"));
            }
        }
        out.push_str("]}");
    });
    out.push_str("}}");
    out
}

/// Merge-walks two name-sorted `(name, value)` slices, calling `f` for
/// every name present in `cur` with its old value (if any).
fn merge_walk(
    prev: &[(String, u64)],
    cur: &[(String, u64)],
    mut f: impl FnMut(&str, Option<u64>, u64),
) {
    let mut pi = 0;
    for (name, new) in cur {
        while pi < prev.len() && prev[pi].0.as_str() < name.as_str() {
            pi += 1;
        }
        let old = (pi < prev.len() && prev[pi].0 == *name).then(|| prev[pi].1);
        f(name, old, *new);
    }
}

/// [`merge_walk`] for histogram snapshots.
fn merge_walk_hist<'a>(
    prev: &'a [(String, HistogramSnapshot)],
    cur: &'a [(String, HistogramSnapshot)],
    mut f: impl FnMut(&str, Option<&'a HistogramSnapshot>, &'a HistogramSnapshot),
) {
    let mut pi = 0;
    for (name, new) in cur {
        while pi < prev.len() && prev[pi].0.as_str() < name.as_str() {
            pi += 1;
        }
        let old = (pi < prev.len() && prev[pi].0 == *name).then(|| &prev[pi].1);
        f(name, old, new);
    }
}

/// Validates one JSON line against the pinned metrics-stream schema.
///
/// Required top-level keys, exactly: `t` and `seq` (non-negative
/// integers), `counters` and `gauges` (objects of non-negative integer
/// values), `histograms` (object; each value an object with exactly
/// `count`, `sum`, `p50`, `p95`, `p99` — non-negative integers — and
/// `buckets`, an array of `[bucket_index, count]` pairs with
/// `bucket_index < 65` and `count >= 1`).
///
/// # Errors
///
/// A human-readable description of the first schema violation.
pub fn validate_stream_line(line: &str) -> Result<(), String> {
    let mut p = JsonParser::new(line);
    let v = p.value()?;
    p.finish()?;
    let obj = match &v {
        Json::Object(pairs) => pairs,
        _ => return Err("record is not a JSON object".into()),
    };
    for key in ["t", "seq", "counters", "gauges", "histograms"] {
        if v.get(key).is_none() {
            return Err(format!("missing key {key:?}"));
        }
    }
    for (k, _) in obj {
        if !matches!(k.as_str(), "t" | "seq" | "counters" | "gauges" | "histograms") {
            return Err(format!("unknown key {k:?}"));
        }
    }
    for key in ["t", "seq"] {
        match v.get(key) {
            Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => {}
            _ => return Err(format!("{key} must be a non-negative integer")),
        }
    }
    for section in ["counters", "gauges"] {
        let pairs = match v.get(section) {
            Some(Json::Object(pairs)) => pairs,
            _ => return Err(format!("{section} must be an object")),
        };
        for (name, val) in pairs {
            match val {
                Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => {}
                _ => {
                    return Err(format!(
                        "{section} entry {name:?} must be a non-negative integer"
                    ))
                }
            }
        }
    }
    let hists = match v.get("histograms") {
        Some(Json::Object(pairs)) => pairs,
        _ => return Err("histograms must be an object".into()),
    };
    for (name, h) in hists {
        let hobj = match h {
            Json::Object(pairs) => pairs,
            _ => return Err(format!("histogram {name:?} must be an object")),
        };
        for (k, _) in hobj {
            if !matches!(k.as_str(), "count" | "sum" | "p50" | "p95" | "p99" | "buckets") {
                return Err(format!("histogram {name:?}: unknown key {k:?}"));
            }
        }
        for key in ["count", "sum", "p50", "p95", "p99"] {
            match h.get(key) {
                Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => {}
                _ => {
                    return Err(format!(
                        "histogram {name:?}: {key} must be a non-negative integer"
                    ))
                }
            }
        }
        let buckets = match h.get("buckets") {
            Some(Json::Array(items)) => items,
            _ => return Err(format!("histogram {name:?}: buckets must be an array")),
        };
        for item in buckets {
            match item {
                Json::Array(pair) if pair.len() == 2 => match (&pair[0], &pair[1]) {
                    (Json::Num(i), Json::Num(n))
                        if *i >= 0.0
                            && i.fract() == 0.0
                            && (*i as usize) < HISTOGRAM_BUCKETS
                            && *n >= 1.0
                            && n.fract() == 0.0 => {}
                    _ => {
                        return Err(format!(
                            "histogram {name:?}: bucket pair must be [index<{HISTOGRAM_BUCKETS}, count>=1]"
                        ))
                    }
                },
                _ => {
                    return Err(format!(
                        "histogram {name:?}: buckets items must be 2-element arrays"
                    ))
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::Registry;
    use super::*;

    #[test]
    fn bucket_upper_bounds() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn quantile_walks_cumulative_buckets() {
        let mut b = [0u64; HISTOGRAM_BUCKETS];
        b[2] = 50; // values 2..=3
        b[4] = 45; // values 8..=15
        b[10] = 5; // values 512..=1023
        let count = 100;
        assert_eq!(quantile(&b, count, 50, 100), 3);
        assert_eq!(quantile(&b, count, 95, 100), 15);
        assert_eq!(quantile(&b, count, 99, 100), 1023);
        assert_eq!(quantile(&b, 0, 50, 100), 0);
        // Rank 1 (minimum) lands in the first non-empty bucket.
        assert_eq!(quantile(&b, count, 1, 1000), 3);
    }

    #[test]
    fn first_sample_golden_line() {
        let r = Registry::new();
        r.counter("c.hits").add(3);
        r.gauge("g.level").set(7);
        r.histogram("h.ns").record(5);
        r.histogram("h.ns").record(0);
        let mut s = MetricsStreamer::new();
        let line = s.sample(250, &r.snapshot());
        assert_eq!(
            line,
            r#"{"t":250,"seq":0,"counters":{"c.hits":3},"gauges":{"g.level":7},"histograms":{"h.ns":{"count":2,"sum":5,"p50":0,"p95":7,"p99":7,"buckets":[[0,1],[3,1]]}}}"#
        );
        validate_stream_line(&line).unwrap();
    }

    #[test]
    fn deltas_omit_unchanged_and_track_changes() {
        let r = Registry::new();
        r.counter("a").add(5);
        r.counter("b").add(2);
        r.gauge("g").set(10);
        let mut s = MetricsStreamer::new();
        let first = s.sample(100, &r.snapshot());
        validate_stream_line(&first).unwrap();

        // Only `a` and the gauge move before the second sample.
        r.counter("a").add(4);
        r.gauge("g").set(3);
        let second = s.sample(200, &r.snapshot());
        assert_eq!(
            second,
            r#"{"t":200,"seq":1,"counters":{"a":4},"gauges":{"g":3},"histograms":{}}"#
        );
        validate_stream_line(&second).unwrap();

        // Nothing moves: the line still appears, with empty sections.
        let third = s.sample(300, &r.snapshot());
        assert_eq!(third, r#"{"t":300,"seq":2,"counters":{},"gauges":{},"histograms":{}}"#);
        validate_stream_line(&third).unwrap();
    }

    #[test]
    fn histogram_deltas_cover_interval_only() {
        let r = Registry::new();
        for v in [1u64, 1, 1000] {
            r.histogram("lat").record(v);
        }
        let mut s = MetricsStreamer::new();
        let first = s.sample(1, &r.snapshot());
        validate_stream_line(&first).unwrap();
        assert!(first.contains(r#""count":3"#));

        // Second interval sees only the new observations.
        for _ in 0..10 {
            r.histogram("lat").record(4);
        }
        let second = s.sample(2, &r.snapshot());
        validate_stream_line(&second).unwrap();
        assert!(second.contains(r#""lat":{"count":10,"sum":40,"p50":7,"p95":7,"p99":7,"buckets":[[3,10]]}"#), "{second}");
    }

    #[test]
    fn hostile_metric_names_round_trip() {
        let r = Registry::new();
        r.counter("we\"ird\\name").add(1);
        let mut s = MetricsStreamer::new();
        let line = s.sample(0, &r.snapshot());
        validate_stream_line(&line).unwrap();
    }

    #[test]
    fn validator_rejects_schema_violations() {
        let bad = [
            "",                                                       // not JSON
            "[]",                                                     // not an object
            r#"{"seq":0,"counters":{},"gauges":{},"histograms":{}}"#, // missing t
            r#"{"t":1,"seq":0,"counters":{},"gauges":{},"histograms":{},"x":1}"#, // unknown key
            r#"{"t":1.5,"seq":0,"counters":{},"gauges":{},"histograms":{}}"#, // fractional t
            r#"{"t":1,"seq":0,"counters":[],"gauges":{},"histograms":{}}"#, // counters not object
            r#"{"t":1,"seq":0,"counters":{"a":-1},"gauges":{},"histograms":{}}"#, // negative
            r#"{"t":1,"seq":0,"counters":{},"gauges":{},"histograms":{"h":{}}}"#, // histogram missing keys
            r#"{"t":1,"seq":0,"counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":1,"p50":1,"p95":1,"p99":1,"buckets":[[65,1]]}}}"#, // bucket index out of range
            r#"{"t":1,"seq":0,"counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":1,"p50":1,"p95":1,"p99":1,"buckets":[[3,0]]}}}"#, // zero bucket count
        ];
        for line in bad {
            assert!(validate_stream_line(line).is_err(), "accepted: {line}");
        }
        validate_stream_line(
            r#"{"t":1,"seq":0,"counters":{},"gauges":{},"histograms":{}}"#,
        )
        .unwrap();
    }

    #[test]
    fn same_inputs_emit_identical_streams() {
        let render = || {
            let r = Registry::new();
            let mut s = MetricsStreamer::new();
            let mut lines = Vec::new();
            for round in 1..=5u64 {
                r.counter("serve.requests").add(round * 3);
                r.gauge("serve.cache.peak_bytes").set(round * 1000);
                r.histogram("serve.request.latency_ns").record(round * 17);
                lines.push(s.sample(round * 250, &r.snapshot()));
            }
            lines
        };
        assert_eq!(render(), render());
    }
}
