//! Coverage-guided fuzzing campaign driver.
//!
//! Generalizes [`crate::fault::mutation_schedule`]'s fixed schedules into
//! a feedback loop: a seed corpus is mutated (bit, byte, chunk, splice,
//! and dictionary operations over [`XorShift64`]), each case runs against
//! a caller-supplied target behind `catch_unwind`, and — when the
//! `coverage` feature is live — inputs that light new edges in the
//! [`crate::coverage`] bitmap are minimized and kept, steering later
//! mutations toward decoder states blind schedules never reach.
//!
//! The driver is decoder-agnostic: the target is a closure from bytes to
//! a [`Verdict`], and a `reset` closure runs before every case so callers
//! can restore shared state (bump decode-cache generations, drop warmed
//! tables) and keep cases independent. Everything is deterministic in
//! the seed; a finding reproduces from its persisted input bytes alone.

use crate::coverage;
use crate::fault::{mutation_schedule, XorShift64};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What the target concluded about one input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The input decoded successfully.
    Accept,
    /// The input was rejected with a clean error (any error is fine).
    Reject,
    /// The decode violated an invariant the target checks (a budget
    /// overrun that did not error, say). Recorded as a finding.
    Violation(String),
}

/// Why an input was recorded as a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FindingKind {
    /// The target panicked; the payload is the panic message.
    Panic(String),
    /// The target reported [`Verdict::Violation`].
    Violation(String),
}

/// One input that provoked a panic or an invariant violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Campaign case number (0-based; seeds run before case 0).
    pub case: u64,
    /// What went wrong.
    pub kind: FindingKind,
    /// The exact input bytes, already minimized when minimization is on.
    pub input: Vec<u8>,
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// PRNG seed; the whole campaign is deterministic in it.
    pub seed: u64,
    /// Mutated cases to run (seed executions are extra).
    pub cases: u64,
    /// Hard cap on generated input length.
    pub max_input_len: usize,
    /// Feed coverage back into the corpus. With this off (or without
    /// the `coverage` feature) the corpus never grows past the seeds.
    pub guided: bool,
    /// Shrink new-coverage inputs and findings before keeping them.
    pub minimize: bool,
    /// Silence the default panic hook for the campaign's duration so
    /// expected catches do not spam stderr.
    pub quiet_panics: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 1,
            cases: 1_000,
            max_input_len: 1 << 16,
            guided: true,
            minimize: true,
            quiet_panics: true,
        }
    }
}

/// What a campaign did and found.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Mutated cases run.
    pub cases: u64,
    /// Total target executions (cases + seeds + minimization reruns).
    pub executions: u64,
    /// Unique edges observed across the whole campaign (0 without the
    /// `coverage` feature).
    pub unique_edges: u32,
    /// Corpus size at the end (seeds + kept inputs).
    pub corpus_size: usize,
    /// Inputs kept because they lit new edges.
    pub coverage_inputs: u64,
    /// Cases the target accepted.
    pub accepts: u64,
    /// Cases the target cleanly rejected.
    pub rejects: u64,
    /// Panics and invariant violations, with reproducer bytes.
    pub findings: Vec<Finding>,
    /// The raw edge bitmap accumulated over the campaign (empty without
    /// the `coverage` feature). Lets callers union coverage across
    /// campaigns — e.g. several seeds of the same target — instead of
    /// comparing single noisy counts.
    pub edge_map: Vec<u64>,
}

/// Unions edge bitmaps from several campaigns and returns the number of
/// distinct edges they cover together.
#[must_use]
pub fn union_edges(maps: &[&[u64]]) -> u32 {
    let len = maps.iter().map(|m| m.len()).max().unwrap_or(0);
    let mut union = vec![0u64; len];
    for map in maps {
        for (u, w) in union.iter_mut().zip(map.iter()) {
            *u |= w;
        }
    }
    union.iter().map(|w| w.count_ones()).sum()
}

/// Byte strings worth splicing into inputs wholesale: format magics,
/// section names, varint boundaries. Targets can extend this list.
#[must_use]
pub fn default_dictionary() -> Vec<Vec<u8>> {
    vec![
        b"CCWF".to_vec(),
        b"CCBR".to_vec(),
        b"$meta".to_vec(),
        b"$patterns".to_vec(),
        vec![0x1f, 0x8b, 0x08],          // gzip member header
        vec![0x00],
        vec![0xff, 0xff, 0xff, 0xff],
        vec![0x7f],
        vec![0x80, 0x80, 0x80, 0x80, 0x01], // 5-byte varint
        vec![0x80, 0x01],
        vec![0xff, 0x7f],
    ]
}

/// One stacked mutation of `base`: operations drawn from bit flips,
/// byte stores, arithmetic nudges, chunk deletion/duplication,
/// truncation/extension, corpus splices, and dictionary insertions.
///
/// Single-op cases dominate (70%): these formats fail fast, so a light
/// touch on a deep valid input reaches far more decoder states than a
/// pile of corruptions that dies in the header. Multi-op stacks still
/// occur to escape local plateaus.
fn mutate(
    rng: &mut XorShift64,
    base: &[u8],
    corpus: &[Vec<u8>],
    dictionary: &[Vec<u8>],
    max_len: usize,
) -> Vec<u8> {
    let mut out = base.to_vec();
    let ops = match rng.below(20) {
        0..=15 => 1,
        16..=18 => 2,
        _ => 3,
    };
    for _ in 0..ops {
        match rng.below(9) {
            0 => {
                // Bit flip.
                if !out.is_empty() {
                    let i = rng.range_usize(0, out.len());
                    out[i] ^= 1 << rng.below(8);
                }
            }
            1 => {
                // Random byte store.
                if !out.is_empty() {
                    let i = rng.range_usize(0, out.len());
                    out[i] = rng.next_u64() as u8;
                }
            }
            2 => {
                // Arithmetic nudge — the mutation that walks length
                // fields and varints across their boundaries.
                if !out.is_empty() {
                    let i = rng.range_usize(0, out.len());
                    let delta = rng.range_i64(1, 17) as u8;
                    out[i] = if rng.chance(1, 2) {
                        out[i].wrapping_add(delta)
                    } else {
                        out[i].wrapping_sub(delta)
                    };
                }
            }
            3 => {
                // Chunk delete.
                if out.len() >= 2 {
                    let start = rng.range_usize(0, out.len() - 1);
                    let len = rng.range_usize(1, (out.len() - start).min(32) + 1);
                    out.drain(start..start + len);
                }
            }
            4 => {
                // Chunk duplicate: reinsert a run elsewhere.
                if !out.is_empty() && out.len() < max_len {
                    let start = rng.range_usize(0, out.len());
                    let len = rng.range_usize(1, (out.len() - start).clamp(1, 32) + 1);
                    let chunk: Vec<u8> = out[start..start + len.min(out.len() - start)].to_vec();
                    let at = rng.range_usize(0, out.len() + 1);
                    for (k, b) in chunk.into_iter().enumerate() {
                        out.insert(at + k, b);
                    }
                }
            }
            5 => {
                // Truncate.
                if !out.is_empty() {
                    out.truncate(rng.range_usize(0, out.len()));
                }
            }
            6 => {
                // Extend with random bytes.
                let n = rng.range_usize(1, 17);
                for _ in 0..n {
                    out.push(rng.next_u64() as u8);
                }
            }
            7 => {
                // Splice with another corpus entry: head of one, tail of
                // the other.
                if !corpus.is_empty() {
                    let other = &corpus[rng.range_usize(0, corpus.len())];
                    if !other.is_empty() && !out.is_empty() {
                        let cut_a = rng.range_usize(0, out.len());
                        let cut_b = rng.range_usize(0, other.len());
                        out.truncate(cut_a);
                        out.extend_from_slice(&other[cut_b..]);
                    }
                }
            }
            _ => {
                // Dictionary token: overwrite in place or insert.
                if !dictionary.is_empty() {
                    let tok = &dictionary[rng.range_usize(0, dictionary.len())];
                    let at = rng.range_usize(0, out.len() + 1);
                    if rng.chance(1, 2) && at + tok.len() <= out.len() {
                        out[at..at + tok.len()].copy_from_slice(tok);
                    } else {
                        for (k, &b) in tok.iter().enumerate() {
                            out.insert(at + k, b);
                        }
                    }
                }
            }
        }
    }
    out.truncate(max_len);
    out
}

/// Runs one case: reset shared state, clear the coverage map, execute
/// the target under `catch_unwind`.
fn exec_case<T, R>(target: &mut T, reset: &mut R, input: &[u8]) -> Result<Verdict, String>
where
    T: FnMut(&[u8]) -> Verdict,
    R: FnMut(),
{
    reset();
    coverage::reset();
    catch_unwind(AssertUnwindSafe(|| target(input))).map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string())
    })
}

/// Greedy chunk-removal minimization preserving `required` edge bits
/// (or, for findings, preserving the panic/violation itself). Bounded
/// by `budget` extra executions.
fn minimize_input<T, R>(
    target: &mut T,
    reset: &mut R,
    input: Vec<u8>,
    keep: &mut dyn FnMut(&mut T, &mut R, &[u8]) -> bool,
    budget: u64,
    executions: &mut u64,
) -> Vec<u8>
where
    T: FnMut(&[u8]) -> Verdict,
    R: FnMut(),
{
    let mut cur = input;
    let mut spent = 0u64;
    let mut chunk = cur.len() / 2;
    while chunk >= 1 && spent < budget {
        let mut offset = 0;
        while offset < cur.len() && spent < budget {
            let end = (offset + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - offset));
            candidate.extend_from_slice(&cur[..offset]);
            candidate.extend_from_slice(&cur[end..]);
            spent += 1;
            *executions += 1;
            if keep(target, reset, &candidate) {
                cur = candidate;
            } else {
                offset = end;
            }
        }
        chunk /= 2;
    }
    cur
}

/// Installs a silent panic hook for the campaign when asked, restoring
/// the previous hook on drop.
struct HookGuard {
    installed: bool,
}

impl HookGuard {
    fn new(quiet: bool) -> Self {
        if quiet {
            std::panic::set_hook(Box::new(|_| {}));
        }
        HookGuard { installed: quiet }
    }
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        if self.installed {
            let _ = std::panic::take_hook();
        }
    }
}

/// Runs a coverage-guided campaign.
///
/// `seeds` are executed first (and always kept); each of `config.cases`
/// mutated cases then runs against `target` with `reset` called
/// beforehand. With the `coverage` feature live and `config.guided`
/// set, inputs lighting new edges are minimized and join the corpus.
/// Panics are caught and recorded as [`Finding`]s — the campaign always
/// runs to completion.
pub fn run_campaign<T, R>(
    config: &FuzzConfig,
    seeds: &[Vec<u8>],
    dictionary: &[Vec<u8>],
    mut target: T,
    mut reset: R,
) -> CampaignReport
where
    T: FnMut(&[u8]) -> Verdict,
    R: FnMut(),
{
    let _hook = HookGuard::new(config.quiet_panics);
    let mut rng = XorShift64::new(config.seed);
    let mut seen = Vec::new();
    let mut report = CampaignReport::default();
    let mut corpus: Vec<Vec<u8>> = Vec::new();

    let record = |report: &mut CampaignReport, case, input: &[u8], outcome| match outcome {
        Ok(Verdict::Accept) => report.accepts += 1,
        Ok(Verdict::Reject) => report.rejects += 1,
        Ok(Verdict::Violation(why)) => report.findings.push(Finding {
            case,
            kind: FindingKind::Violation(why),
            input: input.to_vec(),
        }),
        Err(msg) => report.findings.push(Finding {
            case,
            kind: FindingKind::Panic(msg),
            input: input.to_vec(),
        }),
    };

    for seed in seeds {
        let mut seed = seed.clone();
        seed.truncate(config.max_input_len);
        let outcome = exec_case(&mut target, &mut reset, &seed);
        report.executions += 1;
        record(&mut report, 0, &seed, outcome);
        coverage::new_edges(&mut seen);
        corpus.push(seed);
    }
    if corpus.is_empty() {
        corpus.push(Vec::new());
    }

    let seed_count = corpus.len();
    let mut accepts_kept = 0u32;
    // Deterministic warm-up: a truncation sweep spread evenly over every
    // seed's prefix boundaries, capped at a third of the case budget.
    // Truncation probes every "input ends here" branch of a length-
    // delimited format — the one sweep a blind schedule performs that
    // random havoc reaches only slowly — so the guided campaign runs it
    // first and lets feedback take over from there.
    let mut warmup: Vec<Vec<u8>> = Vec::new();
    {
        let budget = (config.cases as usize / 3) / seed_count.max(1);
        for seed in &corpus {
            let t = budget.min(seed.len());
            for i in 0..t {
                let len = if t == seed.len() {
                    i
                } else {
                    i * seed.len() / t.max(1)
                };
                warmup.push(seed[..len].to_vec());
            }
        }
    }
    for case in 0..config.cases {
        // Half the havoc budget stays on the original seeds — they are
        // the deepest valid inputs and single mutations of them keep
        // probing structure that shrunken coverage inputs no longer
        // carry; the rest draws from the newest half of the corpus,
        // where coverage was last extended.
        let input = if let Some(t) = warmup.get(case as usize) {
            t.clone()
        } else {
            let base = if rng.chance(1, 2) {
                &corpus[rng.range_usize(0, seed_count)]
            } else {
                let lo = corpus.len() / 2;
                &corpus[rng.range_usize(lo, corpus.len())]
            };
            mutate(&mut rng, base, &corpus, dictionary, config.max_input_len)
        };
        let outcome = exec_case(&mut target, &mut reset, &input);
        report.executions += 1;
        report.cases += 1;

        let case_map = coverage::snapshot();
        let new = coverage::new_edges(&mut seen);

        let failed = !matches!(outcome, Ok(Verdict::Accept) | Ok(Verdict::Reject));
        if failed {
            // Shrink the finding while it still fails the same way.
            let minimized = if config.minimize {
                let want_panic = outcome.is_err();
                minimize_input(
                    &mut target,
                    &mut reset,
                    input.clone(),
                    &mut |t, r, cand| {
                        let keep = match exec_case(t, r, cand) {
                            Err(_) => want_panic,
                            Ok(Verdict::Violation(_)) => !want_panic,
                            Ok(_) => false,
                        };
                        // Minimization candidates are real executions;
                        // whatever fresh edges they light count.
                        coverage::new_edges(&mut seen);
                        keep
                    },
                    96,
                    &mut report.executions,
                )
            } else {
                input.clone()
            };
            record(&mut report, case, &minimized, outcome);
            continue;
        }
        let accepted = matches!(outcome, Ok(Verdict::Accept));
        record(&mut report, case, &input, outcome);

        if config.guided && new > 0 {
            report.coverage_inputs += 1;
            // Trim only while the candidate reproduces the *entire*
            // coverage map of the original input, not just the fresh
            // bits — anything looser shrinks corpus entries into
            // shallow stubs that stop exercising the deep paths their
            // ancestors reached.
            let kept = if config.minimize {
                minimize_input(
                    &mut target,
                    &mut reset,
                    input,
                    &mut |t, r, cand| {
                        let ok = exec_case(t, r, cand).is_ok();
                        let keep = ok && coverage::snapshot() == case_map;
                        coverage::new_edges(&mut seen);
                        keep
                    },
                    48,
                    &mut report.executions,
                )
            } else {
                input
            };
            corpus.push(kept);
        } else if config.guided && accepts_kept < 64 && accepted && rng.chance(1, 4) {
            // An accepted mutant is a *new valid input* even when it
            // lights no new edge on its own — it survived whatever
            // integrity checks the format carries, so mutating it
            // further explores valid-space neighborhoods a single
            // mutation of the original seeds can never reach. Keep a
            // bounded sample of them.
            accepts_kept += 1;
            corpus.push(input);
        }
    }

    report.unique_edges = seen.iter().map(|w| w.count_ones()).sum();
    report.corpus_size = corpus.len();
    report.edge_map = seen;
    report
}

/// The blind baseline: the same case budget spent on
/// [`mutation_schedule`]'s fixed truncate/bitflip/splice schedule over
/// the seeds, round-robin, with no feedback. Reports the same edge
/// accounting so guided and blind campaigns compare directly.
pub fn run_blind_schedule<T, R>(
    config: &FuzzConfig,
    seeds: &[Vec<u8>],
    mut target: T,
    mut reset: R,
) -> CampaignReport
where
    T: FnMut(&[u8]) -> Verdict,
    R: FnMut(),
{
    let _hook = HookGuard::new(config.quiet_panics);
    let mut seen = Vec::new();
    let mut report = CampaignReport::default();
    let seeds: Vec<Vec<u8>> = if seeds.is_empty() {
        vec![Vec::new()]
    } else {
        seeds
            .iter()
            .map(|s| {
                let mut s = s.clone();
                s.truncate(config.max_input_len);
                s
            })
            .collect()
    };

    for seed in &seeds {
        let outcome = exec_case(&mut target, &mut reset, seed);
        report.executions += 1;
        match outcome {
            Ok(Verdict::Accept) => report.accepts += 1,
            Ok(Verdict::Reject) => report.rejects += 1,
            Ok(Verdict::Violation(why)) => report.findings.push(Finding {
                case: 0,
                kind: FindingKind::Violation(why),
                input: seed.clone(),
            }),
            Err(msg) => report.findings.push(Finding {
                case: 0,
                kind: FindingKind::Panic(msg),
                input: seed.clone(),
            }),
        }
        coverage::new_edges(&mut seen);
    }

    let per_seed = (config.cases as usize).div_ceil(seeds.len());
    let mut case = 0u64;
    'outer: for (i, seed) in seeds.iter().enumerate() {
        let schedule = mutation_schedule(
            config.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            seed.len(),
            per_seed,
        );
        for m in &schedule {
            if case >= config.cases {
                break 'outer;
            }
            let input = m.apply(seed);
            let outcome = exec_case(&mut target, &mut reset, &input);
            report.executions += 1;
            report.cases += 1;
            case += 1;
            match outcome {
                Ok(Verdict::Accept) => report.accepts += 1,
                Ok(Verdict::Reject) => report.rejects += 1,
                Ok(Verdict::Violation(why)) => report.findings.push(Finding {
                    case,
                    kind: FindingKind::Violation(why),
                    input,
                }),
                Err(msg) => report.findings.push(Finding {
                    case,
                    kind: FindingKind::Panic(msg),
                    input,
                }),
            }
            coverage::new_edges(&mut seen);
        }
    }

    report.unique_edges = seen.iter().map(|w| w.count_ones()).sum();
    report.corpus_size = seeds.len();
    report.edge_map = seen;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_target(input: &[u8]) -> Verdict {
        // A little decoder with nested structure for coverage to find.
        if input.first() != Some(&b'M') {
            return Verdict::Reject;
        }
        crate::cov_hit!("toy.magic");
        match input.get(1) {
            Some(1) => {
                crate::cov_hit!("toy.v1");
                Verdict::Accept
            }
            Some(2) if input.len() > 4 => {
                crate::cov_hit!("toy.v2");
                Verdict::Accept
            }
            _ => Verdict::Reject,
        }
    }

    #[test]
    fn campaign_is_deterministic_and_total() {
        let config = FuzzConfig {
            cases: 200,
            minimize: false,
            ..FuzzConfig::default()
        };
        let seeds = vec![b"M\x01".to_vec(), b"junk".to_vec()];
        let a = run_campaign(&config, &seeds, &default_dictionary(), toy_target, || {});
        let b = run_campaign(&config, &seeds, &default_dictionary(), toy_target, || {});
        assert_eq!(a.cases, 200);
        assert_eq!(a.accepts, b.accepts);
        assert_eq!(a.rejects, b.rejects);
        assert_eq!(a.unique_edges, b.unique_edges);
        assert!(a.findings.is_empty());
    }

    #[test]
    fn panics_become_findings_not_aborts() {
        let config = FuzzConfig {
            cases: 300,
            ..FuzzConfig::default()
        };
        let target = |input: &[u8]| {
            assert!(input.first() != Some(&0xEE), "planted bug");
            Verdict::Reject
        };
        let seeds = vec![vec![0xEE, 0, 0]];
        let report = run_campaign(&config, &seeds, &[], target, || {});
        assert!(!report.findings.is_empty(), "planted bug not found");
        for f in &report.findings {
            assert!(matches!(f.kind, FindingKind::Panic(ref m) if m.contains("planted bug")));
            // Minimization must preserve the failure.
            assert_eq!(f.input.first(), Some(&0xEE));
        }
    }

    #[test]
    fn violations_are_recorded() {
        let config = FuzzConfig {
            cases: 50,
            minimize: false,
            ..FuzzConfig::default()
        };
        let target = |_: &[u8]| Verdict::Violation("budget overrun".into());
        let report = run_campaign(&config, &[vec![0]], &[], target, || {});
        assert!(report
            .findings
            .iter()
            .all(|f| matches!(f.kind, FindingKind::Violation(_))));
        assert!(!report.findings.is_empty());
    }

    #[test]
    fn reset_runs_before_every_case() {
        let mut resets = 0u64;
        let config = FuzzConfig {
            cases: 25,
            minimize: false,
            ..FuzzConfig::default()
        };
        let report = run_campaign(&config, &[vec![1]], &[], |_| Verdict::Reject, || resets += 1);
        assert_eq!(resets, report.executions);
    }

    #[test]
    #[cfg(feature = "coverage")]
    fn guided_beats_blind_on_the_toy_decoder() {
        let config = FuzzConfig {
            cases: 600,
            ..FuzzConfig::default()
        };
        // Seeds that do not reach the magic: feedback must climb to it.
        let seeds = vec![b"Mx".to_vec()];
        let guided = run_campaign(&config, &seeds, &default_dictionary(), toy_target, || {});
        let blind = run_blind_schedule(&config, &seeds, toy_target, || {});
        assert!(
            guided.unique_edges >= blind.unique_edges,
            "guided {} < blind {}",
            guided.unique_edges,
            blind.unique_edges
        );
        assert!(guided.unique_edges > 0);
    }

    #[test]
    fn blind_schedule_matches_case_budget() {
        let config = FuzzConfig {
            cases: 123,
            ..FuzzConfig::default()
        };
        let report = run_blind_schedule(&config, &[vec![0; 64], vec![1; 32]], |_| Verdict::Reject, || {});
        assert_eq!(report.cases, 123);
    }
}
