//! Shared code-compression machinery.
//!
//! Both of the paper's compressors "gather information about the common
//! patterns that appear in the code, and both divide the stream of code
//! into several smaller streams, one holding the operators and one
//! holding the literal operands for each operator (or class of related
//! operators)". This crate holds that common core:
//!
//! - [`treepat`]: patternization of IR trees — replacing every literal
//!   operand with a wildcard, as in
//!   `ASGNI(ADDRLP8[*],SUBI(INDIRI(ADDRLP8[*]),CNSTC[*]))`.
//! - [`streams`]: stream separation — one operator-pattern stream plus
//!   one literal stream per operator class — and its inverse.
//! - [`dict`]: the greedy benefit-driven dictionary construction the
//!   BRISC compressor uses (`B = P − W`, heap of candidates, top-`K` per
//!   pass, stop when a pass yields fewer than `K` positive candidates).
//! - [`entropy`]: size and entropy helpers shared by the ablation
//!   experiments.

//! - [`error`]: the shared [`DecodeError`] taxonomy every decoder in the
//!   workspace folds into at its public boundary.
//! - [`limits`]: per-call decode resource governance — [`DecodeLimits`]
//!   knobs plus the shared [`Budget`] handle threaded through every
//!   decode entry point in the workspace.
//! - [`fault`]: seeded fault injection (xorshift PRNG + byte mutators)
//!   backing the workspace fault-injection harness.
//! - [`coverage`]: feature-gated edge-coverage instrumentation
//!   ([`cov_hit!`]) and [`fuzz`]: the coverage-guided campaign driver
//!   built on it.
//! - [`telemetry`]: zero-dependency observability — the metrics
//!   [`telemetry::Registry`] and structured [`telemetry::TraceSink`]
//!   every pipeline stage reports into when a collector is installed.
//! - [`profile`]: feature-gated sampling self-profiler emitting
//!   collapsed-stack (flamegraph) output from scoped stage markers.

pub mod coverage;
pub mod dict;
pub mod entropy;
pub mod error;
pub mod fault;
pub mod fuzz;
pub mod limits;
pub mod profile;
pub mod streams;
pub mod telemetry;
pub mod treepat;

pub use error::DecodeError;
pub use limits::{Budget, DecodeLimits, DecodeUsage};
pub use streams::{SplitStreams, StreamKey};
pub use treepat::TreePattern;

use std::error::Error;
use std::fmt;

/// Errors from the shared machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// Stream reconstruction ran out of literals or patterns.
    StreamUnderflow(String),
    /// A pattern and a literal stream disagreed structurally.
    Mismatch(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::StreamUnderflow(m) => write!(f, "stream underflow: {m}"),
            CoreError::Mismatch(m) => write!(f, "stream mismatch: {m}"),
        }
    }
}

impl Error for CoreError {}
