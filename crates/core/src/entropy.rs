//! Size and entropy helpers for the ablation experiments.

/// Shannon entropy in bits per symbol of a byte sequence.
pub fn byte_entropy(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in data {
        counts[b as usize] += 1;
    }
    let n = data.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Shannon entropy of an arbitrary symbol sequence.
pub fn symbol_entropy(symbols: &[u32]) -> f64 {
    if symbols.is_empty() {
        return 0.0;
    }
    let mut counts = std::collections::HashMap::new();
    for &s in symbols {
        *counts.entry(s).or_insert(0u64) += 1;
    }
    let n = symbols.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// The ideal entropy-coded size in whole bytes of a symbol sequence.
pub fn entropy_size_bytes(symbols: &[u32]) -> usize {
    ((symbol_entropy(symbols) * symbols.len() as f64) / 8.0).ceil() as usize
}

/// A compression ratio, rendered the way the paper's tables render them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ratio {
    /// Compressed size in bytes.
    pub compressed: usize,
    /// Reference size in bytes.
    pub original: usize,
}

impl Ratio {
    /// `compressed / original`, the paper's "compressed size / native size".
    pub fn fraction(self) -> f64 {
        if self.original == 0 {
            return 0.0;
        }
        self.compressed as f64 / self.original as f64
    }

    /// `original / compressed`, the "divides the input size by" factor.
    pub fn factor(self) -> f64 {
        if self.compressed == 0 {
            return 0.0;
        }
        self.original as f64 / self.compressed as f64
    }
}

impl std::fmt::Display for Ratio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}", self.fraction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_uniform_bytes_is_eight_bits() {
        let data: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        assert!((byte_entropy(&data) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn entropy_of_constant_is_zero() {
        assert_eq!(byte_entropy(&[7; 100]), 0.0);
        assert_eq!(byte_entropy(&[]), 0.0);
        assert_eq!(symbol_entropy(&[3; 50]), 0.0);
    }

    #[test]
    fn entropy_of_fair_coin_is_one_bit() {
        let symbols: Vec<u32> = (0..1000).map(|i| i % 2).collect();
        assert!((symbol_entropy(&symbols) - 1.0).abs() < 1e-9);
        assert_eq!(entropy_size_bytes(&symbols), 125);
    }

    #[test]
    fn ratio_directions() {
        let r = Ratio {
            compressed: 25,
            original: 100,
        };
        assert!((r.fraction() - 0.25).abs() < 1e-12);
        assert!((r.factor() - 4.0).abs() < 1e-12);
        assert_eq!(r.to_string(), "0.25");
        assert_eq!(
            Ratio {
                compressed: 0,
                original: 0
            }
            .fraction(),
            0.0
        );
    }
}
