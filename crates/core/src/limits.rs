//! Per-call resource governance for every decoder in the workspace.
//!
//! The paper's demand-paged delivery scenario implies a long-lived
//! loader decoding untrusted streams under hard memory and CPU budgets.
//! [`DecodeLimits`] is the knob set — one struct covering every
//! resource a decoder can be asked to spend — and [`Budget`] is the
//! run-time handle a pipeline threads through its decode calls.
//! Cloning a [`Budget`] shares its counters, so one budget can govern
//! an entire module load across `flate`, `wire`, `coding`, and `brisc`
//! while each layer sees only the `codecomp-core` types.
//!
//! Two kinds of accounting coexist:
//!
//! - **Ceilings** (`max_output_bytes`, `max_stream_symbols`,
//!   `max_pattern_depth`, `max_table_entries`) bound a single decoded
//!   artifact and are checked where the artifact's size first becomes
//!   known.
//! - **Meters** (`decode_fuel`, `max_resident_bytes`) accumulate across
//!   calls in the shared counters; fuel is charged per decoded
//!   symbol/item, resident bytes by the demand loader as function
//!   bodies materialize (and are released when they are evicted).
//!
//! A budget may additionally carry a **wall-clock deadline**
//! ([`Budget::with_deadline`]): every charge and check verifies the
//! deadline first, so any metered decoder becomes deadline-governed
//! without new instrumentation — the knob a serving layer uses to stop
//! decoding for a request whose client has already given up.
//!
//! Every check also records a high-water mark, so a caller can decode
//! once with generous limits, read [`Budget::usage`], and learn the
//! exact budget a payload needs — the basis of the exact-limit
//! boundary tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::DecodeError;
use crate::telemetry;

/// Builds the limit error and, when tracing is on, emits a
/// `limit.trip` event so flight recordings show which budget refused.
fn trip(what: &'static str, limit: u64) -> DecodeError {
    telemetry::event(
        "limit.trip",
        vec![("what", what.into()), ("limit", limit.into())],
    );
    DecodeError::limit(what, limit)
}

/// Default ceiling on a single decoded output (matches the historical
/// `flate::MAX_OUTPUT`).
pub const DEFAULT_MAX_OUTPUT_BYTES: u64 = 1 << 28;
/// Default ceiling on symbols in one wire stream (matches the
/// historical `wire::MAX_STREAM_LEN`).
pub const DEFAULT_MAX_STREAM_SYMBOLS: u64 = 1 << 22;
/// Default ceiling on pattern nesting depth (matches the historical
/// `wire::MAX_PATTERN_DEPTH`).
pub const DEFAULT_MAX_PATTERN_DEPTH: u32 = 128;
/// Default ceiling on entries in one decoded table (wire literal
/// tables are bounded by the stream length today, so the default
/// matches [`DEFAULT_MAX_STREAM_SYMBOLS`]).
pub const DEFAULT_MAX_TABLE_ENTRIES: u64 = 1 << 22;

/// Per-call decode resource limits.
///
/// `Default` preserves the workspace's historical compile-time values,
/// so `decode_with(&Budget::default())` behaves exactly like the
/// un-governed decoders did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeLimits {
    /// Largest single decoded output (inflate result, wire section) in
    /// bytes.
    pub max_output_bytes: u64,
    /// Largest symbol count in one decoded stream.
    pub max_stream_symbols: u64,
    /// Deepest pattern-tree nesting accepted by the wire format.
    pub max_pattern_depth: u32,
    /// Largest dictionary / Markov / literal table, in entries.
    pub max_table_entries: u64,
    /// Total decode steps (symbols, items, table entries) across the
    /// budget's lifetime.
    pub decode_fuel: u64,
    /// Total bytes of demand-loaded function bodies resident at once.
    pub max_resident_bytes: u64,
}

impl Default for DecodeLimits {
    fn default() -> Self {
        DecodeLimits {
            max_output_bytes: DEFAULT_MAX_OUTPUT_BYTES,
            max_stream_symbols: DEFAULT_MAX_STREAM_SYMBOLS,
            max_pattern_depth: DEFAULT_MAX_PATTERN_DEPTH,
            max_table_entries: DEFAULT_MAX_TABLE_ENTRIES,
            decode_fuel: u64::MAX,
            max_resident_bytes: u64::MAX,
        }
    }
}

impl DecodeLimits {
    /// Limits that never trip: every ceiling and meter at `u64::MAX`.
    pub fn unlimited() -> Self {
        DecodeLimits {
            max_output_bytes: u64::MAX,
            max_stream_symbols: u64::MAX,
            max_pattern_depth: u32::MAX,
            max_table_entries: u64::MAX,
            decode_fuel: u64::MAX,
            max_resident_bytes: u64::MAX,
        }
    }
}

/// Shared counters behind a [`Budget`]; cloned handles see the same
/// meters and high-water marks.
#[derive(Debug, Default)]
struct Counters {
    fuel_spent: AtomicU64,
    resident_bytes: AtomicU64,
    peak_resident_bytes: AtomicU64,
    peak_output_bytes: AtomicU64,
    peak_stream_symbols: AtomicU64,
    peak_pattern_depth: AtomicU64,
    peak_table_entries: AtomicU64,
}

/// Observed resource usage, read back via [`Budget::usage`].
///
/// `peak_*` fields are per-artifact high-water marks (the largest
/// single output, stream, table, or nesting depth seen); `fuel_spent`
/// and `resident_bytes` are cumulative meters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecodeUsage {
    /// Total fuel charged so far.
    pub fuel_spent: u64,
    /// Demand-resident bytes currently charged.
    pub resident_bytes: u64,
    /// Largest resident footprint seen.
    pub peak_resident_bytes: u64,
    /// Largest single decoded output seen, in bytes.
    pub peak_output_bytes: u64,
    /// Largest stream symbol count seen.
    pub peak_stream_symbols: u64,
    /// Deepest pattern nesting seen.
    pub peak_pattern_depth: u32,
    /// Largest table seen, in entries.
    pub peak_table_entries: u64,
}

/// A live decode budget: [`DecodeLimits`] plus shared usage counters.
///
/// Cheap to clone; clones share the fuel and resident-byte meters, so
/// a pipeline hands `&Budget` (or a clone) to each layer and the whole
/// load is governed as one unit. [`Budget::with_limits`] derives a
/// handle with different ceilings over the *same* counters — the
/// retry-with-larger-budget path.
#[derive(Debug, Clone)]
pub struct Budget {
    limits: DecodeLimits,
    counters: Arc<Counters>,
    deadline: Option<Deadline>,
}

/// A wall-clock expiry attached to a [`Budget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Deadline {
    /// The instant past which every check trips.
    at: Instant,
    /// The granted span in nanoseconds, reported in the limit error.
    granted_nanos: u64,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::new(DecodeLimits::default())
    }
}

impl Budget {
    /// A fresh budget governed by `limits`, with zeroed counters.
    pub fn new(limits: DecodeLimits) -> Self {
        Budget {
            limits,
            counters: Arc::new(Counters::default()),
            deadline: None,
        }
    }

    /// A budget that never trips (all limits at their maxima).
    pub fn unlimited() -> Self {
        Budget::new(DecodeLimits::unlimited())
    }

    /// The limits this handle enforces.
    pub fn limits(&self) -> &DecodeLimits {
        &self.limits
    }

    /// A handle with different ceilings over the same counters. The
    /// deadline, if any, carries over — rebind it with
    /// [`Budget::with_deadline`] / [`Budget::without_deadline`].
    pub fn with_limits(&self, limits: DecodeLimits) -> Budget {
        Budget {
            limits,
            counters: Arc::clone(&self.counters),
            deadline: self.deadline,
        }
    }

    /// A handle over the same counters that additionally expires
    /// `timeout` from now: once the wall clock passes the deadline,
    /// every charge and check trips with
    /// [`DecodeError::LimitExceeded`] (`what` = `"wall-clock
    /// deadline"`, `limit` = the granted nanoseconds).
    pub fn with_deadline(&self, timeout: Duration) -> Budget {
        self.with_deadline_at(Instant::now() + timeout, timeout)
    }

    /// As [`Budget::with_deadline`], but against an explicit expiry
    /// instant — the deterministic form the boundary tests use.
    pub fn with_deadline_at(&self, at: Instant, granted: Duration) -> Budget {
        Budget {
            limits: self.limits,
            counters: Arc::clone(&self.counters),
            deadline: Some(Deadline {
                at,
                granted_nanos: u64::try_from(granted.as_nanos()).unwrap_or(u64::MAX),
            }),
        }
    }

    /// A handle over the same counters with no wall-clock expiry.
    pub fn without_deadline(&self) -> Budget {
        Budget {
            limits: self.limits,
            counters: Arc::clone(&self.counters),
            deadline: None,
        }
    }

    /// The expiry instant, if a deadline is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline.map(|d| d.at)
    }

    /// Errs once the wall clock has passed the deadline (no-op without
    /// one). Checked automatically by every charge and check, so a
    /// decoder that meters fuel is deadline-governed for free.
    pub fn check_deadline(&self) -> Result<(), DecodeError> {
        match self.deadline {
            None => Ok(()),
            Some(_) => self.check_deadline_at(Instant::now()),
        }
    }

    /// Deadline check against an explicit `now` — the exact-boundary
    /// form: `now == deadline` still passes, one tick later trips.
    pub fn check_deadline_at(&self, now: Instant) -> Result<(), DecodeError> {
        match self.deadline {
            Some(d) if now > d.at => Err(trip("wall-clock deadline", d.granted_nanos)),
            _ => Ok(()),
        }
    }

    /// Observed usage so far (shared across clones).
    pub fn usage(&self) -> DecodeUsage {
        let c = &self.counters;
        DecodeUsage {
            fuel_spent: c.fuel_spent.load(Ordering::Relaxed),
            resident_bytes: c.resident_bytes.load(Ordering::Relaxed),
            peak_resident_bytes: c.peak_resident_bytes.load(Ordering::Relaxed),
            peak_output_bytes: c.peak_output_bytes.load(Ordering::Relaxed),
            peak_stream_symbols: c.peak_stream_symbols.load(Ordering::Relaxed),
            peak_pattern_depth: c.peak_pattern_depth.load(Ordering::Relaxed) as u32,
            peak_table_entries: c.peak_table_entries.load(Ordering::Relaxed),
        }
    }

    /// Charges `steps` decode-fuel units; errs once total spend would
    /// exceed [`DecodeLimits::decode_fuel`].
    ///
    /// Decoders charge in deterministic batches (per stream, per table,
    /// every few thousand symbols on hot paths), so total spend for a
    /// given payload is exact and reproducible even though the trip
    /// *point* is batched.
    pub fn charge_fuel(&self, steps: u64) -> Result<(), DecodeError> {
        self.check_deadline()?;
        let prev = self.counters.fuel_spent.fetch_add(steps, Ordering::Relaxed);
        if prev.saturating_add(steps) > self.limits.decode_fuel {
            return Err(trip("decode fuel", self.limits.decode_fuel));
        }
        Ok(())
    }

    /// Checks a single decoded output of `bytes` bytes against
    /// [`DecodeLimits::max_output_bytes`], recording the high-water
    /// mark.
    pub fn check_output_bytes(&self, bytes: u64) -> Result<(), DecodeError> {
        self.check_deadline()?;
        self.counters
            .peak_output_bytes
            .fetch_max(bytes, Ordering::Relaxed);
        if bytes > self.limits.max_output_bytes {
            return Err(trip("decoded output bytes", self.limits.max_output_bytes));
        }
        Ok(())
    }

    /// Checks one stream's symbol count against
    /// [`DecodeLimits::max_stream_symbols`].
    pub fn check_stream_symbols(&self, symbols: u64) -> Result<(), DecodeError> {
        self.check_deadline()?;
        self.counters
            .peak_stream_symbols
            .fetch_max(symbols, Ordering::Relaxed);
        if symbols > self.limits.max_stream_symbols {
            return Err(trip("stream symbols", self.limits.max_stream_symbols));
        }
        Ok(())
    }

    /// Checks a pattern nesting depth against
    /// [`DecodeLimits::max_pattern_depth`].
    pub fn check_pattern_depth(&self, depth: u32) -> Result<(), DecodeError> {
        self.check_deadline()?;
        self.counters
            .peak_pattern_depth
            .fetch_max(u64::from(depth), Ordering::Relaxed);
        if depth > self.limits.max_pattern_depth {
            return Err(trip(
                "pattern nesting depth",
                u64::from(self.limits.max_pattern_depth),
            ));
        }
        Ok(())
    }

    /// Checks one table's entry count against
    /// [`DecodeLimits::max_table_entries`].
    pub fn check_table_entries(&self, entries: u64) -> Result<(), DecodeError> {
        self.check_deadline()?;
        self.counters
            .peak_table_entries
            .fetch_max(entries, Ordering::Relaxed);
        if entries > self.limits.max_table_entries {
            return Err(trip("table entries", self.limits.max_table_entries));
        }
        Ok(())
    }

    /// Charges `bytes` of demand-resident memory; errs (and rolls the
    /// charge back) once residency would exceed
    /// [`DecodeLimits::max_resident_bytes`].
    pub fn charge_resident(&self, bytes: u64) -> Result<(), DecodeError> {
        self.check_deadline()?;
        let prev = self
            .counters
            .resident_bytes
            .fetch_add(bytes, Ordering::Relaxed);
        let now = prev.saturating_add(bytes);
        if now > self.limits.max_resident_bytes {
            self.counters
                .resident_bytes
                .fetch_sub(bytes, Ordering::Relaxed);
            return Err(trip(
                "demand-resident bytes",
                self.limits.max_resident_bytes,
            ));
        }
        self.counters
            .peak_resident_bytes
            .fetch_max(now, Ordering::Relaxed);
        Ok(())
    }

    /// Publishes every meter and high-water mark as a `limits.*` gauge
    /// in the installed telemetry registry (no-op when disabled).
    ///
    /// Publication is explicit, not woven into the decode paths:
    /// unrelated budgets decoding in parallel (e.g. the test harness)
    /// must not race each other on the process-wide gauges. The CLI and
    /// the demand loader call this once per governed operation.
    pub fn publish_telemetry(&self) {
        if !telemetry::enabled() {
            return;
        }
        let u = self.usage();
        telemetry::gauge_set("limits.fuel_spent", u.fuel_spent);
        telemetry::gauge_set("limits.resident_bytes", u.resident_bytes);
        telemetry::gauge_max("limits.peak_resident_bytes", u.peak_resident_bytes);
        telemetry::gauge_max("limits.peak_output_bytes", u.peak_output_bytes);
        telemetry::gauge_max("limits.peak_stream_symbols", u.peak_stream_symbols);
        telemetry::gauge_max(
            "limits.peak_pattern_depth",
            u64::from(u.peak_pattern_depth),
        );
        telemetry::gauge_max("limits.peak_table_entries", u.peak_table_entries);
    }

    /// Releases `bytes` of demand-resident memory (eviction).
    pub fn release_resident(&self, bytes: u64) {
        let c = &self.counters.resident_bytes;
        let mut cur = c.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match c.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_preserve_historical_values() {
        let d = DecodeLimits::default();
        assert_eq!(d.max_output_bytes, 1 << 28);
        assert_eq!(d.max_stream_symbols, 1 << 22);
        assert_eq!(d.max_pattern_depth, 128);
        assert_eq!(d.decode_fuel, u64::MAX);
        assert_eq!(d.max_resident_bytes, u64::MAX);
    }

    #[test]
    fn fuel_meters_and_trips_exactly() {
        let b = Budget::new(DecodeLimits {
            decode_fuel: 10,
            ..DecodeLimits::default()
        });
        assert!(b.charge_fuel(4).is_ok());
        assert!(b.charge_fuel(6).is_ok());
        assert_eq!(b.usage().fuel_spent, 10);
        let err = b.charge_fuel(1).unwrap_err();
        assert_eq!(err, DecodeError::limit("decode fuel", 10));
    }

    #[test]
    fn clones_share_counters_but_with_limits_rebinds_ceilings() {
        let a = Budget::new(DecodeLimits {
            decode_fuel: 5,
            ..DecodeLimits::default()
        });
        let b = a.clone();
        b.charge_fuel(5).unwrap();
        assert!(a.charge_fuel(1).is_err(), "clone shares the meter");
        let raised = a.with_limits(DecodeLimits {
            decode_fuel: 100,
            ..DecodeLimits::default()
        });
        assert!(raised.charge_fuel(1).is_ok(), "raised ceiling, same meter");
        assert_eq!(raised.usage().fuel_spent, a.usage().fuel_spent);
    }

    #[test]
    fn resident_rolls_back_on_refusal_and_releases() {
        let b = Budget::new(DecodeLimits {
            max_resident_bytes: 100,
            ..DecodeLimits::default()
        });
        b.charge_resident(60).unwrap();
        assert!(b.charge_resident(50).is_err());
        assert_eq!(b.usage().resident_bytes, 60, "failed charge rolled back");
        b.charge_resident(40).unwrap();
        b.release_resident(100);
        assert_eq!(b.usage().resident_bytes, 0);
        assert_eq!(b.usage().peak_resident_bytes, 100);
    }

    #[test]
    fn ceilings_record_high_water_marks() {
        let b = Budget::unlimited();
        b.check_output_bytes(10).unwrap();
        b.check_output_bytes(7).unwrap();
        b.check_stream_symbols(33).unwrap();
        b.check_pattern_depth(5).unwrap();
        b.check_table_entries(12).unwrap();
        let u = b.usage();
        assert_eq!(u.peak_output_bytes, 10);
        assert_eq!(u.peak_stream_symbols, 33);
        assert_eq!(u.peak_pattern_depth, 5);
        assert_eq!(u.peak_table_entries, 12);
    }

    #[test]
    fn deadline_boundary_is_exact() {
        let b = Budget::unlimited();
        assert!(b.check_deadline().is_ok(), "no deadline: never trips");

        let now = Instant::now();
        let granted = Duration::from_millis(5);
        let d = b.with_deadline_at(now + granted, granted);
        // At the deadline instant itself the budget still admits work;
        // one nanosecond later it trips as a limit, never Malformed.
        d.check_deadline_at(now + granted).unwrap();
        let err = d
            .check_deadline_at(now + granted + Duration::from_nanos(1))
            .unwrap_err();
        assert_eq!(
            err,
            DecodeError::limit("wall-clock deadline", granted.as_nanos() as u64)
        );
    }

    #[test]
    fn expired_deadline_trips_charges_and_checks() {
        let start = Instant::now();
        let b = Budget::unlimited().with_deadline_at(start - Duration::from_secs(1), Duration::ZERO);
        let expect = DecodeError::limit("wall-clock deadline", 0);
        assert_eq!(b.charge_fuel(1).unwrap_err(), expect);
        assert_eq!(b.check_output_bytes(1).unwrap_err(), expect);
        assert_eq!(b.check_stream_symbols(1).unwrap_err(), expect);
        assert_eq!(b.check_pattern_depth(1).unwrap_err(), expect);
        assert_eq!(b.check_table_entries(1).unwrap_err(), expect);
        assert_eq!(b.charge_resident(1).unwrap_err(), expect);
        assert_eq!(b.usage().resident_bytes, 0, "refused charge leaves no residue");
        // Clearing the deadline re-admits work on the same meters.
        let cleared = b.without_deadline();
        cleared.charge_fuel(1).unwrap();
        assert!(cleared.deadline().is_none());
    }

    #[test]
    fn with_limits_carries_the_deadline() {
        let past = Instant::now() - Duration::from_secs(1);
        let b = Budget::unlimited().with_deadline_at(past, Duration::ZERO);
        let rebound = b.with_limits(DecodeLimits::default());
        assert!(rebound.charge_fuel(1).is_err(), "deadline must carry over");
        assert_eq!(rebound.deadline(), Some(past));
    }

    #[test]
    fn zero_limits_trip_on_first_use() {
        let b = Budget::new(DecodeLimits {
            max_output_bytes: 0,
            max_stream_symbols: 0,
            max_table_entries: 0,
            decode_fuel: 0,
            ..DecodeLimits::default()
        });
        assert!(b.check_output_bytes(1).is_err());
        assert!(b.check_stream_symbols(1).is_err());
        assert!(b.check_table_entries(1).is_err());
        assert!(b.charge_fuel(1).is_err());
        // Zero-size artifacts still pass: the limit is a ceiling, not a ban.
        assert!(b.check_output_bytes(0).is_ok());
    }
}
