//! Stream separation and reassembly.
//!
//! §3 step 2: "form one stream holding the nested operator patterns and
//! one for each type of operator that takes a literal operand". The
//! splitter turns a sequence of statement trees into a pattern-symbol
//! stream (over an interned pattern table) plus one literal stream per
//! operator class; the joiner inverts it exactly.

use crate::treepat::{stream_key_of, TreePattern};
use crate::CoreError;
use codecomp_ir::op::{Literal, Op, Width};
use codecomp_ir::tree::Tree;
use std::collections::BTreeMap;

/// A literal-stream key (the operator mnemonic with width flag).
pub type StreamKey = String;

/// The split representation of a tree sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitStreams {
    /// Interned pattern table, indexed by the symbols in `pattern_stream`.
    pub patterns: Vec<TreePattern>,
    /// One symbol per statement tree.
    pub pattern_stream: Vec<u32>,
    /// Literal streams, keyed by operator class, each in program order.
    pub literals: BTreeMap<StreamKey, Vec<Literal>>,
}

impl SplitStreams {
    /// Splits statement trees into streams.
    pub fn split(trees: &[Tree]) -> SplitStreams {
        let mut patterns: Vec<TreePattern> = Vec::new();
        let mut index: BTreeMap<TreePattern, u32> = BTreeMap::new();
        let mut pattern_stream = Vec::with_capacity(trees.len());
        let mut literals: BTreeMap<StreamKey, Vec<Literal>> = BTreeMap::new();
        // This is the one place that already walks every IR node of a
        // compiled program, so per-operator-class attribution lives
        // here rather than in the ir crate (which core depends on).
        let telemetry_on = crate::telemetry::enabled();
        let mut class_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        for tree in trees {
            let pat = TreePattern::of(tree);
            let sym = *index.entry(pat.clone()).or_insert_with(|| {
                patterns.push(pat.clone());
                patterns.len() as u32 - 1
            });
            pattern_stream.push(sym);
            collect_literals(tree, &mut literals);
            if telemetry_on {
                count_classes(tree, &mut class_counts);
            }
        }
        if telemetry_on {
            for (class, n) in &class_counts {
                crate::telemetry::counter_add(&format!("ir.nodes.{class}"), *n);
            }
            crate::telemetry::counter_add("core.split.trees", trees.len() as u64);
            crate::telemetry::counter_add("core.split.patterns", patterns.len() as u64);
        }
        SplitStreams {
            patterns,
            pattern_stream,
            literals,
        }
    }

    /// Reassembles the original tree sequence.
    ///
    /// # Errors
    ///
    /// [`CoreError`] if a stream underflows or a symbol is out of range.
    pub fn join(&self) -> Result<Vec<Tree>, CoreError> {
        self.clone().join_consuming()
    }

    /// [`Self::join`] that consumes the streams instead of cloning them.
    ///
    /// This is the decode hot path: the generic joiner rendered a
    /// stream-key `String` and chased a `BTreeMap` cursor for *every*
    /// literal. Here the slot→stream mapping is resolved once per
    /// distinct pattern (memoized against the sorted key list) and
    /// literals are moved out of their streams in order, so the
    /// per-literal work is one indexed iterator step. Missing-stream
    /// and underflow errors still surface at the same consumption
    /// point, with the same messages, as [`Self::join`].
    ///
    /// # Errors
    ///
    /// As [`Self::join`].
    pub fn join_consuming(self) -> Result<Vec<Tree>, CoreError> {
        let SplitStreams {
            patterns,
            pattern_stream,
            literals,
        } = self;
        Self::join_parts(&patterns, &pattern_stream, literals)
    }

    /// [`Self::join_consuming`] over borrowed pattern parts: callers
    /// that intern the decoded pattern table (wire's payload-keyed
    /// cache) reassemble against a shared `&[TreePattern]` without
    /// cloning it, consuming only the literal streams.
    ///
    /// # Errors
    ///
    /// As [`Self::join`].
    pub fn join_parts(
        patterns: &[TreePattern],
        pattern_stream: &[u32],
        literals: BTreeMap<StreamKey, Vec<Literal>>,
    ) -> Result<Vec<Tree>, CoreError> {
        /// Where a pattern's literal slot draws from.
        #[derive(Clone, Copy)]
        enum Slot {
            Stream(usize),
            /// Operator with no stream; the key is only rendered if the
            /// slot is actually consumed, so unreferenced patterns
            /// cannot fail a decode.
            Missing(Op, Width),
        }
        let mut keys: Vec<String> = Vec::with_capacity(literals.len());
        let mut streams: Vec<std::vec::IntoIter<Literal>> = Vec::with_capacity(literals.len());
        for (key, stream) in literals {
            // BTreeMap iterates sorted, so `keys` supports binary search.
            keys.push(key);
            streams.push(stream.into_iter());
        }
        // Slot resolution renders a stream-key `String` per distinct
        // *operator*, not per pattern slot: patterns share a handful of
        // literal-bearing operators, so memoizing on `(Op, Width)` cuts
        // thousands of key allocations per module to a dozen.
        let mut op_slots: BTreeMap<(Op, Width), Slot> = BTreeMap::new();
        let mut slot_maps: Vec<Option<Vec<Slot>>> = (0..patterns.len()).map(|_| None).collect();
        let mut out = Vec::with_capacity(pattern_stream.len());
        for &sym in pattern_stream {
            let pat = patterns
                .get(sym as usize)
                .ok_or_else(|| CoreError::Mismatch(format!("bad pattern symbol {sym}")))?;
            let slots = slot_maps[sym as usize].get_or_insert_with(|| {
                let mut v = Vec::with_capacity(pat.literal_slots());
                pat.walk(&mut |node| {
                    if node.has_literal {
                        let slot = *op_slots.entry((node.op, node.width)).or_insert_with(|| {
                            match keys.binary_search(&stream_key_of(node.op, node.width)) {
                                Ok(i) => Slot::Stream(i),
                                Err(_) => Slot::Missing(node.op, node.width),
                            }
                        });
                        v.push(slot);
                    }
                });
                v
            });
            let mut slot_idx = 0;
            let tree = pat.rebuild_slots(&mut || {
                let slot = slots[slot_idx];
                slot_idx += 1;
                match slot {
                    Slot::Stream(i) => streams[i].next().ok_or_else(|| {
                        CoreError::StreamUnderflow(format!("stream {} empty", keys[i]))
                    }),
                    Slot::Missing(op, width) => Err(CoreError::StreamUnderflow(format!(
                        "no stream {}",
                        stream_key_of(op, width)
                    ))),
                }
            })?;
            out.push(tree);
        }
        Ok(out)
    }

    /// Total number of literals across all streams.
    pub fn literal_count(&self) -> usize {
        self.literals.values().map(Vec::len).sum()
    }
}

fn count_classes(tree: &Tree, counts: &mut BTreeMap<&'static str, u64>) {
    *counts.entry(tree.op().opcode.class()).or_insert(0) += 1;
    for k in tree.kids() {
        count_classes(k, counts);
    }
}

fn collect_literals(tree: &Tree, streams: &mut BTreeMap<StreamKey, Vec<Literal>>) {
    if let Some(lit) = tree.literal() {
        let key = crate::treepat::stream_key_of(tree.op(), tree.width());
        streams.entry(key).or_default().push(lit.clone());
    }
    for k in tree.kids() {
        collect_literals(k, streams);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codecomp_ir::op::Literal;
    use codecomp_ir::parse::parse_tree;

    fn salt_trees() -> Vec<Tree> {
        [
            "ASGNI(ADDRLP8[72],SUBI(INDIRI(ADDRLP8[72]),CNSTC[1]))",
            "LEI[1](INDIRI(ADDRLP8[68]),CNSTC[0])",
            "ARGI(INDIRI(ADDRLP8[72]))",
            "ARGI(INDIRI(ADDRLP8[68]))",
            "CALLI(ADDRGP[pepper])",
            "ASGNI(ADDRLP8[68],SUBI(INDIRI(ADDRLP8[68]),CNSTC[1]))",
            "LABELV[1]",
            "RETI(INDIRI(ADDRLP8[68]))",
        ]
        .iter()
        .map(|s| parse_tree(s).unwrap())
        .collect()
    }

    #[test]
    fn paper_addrlp8_stream() {
        // §3: "The ADDRLP8 stream is [72 72 68 72 68 68 68 68]".
        let split = SplitStreams::split(&salt_trees());
        let addrlp8: Vec<i64> = split.literals["ADDRLP8"]
            .iter()
            .map(|l| match l {
                Literal::Offset(v) => i64::from(*v),
                other => panic!("unexpected literal {other:?}"),
            })
            .collect();
        assert_eq!(addrlp8, vec![72, 72, 68, 72, 68, 68, 68, 68]);
    }

    #[test]
    fn pattern_stream_shares_repeated_shapes() {
        let split = SplitStreams::split(&salt_trees());
        // The two ASGNI statements and the two ARGI statements share
        // patterns: 8 statements, 6 distinct patterns.
        assert_eq!(split.pattern_stream.len(), 8);
        assert_eq!(split.patterns.len(), 6);
        assert_eq!(split.pattern_stream[0], split.pattern_stream[5]);
        assert_eq!(split.pattern_stream[2], split.pattern_stream[3]);
    }

    #[test]
    fn join_inverts_split() {
        let trees = salt_trees();
        let split = SplitStreams::split(&trees);
        assert_eq!(split.join().unwrap(), trees);
    }

    #[test]
    fn streams_are_per_operator_class() {
        let split = SplitStreams::split(&salt_trees());
        assert!(split.literals.contains_key("ADDRLP8"));
        assert!(split.literals.contains_key("CNSTC"));
        assert!(split.literals.contains_key("ADDRGP"));
        assert!(split.literals.contains_key("LEI"));
        assert!(split.literals.contains_key("LABELV"));
        assert_eq!(
            split.literals["ADDRGP"],
            vec![Literal::Symbol("pepper".into())]
        );
    }

    #[test]
    fn join_detects_truncated_stream() {
        let trees = salt_trees();
        let mut split = SplitStreams::split(&trees);
        split.literals.get_mut("CNSTC").unwrap().pop();
        assert!(split.join().is_err());
    }

    #[test]
    fn join_detects_bad_symbol() {
        let trees = salt_trees();
        let mut split = SplitStreams::split(&trees);
        split.pattern_stream[0] = 999;
        assert!(split.join().is_err());
    }

    #[test]
    fn empty_input() {
        let split = SplitStreams::split(&[]);
        assert!(split.patterns.is_empty());
        assert_eq!(split.join().unwrap(), Vec::<Tree>::new());
        assert_eq!(split.literal_count(), 0);
    }
}
