//! Stream separation and reassembly.
//!
//! §3 step 2: "form one stream holding the nested operator patterns and
//! one for each type of operator that takes a literal operand". The
//! splitter turns a sequence of statement trees into a pattern-symbol
//! stream (over an interned pattern table) plus one literal stream per
//! operator class; the joiner inverts it exactly.

use crate::treepat::TreePattern;
use crate::CoreError;
use codecomp_ir::op::Literal;
use codecomp_ir::tree::Tree;
use std::collections::BTreeMap;

/// A literal-stream key (the operator mnemonic with width flag).
pub type StreamKey = String;

/// The split representation of a tree sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitStreams {
    /// Interned pattern table, indexed by the symbols in `pattern_stream`.
    pub patterns: Vec<TreePattern>,
    /// One symbol per statement tree.
    pub pattern_stream: Vec<u32>,
    /// Literal streams, keyed by operator class, each in program order.
    pub literals: BTreeMap<StreamKey, Vec<Literal>>,
}

impl SplitStreams {
    /// Splits statement trees into streams.
    pub fn split(trees: &[Tree]) -> SplitStreams {
        let mut patterns: Vec<TreePattern> = Vec::new();
        let mut index: BTreeMap<TreePattern, u32> = BTreeMap::new();
        let mut pattern_stream = Vec::with_capacity(trees.len());
        let mut literals: BTreeMap<StreamKey, Vec<Literal>> = BTreeMap::new();
        // This is the one place that already walks every IR node of a
        // compiled program, so per-operator-class attribution lives
        // here rather than in the ir crate (which core depends on).
        let telemetry_on = crate::telemetry::enabled();
        let mut class_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        for tree in trees {
            let pat = TreePattern::of(tree);
            let sym = *index.entry(pat.clone()).or_insert_with(|| {
                patterns.push(pat.clone());
                patterns.len() as u32 - 1
            });
            pattern_stream.push(sym);
            collect_literals(tree, &mut literals);
            if telemetry_on {
                count_classes(tree, &mut class_counts);
            }
        }
        if telemetry_on {
            for (class, n) in &class_counts {
                crate::telemetry::counter_add(&format!("ir.nodes.{class}"), *n);
            }
            crate::telemetry::counter_add("core.split.trees", trees.len() as u64);
            crate::telemetry::counter_add("core.split.patterns", patterns.len() as u64);
        }
        SplitStreams {
            patterns,
            pattern_stream,
            literals,
        }
    }

    /// Reassembles the original tree sequence.
    ///
    /// # Errors
    ///
    /// [`CoreError`] if a stream underflows or a symbol is out of range.
    pub fn join(&self) -> Result<Vec<Tree>, CoreError> {
        let mut cursors: BTreeMap<String, usize> = BTreeMap::new();
        let mut out = Vec::with_capacity(self.pattern_stream.len());
        for &sym in &self.pattern_stream {
            let pat = self
                .patterns
                .get(sym as usize)
                .ok_or_else(|| CoreError::Mismatch(format!("bad pattern symbol {sym}")))?;
            let tree = pat.rebuild(&mut |key| {
                let stream = self
                    .literals
                    .get(key)
                    .ok_or_else(|| CoreError::StreamUnderflow(format!("no stream {key}")))?;
                let cursor = cursors.entry(key.to_string()).or_insert(0);
                let lit = stream
                    .get(*cursor)
                    .ok_or_else(|| CoreError::StreamUnderflow(format!("stream {key} empty")))?
                    .clone();
                *cursor += 1;
                Ok(lit)
            })?;
            out.push(tree);
        }
        Ok(out)
    }

    /// Total number of literals across all streams.
    pub fn literal_count(&self) -> usize {
        self.literals.values().map(Vec::len).sum()
    }
}

fn count_classes(tree: &Tree, counts: &mut BTreeMap<&'static str, u64>) {
    *counts.entry(tree.op().opcode.class()).or_insert(0) += 1;
    for k in tree.kids() {
        count_classes(k, counts);
    }
}

fn collect_literals(tree: &Tree, streams: &mut BTreeMap<StreamKey, Vec<Literal>>) {
    if let Some(lit) = tree.literal() {
        let key = crate::treepat::stream_key_of(tree.op(), tree.width());
        streams.entry(key).or_default().push(lit.clone());
    }
    for k in tree.kids() {
        collect_literals(k, streams);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codecomp_ir::op::Literal;
    use codecomp_ir::parse::parse_tree;

    fn salt_trees() -> Vec<Tree> {
        [
            "ASGNI(ADDRLP8[72],SUBI(INDIRI(ADDRLP8[72]),CNSTC[1]))",
            "LEI[1](INDIRI(ADDRLP8[68]),CNSTC[0])",
            "ARGI(INDIRI(ADDRLP8[72]))",
            "ARGI(INDIRI(ADDRLP8[68]))",
            "CALLI(ADDRGP[pepper])",
            "ASGNI(ADDRLP8[68],SUBI(INDIRI(ADDRLP8[68]),CNSTC[1]))",
            "LABELV[1]",
            "RETI(INDIRI(ADDRLP8[68]))",
        ]
        .iter()
        .map(|s| parse_tree(s).unwrap())
        .collect()
    }

    #[test]
    fn paper_addrlp8_stream() {
        // §3: "The ADDRLP8 stream is [72 72 68 72 68 68 68 68]".
        let split = SplitStreams::split(&salt_trees());
        let addrlp8: Vec<i64> = split.literals["ADDRLP8"]
            .iter()
            .map(|l| match l {
                Literal::Offset(v) => i64::from(*v),
                other => panic!("unexpected literal {other:?}"),
            })
            .collect();
        assert_eq!(addrlp8, vec![72, 72, 68, 72, 68, 68, 68, 68]);
    }

    #[test]
    fn pattern_stream_shares_repeated_shapes() {
        let split = SplitStreams::split(&salt_trees());
        // The two ASGNI statements and the two ARGI statements share
        // patterns: 8 statements, 6 distinct patterns.
        assert_eq!(split.pattern_stream.len(), 8);
        assert_eq!(split.patterns.len(), 6);
        assert_eq!(split.pattern_stream[0], split.pattern_stream[5]);
        assert_eq!(split.pattern_stream[2], split.pattern_stream[3]);
    }

    #[test]
    fn join_inverts_split() {
        let trees = salt_trees();
        let split = SplitStreams::split(&trees);
        assert_eq!(split.join().unwrap(), trees);
    }

    #[test]
    fn streams_are_per_operator_class() {
        let split = SplitStreams::split(&salt_trees());
        assert!(split.literals.contains_key("ADDRLP8"));
        assert!(split.literals.contains_key("CNSTC"));
        assert!(split.literals.contains_key("ADDRGP"));
        assert!(split.literals.contains_key("LEI"));
        assert!(split.literals.contains_key("LABELV"));
        assert_eq!(
            split.literals["ADDRGP"],
            vec![Literal::Symbol("pepper".into())]
        );
    }

    #[test]
    fn join_detects_truncated_stream() {
        let trees = salt_trees();
        let mut split = SplitStreams::split(&trees);
        split.literals.get_mut("CNSTC").unwrap().pop();
        assert!(split.join().is_err());
    }

    #[test]
    fn join_detects_bad_symbol() {
        let trees = salt_trees();
        let mut split = SplitStreams::split(&trees);
        split.pattern_stream[0] = 999;
        assert!(split.join().is_err());
    }

    #[test]
    fn empty_input() {
        let split = SplitStreams::split(&[]);
        assert!(split.patterns.is_empty());
        assert_eq!(split.join().unwrap(), Vec::<Tree>::new());
        assert_eq!(split.literal_count(), 0);
    }
}
