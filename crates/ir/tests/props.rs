//! Randomized (deterministic, seeded) tests: random well-formed trees
//! survive the text and binary representations unchanged, and the
//! decoders are total on garbage.

use codecomp_core::fault::XorShift64;
use codecomp_ir::binary::{decode_module, encode_module};
use codecomp_ir::op::{IrType, Op, Opcode};
use codecomp_ir::parse::{parse_module, parse_tree};
use codecomp_ir::tree::{Function, Global, Module, Tree};

const CASES: u64 = 128;

fn ident(rng: &mut XorShift64) -> String {
    let first = (b'a' + rng.below(26) as u8) as char;
    let mut s = String::from(first);
    for _ in 0..rng.below(7) {
        let c = match rng.below(37) {
            v @ 0..=25 => (b'a' + v as u8) as char,
            v @ 26..=35 => (b'0' + (v - 26) as u8) as char,
            _ => '_',
        };
        s.push(c);
    }
    s
}

fn leaf(rng: &mut XorShift64) -> Tree {
    match rng.below(4) {
        0 => Tree::cnst_auto(rng.range_i64(-300_000, 300_000)),
        1 => Tree::addr_local(rng.range_i64(-500, 500) as i32),
        2 => Tree::addr_formal(rng.range_i64(0, 64) as i32),
        _ => Tree::addr_global(&ident(rng)),
    }
}

fn expr_tree(rng: &mut XorShift64, depth: usize) -> Tree {
    if depth == 0 || rng.chance(1, 4) {
        return leaf(rng);
    }
    match rng.below(5) {
        0 => {
            let ty = [IrType::I, IrType::C, IrType::S, IrType::U][rng.below(4) as usize];
            Tree::indir(ty, expr_tree(rng, depth - 1))
        }
        1 => {
            let ops = [
                Opcode::Add,
                Opcode::Sub,
                Opcode::Mul,
                Opcode::BAnd,
                Opcode::BOr,
                Opcode::BXor,
                Opcode::Lsh,
                Opcode::Rsh,
            ];
            let op = ops[rng.below(ops.len() as u64) as usize];
            let a = expr_tree(rng, depth - 1);
            let b = expr_tree(rng, depth - 1);
            Tree::binary(op, IrType::I, a, b)
        }
        2 => Tree::unary(Op::new(Opcode::Neg, IrType::I), expr_tree(rng, depth - 1)),
        3 => Tree::unary(Op::cvt(IrType::C, IrType::I), expr_tree(rng, depth - 1)),
        _ => {
            let a = expr_tree(rng, depth - 1);
            let v = expr_tree(rng, depth - 1);
            Tree::asgn(IrType::I, a, v)
        }
    }
}

fn stmt_tree(rng: &mut XorShift64) -> Tree {
    match rng.below(4) {
        0 => {
            let a = expr_tree(rng, 3);
            let v = expr_tree(rng, 3);
            Tree::asgn(IrType::I, a, v)
        }
        1 => Tree::arg(IrType::I, expr_tree(rng, 3)),
        2 => Tree::ret(IrType::I, expr_tree(rng, 3)),
        _ => {
            let ops = [
                Opcode::Eq,
                Opcode::Ne,
                Opcode::Lt,
                Opcode::Le,
                Opcode::Gt,
                Opcode::Ge,
            ];
            let op = ops[rng.below(ops.len() as u64) as usize];
            let a = expr_tree(rng, 3);
            let b = expr_tree(rng, 3);
            Tree::branch(op, IrType::I, 1, a, b)
        }
    }
}

fn module(trees: Vec<Tree>, globals: Vec<(String, u32)>) -> Module {
    let mut f = Function::new("main", 0, 64);
    f.body = trees;
    f.body.push(Tree::label(1));
    f.body.push(Tree::ret_void());
    Module {
        globals: globals
            .into_iter()
            .map(|(name, size)| Global {
                name,
                size: size.max(1),
                init: vec![],
            })
            .collect(),
        functions: vec![f],
    }
}

#[test]
fn tree_print_parse_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x1A00 + case);
        let t = expr_tree(&mut rng, 4);
        let text = t.to_string();
        let back = parse_tree(&text).unwrap();
        assert_eq!(back, t);
    }
}

#[test]
fn module_text_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x1B00 + case);
        let trees = (0..rng.below(12)).map(|_| stmt_tree(&mut rng)).collect();
        let m = module(trees, vec![("g0".into(), 8)]);
        let text = m.to_string();
        let back = parse_module(&text).unwrap();
        assert_eq!(back, m);
    }
}

#[test]
fn module_binary_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x1C00 + case);
        let trees = (0..rng.below(12)).map(|_| stmt_tree(&mut rng)).collect();
        let mut names = std::collections::HashSet::new();
        let globals: Vec<(String, u32)> = (0..rng.below(4))
            .map(|_| (ident(&mut rng), 1 + rng.below(63) as u32))
            .filter(|(n, _)| names.insert(n.clone()))
            .collect();
        let m = module(trees, globals);
        let bytes = encode_module(&m).unwrap();
        assert_eq!(decode_module(&bytes).unwrap(), m);
    }
}

#[test]
fn binary_decoder_never_panics() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x1D00 + case);
        let len = rng.below(256) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = decode_module(&bytes);
    }
}

#[test]
fn text_parser_never_panics() {
    const CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789[](),*$ -";
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x1E00 + case);
        let len = rng.below(81) as usize;
        let text: String = (0..len)
            .map(|_| CHARS[rng.below(CHARS.len() as u64) as usize] as char)
            .collect();
        let _ = parse_tree(&text);
        let _ = parse_module(&text);
    }
}
