//! Property tests: random well-formed trees survive the text and binary
//! representations unchanged.

use codecomp_ir::binary::{decode_module, encode_module};
use codecomp_ir::op::{IrType, Op, Opcode};
use codecomp_ir::parse::{parse_module, parse_tree};
use codecomp_ir::tree::{Function, Global, Module, Tree};
use proptest::prelude::*;

/// A strategy producing arbitrary well-formed expression trees.
fn expr_tree() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        (-300_000i64..300_000).prop_map(Tree::cnst_auto),
        (-500i32..500).prop_map(Tree::addr_local),
        (0i32..64).prop_map(Tree::addr_formal),
        "[a-z][a-z0-9_]{0,6}".prop_map(Tree::addr_global),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (any::<u8>(), inner.clone()).prop_map(|(sel, kid)| {
                let ty = [IrType::I, IrType::C, IrType::S, IrType::U][usize::from(sel % 4)];
                Tree::indir(ty, kid)
            }),
            (any::<u8>(), inner.clone(), inner.clone()).prop_map(|(sel, a, b)| {
                let ops = [
                    Opcode::Add,
                    Opcode::Sub,
                    Opcode::Mul,
                    Opcode::BAnd,
                    Opcode::BOr,
                    Opcode::BXor,
                    Opcode::Lsh,
                    Opcode::Rsh,
                ];
                Tree::binary(ops[usize::from(sel) % ops.len()], IrType::I, a, b)
            }),
            inner
                .clone()
                .prop_map(|k| Tree::unary(Op::new(Opcode::Neg, IrType::I), k)),
            inner
                .clone()
                .prop_map(|k| Tree::unary(Op::cvt(IrType::C, IrType::I), k)),
            (inner.clone(), inner).prop_map(|(a, v)| Tree::asgn(IrType::I, a, v)),
        ]
    })
}

/// Statement trees (what function bodies hold).
fn stmt_tree() -> impl Strategy<Value = Tree> {
    prop_oneof![
        (expr_tree(), expr_tree()).prop_map(|(a, v)| Tree::asgn(IrType::I, a, v)),
        expr_tree().prop_map(|v| Tree::arg(IrType::I, v)),
        expr_tree().prop_map(|v| Tree::ret(IrType::I, v)),
        (any::<u8>(), expr_tree(), expr_tree()).prop_map(|(sel, a, b)| {
            let ops = [
                Opcode::Eq,
                Opcode::Ne,
                Opcode::Lt,
                Opcode::Le,
                Opcode::Gt,
                Opcode::Ge,
            ];
            Tree::branch(ops[usize::from(sel) % ops.len()], IrType::I, 1, a, b)
        }),
    ]
}

fn module(trees: Vec<Tree>, globals: Vec<(String, u32)>) -> Module {
    let mut f = Function::new("main", 0, 64);
    f.body = trees;
    f.body.push(Tree::label(1));
    f.body.push(Tree::ret_void());
    Module {
        globals: globals
            .into_iter()
            .map(|(name, size)| Global {
                name,
                size: size.max(1),
                init: vec![],
            })
            .collect(),
        functions: vec![f],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tree_print_parse_roundtrip(t in expr_tree()) {
        let text = t.to_string();
        let back = parse_tree(&text).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn module_text_roundtrip(trees in prop::collection::vec(stmt_tree(), 0..12)) {
        let m = module(trees, vec![("g0".into(), 8)]);
        let text = m.to_string();
        let back = parse_module(&text).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn module_binary_roundtrip(
        trees in prop::collection::vec(stmt_tree(), 0..12),
        globals in prop::collection::vec(("[a-z][a-z0-9]{0,5}", 1u32..64), 0..4),
    ) {
        let mut names = std::collections::HashSet::new();
        let globals: Vec<(String, u32)> =
            globals.into_iter().filter(|(n, _)| names.insert(n.clone())).collect();
        let m = module(trees, globals);
        let bytes = encode_module(&m).unwrap();
        prop_assert_eq!(decode_module(&bytes).unwrap(), m);
    }

    #[test]
    fn binary_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_module(&bytes);
    }

    #[test]
    fn text_parser_never_panics(text in "[A-Za-z0-9\\[\\]\\(\\),*$ -]{0,80}") {
        let _ = parse_tree(&text);
        let _ = parse_module(&text);
    }
}
