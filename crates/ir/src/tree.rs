//! Trees, functions, and modules.

use crate::op::{IrType, Literal, LiteralKind, Op, Opcode, Width};
use crate::IrError;

/// One IR expression or statement tree.
///
/// Construction goes through the typed helpers ([`Tree::cnst`],
/// [`Tree::asgn`], …) or [`Tree::build`], which validates arity and
/// literal kind; a `Tree` therefore always satisfies the operator table.
#[derive(Debug, Clone, PartialEq)]
pub struct Tree {
    op: Op,
    literal: Option<Literal>,
    kids: Vec<Tree>,
}

impl Tree {
    /// Builds and validates a node.
    ///
    /// # Errors
    ///
    /// [`IrError::Malformed`] if the child count or literal kind does not
    /// match the opcode's signature.
    #[inline]
    pub fn build(op: Op, literal: Option<Literal>, kids: Vec<Tree>) -> Result<Tree, IrError> {
        let arity_ok = match op.opcode.arity() {
            Some(n) => kids.len() == n,
            None => kids.len() <= 1,
        };
        let want = op.opcode.literal_kind();
        let got = literal.as_ref().map_or(LiteralKind::None, Literal::kind);
        if arity_ok && want == got && !(op.opcode == Opcode::Cvt && op.from.is_none()) {
            return Ok(Tree { op, literal, kids });
        }
        Err(Self::build_error(op, literal, &kids))
    }

    /// The diagnostic for a [`Tree::build`] rejection, out of line so the
    /// hot constructor stays small enough to inline.
    #[cold]
    fn build_error(op: Op, literal: Option<Literal>, kids: &[Tree]) -> IrError {
        if let Some(n) = op.opcode.arity() {
            if kids.len() != n {
                return IrError::Malformed(format!(
                    "{} expects {} children, got {}",
                    op.mnemonic(),
                    n,
                    kids.len()
                ));
            }
        } else if kids.len() > 1 {
            return IrError::Malformed(format!(
                "{} expects at most one child, got {}",
                op.mnemonic(),
                kids.len()
            ));
        }
        let want = op.opcode.literal_kind();
        let got = literal.as_ref().map_or(LiteralKind::None, Literal::kind);
        if want != got {
            return IrError::Malformed(format!(
                "{} expects literal kind {:?}, got {:?}",
                op.mnemonic(),
                want,
                got
            ));
        }
        IrError::Malformed("CVT requires a source type".into())
    }

    /// The operator at the root.
    pub fn op(&self) -> Op {
        self.op
    }

    /// The literal operand, if any.
    pub fn literal(&self) -> Option<&Literal> {
        self.literal.as_ref()
    }

    /// The children.
    pub fn kids(&self) -> &[Tree] {
        &self.kids
    }

    /// The width flag this node prints/encodes with: derived from the
    /// literal for offset-carrying operators, `W32` otherwise.
    pub fn width(&self) -> Width {
        match (self.op.opcode, &self.literal) {
            (Opcode::AddrL | Opcode::AddrF, Some(lit)) => lit.width(),
            (Opcode::Cnst, Some(_)) => match self.op.ty {
                IrType::C => Width::W8,
                IrType::S => Width::W16,
                _ => Width::W32,
            },
            _ => Width::W32,
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + self.kids.iter().map(Tree::node_count).sum::<usize>()
    }

    /// Visits nodes in prefix order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Tree)) {
        f(self);
        for k in &self.kids {
            k.walk(f);
        }
    }

    // ---- constructors -------------------------------------------------

    /// `CNST<ty>[v]` — the front end picks `ty` to flag literal width.
    pub fn cnst(ty: IrType, v: i64) -> Tree {
        Tree {
            op: Op::new(Opcode::Cnst, ty),
            literal: Some(Literal::Int(v)),
            kids: vec![],
        }
    }

    /// An integer constant with its type narrowed to the paper's
    /// width-flag convention (`CNSTC` for 8-bit, `CNSTS` for 16, else `CNSTI`).
    pub fn cnst_auto(v: i64) -> Tree {
        let ty = match Width::for_value(v) {
            Width::W8 => IrType::C,
            Width::W16 => IrType::S,
            Width::W32 => IrType::I,
        };
        Tree::cnst(ty, v)
    }

    /// `ADDRGP[name]`.
    pub fn addr_global(name: impl Into<String>) -> Tree {
        Tree {
            op: Op::new(Opcode::AddrG, IrType::P),
            literal: Some(Literal::Symbol(name.into())),
            kids: vec![],
        }
    }

    /// `ADDRLP[offset]`.
    pub fn addr_local(offset: i32) -> Tree {
        Tree {
            op: Op::new(Opcode::AddrL, IrType::P),
            literal: Some(Literal::Offset(offset)),
            kids: vec![],
        }
    }

    /// `ADDRFP[offset]`.
    pub fn addr_formal(offset: i32) -> Tree {
        Tree {
            op: Op::new(Opcode::AddrF, IrType::P),
            literal: Some(Literal::Offset(offset)),
            kids: vec![],
        }
    }

    /// `INDIR<ty>(addr)`.
    pub fn indir(ty: IrType, addr: Tree) -> Tree {
        Tree {
            op: Op::new(Opcode::Indir, ty),
            literal: None,
            kids: vec![addr],
        }
    }

    /// `ASGN<ty>(addr, value)`.
    pub fn asgn(ty: IrType, addr: Tree, value: Tree) -> Tree {
        Tree {
            op: Op::new(Opcode::Asgn, ty),
            literal: None,
            kids: vec![addr, value],
        }
    }

    /// A binary arithmetic node.
    ///
    /// # Panics
    ///
    /// Panics if `opcode` is not a two-child arithmetic operator.
    pub fn binary(opcode: Opcode, ty: IrType, a: Tree, b: Tree) -> Tree {
        assert_eq!(opcode.arity(), Some(2), "binary() needs a 2-ary opcode");
        assert_eq!(
            opcode.literal_kind(),
            LiteralKind::None,
            "binary() takes no literal"
        );
        Tree {
            op: Op::new(opcode, ty),
            literal: None,
            kids: vec![a, b],
        }
    }

    /// `ADD<ty>(a, b)`.
    pub fn add(ty: IrType, a: Tree, b: Tree) -> Tree {
        Tree::binary(Opcode::Add, ty, a, b)
    }

    /// `SUB<ty>(a, b)`.
    pub fn sub(ty: IrType, a: Tree, b: Tree) -> Tree {
        Tree::binary(Opcode::Sub, ty, a, b)
    }

    /// `MUL<ty>(a, b)`.
    pub fn mul(ty: IrType, a: Tree, b: Tree) -> Tree {
        Tree::binary(Opcode::Mul, ty, a, b)
    }

    /// A unary node (`NEG`, `BCOM`, `CVT`, …).
    ///
    /// # Panics
    ///
    /// Panics if `op` is not 1-ary or carries a literal.
    pub fn unary(op: Op, kid: Tree) -> Tree {
        assert_eq!(op.opcode.arity(), Some(1), "unary() needs a 1-ary opcode");
        assert_eq!(
            op.opcode.literal_kind(),
            LiteralKind::None,
            "unary() takes no literal"
        );
        Tree {
            op,
            literal: None,
            kids: vec![kid],
        }
    }

    /// A conditional branch `Eq/Ne/Lt/Le/Gt/Ge <ty>[label](a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `opcode` is not a branch.
    pub fn branch(opcode: Opcode, ty: IrType, label: u32, a: Tree, b: Tree) -> Tree {
        assert!(opcode.is_branch(), "branch() needs a comparison opcode");
        Tree {
            op: Op::new(opcode, ty),
            literal: Some(Literal::Label(label)),
            kids: vec![a, b],
        }
    }

    /// `ARG<ty>(value)`.
    pub fn arg(ty: IrType, value: Tree) -> Tree {
        Tree {
            op: Op::new(Opcode::Arg, ty),
            literal: None,
            kids: vec![value],
        }
    }

    /// `CALL<ty>(addr)`.
    pub fn call(ty: IrType, addr: Tree) -> Tree {
        Tree {
            op: Op::new(Opcode::Call, ty),
            literal: None,
            kids: vec![addr],
        }
    }

    /// `RET<ty>(value)`.
    pub fn ret(ty: IrType, value: Tree) -> Tree {
        Tree {
            op: Op::new(Opcode::Ret, ty),
            literal: None,
            kids: vec![value],
        }
    }

    /// `RETV` with no value.
    pub fn ret_void() -> Tree {
        Tree {
            op: Op::new(Opcode::Ret, IrType::V),
            literal: None,
            kids: vec![],
        }
    }

    /// `JUMPV[label]`.
    pub fn jump(label: u32) -> Tree {
        Tree {
            op: Op::new(Opcode::Jump, IrType::V),
            literal: Some(Literal::Label(label)),
            kids: vec![],
        }
    }

    /// `LABELV[label]`.
    pub fn label(label: u32) -> Tree {
        Tree {
            op: Op::new(Opcode::LabelDef, IrType::V),
            literal: Some(Literal::Label(label)),
            kids: vec![],
        }
    }
}

/// A compiled function: a forest of statement trees plus frame layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Number of declared parameters.
    pub param_count: usize,
    /// Bytes of locals (parameters are spilled into the frame too).
    pub frame_size: u32,
    /// Statement trees in execution order.
    pub body: Vec<Tree>,
}

impl Function {
    /// Creates an empty function.
    pub fn new(name: impl Into<String>, param_count: usize, frame_size: u32) -> Self {
        Self {
            name: name.into(),
            param_count,
            frame_size,
            body: Vec::new(),
        }
    }

    /// Total tree-node count across the body.
    pub fn node_count(&self) -> usize {
        self.body.iter().map(Tree::node_count).sum()
    }

    /// All labels defined in the body.
    pub fn defined_labels(&self) -> Vec<u32> {
        let mut labels = Vec::new();
        for stmt in &self.body {
            if stmt.op().opcode == Opcode::LabelDef {
                if let Some(Literal::Label(l)) = stmt.literal() {
                    labels.push(*l);
                }
            }
        }
        labels
    }

    /// Checks that every referenced label is defined exactly once.
    ///
    /// # Errors
    ///
    /// [`IrError::Malformed`] listing the offending label.
    pub fn validate_labels(&self) -> Result<(), IrError> {
        let defined = self.defined_labels();
        let mut sorted = defined.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != defined.len() {
            return Err(IrError::Malformed(format!(
                "function {}: duplicate label definition",
                self.name
            )));
        }
        let mut err = None;
        for stmt in &self.body {
            stmt.walk(&mut |node| {
                if err.is_some() {
                    return;
                }
                if let Some(Literal::Label(l)) = node.literal() {
                    if node.op().opcode != Opcode::LabelDef && sorted.binary_search(l).is_err() {
                        err = Some(IrError::Malformed(format!(
                            "function {}: branch to undefined label {l}",
                            self.name
                        )));
                    }
                }
            });
        }
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// A global data definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Size in bytes.
    pub size: u32,
    /// Optional initializer bytes (zero-filled when absent or short).
    pub init: Vec<u8>,
}

/// A whole compiled module.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Global variables.
    pub globals: Vec<Global>,
    /// Functions in definition order.
    pub functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Total tree-node count across all functions.
    pub fn node_count(&self) -> usize {
        self.functions.iter().map(Function::node_count).sum()
    }

    /// Validates all function label references.
    ///
    /// # Errors
    ///
    /// First label error found, if any.
    pub fn validate(&self) -> Result<(), IrError> {
        for f in &self.functions {
            f.validate_labels()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_validates_arity() {
        let bad = Tree::build(
            Op::new(Opcode::Add, IrType::I),
            None,
            vec![Tree::cnst_auto(1)],
        );
        assert!(matches!(bad, Err(IrError::Malformed(_))));
    }

    #[test]
    fn build_validates_literal_kind() {
        let bad = Tree::build(
            Op::new(Opcode::Cnst, IrType::I),
            Some(Literal::Label(3)),
            vec![],
        );
        assert!(matches!(bad, Err(IrError::Malformed(_))));
        let good = Tree::build(
            Op::new(Opcode::Cnst, IrType::I),
            Some(Literal::Int(3)),
            vec![],
        );
        assert!(good.is_ok());
    }

    #[test]
    fn ret_accepts_zero_or_one_children() {
        assert!(Tree::build(Op::new(Opcode::Ret, IrType::V), None, vec![]).is_ok());
        assert!(Tree::build(
            Op::new(Opcode::Ret, IrType::I),
            None,
            vec![Tree::cnst_auto(1)]
        )
        .is_ok());
        assert!(Tree::build(
            Op::new(Opcode::Ret, IrType::I),
            None,
            vec![Tree::cnst_auto(1), Tree::cnst_auto(2)]
        )
        .is_err());
    }

    #[test]
    fn cnst_auto_narrows() {
        assert_eq!(Tree::cnst_auto(1).op().ty, IrType::C);
        assert_eq!(Tree::cnst_auto(300).op().ty, IrType::S);
        assert_eq!(Tree::cnst_auto(100_000).op().ty, IrType::I);
    }

    #[test]
    fn width_flags() {
        assert_eq!(Tree::addr_local(72).width(), Width::W8);
        assert_eq!(Tree::addr_local(300).width(), Width::W16);
        assert_eq!(Tree::addr_local(100_000).width(), Width::W32);
        assert_eq!(Tree::cnst(IrType::C, 1).width(), Width::W8);
        assert_eq!(Tree::cnst(IrType::I, 1).width(), Width::W32);
    }

    #[test]
    fn node_count_and_walk() {
        let t = Tree::asgn(
            IrType::I,
            Tree::addr_local(0),
            Tree::add(IrType::I, Tree::cnst_auto(1), Tree::cnst_auto(2)),
        );
        assert_eq!(t.node_count(), 5);
        let mut names = Vec::new();
        t.walk(&mut |n| names.push(n.op().opcode));
        assert_eq!(
            names,
            vec![
                Opcode::Asgn,
                Opcode::AddrL,
                Opcode::Add,
                Opcode::Cnst,
                Opcode::Cnst
            ]
        );
    }

    #[test]
    fn label_validation_catches_undefined() {
        let mut f = Function::new("f", 0, 0);
        f.body.push(Tree::branch(
            Opcode::Le,
            IrType::I,
            9,
            Tree::cnst_auto(0),
            Tree::cnst_auto(1),
        ));
        assert!(f.validate_labels().is_err());
        f.body.push(Tree::label(9));
        assert!(f.validate_labels().is_ok());
    }

    #[test]
    fn label_validation_catches_duplicates() {
        let mut f = Function::new("f", 0, 0);
        f.body.push(Tree::label(1));
        f.body.push(Tree::label(1));
        assert!(f.validate_labels().is_err());
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new();
        m.functions.push(Function::new("main", 0, 8));
        assert!(m.function("main").is_some());
        assert!(m.function("other").is_none());
        assert!(m.validate().is_ok());
    }
}
