//! A reference evaluator for IR modules.
//!
//! The evaluator defines the semantics that the VM code generator, the
//! BRISC interpreter, and the fast translation tier must all agree with;
//! differential tests run the same program through every tier and
//! compare results and output.
//!
//! # Memory model
//!
//! A single flat 32-bit byte-addressed memory. Globals are laid out from
//! low addresses; the stack grows downward from the top. Function
//! parameters are spilled by the *caller* into the callee's frame at
//! offsets `4*i` — the same convention the front end and the VM code
//! generator use. Function symbols evaluate to pseudo-addresses in a
//! reserved range so indirect calls work.

use crate::op::{IrType, Literal, Opcode};
use crate::tree::{Function, Module, Tree};
use crate::IrError;
use std::collections::HashMap;

/// Pseudo-address space base for function symbols.
const FUNC_BASE: u32 = 0x0100_0000;
/// Lowest address handed to globals (0 stays unmapped as "null").
const GLOBAL_BASE: u32 = 16;

/// Built-in host functions available to evaluated programs.
///
/// `print_int(v)` appends `v` in decimal plus a newline to the output;
/// `print_char(c)` appends the single byte `c`.
pub const HOST_FUNCTIONS: [&str; 2] = ["print_int", "print_char"];

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Statement trees executed.
    pub statements: u64,
    /// Tree nodes evaluated.
    pub nodes: u64,
    /// Calls performed (including host calls).
    pub calls: u64,
}

/// The result of running a program: exit value, captured output, stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOutcome {
    /// The entry function's return value.
    pub value: i64,
    /// Bytes written through the host print functions.
    pub output: Vec<u8>,
    /// Execution counters.
    pub stats: EvalStats,
}

/// A tree-walking evaluator over a module.
#[derive(Debug)]
pub struct Evaluator<'m> {
    module: &'m Module,
    mem: Vec<u8>,
    global_addrs: HashMap<String, u32>,
    func_index: HashMap<String, usize>,
    sp: u32,
    args: Vec<i64>,
    output: Vec<u8>,
    stats: EvalStats,
    fuel: u64,
}

impl<'m> Evaluator<'m> {
    /// Prepares an evaluator with `mem_size` bytes of memory and a fuel
    /// budget of `fuel` statements.
    ///
    /// # Errors
    ///
    /// [`IrError::Eval`] if the globals do not fit in memory.
    pub fn new(module: &'m Module, mem_size: u32, fuel: u64) -> Result<Self, IrError> {
        let mut global_addrs = HashMap::new();
        let mut next = GLOBAL_BASE;
        let mut mem = vec![0u8; mem_size as usize];
        for g in &module.globals {
            let aligned = next.div_ceil(4) * 4;
            if u64::from(aligned) + u64::from(g.size) > u64::from(mem_size) {
                return Err(IrError::Eval(format!("global {} does not fit", g.name)));
            }
            let start = aligned as usize;
            let init_len = g.init.len().min(g.size as usize);
            mem[start..start + init_len].copy_from_slice(&g.init[..init_len]);
            global_addrs.insert(g.name.clone(), aligned);
            next = aligned + g.size;
        }
        let func_index = module
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();
        Ok(Self {
            module,
            sp: mem_size & !3,
            mem,
            global_addrs,
            func_index,
            args: Vec::new(),
            output: Vec::new(),
            stats: EvalStats::default(),
            fuel,
        })
    }

    /// Runs `entry` with the given arguments.
    ///
    /// # Errors
    ///
    /// [`IrError::Eval`] for missing functions, memory faults, division
    /// by zero, or fuel exhaustion.
    pub fn run(mut self, entry: &str, args: &[i64]) -> Result<EvalOutcome, IrError> {
        let value = self.call_by_name(entry, args.to_vec())?;
        Ok(EvalOutcome {
            value,
            output: self.output,
            stats: self.stats,
        })
    }

    /// The address a global was placed at (for tests).
    pub fn global_addr(&self, name: &str) -> Option<u32> {
        self.global_addrs.get(name).copied()
    }

    fn call_by_name(&mut self, name: &str, args: Vec<i64>) -> Result<i64, IrError> {
        self.stats.calls += 1;
        match name {
            "print_int" => {
                let v = args.first().copied().unwrap_or(0);
                self.output.extend_from_slice(v.to_string().as_bytes());
                self.output.push(b'\n');
                Ok(0)
            }
            "print_char" => {
                self.output.push(args.first().copied().unwrap_or(0) as u8);
                Ok(0)
            }
            _ => {
                let idx = *self
                    .func_index
                    .get(name)
                    .ok_or_else(|| IrError::Eval(format!("undefined function {name}")))?;
                self.call_function(idx, args)
            }
        }
    }

    fn call_function(&mut self, idx: usize, args: Vec<i64>) -> Result<i64, IrError> {
        let f: &Function = &self.module.functions[idx];
        let frame = f.frame_size.div_ceil(4) * 4;
        let old_sp = self.sp;
        let fp = self
            .sp
            .checked_sub(frame)
            .filter(|&fp| fp >= GLOBAL_BASE)
            .ok_or_else(|| IrError::Eval(format!("stack overflow calling {}", f.name)))?;
        self.sp = fp;
        // Caller spills arguments into the callee frame at 4*i.
        for (i, &a) in args.iter().enumerate().take(f.param_count) {
            self.store(fp + 4 * i as u32, IrType::I, a)?;
        }
        // Label map for branches.
        let mut labels = HashMap::new();
        for (i, stmt) in f.body.iter().enumerate() {
            if stmt.op().opcode == Opcode::LabelDef {
                if let Some(Literal::Label(l)) = stmt.literal() {
                    labels.insert(*l, i);
                }
            }
        }
        let result = self.exec_body(f, fp, &labels);
        self.sp = old_sp;
        result
    }

    fn exec_body(
        &mut self,
        f: &Function,
        fp: u32,
        labels: &HashMap<u32, usize>,
    ) -> Result<i64, IrError> {
        let mut pc = 0usize;
        while pc < f.body.len() {
            if self.fuel == 0 {
                return Err(IrError::Eval("fuel exhausted".into()));
            }
            self.fuel -= 1;
            self.stats.statements += 1;
            let stmt = &f.body[pc];
            let opcode = stmt.op().opcode;
            match opcode {
                Opcode::LabelDef => {}
                Opcode::Jump => {
                    let Some(Literal::Label(l)) = stmt.literal() else {
                        return Err(IrError::Eval("JUMP without label".into()));
                    };
                    pc = *labels
                        .get(l)
                        .ok_or_else(|| IrError::Eval(format!("undefined label {l}")))?;
                    continue;
                }
                _ if opcode.is_branch() => {
                    let a = self.eval(&stmt.kids()[0], fp)?;
                    let b = self.eval(&stmt.kids()[1], fp)?;
                    let (a, b) = match stmt.op().ty {
                        IrType::U | IrType::P => ((a as u32) as i64, (b as u32) as i64),
                        _ => (a, b),
                    };
                    let taken = match opcode {
                        Opcode::Eq => a == b,
                        Opcode::Ne => a != b,
                        Opcode::Lt => a < b,
                        Opcode::Le => a <= b,
                        Opcode::Gt => a > b,
                        Opcode::Ge => a >= b,
                        _ => unreachable!("is_branch covers exactly these"),
                    };
                    if taken {
                        let Some(Literal::Label(l)) = stmt.literal() else {
                            return Err(IrError::Eval("branch without label".into()));
                        };
                        pc = *labels
                            .get(l)
                            .ok_or_else(|| IrError::Eval(format!("undefined label {l}")))?;
                        continue;
                    }
                }
                Opcode::Ret => {
                    return if stmt.kids().is_empty() {
                        Ok(0)
                    } else {
                        self.eval(&stmt.kids()[0], fp)
                    };
                }
                _ => {
                    self.eval(stmt, fp)?;
                }
            }
            pc += 1;
        }
        Ok(0)
    }

    fn eval(&mut self, t: &Tree, fp: u32) -> Result<i64, IrError> {
        self.stats.nodes += 1;
        let op = t.op();
        match op.opcode {
            Opcode::Cnst => match t.literal() {
                Some(Literal::Int(v)) => Ok(*v),
                _ => Err(IrError::Eval("CNST without int literal".into())),
            },
            Opcode::AddrL | Opcode::AddrF => match t.literal() {
                Some(Literal::Offset(off)) => Ok(i64::from(fp) + i64::from(*off)),
                _ => Err(IrError::Eval("ADDR without offset".into())),
            },
            Opcode::AddrG => match t.literal() {
                Some(Literal::Symbol(name)) => {
                    if let Some(&a) = self.global_addrs.get(name) {
                        Ok(i64::from(a))
                    } else if let Some(&i) = self.func_index.get(name) {
                        Ok(i64::from(FUNC_BASE + i as u32))
                    } else if HOST_FUNCTIONS.contains(&name.as_str()) {
                        let host = HOST_FUNCTIONS
                            .iter()
                            .position(|&h| h == name)
                            .expect("contains checked");
                        Ok(i64::from(FUNC_BASE) + 0x10_0000 + host as i64)
                    } else {
                        Err(IrError::Eval(format!("undefined symbol {name}")))
                    }
                }
                _ => Err(IrError::Eval("ADDRG without symbol".into())),
            },
            Opcode::Indir => {
                let addr = self.eval(&t.kids()[0], fp)?;
                self.load(addr as u32, op.ty)
            }
            Opcode::Asgn => {
                let addr = self.eval(&t.kids()[0], fp)?;
                let value = self.eval(&t.kids()[1], fp)?;
                self.store(addr as u32, op.ty, value)?;
                // The value of an assignment is the stored (truncated) value.
                Ok(truncate(value, op.ty))
            }
            Opcode::Cvt => {
                let v = self.eval(&t.kids()[0], fp)?;
                Ok(convert(v, op.from.expect("validated CVT"), op.ty))
            }
            Opcode::Neg => Ok(truncate(-self.eval(&t.kids()[0], fp)?, op.ty)),
            Opcode::BCom => Ok(truncate(!self.eval(&t.kids()[0], fp)?, op.ty)),
            Opcode::Add
            | Opcode::Sub
            | Opcode::Mul
            | Opcode::Div
            | Opcode::Mod
            | Opcode::BAnd
            | Opcode::BOr
            | Opcode::BXor
            | Opcode::Lsh
            | Opcode::Rsh => {
                let a = self.eval(&t.kids()[0], fp)?;
                let b = self.eval(&t.kids()[1], fp)?;
                binary_op(op.opcode, op.ty, a, b)
            }
            Opcode::Arg => {
                let v = self.eval(&t.kids()[0], fp)?;
                self.args.push(v);
                Ok(v)
            }
            Opcode::Call => {
                let target = self.eval(&t.kids()[0], fp)? as u32;
                let args = std::mem::take(&mut self.args);
                if target >= FUNC_BASE + 0x10_0000 {
                    let host = (target - FUNC_BASE - 0x10_0000) as usize;
                    let name = HOST_FUNCTIONS
                        .get(host)
                        .ok_or_else(|| IrError::Eval("bad host function address".into()))?;
                    self.call_by_name(name, args)
                } else if target >= FUNC_BASE {
                    let idx = (target - FUNC_BASE) as usize;
                    if idx >= self.module.functions.len() {
                        return Err(IrError::Eval("bad function address".into()));
                    }
                    self.stats.calls += 1;
                    self.call_function(idx, args)
                } else {
                    Err(IrError::Eval(format!(
                        "call to non-function address {target}"
                    )))
                }
            }
            Opcode::Ret
            | Opcode::Jump
            | Opcode::LabelDef
            | Opcode::Eq
            | Opcode::Ne
            | Opcode::Lt
            | Opcode::Le
            | Opcode::Gt
            | Opcode::Ge => Err(IrError::Eval(format!(
                "{} is a statement, not an expression",
                op.mnemonic()
            ))),
        }
    }

    fn load(&mut self, addr: u32, ty: IrType) -> Result<i64, IrError> {
        let size = ty.size() as usize;
        let a = addr as usize;
        if size == 0 || a == 0 || a + size > self.mem.len() {
            return Err(IrError::Eval(format!(
                "bad load of {size} bytes at {addr:#x}"
            )));
        }
        Ok(match ty {
            IrType::C => i64::from(self.mem[a] as i8),
            IrType::S => i64::from(i16::from_le_bytes([self.mem[a], self.mem[a + 1]])),
            IrType::I => i64::from(i32::from_le_bytes([
                self.mem[a],
                self.mem[a + 1],
                self.mem[a + 2],
                self.mem[a + 3],
            ])),
            IrType::U | IrType::P => i64::from(u32::from_le_bytes([
                self.mem[a],
                self.mem[a + 1],
                self.mem[a + 2],
                self.mem[a + 3],
            ])),
            IrType::V => unreachable!("size 0 rejected above"),
        })
    }

    fn store(&mut self, addr: u32, ty: IrType, value: i64) -> Result<(), IrError> {
        let size = ty.size() as usize;
        let a = addr as usize;
        if size == 0 || a == 0 || a + size > self.mem.len() {
            return Err(IrError::Eval(format!(
                "bad store of {size} bytes at {addr:#x}"
            )));
        }
        match size {
            1 => self.mem[a] = value as u8,
            2 => self.mem[a..a + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            _ => self.mem[a..a + 4].copy_from_slice(&(value as u32).to_le_bytes()),
        }
        Ok(())
    }
}

/// Truncates `v` to the range of `ty` (sign-extending signed types).
pub fn truncate(v: i64, ty: IrType) -> i64 {
    match ty {
        IrType::C => i64::from(v as i8),
        IrType::S => i64::from(v as i16),
        IrType::I => i64::from(v as i32),
        IrType::U | IrType::P => i64::from(v as u32),
        IrType::V => v,
    }
}

/// Applies a type conversion.
pub fn convert(v: i64, from: IrType, to: IrType) -> i64 {
    truncate(truncate(v, from), to)
}

fn binary_op(opcode: Opcode, ty: IrType, a: i64, b: i64) -> Result<i64, IrError> {
    let unsigned = matches!(ty, IrType::U | IrType::P);
    let (a32, b32) = (truncate(a, ty), truncate(b, ty));
    let raw = match opcode {
        Opcode::Add => a32.wrapping_add(b32),
        Opcode::Sub => a32.wrapping_sub(b32),
        Opcode::Mul => a32.wrapping_mul(b32),
        Opcode::Div => {
            if b32 == 0 {
                return Err(IrError::Eval("division by zero".into()));
            }
            if unsigned {
                ((a32 as u32) / (b32 as u32)) as i64
            } else {
                (a32 as i32).wrapping_div(b32 as i32) as i64
            }
        }
        Opcode::Mod => {
            if b32 == 0 {
                return Err(IrError::Eval("remainder by zero".into()));
            }
            if unsigned {
                ((a32 as u32) % (b32 as u32)) as i64
            } else {
                (a32 as i32).wrapping_rem(b32 as i32) as i64
            }
        }
        Opcode::BAnd => a32 & b32,
        Opcode::BOr => a32 | b32,
        Opcode::BXor => a32 ^ b32,
        Opcode::Lsh => ((a32 as u32) << (b32 as u32 & 31)) as i64,
        Opcode::Rsh => {
            if unsigned {
                i64::from((a32 as u32) >> (b32 as u32 & 31))
            } else {
                i64::from((a32 as i32) >> (b32 as u32 & 31))
            }
        }
        other => return Err(IrError::Eval(format!("{other:?} is not a binary operator"))),
    };
    Ok(truncate(raw, ty))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Global, Module};

    fn module_with(body: Vec<Tree>, frame: u32) -> Module {
        let mut f = Function::new("main", 0, frame);
        f.body = body;
        Module {
            globals: vec![],
            functions: vec![f],
        }
    }

    fn run(m: &Module) -> EvalOutcome {
        Evaluator::new(m, 1 << 16, 1 << 20)
            .unwrap()
            .run("main", &[])
            .unwrap()
    }

    #[test]
    fn returns_constant() {
        let m = module_with(vec![Tree::ret(IrType::I, Tree::cnst_auto(42))], 0);
        assert_eq!(run(&m).value, 42);
    }

    #[test]
    fn arithmetic_statement_chain() {
        // local0 = 10; local0 = local0 * 3 + 2; return local0;
        let l0 = || Tree::addr_local(0);
        let m = module_with(
            vec![
                Tree::asgn(IrType::I, l0(), Tree::cnst_auto(10)),
                Tree::asgn(
                    IrType::I,
                    l0(),
                    Tree::add(
                        IrType::I,
                        Tree::mul(IrType::I, Tree::indir(IrType::I, l0()), Tree::cnst_auto(3)),
                        Tree::cnst_auto(2),
                    ),
                ),
                Tree::ret(IrType::I, Tree::indir(IrType::I, l0())),
            ],
            8,
        );
        assert_eq!(run(&m).value, 32);
    }

    #[test]
    fn branches_and_loops() {
        // i = 0; sum = 0; L1: if i >= 5 goto L2; sum += i; i++; goto L1; L2: ret sum
        let i_ = || Tree::addr_local(0);
        let s_ = || Tree::addr_local(4);
        let m = module_with(
            vec![
                Tree::asgn(IrType::I, i_(), Tree::cnst_auto(0)),
                Tree::asgn(IrType::I, s_(), Tree::cnst_auto(0)),
                Tree::label(1),
                Tree::branch(
                    Opcode::Ge,
                    IrType::I,
                    2,
                    Tree::indir(IrType::I, i_()),
                    Tree::cnst_auto(5),
                ),
                Tree::asgn(
                    IrType::I,
                    s_(),
                    Tree::add(
                        IrType::I,
                        Tree::indir(IrType::I, s_()),
                        Tree::indir(IrType::I, i_()),
                    ),
                ),
                Tree::asgn(
                    IrType::I,
                    i_(),
                    Tree::add(IrType::I, Tree::indir(IrType::I, i_()), Tree::cnst_auto(1)),
                ),
                Tree::jump(1),
                Tree::label(2),
                Tree::ret(IrType::I, Tree::indir(IrType::I, s_())),
            ],
            8,
        );
        assert_eq!(run(&m).value, 1 + 2 + 3 + 4);
    }

    #[test]
    fn calls_with_arguments() {
        // add2(a,b) { return a+b; }  main { return add2(3, 4); }
        let mut add2 = Function::new("add2", 2, 8);
        add2.body = vec![Tree::ret(
            IrType::I,
            Tree::add(
                IrType::I,
                Tree::indir(IrType::I, Tree::addr_formal(0)),
                Tree::indir(IrType::I, Tree::addr_formal(4)),
            ),
        )];
        let mut main = Function::new("main", 0, 0);
        main.body = vec![
            Tree::arg(IrType::I, Tree::cnst_auto(3)),
            Tree::arg(IrType::I, Tree::cnst_auto(4)),
            Tree::ret(IrType::I, Tree::call(IrType::I, Tree::addr_global("add2"))),
        ];
        let m = Module {
            globals: vec![],
            functions: vec![add2, main],
        };
        assert_eq!(run(&m).value, 7);
    }

    #[test]
    fn recursion_factorial() {
        // fact(n) { if n <= 1 return 1; return n * fact(n-1); }
        let n = || Tree::indir(IrType::I, Tree::addr_formal(0));
        let mut fact = Function::new("fact", 1, 4);
        fact.body = vec![
            Tree::branch(Opcode::Gt, IrType::I, 1, n(), Tree::cnst_auto(1)),
            Tree::ret(IrType::I, Tree::cnst_auto(1)),
            Tree::label(1),
            Tree::arg(IrType::I, Tree::sub(IrType::I, n(), Tree::cnst_auto(1))),
            Tree::ret(
                IrType::I,
                Tree::mul(
                    IrType::I,
                    n(),
                    Tree::call(IrType::I, Tree::addr_global("fact")),
                ),
            ),
        ];
        let mut main = Function::new("main", 0, 0);
        main.body = vec![
            Tree::arg(IrType::I, Tree::cnst_auto(6)),
            Tree::ret(IrType::I, Tree::call(IrType::I, Tree::addr_global("fact"))),
        ];
        let m = Module {
            globals: vec![],
            functions: vec![fact, main],
        };
        assert_eq!(run(&m).value, 720);
    }

    #[test]
    fn host_output() {
        let mut main = Function::new("main", 0, 0);
        main.body = vec![
            Tree::arg(IrType::I, Tree::cnst_auto(123)),
            Tree::asgn(
                IrType::I,
                Tree::addr_local(0),
                Tree::call(IrType::I, Tree::addr_global("print_int")),
            ),
            Tree::arg(IrType::I, Tree::cnst_auto(65)),
            Tree::asgn(
                IrType::I,
                Tree::addr_local(0),
                Tree::call(IrType::I, Tree::addr_global("print_char")),
            ),
            Tree::ret(IrType::I, Tree::cnst_auto(0)),
        ];
        let m = Module {
            globals: vec![],
            functions: vec![{
                let mut f = main;
                f.frame_size = 4;
                f
            }],
        };
        assert_eq!(run(&m).output, b"123\nA");
    }

    #[test]
    fn globals_load_store_and_init() {
        let m = Module {
            globals: vec![Global {
                name: "g".into(),
                size: 4,
                init: vec![7, 0, 0, 0],
            }],
            functions: vec![{
                let mut f = Function::new("main", 0, 0);
                f.body = vec![
                    Tree::asgn(
                        IrType::I,
                        Tree::addr_global("g"),
                        Tree::add(
                            IrType::I,
                            Tree::indir(IrType::I, Tree::addr_global("g")),
                            Tree::cnst_auto(5),
                        ),
                    ),
                    Tree::ret(IrType::I, Tree::indir(IrType::I, Tree::addr_global("g"))),
                ];
                f
            }],
        };
        assert_eq!(run(&m).value, 12);
    }

    #[test]
    fn char_and_short_memory_semantics() {
        // Store 300 as a char, load it back: 300 mod 256 = 44.
        let m = module_with(
            vec![
                Tree::asgn(IrType::C, Tree::addr_local(0), Tree::cnst(IrType::S, 300)),
                Tree::ret(IrType::I, Tree::indir(IrType::C, Tree::addr_local(0))),
            ],
            4,
        );
        assert_eq!(run(&m).value, 44);
    }

    #[test]
    fn signed_vs_unsigned_division() {
        let m = module_with(
            vec![Tree::ret(
                IrType::I,
                Tree::binary(
                    Opcode::Div,
                    IrType::I,
                    Tree::cnst_auto(-7),
                    Tree::cnst_auto(2),
                ),
            )],
            0,
        );
        assert_eq!(run(&m).value, -3);
        let m = module_with(
            vec![Tree::ret(
                IrType::U,
                Tree::binary(
                    Opcode::Rsh,
                    IrType::U,
                    Tree::cnst(IrType::I, -1),
                    Tree::cnst_auto(28),
                ),
            )],
            0,
        );
        assert_eq!(run(&m).value, 15);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let m = module_with(
            vec![Tree::ret(
                IrType::I,
                Tree::binary(
                    Opcode::Div,
                    IrType::I,
                    Tree::cnst_auto(1),
                    Tree::cnst_auto(0),
                ),
            )],
            0,
        );
        let r = Evaluator::new(&m, 1 << 16, 1000).unwrap().run("main", &[]);
        assert!(matches!(r, Err(IrError::Eval(_))));
    }

    #[test]
    fn fuel_exhaustion_detected() {
        let m = module_with(vec![Tree::label(1), Tree::jump(1)], 0);
        let r = Evaluator::new(&m, 1 << 16, 1000).unwrap().run("main", &[]);
        assert!(matches!(r, Err(IrError::Eval(_))));
    }

    #[test]
    fn null_deref_is_an_error() {
        let m = module_with(
            vec![Tree::ret(
                IrType::I,
                Tree::indir(IrType::I, Tree::cnst_auto(0)),
            )],
            0,
        );
        let r = Evaluator::new(&m, 1 << 16, 1000).unwrap().run("main", &[]);
        assert!(matches!(r, Err(IrError::Eval(_))));
    }

    #[test]
    fn entry_arguments_are_passed() {
        let mut f = Function::new("main", 2, 8);
        f.body = vec![Tree::ret(
            IrType::I,
            Tree::sub(
                IrType::I,
                Tree::indir(IrType::I, Tree::addr_formal(0)),
                Tree::indir(IrType::I, Tree::addr_formal(4)),
            ),
        )];
        let m = Module {
            globals: vec![],
            functions: vec![f],
        };
        let out = Evaluator::new(&m, 1 << 16, 1000)
            .unwrap()
            .run("main", &[10, 3])
            .unwrap();
        assert_eq!(out.value, 7);
    }

    #[test]
    fn conversions() {
        assert_eq!(convert(0x1FF, IrType::I, IrType::C), -1);
        assert_eq!(convert(-1, IrType::C, IrType::U), 0xFFFF_FFFF);
        assert_eq!(convert(70_000, IrType::I, IrType::S), 70_000 - 65_536);
    }
}
