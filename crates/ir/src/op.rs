//! The operator vocabulary: opcodes, type suffixes, literal kinds.

use std::fmt;

/// The type suffix on a typed operator (lcc's `I`, `U`, `C`, `S`, `P`, `V`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IrType {
    /// 32-bit signed integer.
    I,
    /// 32-bit unsigned integer.
    U,
    /// 8-bit character.
    C,
    /// 16-bit short.
    S,
    /// 32-bit pointer.
    P,
    /// Void (untyped statements such as `LABELV`, `JUMPV`, `CALLV`).
    V,
}

impl IrType {
    /// Size in bytes of a memory access of this type.
    pub fn size(self) -> u32 {
        match self {
            IrType::C => 1,
            IrType::S => 2,
            IrType::I | IrType::U | IrType::P => 4,
            IrType::V => 0,
        }
    }

    /// One-letter lcc suffix.
    pub fn suffix(self) -> char {
        match self {
            IrType::I => 'I',
            IrType::U => 'U',
            IrType::C => 'C',
            IrType::S => 'S',
            IrType::P => 'P',
            IrType::V => 'V',
        }
    }

    /// Parses a one-letter suffix.
    pub fn from_suffix(c: char) -> Option<Self> {
        Some(match c {
            'I' => IrType::I,
            'U' => IrType::U,
            'C' => IrType::C,
            'S' => IrType::S,
            'P' => IrType::P,
            'V' => IrType::V,
            _ => return None,
        })
    }

    /// All type suffixes, for enumeration in tables.
    pub fn all() -> [IrType; 6] {
        [
            IrType::I,
            IrType::U,
            IrType::C,
            IrType::S,
            IrType::P,
            IrType::V,
        ]
    }
}

impl fmt::Display for IrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.suffix())
    }
}

/// Literal width flag: the paper augments the base intermediate code
/// "with a few operators with the suffixes 8 and 16 to flag literals that
/// fit in eight or sixteen bits".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Width {
    /// Fits in a signed 8-bit field.
    W8,
    /// Fits in a signed 16-bit field.
    W16,
    /// Needs a full 32-bit field.
    W32,
}

impl Width {
    /// The narrowest width that holds `v`.
    pub fn for_value(v: i64) -> Width {
        if (-128..=127).contains(&v) {
            Width::W8
        } else if (-32_768..=32_767).contains(&v) {
            Width::W16
        } else {
            Width::W32
        }
    }

    /// Bytes occupied by a literal of this width in the binary form.
    pub fn bytes(self) -> u32 {
        match self {
            Width::W8 => 1,
            Width::W16 => 2,
            Width::W32 => 4,
        }
    }

    /// The printed suffix (`"8"`, `"16"`, or `""` for full width).
    pub fn print_suffix(self) -> &'static str {
        match self {
            Width::W8 => "8",
            Width::W16 => "16",
            Width::W32 => "",
        }
    }
}

/// What kind of literal operand an opcode carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LiteralKind {
    /// No literal.
    None,
    /// An integer constant (`CNST*`).
    Int,
    /// A frame offset (`ADDRL*`, `ADDRF*`).
    Offset,
    /// A label number (branches, `JUMPV`, `LABELV`).
    Label,
    /// A symbol name (`ADDRG*`).
    Symbol,
}

/// A literal operand value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Literal {
    /// Integer constant.
    Int(i64),
    /// Frame offset in bytes.
    Offset(i32),
    /// Label number.
    Label(u32),
    /// Global symbol name.
    Symbol(String),
}

impl Literal {
    /// The [`LiteralKind`] of this literal.
    pub fn kind(&self) -> LiteralKind {
        match self {
            Literal::Int(_) => LiteralKind::Int,
            Literal::Offset(_) => LiteralKind::Offset,
            Literal::Label(_) => LiteralKind::Label,
            Literal::Symbol(_) => LiteralKind::Symbol,
        }
    }

    /// The width flag of a numeric literal (symbols report full width).
    pub fn width(&self) -> Width {
        match self {
            Literal::Int(v) => Width::for_value(*v),
            Literal::Offset(v) => Width::for_value(i64::from(*v)),
            Literal::Label(v) => Width::for_value(i64::from(*v)),
            Literal::Symbol(_) => Width::W32,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Offset(v) => write!(f, "{v}"),
            Literal::Label(v) => write!(f, "{v}"),
            Literal::Symbol(s) => write!(f, "{s}"),
        }
    }
}

/// Base opcodes of the tree IR (before type suffixes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    /// Integer constant; literal: [`LiteralKind::Int`].
    Cnst,
    /// Address of a global symbol; literal: [`LiteralKind::Symbol`].
    AddrG,
    /// Address of a formal parameter at a frame offset.
    AddrF,
    /// Address of a local at a frame offset.
    AddrL,
    /// Load through the address given by the child.
    Indir,
    /// Store: `ASGN(addr, value)`.
    Asgn,
    /// Convert the child from the `from` type to the operator type.
    Cvt,
    /// Arithmetic negate.
    Neg,
    /// Bitwise complement.
    BCom,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Mod,
    /// Bitwise and.
    BAnd,
    /// Bitwise or.
    BOr,
    /// Bitwise xor.
    BXor,
    /// Left shift.
    Lsh,
    /// Right shift (arithmetic for `I`, logical for `U`).
    Rsh,
    /// Branch to the label if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less.
    Lt,
    /// Branch if less or equal.
    Le,
    /// Branch if greater.
    Gt,
    /// Branch if greater or equal.
    Ge,
    /// Push an argument for the next call.
    Arg,
    /// Call the function whose address is the child; typed by result.
    Call,
    /// Return, with an optional value child.
    Ret,
    /// Unconditional jump to a label.
    Jump,
    /// Label definition point.
    LabelDef,
}

impl Opcode {
    /// All opcodes, for table construction.
    pub const ALL: [Opcode; 30] = [
        Opcode::Cnst,
        Opcode::AddrG,
        Opcode::AddrF,
        Opcode::AddrL,
        Opcode::Indir,
        Opcode::Asgn,
        Opcode::Cvt,
        Opcode::Neg,
        Opcode::BCom,
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Mod,
        Opcode::BAnd,
        Opcode::BOr,
        Opcode::BXor,
        Opcode::Lsh,
        Opcode::Rsh,
        Opcode::Eq,
        Opcode::Ne,
        Opcode::Lt,
        Opcode::Le,
        Opcode::Gt,
        Opcode::Ge,
        Opcode::Arg,
        Opcode::Call,
        Opcode::Ret,
        Opcode::Jump,
        Opcode::LabelDef,
    ];

    /// The lcc-style mnemonic (without type suffix).
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Cnst => "CNST",
            Opcode::AddrG => "ADDRG",
            Opcode::AddrF => "ADDRF",
            Opcode::AddrL => "ADDRL",
            Opcode::Indir => "INDIR",
            Opcode::Asgn => "ASGN",
            Opcode::Cvt => "CVT",
            Opcode::Neg => "NEG",
            Opcode::BCom => "BCOM",
            Opcode::Add => "ADD",
            Opcode::Sub => "SUB",
            Opcode::Mul => "MUL",
            Opcode::Div => "DIV",
            Opcode::Mod => "MOD",
            Opcode::BAnd => "BAND",
            Opcode::BOr => "BOR",
            Opcode::BXor => "BXOR",
            Opcode::Lsh => "LSH",
            Opcode::Rsh => "RSH",
            Opcode::Eq => "EQ",
            Opcode::Ne => "NE",
            Opcode::Lt => "LT",
            Opcode::Le => "LE",
            Opcode::Gt => "GT",
            Opcode::Ge => "GE",
            Opcode::Arg => "ARG",
            Opcode::Call => "CALL",
            Opcode::Ret => "RET",
            Opcode::Jump => "JUMP",
            Opcode::LabelDef => "LABEL",
        }
    }

    /// Child count, where `None` means variable (only [`Opcode::Ret`]: 0 or 1).
    pub fn arity(self) -> Option<usize> {
        Some(match self {
            Opcode::Cnst
            | Opcode::AddrG
            | Opcode::AddrF
            | Opcode::AddrL
            | Opcode::Jump
            | Opcode::LabelDef => 0,
            Opcode::Indir
            | Opcode::Cvt
            | Opcode::Neg
            | Opcode::BCom
            | Opcode::Arg
            | Opcode::Call => 1,
            Opcode::Asgn
            | Opcode::Add
            | Opcode::Sub
            | Opcode::Mul
            | Opcode::Div
            | Opcode::Mod
            | Opcode::BAnd
            | Opcode::BOr
            | Opcode::BXor
            | Opcode::Lsh
            | Opcode::Rsh
            | Opcode::Eq
            | Opcode::Ne
            | Opcode::Lt
            | Opcode::Le
            | Opcode::Gt
            | Opcode::Ge => 2,
            Opcode::Ret => return None,
        })
    }

    /// The literal operand kind this opcode carries.
    pub fn literal_kind(self) -> LiteralKind {
        match self {
            Opcode::Cnst => LiteralKind::Int,
            Opcode::AddrG => LiteralKind::Symbol,
            Opcode::AddrF | Opcode::AddrL => LiteralKind::Offset,
            Opcode::Eq
            | Opcode::Ne
            | Opcode::Lt
            | Opcode::Le
            | Opcode::Gt
            | Opcode::Ge
            | Opcode::Jump
            | Opcode::LabelDef => LiteralKind::Label,
            _ => LiteralKind::None,
        }
    }

    /// Coarse operator class, used for per-class telemetry attribution
    /// (`ir.nodes.<class>` counters) and ablation grouping.
    pub fn class(self) -> &'static str {
        match self {
            Opcode::Cnst => "const",
            Opcode::AddrG | Opcode::AddrF | Opcode::AddrL => "addr",
            Opcode::Indir | Opcode::Asgn => "mem",
            Opcode::Cvt => "cvt",
            Opcode::Neg
            | Opcode::Add
            | Opcode::Sub
            | Opcode::Mul
            | Opcode::Div
            | Opcode::Mod => "arith",
            Opcode::BCom | Opcode::BAnd | Opcode::BOr | Opcode::BXor => "bitwise",
            Opcode::Lsh | Opcode::Rsh => "shift",
            Opcode::Eq
            | Opcode::Ne
            | Opcode::Lt
            | Opcode::Le
            | Opcode::Gt
            | Opcode::Ge
            | Opcode::Jump
            | Opcode::LabelDef => "branch",
            Opcode::Arg | Opcode::Call | Opcode::Ret => "call",
        }
    }

    /// Whether this opcode is a conditional branch.
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            Opcode::Eq | Opcode::Ne | Opcode::Lt | Opcode::Le | Opcode::Gt | Opcode::Ge
        )
    }

    /// Looks up an opcode by mnemonic.
    pub fn from_name(name: &str) -> Option<Opcode> {
        Opcode::ALL.iter().copied().find(|op| op.name() == name)
    }
}

/// A fully-qualified operator: opcode + type suffix (+ conversion source
/// type for `CVT`).
///
/// Equality on `Op` is what stream separation keys on: `ADDRLP8` and
/// `ADDRLP` are different operators for compression purposes, which is
/// why the width flag lives on the *tree node* (it derives from the
/// literal) rather than here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Op {
    /// Base opcode.
    pub opcode: Opcode,
    /// Result/operand type suffix.
    pub ty: IrType,
    /// Source type, only for [`Opcode::Cvt`].
    pub from: Option<IrType>,
}

impl Op {
    /// A typed operator.
    pub fn new(opcode: Opcode, ty: IrType) -> Self {
        Self {
            opcode,
            ty,
            from: None,
        }
    }

    /// A conversion operator `CV<from><to>`.
    pub fn cvt(from: IrType, to: IrType) -> Self {
        Self {
            opcode: Opcode::Cvt,
            ty: to,
            from: Some(from),
        }
    }

    /// The printed mnemonic including type suffix(es), e.g. `ASGNI`,
    /// `CVCI`, `ADDRLP`, `LABELV`.
    pub fn mnemonic(&self) -> String {
        match self.opcode {
            Opcode::Cvt => {
                let from = self.from.expect("CVT always has a source type");
                format!("CV{}{}", from.suffix(), self.ty.suffix())
            }
            // Address operators always print with the P suffix, as lcc does.
            Opcode::AddrG | Opcode::AddrF | Opcode::AddrL => {
                format!("{}P", self.opcode.name())
            }
            Opcode::LabelDef | Opcode::Jump => format!("{}V", self.opcode.name()),
            _ => format!("{}{}", self.opcode.name(), self.ty.suffix()),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_classification() {
        assert_eq!(Width::for_value(0), Width::W8);
        assert_eq!(Width::for_value(127), Width::W8);
        assert_eq!(Width::for_value(-128), Width::W8);
        assert_eq!(Width::for_value(128), Width::W16);
        assert_eq!(Width::for_value(-129), Width::W16);
        assert_eq!(Width::for_value(32_767), Width::W16);
        assert_eq!(Width::for_value(32_768), Width::W32);
        assert_eq!(Width::for_value(-1_000_000), Width::W32);
    }

    #[test]
    fn type_sizes() {
        assert_eq!(IrType::C.size(), 1);
        assert_eq!(IrType::S.size(), 2);
        assert_eq!(IrType::I.size(), 4);
        assert_eq!(IrType::P.size(), 4);
        assert_eq!(IrType::V.size(), 0);
    }

    #[test]
    fn suffix_roundtrip() {
        for t in IrType::all() {
            assert_eq!(IrType::from_suffix(t.suffix()), Some(t));
        }
        assert_eq!(IrType::from_suffix('X'), None);
    }

    #[test]
    fn opcode_names_roundtrip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_name(op.name()), Some(op));
        }
        assert_eq!(Opcode::from_name("NOPE"), None);
    }

    #[test]
    fn mnemonics_match_lcc_style() {
        assert_eq!(Op::new(Opcode::Asgn, IrType::I).mnemonic(), "ASGNI");
        assert_eq!(Op::new(Opcode::AddrL, IrType::P).mnemonic(), "ADDRLP");
        assert_eq!(Op::new(Opcode::Cnst, IrType::C).mnemonic(), "CNSTC");
        assert_eq!(Op::cvt(IrType::C, IrType::I).mnemonic(), "CVCI");
        assert_eq!(Op::new(Opcode::LabelDef, IrType::V).mnemonic(), "LABELV");
        assert_eq!(Op::new(Opcode::Call, IrType::I).mnemonic(), "CALLI");
    }

    #[test]
    fn literal_kinds() {
        assert_eq!(Opcode::Cnst.literal_kind(), LiteralKind::Int);
        assert_eq!(Opcode::AddrG.literal_kind(), LiteralKind::Symbol);
        assert_eq!(Opcode::AddrL.literal_kind(), LiteralKind::Offset);
        assert_eq!(Opcode::Le.literal_kind(), LiteralKind::Label);
        assert_eq!(Opcode::Add.literal_kind(), LiteralKind::None);
    }

    #[test]
    fn arities() {
        assert_eq!(Opcode::Cnst.arity(), Some(0));
        assert_eq!(Opcode::Indir.arity(), Some(1));
        assert_eq!(Opcode::Asgn.arity(), Some(2));
        assert_eq!(Opcode::Le.arity(), Some(2));
        assert_eq!(Opcode::Ret.arity(), None);
    }

    #[test]
    fn literal_width_and_display() {
        assert_eq!(Literal::Int(5).width(), Width::W8);
        assert_eq!(Literal::Offset(300).width(), Width::W16);
        assert_eq!(Literal::Symbol("f".into()).width(), Width::W32);
        assert_eq!(Literal::Int(-3).to_string(), "-3");
        assert_eq!(Literal::Symbol("pepper".into()).to_string(), "pepper");
    }
}
