//! The lcc-like text form: `ASGNI(ADDRLP8[72],SUBI(INDIRI(ADDRLP8[72]),CNSTC[1]))`.

use crate::op::{Opcode, Width};
use crate::tree::{Function, Module, Tree};
use std::fmt;

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op().mnemonic())?;
        // Width flag on offset-carrying address operators: ADDRLP8[72].
        if matches!(self.op().opcode, Opcode::AddrL | Opcode::AddrF) && self.width() != Width::W32 {
            write!(f, "{}", self.width().print_suffix())?;
        }
        if let Some(lit) = self.literal() {
            write!(f, "[{lit}]")?;
        }
        if !self.kids().is_empty() {
            write!(f, "(")?;
            for (i, k) in self.kids().iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "function {} {} {} {{",
            self.name, self.param_count, self.frame_size
        )?;
        for stmt in &self.body {
            writeln!(f, "  {stmt}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for g in &self.globals {
            write!(f, "global {} {}", g.name, g.size)?;
            if g.init.is_empty() {
                writeln!(f)?;
            } else {
                write!(f, " =")?;
                for b in &g.init {
                    write!(f, " {b}")?;
                }
                writeln!(f)?;
            }
        }
        for (i, func) in self.functions.iter().enumerate() {
            if i > 0 || !self.globals.is_empty() {
                writeln!(f)?;
            }
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::op::{IrType, Opcode};
    use crate::tree::{Function, Global, Module, Tree};

    /// The paper's `salt` example, built by hand (§3 step 1).
    pub(crate) fn salt_trees() -> Vec<Tree> {
        vec![
            // ASGNI(ADDRLP8[72], SUBI(INDIRI(ADDRLP8[72]),CNSTC[1]))
            Tree::asgn(
                IrType::I,
                Tree::addr_local(72),
                Tree::sub(
                    IrType::I,
                    Tree::indir(IrType::I, Tree::addr_local(72)),
                    Tree::cnst(IrType::C, 1),
                ),
            ),
            // LEI[1](INDIRI(ADDRLP8[68]),CNSTC[0])
            Tree::branch(
                Opcode::Le,
                IrType::I,
                1,
                Tree::indir(IrType::I, Tree::addr_local(68)),
                Tree::cnst(IrType::C, 0),
            ),
            // ARGI(INDIRI(ADDRLP8[72]))
            Tree::arg(IrType::I, Tree::indir(IrType::I, Tree::addr_local(72))),
            // ARGI(INDIRI(ADDRLP8[68]))
            Tree::arg(IrType::I, Tree::indir(IrType::I, Tree::addr_local(68))),
            // CALLI(ADDRGP[pepper])
            Tree::call(IrType::I, Tree::addr_global("pepper")),
            // ASGNI(ADDRLP8[68], SUBI(INDIRI(ADDRLP8[68]),CNSTC[1]))
            Tree::asgn(
                IrType::I,
                Tree::addr_local(68),
                Tree::sub(
                    IrType::I,
                    Tree::indir(IrType::I, Tree::addr_local(68)),
                    Tree::cnst(IrType::C, 1),
                ),
            ),
            // LABELV
            Tree::label(1),
            // RETI(INDIRI(ADDRLP8[68]))
            Tree::ret(IrType::I, Tree::indir(IrType::I, Tree::addr_local(68))),
        ]
    }

    #[test]
    fn prints_paper_example_trees() {
        let trees = salt_trees();
        assert_eq!(
            trees[0].to_string(),
            "ASGNI(ADDRLP8[72],SUBI(INDIRI(ADDRLP8[72]),CNSTC[1]))"
        );
        assert_eq!(trees[1].to_string(), "LEI[1](INDIRI(ADDRLP8[68]),CNSTC[0])");
        assert_eq!(trees[2].to_string(), "ARGI(INDIRI(ADDRLP8[72]))");
        assert_eq!(trees[4].to_string(), "CALLI(ADDRGP[pepper])");
        assert_eq!(trees[6].to_string(), "LABELV[1]");
        assert_eq!(trees[7].to_string(), "RETI(INDIRI(ADDRLP8[68]))");
    }

    #[test]
    fn width_suffix_only_when_narrow() {
        assert_eq!(Tree::addr_local(300).to_string(), "ADDRLP16[300]");
        assert_eq!(Tree::addr_local(100_000).to_string(), "ADDRLP[100000]");
    }

    #[test]
    fn function_and_module_display() {
        let mut f = Function::new("salt", 2, 24);
        f.body = salt_trees();
        let m = Module {
            globals: vec![Global {
                name: "buf".into(),
                size: 8,
                init: vec![1, 2],
            }],
            functions: vec![f],
        };
        let text = m.to_string();
        assert!(text.contains("global buf 8 = 1 2"));
        assert!(text.contains("function salt 2 24 {"));
        assert!(text.contains("  CALLI(ADDRGP[pepper])"));
    }
}
