//! An lcc-style tree intermediate representation.
//!
//! The paper's wire format compresses "trees of VM code" produced by the
//! lcc C compiler (§3): stack-oriented operator trees such as
//!
//! ```text
//! ASGNI(ADDRLP8[72], SUBI(INDIRI(ADDRLP8[72]), CNSTC[1]))
//! ```
//!
//! where square brackets enclose literal operands and the `8`/`16`
//! suffixes flag literals that fit in eight or sixteen bits. This crate
//! provides that IR from scratch:
//!
//! - [`op`]: the operator vocabulary with arities and literal kinds.
//! - [`tree`]: trees, functions, and modules, with validation.
//! - [`print`](mod@print) / [`parse`]: the human-readable lcc-like text form.
//! - [`binary`]: a plain prefix-order byte encoding (the "uncompressed"
//!   code-size baseline the paper's wire table starts from).
//! - [`eval`]: a reference evaluator used for differential testing
//!   against the VM and BRISC interpreters.
//!
//! # Examples
//!
//! Building and printing the paper's decrement statement:
//!
//! ```
//! use codecomp_ir::tree::Tree;
//! use codecomp_ir::op::{Opcode, IrType};
//!
//! let dec = Tree::asgn(
//!     IrType::I,
//!     Tree::addr_local(72),
//!     Tree::sub(
//!         IrType::I,
//!         Tree::indir(IrType::I, Tree::addr_local(72)),
//!         Tree::cnst(IrType::C, 1),
//!     ),
//! );
//! assert_eq!(
//!     dec.to_string(),
//!     "ASGNI(ADDRLP8[72],SUBI(INDIRI(ADDRLP8[72]),CNSTC[1]))"
//! );
//! assert_eq!(dec.op().opcode, Opcode::Asgn);
//! ```

pub mod binary;
pub mod eval;
pub mod op;
pub mod parse;
pub mod print;
pub mod tree;

pub use op::{IrType, Literal, Op, Opcode, Width};
pub use tree::{Function, Global, Module, Tree};

use std::error::Error;
use std::fmt;

/// Errors for IR construction, parsing, and evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IrError {
    /// A tree violates an arity or literal-kind rule.
    Malformed(String),
    /// Text-form parsing failed.
    Parse {
        /// Byte offset of the failure in the input.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// Binary decoding failed.
    Decode(String),
    /// Evaluation failed (bad address, missing function, …).
    Eval(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Malformed(m) => write!(f, "malformed IR: {m}"),
            IrError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            IrError::Decode(m) => write!(f, "binary decode error: {m}"),
            IrError::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl Error for IrError {}
