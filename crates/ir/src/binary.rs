//! Plain prefix-order binary encoding of modules.
//!
//! This is the *uncompressed* byte-coded tree form: one byte per
//! operator, emitted in prefix order, with literals in 1, 2, or 4-byte
//! fields (paper §3: "each unique instance of a particular tree is
//! encoded as a sequence of bytes, one per operator, emitted in prefix
//! order; char literals are encoded as individual bytes, short literals
//! as pairs, etc."). The wire-format table's "uncompressed" column is the
//! size of this encoding.

use crate::op::{IrType, Literal, Op, Opcode, Width};
use crate::tree::{Function, Global, Module, Tree};
use crate::IrError;
use std::collections::HashMap;
use std::sync::OnceLock;

/// What a single operator byte denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpDesc {
    /// An ordinary typed operator.
    Plain(Opcode, IrType),
    /// A conversion `CV<from><to>`.
    Cvt(IrType, IrType),
    /// An offset-address operator with a width flag (`ADDRLP8` etc.).
    Addr(Opcode, Width),
}

fn op_table() -> &'static (Vec<OpDesc>, HashMap<OpDesc, u8>) {
    static TABLE: OnceLock<(Vec<OpDesc>, HashMap<OpDesc, u8>)> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut list = Vec::new();
        for opcode in Opcode::ALL {
            match opcode {
                Opcode::Cvt => {
                    for from in [IrType::I, IrType::U, IrType::C, IrType::S, IrType::P] {
                        for to in [IrType::I, IrType::U, IrType::C, IrType::S, IrType::P] {
                            if from != to {
                                list.push(OpDesc::Cvt(from, to));
                            }
                        }
                    }
                }
                Opcode::AddrL | Opcode::AddrF => {
                    for w in [Width::W8, Width::W16, Width::W32] {
                        list.push(OpDesc::Addr(opcode, w));
                    }
                }
                _ => {
                    for ty in IrType::all() {
                        list.push(OpDesc::Plain(opcode, ty));
                    }
                }
            }
        }
        assert!(list.len() <= 256, "operator table must fit one byte");
        let index = list
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i as u8))
            .collect();
        (list, index)
    })
}

/// Number of distinct operator bytes.
pub fn op_byte_count() -> usize {
    op_table().0.len()
}

/// The operator byte for a tree node.
///
/// # Errors
///
/// [`IrError::Malformed`] for operator/type combinations outside the table.
pub fn op_byte(tree: &Tree) -> Result<u8, IrError> {
    let op = tree.op();
    let desc = match op.opcode {
        Opcode::Cvt => OpDesc::Cvt(op.from.expect("validated CVT"), op.ty),
        Opcode::AddrL | Opcode::AddrF => OpDesc::Addr(op.opcode, tree.width()),
        _ => OpDesc::Plain(op.opcode, op.ty),
    };
    op_table()
        .1
        .get(&desc)
        .copied()
        .ok_or_else(|| IrError::Malformed(format!("no operator byte for {}", op.mnemonic())))
}

/// Looks a byte back up into its descriptor.
pub fn desc_for_byte(byte: u8) -> Option<OpDesc> {
    op_table().0.get(byte as usize).copied()
}

/// The operator byte for an operator/width pair (no tree required).
///
/// # Errors
///
/// [`IrError::Malformed`] for combinations outside the table.
pub fn byte_for_op(op: Op, width: Width) -> Result<u8, IrError> {
    let desc = match op.opcode {
        Opcode::Cvt => OpDesc::Cvt(
            op.from
                .ok_or_else(|| IrError::Malformed("CVT without source type".into()))?,
            op.ty,
        ),
        Opcode::AddrL | Opcode::AddrF => OpDesc::Addr(op.opcode, width),
        _ => OpDesc::Plain(op.opcode, op.ty),
    };
    op_table()
        .1
        .get(&desc)
        .copied()
        .ok_or_else(|| IrError::Malformed(format!("no operator byte for {}", op.mnemonic())))
}

/// The `(Op, Width)` pair a descriptor denotes.
pub fn desc_to_op(desc: OpDesc) -> (Op, Width) {
    match desc {
        OpDesc::Plain(opcode, ty) => (Op::new(opcode, ty), Width::W32),
        OpDesc::Cvt(from, to) => (Op::cvt(from, to), Width::W32),
        OpDesc::Addr(opcode, w) => (Op::new(opcode, IrType::P), w),
    }
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A module-level symbol table mapping names to `u16` indices.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, u16>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its index.
    pub fn intern(&mut self, name: &str) -> u16 {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = u16::try_from(self.names.len()).expect("more than 65535 symbols");
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        i
    }

    /// Resolves an index back to a name.
    pub fn name(&self, index: u16) -> Option<&str> {
        self.names.get(usize::from(index)).map(String::as_str)
    }

    /// All interned names in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// Encodes one tree in prefix order, interning symbols in `symbols`.
///
/// # Errors
///
/// [`IrError::Malformed`] for un-encodable nodes (e.g. `RETV` with a child).
pub fn encode_tree(
    tree: &Tree,
    symbols: &mut SymbolTable,
    out: &mut Vec<u8>,
) -> Result<(), IrError> {
    out.push(op_byte(tree)?);
    if let Some(lit) = tree.literal() {
        match lit {
            Literal::Int(v) => match tree.op().ty {
                IrType::C => out.push(*v as u8),
                IrType::S => push_u16(out, *v as u16),
                _ => push_u32(out, *v as u32),
            },
            Literal::Offset(v) => match tree.width() {
                Width::W8 => out.push(*v as u8),
                Width::W16 => push_u16(out, *v as u16),
                Width::W32 => push_u32(out, *v as u32),
            },
            Literal::Label(l) => push_u16(
                out,
                u16::try_from(*l).map_err(|_| IrError::Malformed("label exceeds u16".into()))?,
            ),
            Literal::Symbol(s) => push_u16(out, symbols.intern(s)),
        }
    }
    // RET child presence is keyed on the type: RETV has no child.
    if tree.op().opcode == Opcode::Ret {
        let expect = usize::from(tree.op().ty != IrType::V);
        if tree.kids().len() != expect {
            return Err(IrError::Malformed(
                "RET child count must match its type (RETV: none, RET<t>: one)".into(),
            ));
        }
    }
    for k in tree.kids() {
        encode_tree(k, symbols, out)?;
    }
    Ok(())
}

/// Size in bytes of one tree's prefix encoding (without symbol table).
pub fn tree_size(tree: &Tree) -> usize {
    let mut n = 0usize;
    tree.walk(&mut |node| {
        n += 1;
        if let Some(lit) = node.literal() {
            n += match lit {
                Literal::Int(_) => node.op().ty.size().max(1) as usize,
                Literal::Offset(_) => node.width().bytes() as usize,
                Literal::Label(_) | Literal::Symbol(_) => 2,
            };
        }
    });
    n
}

/// Encodes a whole module: header, symbol table, globals, functions.
///
/// # Errors
///
/// Propagates tree-encoding errors.
pub fn encode_module(module: &Module) -> Result<Vec<u8>, IrError> {
    let mut symbols = SymbolTable::new();
    // Encode bodies first so the symbol table is complete, then splice.
    let mut code = Vec::new();
    let mut functions = Vec::new();
    for f in &module.functions {
        let name_idx = symbols.intern(&f.name);
        let start = code.len();
        let mut stmt_count = 0u32;
        for stmt in &f.body {
            encode_tree(stmt, &mut symbols, &mut code)?;
            stmt_count += 1;
        }
        functions.push((
            name_idx,
            f.param_count as u16,
            f.frame_size,
            stmt_count,
            start,
            code.len(),
        ));
    }
    let mut globals = Vec::new();
    for g in &module.globals {
        globals.push((symbols.intern(&g.name), g.size, g.init.clone()));
    }

    let mut out = Vec::new();
    out.extend_from_slice(b"CCIR");
    push_u16(&mut out, symbols.names().len() as u16);
    for name in symbols.names() {
        push_u16(&mut out, name.len() as u16);
        out.extend_from_slice(name.as_bytes());
    }
    push_u16(&mut out, globals.len() as u16);
    for (idx, size, init) in &globals {
        push_u16(&mut out, *idx);
        push_u32(&mut out, *size);
        push_u32(&mut out, init.len() as u32);
        out.extend_from_slice(init);
    }
    push_u16(&mut out, functions.len() as u16);
    for &(name_idx, params, frame, stmts, start, end) in &functions {
        push_u16(&mut out, name_idx);
        push_u16(&mut out, params);
        push_u32(&mut out, frame);
        push_u32(&mut out, stmts);
        push_u32(&mut out, (end - start) as u32);
        out.extend_from_slice(&code[start..end]);
    }
    Ok(out)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, IrError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| IrError::Decode("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, IrError> {
        Ok(u16::from_le_bytes([self.u8()?, self.u8()?]))
    }

    fn u32(&mut self) -> Result<u32, IrError> {
        Ok(u32::from_le_bytes([
            self.u8()?,
            self.u8()?,
            self.u8()?,
            self.u8()?,
        ]))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], IrError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| IrError::Decode("unexpected end of input".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }
}

fn decode_tree(r: &mut Reader<'_>, symbols: &SymbolTable) -> Result<Tree, IrError> {
    let byte = r.u8()?;
    let desc = desc_for_byte(byte)
        .ok_or_else(|| IrError::Decode(format!("unknown operator byte {byte}")))?;
    let (op, width) = match desc {
        OpDesc::Plain(opcode, ty) => (Op::new(opcode, ty), Width::W32),
        OpDesc::Cvt(from, to) => (Op::cvt(from, to), Width::W32),
        OpDesc::Addr(opcode, w) => (Op::new(opcode, IrType::P), w),
    };
    let literal = match op.opcode.literal_kind() {
        crate::op::LiteralKind::None => None,
        crate::op::LiteralKind::Int => Some(Literal::Int(match op.ty {
            IrType::C => i64::from(r.u8()? as i8),
            IrType::S => i64::from(r.u16()? as i16),
            _ => i64::from(r.u32()? as i32),
        })),
        crate::op::LiteralKind::Offset => Some(Literal::Offset(match width {
            Width::W8 => i32::from(r.u8()? as i8),
            Width::W16 => i32::from(r.u16()? as i16),
            Width::W32 => r.u32()? as i32,
        })),
        crate::op::LiteralKind::Label => Some(Literal::Label(u32::from(r.u16()?))),
        crate::op::LiteralKind::Symbol => {
            let idx = r.u16()?;
            Some(Literal::Symbol(
                symbols
                    .name(idx)
                    .ok_or_else(|| IrError::Decode(format!("bad symbol index {idx}")))?
                    .to_string(),
            ))
        }
    };
    let arity = match op.opcode {
        Opcode::Ret => usize::from(op.ty != IrType::V),
        other => other.arity().expect("only RET is variable"),
    };
    let mut kids = Vec::with_capacity(arity);
    for _ in 0..arity {
        kids.push(decode_tree(r, symbols)?);
    }
    Tree::build(op, literal, kids).map_err(|e| IrError::Decode(e.to_string()))
}

/// Decodes a module produced by [`encode_module`].
///
/// # Errors
///
/// [`IrError::Decode`] on malformed input.
pub fn decode_module(bytes: &[u8]) -> Result<Module, IrError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != b"CCIR" {
        return Err(IrError::Decode("bad magic".into()));
    }
    let mut symbols = SymbolTable::new();
    let nsyms = r.u16()?;
    for _ in 0..nsyms {
        let len = r.u16()? as usize;
        let name = std::str::from_utf8(r.take(len)?)
            .map_err(|_| IrError::Decode("symbol name is not UTF-8".into()))?;
        symbols.intern(name);
    }
    let mut module = Module::new();
    let nglobals = r.u16()?;
    for _ in 0..nglobals {
        let idx = r.u16()?;
        let size = r.u32()?;
        let init_len = r.u32()? as usize;
        let init = r.take(init_len)?.to_vec();
        let name = symbols
            .name(idx)
            .ok_or_else(|| IrError::Decode("bad global symbol index".into()))?
            .to_string();
        module.globals.push(Global { name, size, init });
    }
    let nfuncs = r.u16()?;
    for _ in 0..nfuncs {
        let name_idx = r.u16()?;
        let params = r.u16()?;
        let frame = r.u32()?;
        let stmts = r.u32()?;
        let _code_len = r.u32()?;
        let name = symbols
            .name(name_idx)
            .ok_or_else(|| IrError::Decode("bad function symbol index".into()))?
            .to_string();
        let mut f = Function::new(name, params as usize, frame);
        for _ in 0..stmts {
            f.body.push(decode_tree(&mut r, &symbols)?);
        }
        module.functions.push(f);
    }
    Ok(module)
}

/// Size in bytes of the code segment only (operator bytes + literals,
/// excluding the symbol table and headers): the paper's "code segment"
/// measure.
pub fn code_segment_size(module: &Module) -> usize {
    module
        .functions
        .iter()
        .flat_map(|f| f.body.iter())
        .map(tree_size)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{IrType, Opcode};
    use crate::tree::{Function, Global, Module, Tree};

    fn sample_module() -> Module {
        let mut f = Function::new("salt", 2, 24);
        f.body = vec![
            Tree::asgn(
                IrType::I,
                Tree::addr_local(72),
                Tree::sub(
                    IrType::I,
                    Tree::indir(IrType::I, Tree::addr_local(72)),
                    Tree::cnst(IrType::C, 1),
                ),
            ),
            Tree::branch(
                Opcode::Le,
                IrType::I,
                1,
                Tree::indir(IrType::I, Tree::addr_local(68)),
                Tree::cnst(IrType::C, 0),
            ),
            Tree::arg(IrType::I, Tree::indir(IrType::I, Tree::addr_local(72))),
            Tree::call(IrType::I, Tree::addr_global("pepper")),
            Tree::label(1),
            Tree::ret(IrType::I, Tree::indir(IrType::I, Tree::addr_local(68))),
        ];
        Module {
            globals: vec![Global {
                name: "buf".into(),
                size: 40,
                init: vec![1, 2, 3],
            }],
            functions: vec![f],
        }
    }

    #[test]
    fn op_table_fits_a_byte_and_is_invertible() {
        assert!(op_byte_count() <= 256);
        for b in 0..op_byte_count() as u8 {
            let desc = desc_for_byte(b).unwrap();
            // Re-encode via the index map.
            let t = op_table();
            assert_eq!(t.1[&desc], b);
        }
        assert!(desc_for_byte(op_byte_count() as u8).is_none());
    }

    #[test]
    fn module_roundtrip() {
        let m = sample_module();
        let bytes = encode_module(&m).unwrap();
        let back = decode_module(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tree_size_matches_encoding() {
        let m = sample_module();
        let mut symbols = SymbolTable::new();
        for stmt in &m.functions[0].body {
            let mut out = Vec::new();
            encode_tree(stmt, &mut symbols, &mut out).unwrap();
            assert_eq!(out.len(), tree_size(stmt), "size mismatch for {stmt}");
        }
    }

    #[test]
    fn char_literals_take_one_byte() {
        // CNSTC[1] = opcode byte + 1 literal byte.
        assert_eq!(tree_size(&Tree::cnst(IrType::C, 1)), 2);
        assert_eq!(tree_size(&Tree::cnst(IrType::S, 300)), 3);
        assert_eq!(tree_size(&Tree::cnst(IrType::I, 1_000_000)), 5);
        assert_eq!(tree_size(&Tree::addr_local(72)), 2);
        assert_eq!(tree_size(&Tree::addr_local(300)), 3);
    }

    #[test]
    fn negative_literals_roundtrip() {
        let m = Module {
            globals: vec![],
            functions: vec![{
                let mut f = Function::new("f", 0, 4);
                f.body = vec![
                    Tree::asgn(IrType::I, Tree::addr_local(-8), Tree::cnst(IrType::C, -5)),
                    Tree::asgn(IrType::S, Tree::addr_local(0), Tree::cnst(IrType::S, -300)),
                    Tree::asgn(
                        IrType::I,
                        Tree::addr_local(0),
                        Tree::cnst(IrType::I, -70_000),
                    ),
                    Tree::ret_void(),
                ];
                f
            }],
        };
        let bytes = encode_module(&m).unwrap();
        assert_eq!(decode_module(&bytes).unwrap(), m);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_module(b"").is_err());
        assert!(decode_module(b"XXXX").is_err());
        let m = sample_module();
        let bytes = encode_module(&m).unwrap();
        assert!(decode_module(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn retv_with_child_rejected() {
        let bad = Tree::build(
            Op::new(Opcode::Ret, IrType::V),
            None,
            vec![Tree::cnst_auto(1)],
        )
        .unwrap();
        let mut symbols = SymbolTable::new();
        let mut out = Vec::new();
        assert!(encode_tree(&bad, &mut symbols, &mut out).is_err());
    }

    #[test]
    fn code_segment_size_counts_only_code() {
        let m = sample_module();
        let sz = code_segment_size(&m);
        assert!(sz > 0);
        let encoded = encode_module(&m).unwrap();
        assert!(sz < encoded.len());
    }
}
