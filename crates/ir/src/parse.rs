//! Parser for the lcc-like text form produced by [`crate::print`].

use crate::op::{IrType, Literal, LiteralKind, Op, Opcode};
use crate::tree::{Function, Global, Module, Tree};
use crate::IrError;

/// Parses a single tree, e.g. `ASGNI(ADDRLP8[72],CNSTC[1])`.
///
/// # Errors
///
/// [`IrError::Parse`] with a byte offset on any syntax error.
///
/// # Examples
///
/// ```
/// use codecomp_ir::parse::parse_tree;
///
/// let t = parse_tree("SUBI(INDIRI(ADDRLP8[72]),CNSTC[1])")?;
/// assert_eq!(t.to_string(), "SUBI(INDIRI(ADDRLP8[72]),CNSTC[1])");
/// # Ok::<(), codecomp_ir::IrError>(())
/// ```
pub fn parse_tree(text: &str) -> Result<Tree, IrError> {
    let mut p = Parser::new(text);
    let tree = p.tree()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing input after tree"));
    }
    Ok(tree)
}

/// Parses a whole module in the `Display` format of [`Module`].
///
/// # Errors
///
/// [`IrError::Parse`] on any syntax error.
pub fn parse_module(text: &str) -> Result<Module, IrError> {
    let mut module = Module::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((lineno, line)) = lines.next() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("global ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| line_err(lineno, "global needs a name"))?
                .to_string();
            let size: u32 = parts
                .next()
                .ok_or_else(|| line_err(lineno, "global needs a size"))?
                .parse()
                .map_err(|_| line_err(lineno, "bad global size"))?;
            let mut init = Vec::new();
            if let Some(eq) = parts.next() {
                if eq != "=" {
                    return Err(line_err(lineno, "expected '=' before initializer"));
                }
                for tok in parts {
                    init.push(
                        tok.parse::<u8>()
                            .map_err(|_| line_err(lineno, "bad init byte"))?,
                    );
                }
            }
            module.globals.push(Global { name, size, init });
        } else if let Some(rest) = line.strip_prefix("function ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| line_err(lineno, "function needs a name"))?
                .to_string();
            let param_count: usize = parts
                .next()
                .ok_or_else(|| line_err(lineno, "function needs a param count"))?
                .parse()
                .map_err(|_| line_err(lineno, "bad param count"))?;
            let frame_size: u32 = parts
                .next()
                .ok_or_else(|| line_err(lineno, "function needs a frame size"))?
                .parse()
                .map_err(|_| line_err(lineno, "bad frame size"))?;
            if parts.next() != Some("{") {
                return Err(line_err(lineno, "expected '{' after function header"));
            }
            let mut f = Function::new(name, param_count, frame_size);
            loop {
                let (lineno, line) = lines
                    .next()
                    .ok_or_else(|| line_err(lineno, "unterminated function body"))?;
                let line = line.trim();
                if line == "}" {
                    break;
                }
                if line.is_empty() {
                    continue;
                }
                f.body.push(parse_tree(line).map_err(|e| match e {
                    IrError::Parse { offset, message } => IrError::Parse {
                        offset,
                        message: format!("line {}: {message}", lineno + 1),
                    },
                    other => other,
                })?);
            }
            module.functions.push(f);
        } else {
            return Err(line_err(lineno, "expected 'global' or 'function'"));
        }
    }
    Ok(module)
}

fn line_err(lineno: usize, msg: &str) -> IrError {
    IrError::Parse {
        offset: 0,
        message: format!("line {}: {msg}", lineno + 1),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> IrError {
        IrError::Parse {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn tree(&mut self) -> Result<Tree, IrError> {
        self.skip_ws();
        let mnemonic = self.uppercase_word()?;
        // Trailing digits are the 8/16 width flag; the width is re-derived
        // from the literal, so the digits only need stripping.
        let stripped = mnemonic.trim_end_matches(|c: char| c.is_ascii_digit());
        let op = decode_mnemonic(stripped)
            .ok_or_else(|| self.err(format!("unknown operator mnemonic {mnemonic:?}")))?;

        let literal = if self.eat(b'[') {
            let lit = self.literal(op.opcode.literal_kind())?;
            if !self.eat(b']') {
                return Err(self.err("expected ']'"));
            }
            Some(lit)
        } else {
            None
        };

        let mut kids = Vec::new();
        if self.eat(b'(') {
            loop {
                kids.push(self.tree()?);
                self.skip_ws();
                if self.eat(b',') {
                    continue;
                }
                if self.eat(b')') {
                    break;
                }
                return Err(self.err("expected ',' or ')'"));
            }
        }
        Tree::build(op, literal, kids).map_err(|e| self.err(e.to_string()))
    }

    fn uppercase_word(&mut self) -> Result<String, IrError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_uppercase() || b.is_ascii_digit() {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected an operator mnemonic"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn literal(&mut self, kind: LiteralKind) -> Result<Literal, IrError> {
        self.skip_ws();
        match kind {
            LiteralKind::None => Err(self.err("operator takes no literal")),
            LiteralKind::Symbol => {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b.is_ascii_alphanumeric() || b == b'_' || b == b'$' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                if self.pos == start {
                    return Err(self.err("expected a symbol name"));
                }
                Ok(Literal::Symbol(
                    String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned(),
                ))
            }
            LiteralKind::Int | LiteralKind::Offset | LiteralKind::Label => {
                let start = self.pos;
                if self.peek() == Some(b'-') {
                    self.pos += 1;
                }
                while let Some(b) = self.peek() {
                    if b.is_ascii_digit() {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("digits are valid utf-8");
                let value: i64 = text.parse().map_err(|_| self.err("expected a number"))?;
                Ok(match kind {
                    LiteralKind::Int => Literal::Int(value),
                    LiteralKind::Offset => Literal::Offset(
                        i32::try_from(value).map_err(|_| self.err("offset out of range"))?,
                    ),
                    LiteralKind::Label => Literal::Label(
                        u32::try_from(value).map_err(|_| self.err("label out of range"))?,
                    ),
                    LiteralKind::None | LiteralKind::Symbol => unreachable!(),
                })
            }
        }
    }
}

/// Decodes a width-stripped mnemonic such as `ASGNI`, `ADDRLP`, `CVCI`,
/// `LABELV` back to an [`Op`].
pub fn decode_mnemonic(text: &str) -> Option<Op> {
    // CVT: CV<from><to>.
    if let Some(rest) = text.strip_prefix("CV") {
        let mut chars = rest.chars();
        if let (Some(f), Some(t), None) = (chars.next(), chars.next(), chars.next()) {
            if let (Some(from), Some(to)) = (IrType::from_suffix(f), IrType::from_suffix(t)) {
                return Some(Op::cvt(from, to));
            }
        }
        return None;
    }
    // Longest-prefix match over base names, remainder must be one type suffix.
    let mut best: Option<Op> = None;
    for opcode in Opcode::ALL {
        if opcode == Opcode::Cvt {
            continue;
        }
        let name = opcode.name();
        if let Some(rest) = text.strip_prefix(name) {
            let mut chars = rest.chars();
            if let (Some(s), None) = (chars.next(), chars.next()) {
                if let Some(ty) = IrType::from_suffix(s) {
                    // Address operators print with a P suffix but are typed P.
                    let op = match opcode {
                        Opcode::AddrG | Opcode::AddrF | Opcode::AddrL if ty == IrType::P => {
                            Op::new(opcode, IrType::P)
                        }
                        Opcode::AddrG | Opcode::AddrF | Opcode::AddrL => continue,
                        _ => Op::new(opcode, ty),
                    };
                    if best.is_none_or(|b| b.opcode.name().len() < name.len()) {
                        best = Some(op);
                    }
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Width;

    #[test]
    fn parse_paper_trees_roundtrip() {
        let samples = [
            "ASGNI(ADDRLP8[72],SUBI(INDIRI(ADDRLP8[72]),CNSTC[1]))",
            "LEI[1](INDIRI(ADDRLP8[68]),CNSTC[0])",
            "ARGI(INDIRI(ADDRLP8[72]))",
            "CALLI(ADDRGP[pepper])",
            "LABELV[1]",
            "RETI(INDIRI(ADDRLP8[68]))",
            "JUMPV[12]",
            "CVCI(INDIRC(ADDRGP[buf]))",
            "ASGNS(ADDRLP16[300],CNSTS[-1000])",
        ];
        for s in samples {
            let t = parse_tree(s).unwrap();
            assert_eq!(t.to_string(), s, "roundtrip failed for {s}");
        }
    }

    #[test]
    fn width_digits_are_rederived() {
        // Even with a wrong width flag in the input, the literal decides.
        let t = parse_tree("ADDRLP16[4]").unwrap();
        assert_eq!(t.width(), Width::W8);
        assert_eq!(t.to_string(), "ADDRLP8[4]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_tree("").is_err());
        assert!(parse_tree("FROB[1]").is_err());
        assert!(parse_tree("ADDI(CNSTC[1])").is_err()); // arity
        assert!(parse_tree("CNSTI[pepper]").is_err()); // literal kind
        assert!(parse_tree("CNSTI[1] trailing").is_err());
        assert!(parse_tree("ASGNI(ADDRLP8[0],CNSTC[1]").is_err()); // unclosed
    }

    #[test]
    fn decode_mnemonic_handles_prefix_collisions() {
        assert_eq!(decode_mnemonic("ADDI").unwrap().opcode, Opcode::Add);
        assert_eq!(decode_mnemonic("ADDRLP").unwrap().opcode, Opcode::AddrL);
        assert_eq!(decode_mnemonic("LABELV").unwrap().opcode, Opcode::LabelDef);
        assert_eq!(decode_mnemonic("LEI").unwrap().opcode, Opcode::Le);
        assert_eq!(decode_mnemonic("CVCI").unwrap().opcode, Opcode::Cvt);
        assert_eq!(decode_mnemonic("BANDU").unwrap().opcode, Opcode::BAnd);
    }

    #[test]
    fn module_roundtrip() {
        let text = "\
global buf 16
global msg 4 = 104 105 33 0

function main 0 8 {
  ASGNI(ADDRLP8[0],CNSTC[42])
  ARGI(INDIRI(ADDRLP8[0]))
  CALLI(ADDRGP[print_int])
  RETI(CNSTC[0])
}
";
        let m = parse_module(text).unwrap();
        assert_eq!(m.globals.len(), 2);
        assert_eq!(m.globals[1].init, vec![104, 105, 33, 0]);
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.functions[0].body.len(), 4);
        // Display → parse → Display fixed point.
        let printed = m.to_string();
        let reparsed = parse_module(&printed).unwrap();
        assert_eq!(reparsed, m);
    }

    #[test]
    fn module_errors_carry_line_numbers() {
        let err = parse_module("function f 0 0 {\n  WAT\n}\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }
}
