//! Recursive-descent parser for the mini-C subset.

use crate::ast::*;
use crate::lexer::{Token, TokenKind};
use crate::FrontError;

/// Parses a token stream into a [`Program`].
///
/// # Errors
///
/// [`FrontError`] on the first syntax error.
pub fn parse(tokens: &[Token]) -> Result<Program, FrontError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut program = Program::default();
    while !p.at_eof() {
        p.top_level(&mut program)?;
    }
    Ok(program)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn here(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn line(&self) -> u32 {
        self.here().line
    }

    fn err(&self, msg: impl Into<String>) -> FrontError {
        FrontError::new(self.line(), msg)
    }

    fn at_eof(&self) -> bool {
        matches!(self.here().kind, TokenKind::Eof)
    }

    fn bump(&mut self) -> &Token {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(&self.here().kind, TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), FrontError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected {p:?}, found {:?}", self.here().kind)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(&self.here().kind, TokenKind::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, FrontError> {
        match &self.here().kind {
            TokenKind::Ident(s) if !is_keyword(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    // ---- types ---------------------------------------------------------

    /// Tries to parse a base type keyword; `None` if the next token is not one.
    fn peek_base_type(&self) -> Option<CType> {
        match &self.here().kind {
            TokenKind::Ident(s) => match s.as_str() {
                "int" => Some(CType::Int),
                "char" => Some(CType::Char),
                "short" => Some(CType::Short),
                "unsigned" => Some(CType::Unsigned),
                "void" => Some(CType::Void),
                _ => None,
            },
            _ => None,
        }
    }

    fn base_type(&mut self) -> Result<CType, FrontError> {
        let t = self
            .peek_base_type()
            .ok_or_else(|| self.err("expected a type"))?;
        self.bump();
        // "unsigned int" and "short int" read the extra keyword.
        if matches!(t, CType::Unsigned | CType::Short) {
            self.eat_keyword("int");
        }
        Ok(t)
    }

    /// Parses `*`s after a base type.
    fn pointered(&mut self, mut ty: CType) -> CType {
        while self.eat_punct("*") {
            ty = CType::Ptr(Box::new(ty));
        }
        ty
    }

    // ---- top level -------------------------------------------------------

    fn top_level(&mut self, program: &mut Program) -> Result<(), FrontError> {
        let base = self.base_type()?;
        let ty = self.pointered(base);
        let name = self.expect_ident()?;
        if self.eat_punct("(") {
            let mut params = Vec::new();
            if !self.eat_punct(")") {
                if self.eat_keyword("void") {
                    self.expect_punct(")")?;
                } else {
                    loop {
                        let base = self.base_type()?;
                        let pty = self.pointered(base);
                        let pname = self.expect_ident()?;
                        // Array parameters decay to pointers.
                        let pty = if self.eat_punct("[") {
                            // Optional size is ignored.
                            if let TokenKind::Int(_) = self.here().kind {
                                self.bump();
                            }
                            self.expect_punct("]")?;
                            CType::Ptr(Box::new(pty))
                        } else {
                            pty
                        };
                        params.push(Param {
                            ty: pty,
                            name: pname,
                        });
                        if self.eat_punct(")") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
            }
            if self.eat_punct(";") {
                // Prototype: remember the arity for semantic checking.
                program.prototypes.push((name, params.len()));
                return Ok(());
            }
            self.expect_punct("{")?;
            let mut body = Vec::new();
            while !self.eat_punct("}") {
                if self.at_eof() {
                    return Err(self.err("unterminated function body"));
                }
                body.push(self.stmt()?);
            }
            program.functions.push(FuncDef {
                ret: ty,
                name,
                params,
                body,
            });
            Ok(())
        } else {
            // Global variable(s).
            let mut ty = ty;
            let mut name = name;
            loop {
                if self.eat_punct("[") {
                    let n = self.const_int()?;
                    self.expect_punct("]")?;
                    ty = CType::Array(Box::new(ty), n as usize);
                }
                let init = if self.eat_punct("=") {
                    Some(self.global_init()?)
                } else {
                    None
                };
                program.globals.push(GlobalDef {
                    ty: ty.clone(),
                    name,
                    init,
                });
                if self.eat_punct(";") {
                    break;
                }
                self.expect_punct(",")?;
                ty = match &ty {
                    CType::Array(elem, _) => (**elem).clone(),
                    other => other.clone(),
                };
                name = self.expect_ident()?;
            }
            Ok(())
        }
    }

    fn const_int(&mut self) -> Result<i64, FrontError> {
        // Constant expressions in declarators: a literal, possibly negated.
        let neg = self.eat_punct("-");
        match self.here().kind {
            TokenKind::Int(v) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            _ => Err(self.err("expected a constant integer")),
        }
    }

    fn global_init(&mut self) -> Result<GlobalInit, FrontError> {
        if self.eat_punct("{") {
            let mut items = Vec::new();
            if !self.eat_punct("}") {
                loop {
                    items.push(self.const_int()?);
                    if self.eat_punct("}") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            Ok(GlobalInit::List(items))
        } else if let TokenKind::Str(s) = &self.here().kind {
            let s = s.clone();
            self.bump();
            Ok(GlobalInit::Str(s))
        } else {
            Ok(GlobalInit::Scalar(self.const_int()?))
        }
    }

    // ---- statements ------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, FrontError> {
        if self.eat_punct(";") {
            return Ok(Stmt::Empty);
        }
        if self.eat_punct("{") {
            let mut body = Vec::new();
            while !self.eat_punct("}") {
                if self.at_eof() {
                    return Err(self.err("unterminated block"));
                }
                body.push(self.stmt()?);
            }
            return Ok(Stmt::Block(body));
        }
        if self.eat_keyword("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = Box::new(self.stmt()?);
            let els = if self.eat_keyword("else") {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.eat_keyword("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            return Ok(Stmt::While(cond, Box::new(self.stmt()?)));
        }
        if self.eat_keyword("do") {
            let body = Box::new(self.stmt()?);
            if !self.eat_keyword("while") {
                return Err(self.err("expected 'while' after do body"));
            }
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::DoWhile(body, cond));
        }
        if self.eat_keyword("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else if self.peek_base_type().is_some() {
                let d = self.decl_stmt()?;
                Some(Box::new(d))
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(Box::new(Stmt::Expr(e)))
            };
            let cond = if self.eat_punct(";") {
                None
            } else {
                let c = self.expr()?;
                self.expect_punct(";")?;
                Some(c)
            };
            let step = if self.eat_punct(")") {
                None
            } else {
                let s = self.expr()?;
                self.expect_punct(")")?;
                Some(s)
            };
            return Ok(Stmt::For(init, cond, step, Box::new(self.stmt()?)));
        }
        if self.eat_keyword("return") {
            if self.eat_punct(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        if self.eat_keyword("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_keyword("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue);
        }
        if self.peek_base_type().is_some() {
            return self.decl_stmt();
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    /// Parses `type name ([n])? (= init)? (, …)* ;` and returns a block if
    /// several variables are declared at once.
    fn decl_stmt(&mut self) -> Result<Stmt, FrontError> {
        let base = self.base_type()?;
        let mut decls = Vec::new();
        loop {
            let ty = self.pointered(base.clone());
            let name = self.expect_ident()?;
            let ty = if self.eat_punct("[") {
                let n = self.const_int()?;
                self.expect_punct("]")?;
                CType::Array(Box::new(ty), n as usize)
            } else {
                ty
            };
            let init = if self.eat_punct("=") {
                Some(self.assignment()?)
            } else {
                None
            };
            decls.push(Stmt::Decl { ty, name, init });
            if self.eat_punct(";") {
                break;
            }
            self.expect_punct(",")?;
        }
        Ok(if decls.len() == 1 {
            decls.pop().expect("one decl")
        } else {
            Stmt::Block(decls)
        })
    }

    // ---- expressions -------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, FrontError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, FrontError> {
        let lhs = self.ternary()?;
        for (p, op) in [
            ("+=", BinOp::Add),
            ("-=", BinOp::Sub),
            ("*=", BinOp::Mul),
            ("/=", BinOp::Div),
            ("%=", BinOp::Mod),
            ("&=", BinOp::And),
            ("|=", BinOp::Or),
            ("^=", BinOp::Xor),
            ("<<=", BinOp::Shl),
            (">>=", BinOp::Shr),
        ] {
            if self.eat_punct(p) {
                let rhs = self.assignment()?;
                return Ok(Expr::CompoundAssign(op, Box::new(lhs), Box::new(rhs)));
            }
        }
        if self.eat_punct("=") {
            let rhs = self.assignment()?;
            return Ok(Expr::Assign(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn ternary(&mut self) -> Result<Expr, FrontError> {
        let cond = self.binary(0)?;
        if self.eat_punct("?") {
            let then = self.expr()?;
            self.expect_punct(":")?;
            let els = self.ternary()?;
            return Ok(Expr::Ternary(Box::new(cond), Box::new(then), Box::new(els)));
        }
        Ok(cond)
    }

    /// Precedence-climbing over binary operators.
    fn binary(&mut self, min_prec: u8) -> Result<Expr, FrontError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = self.peek_binop() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn peek_binop(&self) -> Option<(BinOp, u8)> {
        let TokenKind::Punct(p) = &self.here().kind else {
            return None;
        };
        Some(match *p {
            "||" => (BinOp::LogOr, 1),
            "&&" => (BinOp::LogAnd, 2),
            "|" => (BinOp::Or, 3),
            "^" => (BinOp::Xor, 4),
            "&" => (BinOp::And, 5),
            "==" => (BinOp::Eq, 6),
            "!=" => (BinOp::Ne, 6),
            "<" => (BinOp::Lt, 7),
            "<=" => (BinOp::Le, 7),
            ">" => (BinOp::Gt, 7),
            ">=" => (BinOp::Ge, 7),
            "<<" => (BinOp::Shl, 8),
            ">>" => (BinOp::Shr, 8),
            "+" => (BinOp::Add, 9),
            "-" => (BinOp::Sub, 9),
            "*" => (BinOp::Mul, 10),
            "/" => (BinOp::Div, 10),
            "%" => (BinOp::Mod, 10),
            _ => return None,
        })
    }

    fn unary(&mut self) -> Result<Expr, FrontError> {
        if self.eat_punct("-") {
            return Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)));
        }
        if self.eat_punct("~") {
            return Ok(Expr::Unary(UnOp::BitNot, Box::new(self.unary()?)));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)));
        }
        if self.eat_punct("*") {
            return Ok(Expr::Unary(UnOp::Deref, Box::new(self.unary()?)));
        }
        if self.eat_punct("&") {
            return Ok(Expr::Unary(UnOp::AddrOf, Box::new(self.unary()?)));
        }
        if self.eat_punct("++") {
            return Ok(Expr::PreIncDec(true, Box::new(self.unary()?)));
        }
        if self.eat_punct("--") {
            return Ok(Expr::PreIncDec(false, Box::new(self.unary()?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, FrontError> {
        let mut e = self.primary()?;
        loop {
            if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else if self.eat_punct("++") {
                e = Expr::PostIncDec(true, Box::new(e));
            } else if self.eat_punct("--") {
                e = Expr::PostIncDec(false, Box::new(e));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, FrontError> {
        if self.eat_punct("(") {
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        match &self.here().kind {
            TokenKind::Int(v) => {
                let v = *v;
                self.bump();
                Ok(Expr::Num(v))
            }
            TokenKind::Str(s) => {
                let s = s.clone();
                self.bump();
                Ok(Expr::Str(s))
            }
            TokenKind::Ident(name) if !is_keyword(name) => {
                let name = name.clone();
                self.bump();
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.assignment()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("expected an expression, found {other:?}"))),
        }
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "int"
            | "char"
            | "short"
            | "unsigned"
            | "void"
            | "if"
            | "else"
            | "while"
            | "do"
            | "for"
            | "return"
            | "break"
            | "continue"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_paper_example() {
        let p = parse_src("int salt(int j, int i) { if (j > 0) { pepper(i, j); j--; } return j; }");
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        assert_eq!(f.name, "salt");
        assert_eq!(f.params.len(), 2);
        assert!(matches!(f.body[0], Stmt::If(..)));
        assert!(matches!(f.body[1], Stmt::Return(Some(_))));
    }

    #[test]
    fn parses_globals_with_inits() {
        let p = parse_src(
            "int x = 5; int arr[4] = {1,2,3,4}; char msg[6] = \"hello\"; int *p; int a, b;",
        );
        assert_eq!(p.globals.len(), 6);
        assert_eq!(p.globals[0].init, Some(GlobalInit::Scalar(5)));
        assert!(matches!(p.globals[1].ty, CType::Array(_, 4)));
        assert_eq!(p.globals[2].init, Some(GlobalInit::Str(b"hello".to_vec())));
        assert!(matches!(p.globals[3].ty, CType::Ptr(_)));
    }

    #[test]
    fn precedence_is_c_like() {
        let p = parse_src("int f() { return 1 + 2 * 3 == 7 && 4 < 5; }");
        let Stmt::Return(Some(e)) = &p.functions[0].body[0] else {
            panic!("not a return")
        };
        // (((1 + (2*3)) == 7) && (4 < 5))
        let Expr::Binary(BinOp::LogAnd, lhs, _) = e else {
            panic!("top is not &&: {e:?}")
        };
        assert!(matches!(**lhs, Expr::Binary(BinOp::Eq, ..)));
    }

    #[test]
    fn parses_control_flow() {
        let p = parse_src(
            "void f(int n) {
                int i;
                for (i = 0; i < n; i++) { if (i % 2) continue; else break; }
                while (n) n--;
                do n++; while (n < 3);
            }",
        );
        assert_eq!(p.functions[0].body.len(), 4);
    }

    #[test]
    fn for_with_declaration() {
        let p = parse_src("int f() { for (int i = 0; i < 3; ++i) ; return 0; }");
        let Stmt::For(Some(init), ..) = &p.functions[0].body[0] else {
            panic!("no for init")
        };
        assert!(matches!(**init, Stmt::Decl { .. }));
    }

    #[test]
    fn compound_assign_and_incdec() {
        let p = parse_src("int f(int x) { x += 2; x <<= 1; ++x; x--; return x; }");
        assert!(matches!(
            p.functions[0].body[0],
            Stmt::Expr(Expr::CompoundAssign(BinOp::Add, ..))
        ));
        assert!(matches!(
            p.functions[0].body[1],
            Stmt::Expr(Expr::CompoundAssign(BinOp::Shl, ..))
        ));
        assert!(matches!(
            p.functions[0].body[2],
            Stmt::Expr(Expr::PreIncDec(true, _))
        ));
        assert!(matches!(
            p.functions[0].body[3],
            Stmt::Expr(Expr::PostIncDec(false, _))
        ));
    }

    #[test]
    fn pointers_arrays_calls() {
        let p = parse_src("int f(int *p, int a[]) { return p[1] + a[0] + *p + g(1, 2); }");
        assert!(matches!(p.functions[0].params[1].ty, CType::Ptr(_)));
    }

    #[test]
    fn prototypes_are_skipped() {
        let p = parse_src("int g(int x); int f() { return g(1); }");
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn ternary_chains() {
        let p = parse_src("int f(int x) { return x > 0 ? 1 : x < 0 ? -1 : 0; }");
        let Stmt::Return(Some(Expr::Ternary(_, _, els))) = &p.functions[0].body[0] else {
            panic!("not ternary")
        };
        assert!(matches!(**els, Expr::Ternary(..)));
    }

    #[test]
    fn errors_have_lines() {
        let err = parse(&lex("int f() {\n  return 1 +;\n}").unwrap()).unwrap_err();
        assert_eq!(err.line, 2);
    }
}
