//! A mini-C front end producing [`codecomp_ir`] trees.
//!
//! The paper compresses code compiled by lcc from C sources (§3 shows
//! the `salt`/`pepper` example compiled to IR trees). This crate plays
//! lcc's role: it compiles a C subset — `int`/`char`/`short`/`unsigned`
//! scalars, pointers, one-dimensional arrays, strings, the usual
//! statement forms and operators, and function definitions — into the
//! tree IR that both compressors consume.
//!
//! # Examples
//!
//! ```
//! use codecomp_front::compile;
//!
//! let module = compile(r#"
//!     int salt(int j, int i) {
//!         if (j > 0) {
//!             pepper(i, j);
//!             j--;
//!         }
//!         return j;
//!     }
//!     int pepper(int a, int b) { return a + b; }
//! "#)?;
//! assert_eq!(module.functions.len(), 2);
//! # Ok::<(), codecomp_front::FrontError>(())
//! ```

pub mod ast;
pub mod gen;
pub mod lexer;
pub mod parser;
pub mod sema;

use codecomp_ir::Module;
use std::error::Error;
use std::fmt;

/// Compiles mini-C source text into an IR module.
///
/// # Errors
///
/// [`FrontError`] describing the first lexical, syntactic, or semantic
/// problem, with a line number.
pub fn compile(source: &str) -> Result<Module, FrontError> {
    let _span = codecomp_core::telemetry::span("front.compile");
    let tokens = lexer::lex(source)?;
    let program = parser::parse(&tokens)?;
    sema::check(&program)?;
    let module = gen::generate(&program)?;
    if codecomp_core::telemetry::enabled() {
        use codecomp_core::telemetry as t;
        t::counter_add("front.tokens", tokens.len() as u64);
        t::counter_add(
            "front.decls",
            (module.functions.len() + module.globals.len()) as u64,
        );
        t::counter_add("front.modules", 1);
    }
    Ok(module)
}

/// A front-end diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontError {
    /// 1-based source line of the problem.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl FrontError {
    /// Creates a diagnostic.
    pub fn new(line: u32, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for FrontError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for FrontError {}
