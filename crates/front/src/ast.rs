//! Abstract syntax for the mini-C subset.

/// A C type in the subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CType {
    /// 32-bit signed `int`.
    Int,
    /// 8-bit signed `char`.
    Char,
    /// 16-bit signed `short`.
    Short,
    /// 32-bit `unsigned`.
    Unsigned,
    /// `void` (function returns only).
    Void,
    /// Pointer to a type.
    Ptr(Box<CType>),
    /// One-dimensional array with a compile-time length.
    Array(Box<CType>, usize),
}

impl CType {
    /// Size in bytes of a value of this type.
    pub fn size(&self) -> u32 {
        match self {
            CType::Char => 1,
            CType::Short => 2,
            CType::Int | CType::Unsigned | CType::Ptr(_) => 4,
            CType::Void => 0,
            CType::Array(elem, n) => elem.size() * (*n as u32),
        }
    }

    /// The type a value of this type decays to in an rvalue context
    /// (arrays decay to pointers).
    pub fn decayed(&self) -> CType {
        match self {
            CType::Array(elem, _) => CType::Ptr(elem.clone()),
            other => other.clone(),
        }
    }

    /// Whether this is a pointer (after decay).
    pub fn is_pointer(&self) -> bool {
        matches!(self.decayed(), CType::Ptr(_))
    }

    /// The pointee type of a pointer or array.
    pub fn pointee(&self) -> Option<&CType> {
        match self {
            CType::Ptr(t) | CType::Array(t, _) => Some(t),
            _ => None,
        }
    }
}

/// Binary operator kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

impl BinOp {
    /// Whether this operator yields a 0/1 comparison result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operator kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `~`
    BitNot,
    /// `!`
    Not,
    /// `*`
    Deref,
    /// `&`
    AddrOf,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// String literal (anonymous global byte array).
    Str(Vec<u8>),
    /// Variable reference.
    Var(String),
    /// `a OP b`.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `OP a`.
    Unary(UnOp, Box<Expr>),
    /// `lhs = rhs` (plain assignment; compound forms are desugared).
    Assign(Box<Expr>, Box<Expr>),
    /// `lhs op= rhs` kept structured so `lhs` is evaluated once.
    CompoundAssign(BinOp, Box<Expr>, Box<Expr>),
    /// `++x` / `--x` (`is_inc`, prefix).
    PreIncDec(bool, Box<Expr>),
    /// `x++` / `x--`.
    PostIncDec(bool, Box<Expr>),
    /// `cond ? then : else`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `f(args…)`.
    Call(String, Vec<Expr>),
    /// `base[index]`.
    Index(Box<Expr>, Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Local declaration with optional initializer.
    Decl {
        /// Declared type.
        ty: CType,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// `if (cond) then else?`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while (cond) body`.
    While(Expr, Box<Stmt>),
    /// `do body while (cond);`.
    DoWhile(Box<Stmt>, Expr),
    /// `for (init; cond; step) body` — all parts optional.
    For(Option<Box<Stmt>>, Option<Expr>, Option<Expr>, Box<Stmt>),
    /// `return expr?;`.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `{ … }`.
    Block(Vec<Stmt>),
    /// `;`
    Empty,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter type.
    pub ty: CType,
    /// Parameter name.
    pub name: String,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Return type.
    pub ret: CType,
    /// Function name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Declared type.
    pub ty: CType,
    /// Name.
    pub name: String,
    /// Optional initializer: a scalar expression, array list, or string.
    pub init: Option<GlobalInit>,
}

/// Initializer forms for globals.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// A constant scalar.
    Scalar(i64),
    /// `{ a, b, c }` of constants.
    List(Vec<i64>),
    /// A string literal (for `char` arrays).
    Str(Vec<u8>),
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Global variables.
    pub globals: Vec<GlobalDef>,
    /// Function definitions.
    pub functions: Vec<FuncDef>,
    /// Declared-but-not-defined functions: `(name, arity)`.
    pub prototypes: Vec<(String, usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes() {
        assert_eq!(CType::Char.size(), 1);
        assert_eq!(CType::Short.size(), 2);
        assert_eq!(CType::Int.size(), 4);
        assert_eq!(CType::Ptr(Box::new(CType::Char)).size(), 4);
        assert_eq!(CType::Array(Box::new(CType::Int), 10).size(), 40);
    }

    #[test]
    fn array_decay() {
        let arr = CType::Array(Box::new(CType::Char), 8);
        assert_eq!(arr.decayed(), CType::Ptr(Box::new(CType::Char)));
        assert!(arr.is_pointer());
        assert_eq!(arr.pointee(), Some(&CType::Char));
        assert_eq!(CType::Int.decayed(), CType::Int);
        assert!(!CType::Int.is_pointer());
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::LogAnd.is_comparison());
    }
}
