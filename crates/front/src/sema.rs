//! Semantic checks that run between parsing and code generation.
//!
//! The tree code generator catches scope errors (undefined variables,
//! `break` outside loops, bad lvalues) as it walks; this pass catches
//! the whole-program properties it cannot see locally: duplicate
//! definitions, calls to unknown functions, and call-arity mismatches —
//! the class of error that would otherwise surface only at run time
//! (or, worse, as an undefined argument-slot read).

use crate::ast::{Expr, FuncDef, Program, Stmt};
use crate::FrontError;
use std::collections::HashMap;

/// Host functions every program may call, with their arities.
const HOST: [(&str, usize); 2] = [("print_int", 1), ("print_char", 1)];

/// Checks a parsed program.
///
/// # Errors
///
/// The first semantic error found. Line numbers are not tracked in the
/// AST, so diagnostics name the enclosing function instead.
pub fn check(program: &Program) -> Result<(), FrontError> {
    // Known callables: definitions, prototypes, host functions.
    let mut arities: HashMap<&str, usize> = HashMap::new();
    for (name, arity) in HOST {
        arities.insert(name, arity);
    }
    for (name, arity) in &program.prototypes {
        if let Some(&prev) = arities.get(name.as_str()) {
            if prev != *arity {
                return Err(FrontError::new(
                    0,
                    format!("conflicting declarations of {name}: {prev} vs {arity} parameters"),
                ));
            }
        }
        arities.insert(name, *arity);
    }
    for f in &program.functions {
        if let Some(&prev) = arities.get(f.name.as_str()) {
            if prev != f.params.len() {
                return Err(FrontError::new(
                    0,
                    format!(
                        "definition of {} has {} parameters but was declared with {prev}",
                        f.name,
                        f.params.len()
                    ),
                ));
            }
        }
        arities.insert(&f.name, f.params.len());
    }

    // Duplicate definitions.
    let mut seen_funcs: HashMap<&str, ()> = HashMap::new();
    for f in &program.functions {
        if seen_funcs.insert(&f.name, ()).is_some() {
            return Err(FrontError::new(
                0,
                format!("duplicate definition of function {}", f.name),
            ));
        }
    }
    let mut seen_globals: HashMap<&str, ()> = HashMap::new();
    for g in &program.globals {
        if seen_globals.insert(&g.name, ()).is_some() {
            return Err(FrontError::new(
                0,
                format!("duplicate definition of global {}", g.name),
            ));
        }
        if seen_funcs.contains_key(g.name.as_str()) {
            return Err(FrontError::new(
                0,
                format!("{} is defined as both a global and a function", g.name),
            ));
        }
    }

    // Duplicate parameter names.
    for f in &program.functions {
        let mut names: HashMap<&str, ()> = HashMap::new();
        for p in &f.params {
            if names.insert(&p.name, ()).is_some() {
                return Err(FrontError::new(
                    0,
                    format!("in {}: duplicate parameter {}", f.name, p.name),
                ));
            }
        }
    }

    // Call sites.
    for f in &program.functions {
        check_function(f, &arities)?;
    }
    Ok(())
}

fn check_function(f: &FuncDef, arities: &HashMap<&str, usize>) -> Result<(), FrontError> {
    for stmt in &f.body {
        check_stmt(f, stmt, arities)?;
    }
    Ok(())
}

fn check_stmt(f: &FuncDef, stmt: &Stmt, arities: &HashMap<&str, usize>) -> Result<(), FrontError> {
    match stmt {
        Stmt::Expr(e) => check_expr(f, e, arities),
        Stmt::Decl { init, .. } => {
            if let Some(e) = init {
                check_expr(f, e, arities)?;
            }
            Ok(())
        }
        Stmt::If(cond, then, els) => {
            check_expr(f, cond, arities)?;
            check_stmt(f, then, arities)?;
            if let Some(e) = els {
                check_stmt(f, e, arities)?;
            }
            Ok(())
        }
        Stmt::While(cond, body) => {
            check_expr(f, cond, arities)?;
            check_stmt(f, body, arities)
        }
        Stmt::DoWhile(body, cond) => {
            check_stmt(f, body, arities)?;
            check_expr(f, cond, arities)
        }
        Stmt::For(init, cond, step, body) => {
            if let Some(s) = init {
                check_stmt(f, s, arities)?;
            }
            if let Some(e) = cond {
                check_expr(f, e, arities)?;
            }
            if let Some(e) = step {
                check_expr(f, e, arities)?;
            }
            check_stmt(f, body, arities)
        }
        Stmt::Return(e) => {
            if let Some(e) = e {
                check_expr(f, e, arities)?;
            }
            Ok(())
        }
        Stmt::Block(body) => {
            for s in body {
                check_stmt(f, s, arities)?;
            }
            Ok(())
        }
        Stmt::Break | Stmt::Continue | Stmt::Empty => Ok(()),
    }
}

fn check_expr(f: &FuncDef, expr: &Expr, arities: &HashMap<&str, usize>) -> Result<(), FrontError> {
    match expr {
        Expr::Call(name, args) => {
            match arities.get(name.as_str()) {
                None => {
                    return Err(FrontError::new(
                        0,
                        format!("in {}: call to undefined function {name}", f.name),
                    ));
                }
                Some(&arity) if arity != args.len() => {
                    return Err(FrontError::new(
                        0,
                        format!(
                            "in {}: {name} takes {arity} arguments, called with {}",
                            f.name,
                            args.len()
                        ),
                    ));
                }
                Some(_) => {}
            }
            for a in args {
                check_expr(f, a, arities)?;
            }
            Ok(())
        }
        Expr::Num(_) | Expr::Str(_) | Expr::Var(_) => Ok(()),
        Expr::Binary(_, a, b)
        | Expr::Assign(a, b)
        | Expr::CompoundAssign(_, a, b)
        | Expr::Index(a, b) => {
            check_expr(f, a, arities)?;
            check_expr(f, b, arities)
        }
        Expr::Unary(_, a) | Expr::PreIncDec(_, a) | Expr::PostIncDec(_, a) => {
            check_expr(f, a, arities)
        }
        Expr::Ternary(c, t, e) => {
            check_expr(f, c, arities)?;
            check_expr(f, t, arities)?;
            check_expr(f, e, arities)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::compile;

    #[test]
    fn undefined_call_rejected() {
        let err = compile("int main() { return nope(1); }").unwrap_err();
        assert!(err.message.contains("undefined function nope"), "{err}");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = compile("int f(int a, int b) { return a + b; } int main() { return f(1); }")
            .unwrap_err();
        assert!(err.message.contains("takes 2 arguments"), "{err}");
        let err = compile("int main() { print_int(1, 2); return 0; }").unwrap_err();
        assert!(err.message.contains("takes 1 arguments"), "{err}");
    }

    #[test]
    fn prototypes_allow_forward_and_external_calls() {
        // Forward reference through a prototype, defined later.
        assert!(
            compile("int g(int x); int main() { return g(1); } int g(int x) { return x; }").is_ok()
        );
        // Prototyped but never defined: compiles (fails only if called at
        // run time), matching separate-compilation C.
        assert!(compile("int ext(int x); int main() { return ext(4); }").is_ok());
    }

    #[test]
    fn conflicting_declarations_rejected() {
        let err =
            compile("int f(int a); int f(int a, int b) { return a; } int main() { return 0; }")
                .unwrap_err();
        assert!(err.message.contains("declared with"), "{err}");
    }

    #[test]
    fn duplicates_rejected() {
        assert!(
            compile("int f() { return 1; } int f() { return 2; } int main() { return 0; }")
                .is_err()
        );
        assert!(compile("int x; int x; int main() { return 0; }").is_err());
        assert!(compile("int f() { return 1; } int f; int main() { return 0; }").is_err());
        assert!(compile("int f(int a, int a) { return a; } int main() { return 0; }").is_err());
    }

    #[test]
    fn calls_in_all_positions_are_checked() {
        for src in [
            "int main() { if (nope()) return 1; return 0; }",
            "int main() { while (nope()) ; return 0; }",
            "int main() { int i; for (i = nope(); ; ) ; return 0; }",
            "int main() { int x = nope(); return x; }",
            "int main() { return 1 ? nope() : 2; }",
            "int main() { int a[3]; return a[nope()]; }",
        ] {
            assert!(crate::compile(src).is_err(), "should reject: {src}");
        }
    }
}
