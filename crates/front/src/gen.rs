//! AST → IR tree code generation.
//!
//! Follows lcc's conventions: locals and parameters live at frame
//! offsets addressed with `ADDRLP`/`ADDRFP`, parameters occupy the first
//! `4*i` slots (the caller spills them there), character and short
//! values are promoted to `int` with `CVT` when used in arithmetic, and
//! call arguments are pushed with `ARG` statement trees ahead of the
//! `CALL` node. Conditional *values* (comparisons, `&&`, `||`, `?:`)
//! are materialized through branches and a frame temporary, exactly as a
//! simple C compiler would.

use crate::ast::*;
use crate::FrontError;
use codecomp_ir::op::{IrType, Op, Opcode};
use codecomp_ir::tree::{Function, Global, Module, Tree};
use std::collections::HashMap;

/// Generates an IR module from a parsed program.
///
/// # Errors
///
/// [`FrontError`] for undefined variables, bad lvalues, and other
/// semantic problems.
pub fn generate(program: &Program) -> Result<Module, FrontError> {
    let mut g = Generator::new(program);
    let mut module = Module::new();
    for global in &program.globals {
        module.globals.push(lower_global(global)?);
    }
    for f in &program.functions {
        module.functions.push(g.function(f)?);
    }
    for (name, bytes) in g.strings.drain(..) {
        module.globals.push(Global {
            name,
            size: bytes.len() as u32,
            init: bytes,
        });
    }
    module
        .validate()
        .map_err(|e| FrontError::new(0, format!("internal label error: {e}")))?;
    Ok(module)
}

fn lower_global(def: &GlobalDef) -> Result<Global, FrontError> {
    let size = def.ty.size().max(1);
    let init = match &def.init {
        None => Vec::new(),
        Some(GlobalInit::Scalar(v)) => {
            let mut bytes = (*v as u32).to_le_bytes().to_vec();
            bytes.truncate(def.ty.size().max(1) as usize);
            bytes
        }
        Some(GlobalInit::List(items)) => {
            let elem = match &def.ty {
                CType::Array(e, _) => (**e).clone(),
                other => other.clone(),
            };
            let mut bytes = Vec::new();
            for &v in items {
                match elem.size() {
                    1 => bytes.push(v as u8),
                    2 => bytes.extend_from_slice(&(v as u16).to_le_bytes()),
                    _ => bytes.extend_from_slice(&(v as u32).to_le_bytes()),
                }
            }
            bytes
        }
        Some(GlobalInit::Str(s)) => {
            let mut bytes = s.clone();
            bytes.push(0);
            bytes
        }
    };
    if init.len() > size as usize {
        return Err(FrontError::new(
            0,
            format!("initializer too large for {}", def.name),
        ));
    }
    Ok(Global {
        name: def.name.clone(),
        size,
        init,
    })
}

/// A resolved variable.
#[derive(Debug, Clone)]
enum Place {
    Local { offset: i32, ty: CType },
    Param { offset: i32, ty: CType },
    Global { name: String, ty: CType },
}

struct Generator<'p> {
    signatures: HashMap<String, (CType, usize)>,
    global_types: HashMap<String, CType>,
    strings: Vec<(String, Vec<u8>)>,
    string_ids: HashMap<Vec<u8>, String>,
    _program: &'p Program,
}

struct FuncCx {
    scopes: Vec<HashMap<String, Place>>,
    next_offset: u32,
    max_offset: u32,
    next_label: u32,
    /// (continue target, break target) stack.
    loops: Vec<(u32, u32)>,
    out: Vec<Tree>,
    line: u32,
}

impl<'p> Generator<'p> {
    fn new(program: &'p Program) -> Self {
        let mut signatures = HashMap::new();
        for f in &program.functions {
            signatures.insert(f.name.clone(), (f.ret.clone(), f.params.len()));
        }
        signatures.insert("print_int".into(), (CType::Void, 1));
        signatures.insert("print_char".into(), (CType::Void, 1));
        let global_types = program
            .globals
            .iter()
            .map(|g| (g.name.clone(), g.ty.clone()))
            .collect();
        Self {
            signatures,
            global_types,
            strings: Vec::new(),
            string_ids: HashMap::new(),
            _program: program,
        }
    }

    fn intern_string(&mut self, bytes: &[u8]) -> String {
        if let Some(name) = self.string_ids.get(bytes) {
            return name.clone();
        }
        let name = format!("$str{}", self.strings.len());
        let mut stored = bytes.to_vec();
        stored.push(0);
        self.strings.push((name.clone(), stored));
        self.string_ids.insert(bytes.to_vec(), name.clone());
        name
    }

    fn function(&mut self, def: &FuncDef) -> Result<Function, FrontError> {
        let mut cx = FuncCx {
            scopes: vec![HashMap::new()],
            next_offset: 4 * def.params.len() as u32,
            max_offset: 4 * def.params.len() as u32,
            next_label: 1,
            loops: Vec::new(),
            out: Vec::new(),
            line: 0,
        };
        for (i, p) in def.params.iter().enumerate() {
            cx.scopes[0].insert(
                p.name.clone(),
                Place::Param {
                    offset: 4 * i as i32,
                    ty: p.ty.clone(),
                },
            );
        }
        for stmt in &def.body {
            self.stmt(&mut cx, stmt, &def.ret)?;
        }
        // Guarantee the body ends in a return.
        let needs_ret = !matches!(
            cx.out.last().map(|t| t.op().opcode),
            Some(Opcode::Ret) | Some(Opcode::Jump)
        );
        if needs_ret {
            if def.ret == CType::Void {
                cx.out.push(Tree::ret_void());
            } else {
                cx.out.push(Tree::ret(IrType::I, Tree::cnst_auto(0)));
            }
        }
        let mut f = Function::new(&def.name, def.params.len(), cx.max_offset.div_ceil(4) * 4);
        f.body = std::mem::take(&mut cx.out);
        Ok(f)
    }

    // ---- statements ------------------------------------------------------

    fn stmt(&mut self, cx: &mut FuncCx, stmt: &Stmt, ret: &CType) -> Result<(), FrontError> {
        match stmt {
            Stmt::Empty => Ok(()),
            Stmt::Block(body) => {
                cx.scopes.push(HashMap::new());
                let saved = cx.next_offset;
                for s in body {
                    self.stmt(cx, s, ret)?;
                }
                cx.scopes.pop();
                // Block-local frame space is reusable after scope exit.
                cx.next_offset = saved;
                Ok(())
            }
            Stmt::Decl { ty, name, init } => {
                let offset = alloc(cx, ty.size().max(1), ty.size().clamp(1, 4));
                cx.scopes
                    .last_mut()
                    .expect("scope stack is never empty")
                    .insert(
                        name.clone(),
                        Place::Local {
                            offset,
                            ty: ty.clone(),
                        },
                    );
                if let Some(e) = init {
                    let (value, _) = self.rvalue(cx, e)?;
                    let ir_ty = ir_type(ty);
                    cx.out
                        .push(Tree::asgn(ir_ty, Tree::addr_local(offset), value));
                }
                Ok(())
            }
            Stmt::Expr(e) => self.expr_stmt(cx, e),
            Stmt::If(cond, then, els) => {
                let else_label = fresh(cx);
                self.cond(cx, cond, else_label, false)?;
                self.stmt(cx, then, ret)?;
                if let Some(els) = els {
                    let end = fresh(cx);
                    cx.out.push(Tree::jump(end));
                    cx.out.push(Tree::label(else_label));
                    self.stmt(cx, els, ret)?;
                    cx.out.push(Tree::label(end));
                } else {
                    cx.out.push(Tree::label(else_label));
                }
                Ok(())
            }
            Stmt::While(cond, body) => {
                let start = fresh(cx);
                let end = fresh(cx);
                cx.out.push(Tree::label(start));
                self.cond(cx, cond, end, false)?;
                cx.loops.push((start, end));
                self.stmt(cx, body, ret)?;
                cx.loops.pop();
                cx.out.push(Tree::jump(start));
                cx.out.push(Tree::label(end));
                Ok(())
            }
            Stmt::DoWhile(body, cond) => {
                let start = fresh(cx);
                let cont = fresh(cx);
                let end = fresh(cx);
                cx.out.push(Tree::label(start));
                cx.loops.push((cont, end));
                self.stmt(cx, body, ret)?;
                cx.loops.pop();
                cx.out.push(Tree::label(cont));
                self.cond(cx, cond, start, true)?;
                cx.out.push(Tree::label(end));
                Ok(())
            }
            Stmt::For(init, cond, step, body) => {
                cx.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.stmt(cx, init, ret)?;
                }
                let start = fresh(cx);
                let cont = fresh(cx);
                let end = fresh(cx);
                cx.out.push(Tree::label(start));
                if let Some(cond) = cond {
                    self.cond(cx, cond, end, false)?;
                }
                cx.loops.push((cont, end));
                self.stmt(cx, body, ret)?;
                cx.loops.pop();
                cx.out.push(Tree::label(cont));
                if let Some(step) = step {
                    self.expr_stmt(cx, step)?;
                }
                cx.out.push(Tree::jump(start));
                cx.out.push(Tree::label(end));
                cx.scopes.pop();
                Ok(())
            }
            Stmt::Return(e) => {
                match e {
                    None => cx.out.push(Tree::ret_void()),
                    Some(e) => {
                        let (value, _) = self.rvalue(cx, e)?;
                        if *ret == CType::Void {
                            // Evaluate for side effects, then plain return.
                            cx.out.push(value);
                            cx.out.push(Tree::ret_void());
                        } else {
                            cx.out.push(Tree::ret(IrType::I, value));
                        }
                    }
                }
                Ok(())
            }
            Stmt::Break => {
                let (_, brk) = *cx
                    .loops
                    .last()
                    .ok_or_else(|| FrontError::new(cx.line, "break outside a loop"))?;
                cx.out.push(Tree::jump(brk));
                Ok(())
            }
            Stmt::Continue => {
                let (cont, _) = *cx
                    .loops
                    .last()
                    .ok_or_else(|| FrontError::new(cx.line, "continue outside a loop"))?;
                cx.out.push(Tree::jump(cont));
                Ok(())
            }
        }
    }

    /// Expression used for effect only — avoids the post-inc temporary.
    fn expr_stmt(&mut self, cx: &mut FuncCx, e: &Expr) -> Result<(), FrontError> {
        match e {
            Expr::PostIncDec(is_inc, inner) | Expr::PreIncDec(is_inc, inner) => {
                let tree = self.inc_dec_tree(cx, *is_inc, inner)?;
                cx.out.push(tree);
                Ok(())
            }
            // A discarded call compiles to a bare CALL statement root, the
            // shape the paper's example shows (`CALLI(ADDRGP[pepper])`).
            Expr::Call(name, args) => {
                let call = self.emit_call(cx, name, args)?;
                cx.out.push(call);
                Ok(())
            }
            _ => {
                let (tree, _) = self.rvalue(cx, e)?;
                // Pure leaves have no effect; dropping them entirely keeps
                // the IR clean (a bare `x;` statement compiles to nothing).
                if !matches!(
                    tree.op().opcode,
                    Opcode::Cnst | Opcode::AddrG | Opcode::AddrL | Opcode::AddrF
                ) {
                    cx.out.push(tree);
                }
                Ok(())
            }
        }
    }

    // ---- variable lookup ---------------------------------------------------

    fn lookup(&self, cx: &FuncCx, name: &str) -> Option<Place> {
        for scope in cx.scopes.iter().rev() {
            if let Some(p) = scope.get(name) {
                return Some(p.clone());
            }
        }
        self.global_types.get(name).map(|ty| Place::Global {
            name: name.to_string(),
            ty: ty.clone(),
        })
    }

    // ---- lvalues -----------------------------------------------------------

    /// Returns `(address tree, object type)`.
    fn lvalue(&mut self, cx: &mut FuncCx, e: &Expr) -> Result<(Tree, CType), FrontError> {
        match e {
            Expr::Var(name) => match self.lookup(cx, name) {
                Some(Place::Local { offset, ty }) => Ok((Tree::addr_local(offset), ty)),
                Some(Place::Param { offset, ty }) => Ok((Tree::addr_formal(offset), ty)),
                Some(Place::Global { name, ty }) => Ok((Tree::addr_global(name), ty)),
                None => Err(FrontError::new(
                    cx.line,
                    format!("undefined variable {name}"),
                )),
            },
            Expr::Unary(UnOp::Deref, inner) => {
                let (ptr, ty) = self.rvalue(cx, inner)?;
                let pointee = ty
                    .pointee()
                    .cloned()
                    .ok_or_else(|| FrontError::new(cx.line, "dereference of a non-pointer"))?;
                Ok((ptr, pointee))
            }
            Expr::Index(base, index) => {
                let (base_tree, base_ty) = self.rvalue(cx, base)?;
                let pointee = base_ty
                    .pointee()
                    .cloned()
                    .ok_or_else(|| FrontError::new(cx.line, "indexing a non-pointer"))?;
                let (idx, _) = self.rvalue(cx, index)?;
                let scaled = scale_index(idx, pointee.size().max(1));
                Ok((Tree::add(IrType::P, base_tree, scaled), pointee))
            }
            _ => Err(FrontError::new(cx.line, "expression is not an lvalue")),
        }
    }

    // ---- rvalues -----------------------------------------------------------

    /// Returns `(value tree, expression type after promotion/decay)`.
    fn rvalue(&mut self, cx: &mut FuncCx, e: &Expr) -> Result<(Tree, CType), FrontError> {
        match e {
            // Literals wrap to the 32-bit int range up front so every
            // later representation (IR binary, VM immediates) agrees.
            Expr::Num(v) => Ok((Tree::cnst_auto(i64::from(*v as i32)), CType::Int)),
            Expr::Str(s) => {
                let name = self.intern_string(s);
                Ok((Tree::addr_global(name), CType::Ptr(Box::new(CType::Char))))
            }
            Expr::Var(name) => {
                // Function names used as values become global addresses.
                if self.lookup(cx, name).is_none() && self.signatures.contains_key(name) {
                    return Ok((
                        Tree::addr_global(name.clone()),
                        CType::Ptr(Box::new(CType::Int)),
                    ));
                }
                let (addr, ty) = self.lvalue(cx, e)?;
                Ok(load_promoted(addr, &ty))
            }
            Expr::Index(..) | Expr::Unary(UnOp::Deref, _) => {
                let (addr, ty) = self.lvalue(cx, e)?;
                Ok(load_promoted(addr, &ty))
            }
            Expr::Unary(UnOp::AddrOf, inner) => {
                let (addr, ty) = self.lvalue(cx, inner)?;
                Ok((addr, CType::Ptr(Box::new(ty))))
            }
            Expr::Unary(UnOp::Neg, inner) => {
                let (v, ty) = self.rvalue(cx, inner)?;
                let ir_ty = arith_type(&ty, &CType::Int);
                Ok((Tree::unary(Op::new(Opcode::Neg, ir_ty), v), CType::Int))
            }
            Expr::Unary(UnOp::BitNot, inner) => {
                let (v, ty) = self.rvalue(cx, inner)?;
                let ir_ty = arith_type(&ty, &CType::Int);
                Ok((Tree::unary(Op::new(Opcode::BCom, ir_ty), v), CType::Int))
            }
            Expr::Unary(UnOp::Not, _)
            | Expr::Binary(BinOp::LogAnd, ..)
            | Expr::Binary(BinOp::LogOr, ..) => self.bool_value(cx, e),
            Expr::Binary(op, a, b) if op.is_comparison() => self.bool_value(cx, e),
            Expr::Binary(op, a, b) => self.arith(cx, *op, a, b),
            Expr::Assign(lhs, rhs) => {
                let (addr, ty) = self.lvalue(cx, lhs)?;
                let (value, _) = self.rvalue(cx, rhs)?;
                Ok((Tree::asgn(ir_type(&ty), addr, value), promote(&ty)))
            }
            Expr::CompoundAssign(op, lhs, rhs) => {
                let (addr, ty) = self.lvalue(cx, lhs)?;
                let (loaded, lty) = load_promoted(addr.clone(), &ty);
                let combined = self.apply_binop(cx, *op, loaded, lty, rhs)?;
                Ok((Tree::asgn(ir_type(&ty), addr, combined.0), promote(&ty)))
            }
            Expr::PreIncDec(is_inc, inner) => {
                let tree = self.inc_dec_tree(cx, *is_inc, inner)?;
                Ok((tree, CType::Int))
            }
            Expr::PostIncDec(is_inc, inner) => {
                // t = old value; x = x ± 1; value is t.
                let (addr, ty) = self.lvalue(cx, inner)?;
                let temp = alloc(cx, 4, 4);
                let (old, _) = load_promoted(addr.clone(), &ty);
                cx.out
                    .push(Tree::asgn(IrType::I, Tree::addr_local(temp), old));
                let tree = self.inc_dec_tree(cx, *is_inc, inner)?;
                cx.out.push(tree);
                Ok((Tree::indir(IrType::I, Tree::addr_local(temp)), promote(&ty)))
            }
            Expr::Ternary(cond, then, els) => {
                let temp = alloc(cx, 4, 4);
                let else_label = fresh(cx);
                let end = fresh(cx);
                self.cond(cx, cond, else_label, false)?;
                let (tv, tty) = self.rvalue(cx, then)?;
                cx.out
                    .push(Tree::asgn(IrType::I, Tree::addr_local(temp), tv));
                cx.out.push(Tree::jump(end));
                cx.out.push(Tree::label(else_label));
                let (ev, _) = self.rvalue(cx, els)?;
                cx.out
                    .push(Tree::asgn(IrType::I, Tree::addr_local(temp), ev));
                cx.out.push(Tree::label(end));
                Ok((Tree::indir(IrType::I, Tree::addr_local(temp)), tty))
            }
            Expr::Call(name, args) => self.call(cx, name, args),
        }
    }

    /// `x = x ± 1` (with pointer scaling), returned as an `ASGN` tree.
    fn inc_dec_tree(
        &mut self,
        cx: &mut FuncCx,
        is_inc: bool,
        target: &Expr,
    ) -> Result<Tree, FrontError> {
        let (addr, ty) = self.lvalue(cx, target)?;
        let step: i64 = if ty.is_pointer() {
            i64::from(ty.pointee().map_or(1, |p| p.size().max(1)))
        } else {
            1
        };
        let (loaded, _) = load_promoted(addr.clone(), &ty);
        let ir_ty = if ty.is_pointer() {
            IrType::P
        } else {
            IrType::I
        };
        let opcode = if is_inc { Opcode::Add } else { Opcode::Sub };
        Ok(Tree::asgn(
            ir_type(&ty),
            addr,
            Tree::binary(opcode, ir_ty, loaded, Tree::cnst_auto(step)),
        ))
    }

    fn arith(
        &mut self,
        cx: &mut FuncCx,
        op: BinOp,
        a: &Expr,
        b: &Expr,
    ) -> Result<(Tree, CType), FrontError> {
        let (av, aty) = self.rvalue(cx, a)?;
        self.apply_binop(cx, op, av, aty, b)
    }

    fn apply_binop(
        &mut self,
        cx: &mut FuncCx,
        op: BinOp,
        av: Tree,
        aty: CType,
        b: &Expr,
    ) -> Result<(Tree, CType), FrontError> {
        let (bv, bty) = self.rvalue(cx, b)?;
        // Pointer arithmetic.
        if op == BinOp::Add || op == BinOp::Sub {
            match (aty.is_pointer(), bty.is_pointer()) {
                (true, false) => {
                    let size = aty.pointee().map_or(1, |p| p.size().max(1));
                    let scaled = scale_index(bv, size);
                    let opcode = if op == BinOp::Add {
                        Opcode::Add
                    } else {
                        Opcode::Sub
                    };
                    return Ok((Tree::binary(opcode, IrType::P, av, scaled), aty.decayed()));
                }
                (false, true) if op == BinOp::Add => {
                    let size = bty.pointee().map_or(1, |p| p.size().max(1));
                    let scaled = scale_index(av, size);
                    return Ok((
                        Tree::binary(Opcode::Add, IrType::P, bv, scaled),
                        bty.decayed(),
                    ));
                }
                (true, true) if op == BinOp::Sub => {
                    let size = aty.pointee().map_or(1, |p| p.size().max(1));
                    let diff = Tree::sub(IrType::I, av, bv);
                    let result = if size > 1 {
                        Tree::binary(
                            Opcode::Div,
                            IrType::I,
                            diff,
                            Tree::cnst_auto(i64::from(size)),
                        )
                    } else {
                        diff
                    };
                    return Ok((result, CType::Int));
                }
                _ => {}
            }
        }
        let _ = cx;
        let ir_ty = arith_type(&aty, &bty);
        let opcode = match op {
            BinOp::Add => Opcode::Add,
            BinOp::Sub => Opcode::Sub,
            BinOp::Mul => Opcode::Mul,
            BinOp::Div => Opcode::Div,
            BinOp::Mod => Opcode::Mod,
            BinOp::And => Opcode::BAnd,
            BinOp::Or => Opcode::BOr,
            BinOp::Xor => Opcode::BXor,
            BinOp::Shl => Opcode::Lsh,
            BinOp::Shr => Opcode::Rsh,
            other => {
                return Err(FrontError::new(
                    cx_line(cx),
                    format!("{other:?} handled elsewhere"),
                ));
            }
        };
        let result_ty = if ir_ty == IrType::U {
            CType::Unsigned
        } else {
            CType::Int
        };
        Ok((Tree::binary(opcode, ir_ty, av, bv), result_ty))
    }

    fn call(
        &mut self,
        cx: &mut FuncCx,
        name: &str,
        args: &[Expr],
    ) -> Result<(Tree, CType), FrontError> {
        let call = self.emit_call(cx, name, args)?;
        let ret = self
            .signatures
            .get(name)
            .map(|(r, _)| r.clone())
            .unwrap_or(CType::Int);
        if ret == CType::Void {
            // Void calls are statements; the expression value is 0.
            cx.out.push(call);
            Ok((Tree::cnst_auto(0), CType::Int))
        } else {
            // The call executes *now*, into a temporary, so a later call
            // in the same expression cannot steal its pending arguments.
            let temp = alloc(cx, 4, 4);
            cx.out
                .push(Tree::asgn(IrType::I, Tree::addr_local(temp), call));
            Ok((
                Tree::indir(IrType::I, Tree::addr_local(temp)),
                if ret.is_pointer() { ret } else { CType::Int },
            ))
        }
    }

    /// Emits the `ARG` statements for `args` and returns the `CALL` tree.
    fn emit_call(
        &mut self,
        cx: &mut FuncCx,
        name: &str,
        args: &[Expr],
    ) -> Result<Tree, FrontError> {
        // Arguments evaluate left to right; any call inside an argument is
        // itself temporary-materialized by `call`, so the trees pushed as
        // ARGs never contain CALL nodes of their own.
        let mut arg_trees = Vec::with_capacity(args.len());
        for a in args {
            arg_trees.push(self.rvalue(cx, a)?.0);
        }
        for t in arg_trees {
            cx.out.push(Tree::arg(IrType::I, t));
        }
        let ret = self
            .signatures
            .get(name)
            .map(|(r, _)| r.clone())
            .unwrap_or(CType::Int);
        let ir_ret = if ret == CType::Void {
            IrType::V
        } else {
            IrType::I
        };
        Ok(Tree::call(ir_ret, Tree::addr_global(name)))
    }

    /// Materializes a boolean expression as a 0/1 temporary.
    fn bool_value(&mut self, cx: &mut FuncCx, e: &Expr) -> Result<(Tree, CType), FrontError> {
        let temp = alloc(cx, 4, 4);
        let false_label = fresh(cx);
        let end = fresh(cx);
        self.cond(cx, e, false_label, false)?;
        cx.out.push(Tree::asgn(
            IrType::I,
            Tree::addr_local(temp),
            Tree::cnst_auto(1),
        ));
        cx.out.push(Tree::jump(end));
        cx.out.push(Tree::label(false_label));
        cx.out.push(Tree::asgn(
            IrType::I,
            Tree::addr_local(temp),
            Tree::cnst_auto(0),
        ));
        cx.out.push(Tree::label(end));
        Ok((Tree::indir(IrType::I, Tree::addr_local(temp)), CType::Int))
    }

    /// Emits branches so control reaches `label` iff `e`'s truth equals
    /// `jump_if_true`.
    fn cond(
        &mut self,
        cx: &mut FuncCx,
        e: &Expr,
        label: u32,
        jump_if_true: bool,
    ) -> Result<(), FrontError> {
        match e {
            Expr::Unary(UnOp::Not, inner) => self.cond(cx, inner, label, !jump_if_true),
            Expr::Binary(BinOp::LogAnd, a, b) => {
                if jump_if_true {
                    let skip = fresh(cx);
                    self.cond(cx, a, skip, false)?;
                    self.cond(cx, b, label, true)?;
                    cx.out.push(Tree::label(skip));
                } else {
                    self.cond(cx, a, label, false)?;
                    self.cond(cx, b, label, false)?;
                }
                Ok(())
            }
            Expr::Binary(BinOp::LogOr, a, b) => {
                if jump_if_true {
                    self.cond(cx, a, label, true)?;
                    self.cond(cx, b, label, true)?;
                } else {
                    let skip = fresh(cx);
                    self.cond(cx, a, skip, true)?;
                    self.cond(cx, b, label, false)?;
                    cx.out.push(Tree::label(skip));
                }
                Ok(())
            }
            Expr::Binary(op, a, b) if op.is_comparison() => {
                let (av, aty) = self.rvalue(cx, a)?;
                let (bv, bty) = self.rvalue(cx, b)?;
                let ir_ty = arith_type(&aty, &bty);
                let opcode = branch_opcode(*op, jump_if_true);
                cx.out.push(Tree::branch(opcode, ir_ty, label, av, bv));
                Ok(())
            }
            Expr::Num(v) => {
                if (*v != 0) == jump_if_true {
                    cx.out.push(Tree::jump(label));
                }
                Ok(())
            }
            _ => {
                let (v, _) = self.rvalue(cx, e)?;
                let opcode = if jump_if_true { Opcode::Ne } else { Opcode::Eq };
                cx.out.push(Tree::branch(
                    opcode,
                    IrType::I,
                    label,
                    v,
                    Tree::cnst_auto(0),
                ));
                Ok(())
            }
        }
    }
}

// ---- helpers ---------------------------------------------------------------

fn cx_line(cx: &FuncCx) -> u32 {
    cx.line
}

fn fresh(cx: &mut FuncCx) -> u32 {
    let l = cx.next_label;
    cx.next_label += 1;
    l
}

/// Allocates `size` frame bytes aligned to `align`, returning the offset.
fn alloc(cx: &mut FuncCx, size: u32, align: u32) -> i32 {
    let aligned = cx.next_offset.div_ceil(align) * align;
    cx.next_offset = aligned + size;
    cx.max_offset = cx.max_offset.max(cx.next_offset);
    aligned as i32
}

/// Maps a C type to the IR type of a memory access.
fn ir_type(ty: &CType) -> IrType {
    match ty {
        CType::Char => IrType::C,
        CType::Short => IrType::S,
        CType::Int => IrType::I,
        CType::Unsigned => IrType::U,
        CType::Ptr(_) | CType::Array(_, _) => IrType::P,
        CType::Void => IrType::V,
    }
}

/// The C type an rvalue of `ty` has after promotion/decay.
fn promote(ty: &CType) -> CType {
    match ty {
        CType::Char | CType::Short => CType::Int,
        CType::Array(elem, _) => CType::Ptr(elem.clone()),
        other => other.clone(),
    }
}

/// Loads an object of type `ty` at `addr` and promotes it.
fn load_promoted(addr: Tree, ty: &CType) -> (Tree, CType) {
    match ty {
        // Arrays decay: the value *is* the address.
        CType::Array(elem, _) => (addr, CType::Ptr(elem.clone())),
        CType::Char => (
            Tree::unary(Op::cvt(IrType::C, IrType::I), Tree::indir(IrType::C, addr)),
            CType::Int,
        ),
        CType::Short => (
            Tree::unary(Op::cvt(IrType::S, IrType::I), Tree::indir(IrType::S, addr)),
            CType::Int,
        ),
        other => (Tree::indir(ir_type(other), addr), promote(other)),
    }
}

/// The IR type of an arithmetic node over two promoted operand types.
fn arith_type(a: &CType, b: &CType) -> IrType {
    let unsigned =
        a.is_pointer() || b.is_pointer() || *a == CType::Unsigned || *b == CType::Unsigned;
    if unsigned {
        IrType::U
    } else {
        IrType::I
    }
}

/// `idx * elem_size` (omitting the multiply when the size is one).
fn scale_index(idx: Tree, size: u32) -> Tree {
    if size == 1 {
        idx
    } else {
        Tree::mul(IrType::I, idx, Tree::cnst_auto(i64::from(size)))
    }
}

/// The branch opcode testing `op` (or its negation) on operand order (a, b).
fn branch_opcode(op: BinOp, jump_if_true: bool) -> Opcode {
    let direct = match op {
        BinOp::Eq => Opcode::Eq,
        BinOp::Ne => Opcode::Ne,
        BinOp::Lt => Opcode::Lt,
        BinOp::Le => Opcode::Le,
        BinOp::Gt => Opcode::Gt,
        BinOp::Ge => Opcode::Ge,
        _ => unreachable!("only comparisons reach branch_opcode"),
    };
    if jump_if_true {
        direct
    } else {
        match direct {
            Opcode::Eq => Opcode::Ne,
            Opcode::Ne => Opcode::Eq,
            Opcode::Lt => Opcode::Ge,
            Opcode::Le => Opcode::Gt,
            Opcode::Gt => Opcode::Le,
            Opcode::Ge => Opcode::Lt,
            _ => unreachable!("inverting a comparison yields a comparison"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::compile;
    use codecomp_ir::eval::Evaluator;
    use codecomp_ir::Module;

    fn run(src: &str) -> i64 {
        run_with(src, &[]).0
    }

    fn run_with(src: &str, args: &[i64]) -> (i64, Vec<u8>) {
        let m: Module = compile(src).unwrap();
        let out = Evaluator::new(&m, 1 << 20, 1 << 24)
            .unwrap()
            .run("main", args)
            .unwrap();
        (out.value, out.output)
    }

    #[test]
    fn returns_and_arithmetic() {
        assert_eq!(run("int main() { return 2 + 3 * 4; }"), 14);
        assert_eq!(run("int main() { return (2 + 3) * 4; }"), 20);
        assert_eq!(run("int main() { return 10 % 3 + 10 / 3; }"), 4);
        assert_eq!(run("int main() { return -5 + 8; }"), 3);
        assert_eq!(run("int main() { return ~0 & 0xF0 | 0x0C ^ 4; }"), 0xF8);
        assert_eq!(run("int main() { return 1 << 10 >> 2; }"), 256);
    }

    #[test]
    fn locals_and_assignment() {
        assert_eq!(
            run("int main() { int x = 3; int y; y = x * x; return y; }"),
            9
        );
        assert_eq!(
            run("int main() { int x; int y; x = y = 5; return x + y; }"),
            10
        );
        assert_eq!(
            run("int main() { int x = 10; x += 5; x *= 2; x -= 6; return x; }"),
            24
        );
    }

    #[test]
    fn if_else_chains() {
        let src = "
            int classify(int x) {
                if (x < 0) return -1;
                else if (x == 0) return 0;
                else return 1;
            }
            int main() { return classify(-5) * 100 + classify(0) * 10 + classify(7); }
        ";
        assert_eq!(run(src), -100 + 1);
    }

    #[test]
    fn loops() {
        assert_eq!(
            run("int main() { int s = 0; int i; for (i = 1; i <= 10; i++) s += i; return s; }"),
            55
        );
        assert_eq!(
            run("int main() { int n = 0; while (n < 7) n++; return n; }"),
            7
        );
        assert_eq!(
            run("int main() { int n = 0; do n += 3; while (n < 10); return n; }"),
            12
        );
        assert_eq!(
            run("int main() { int i; int s = 0; for (i = 0; i < 10; i++) { if (i == 5) break; if (i % 2) continue; s += i; } return s; }"),
            2 + 4
        );
    }

    #[test]
    fn logical_operators_short_circuit() {
        let src = "
            int g;
            int bump() { g++; return 1; }
            int main() {
                g = 0;
                if (0 && bump()) g += 100;
                if (1 || bump()) g += 10;
                return g;
            }
        ";
        assert_eq!(run(src), 10);
        assert_eq!(
            run("int main() { return (3 > 2) + (2 > 3) * 10 + (1 && 2) * 100 + (0 || 0) * 1000; }"),
            101
        );
    }

    #[test]
    fn ternary_and_not() {
        assert_eq!(run("int main() { return 5 > 3 ? 7 : 9; }"), 7);
        assert_eq!(run("int main() { return !5 * 10 + !0; }"), 1);
        assert_eq!(run("int main() { int x = -4; return x < 0 ? -x : x; }"), 4);
    }

    #[test]
    fn recursion_and_calls() {
        let src = "
            int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
            int main() { return fib(10); }
        ";
        assert_eq!(run(src), 55);
    }

    #[test]
    fn nested_call_arguments() {
        let src = "
            int add(int a, int b) { return a + b; }
            int main() { return add(1, add(2, add(3, 4))); }
        ";
        assert_eq!(run(src), 10);
    }

    #[test]
    fn paper_salt_example_compiles_and_runs() {
        let src = "
            int pepper(int a, int b) { return a + b; }
            int salt(int j, int i) {
                if (j > 0) {
                    pepper(i, j);
                    j--;
                }
                return j;
            }
            int main() { return salt(3, 9) * 10 + salt(0, 9); }
        ";
        assert_eq!(run(src), 20);
    }

    #[test]
    fn pointers_and_addressof() {
        let src = "
            int main() {
                int x = 5;
                int *p = &x;
                *p = *p + 2;
                return x;
            }
        ";
        assert_eq!(run(src), 7);
    }

    #[test]
    fn arrays_global_and_local() {
        let src = "
            int data[5] = {10, 20, 30, 40, 50};
            int main() {
                int local[4];
                int i;
                int s = 0;
                for (i = 0; i < 4; i++) local[i] = i * i;
                for (i = 0; i < 5; i++) s += data[i];
                return s + local[3];
            }
        ";
        assert_eq!(run(src), 150 + 9);
    }

    #[test]
    fn pointer_arithmetic_scales() {
        let src = "
            int a[3] = {7, 8, 9};
            int main() {
                int *p = a;
                p = p + 2;
                return *p + *(a + 1);
            }
        ";
        assert_eq!(run(src), 17);
    }

    #[test]
    fn char_arrays_and_strings() {
        let src = "
            char msg[6] = \"hello\";
            int main() {
                char *s = msg;
                int n = 0;
                while (*s) { n++; s++; }
                return n;
            }
        ";
        assert_eq!(run(src), 5);
    }

    #[test]
    fn string_literals_intern() {
        let src = "
            int len(char *s) { int n = 0; while (s[n]) n++; return n; }
            int main() { return len(\"abcd\") + len(\"xy\"); }
        ";
        assert_eq!(run(src), 6);
    }

    #[test]
    fn char_truncation_semantics() {
        assert_eq!(run("int main() { char c = 300; return c; }"), 44);
        assert_eq!(run("int main() { char c = 200; return c; }"), -56);
        assert_eq!(
            run("int main() { short s = 70000; return s; }"),
            70_000 - 65_536
        );
    }

    #[test]
    fn unsigned_semantics() {
        assert_eq!(run("int main() { unsigned u = 0 - 1; return u > 100; }"), 1);
        assert_eq!(run("int main() { return (0 - 1) > 100; }"), 0);
    }

    #[test]
    fn pre_and_post_incdec() {
        assert_eq!(
            run("int main() { int x = 5; int y = x++; return y * 10 + x; }"),
            56
        );
        assert_eq!(
            run("int main() { int x = 5; int y = ++x; return y * 10 + x; }"),
            66
        );
        assert_eq!(
            run("int main() { int x = 5; int y = x--; return y * 10 + x; }"),
            54
        );
        let src = "
            int a[3] = {1, 2, 3};
            int main() { int i = 0; int s = a[i++]; s += a[i++]; return s * 10 + i; }
        ";
        assert_eq!(run(src), 32);
    }

    #[test]
    fn output_functions() {
        let (v, out) = run_with(
            "int main() { print_int(42); print_char('h'); print_char('i'); return 0; }",
            &[],
        );
        assert_eq!(v, 0);
        assert_eq!(out, b"42\nhi");
    }

    #[test]
    fn void_functions() {
        let src = "
            int g;
            void set(int v) { g = v; return; }
            void noop() {}
            int main() { set(9); noop(); return g; }
        ";
        assert_eq!(run(src), 9);
    }

    #[test]
    fn entry_args() {
        let (v, _) = run_with("int main(int a, int b) { return a * b; }", &[6, 7]);
        assert_eq!(v, 42);
    }

    #[test]
    fn scopes_shadow() {
        let src = "
            int x = 1;
            int main() {
                int x = 2;
                { int x = 3; if (x != 3) return 100; }
                return x;
            }
        ";
        assert_eq!(run(src), 2);
    }

    #[test]
    fn undefined_variable_is_an_error() {
        assert!(compile("int main() { return nope; }").is_err());
    }

    #[test]
    fn bad_lvalue_is_an_error() {
        assert!(compile("int main() { 3 = 4; return 0; }").is_err());
    }

    #[test]
    fn break_outside_loop_is_an_error() {
        assert!(compile("int main() { break; return 0; }").is_err());
    }
}
