//! Tokenizer for the mini-C subset.

use crate::FrontError;

/// A lexical token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds of the mini-C language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (keywords are recognized by the parser).
    Ident(String),
    /// An integer literal (decimal, hex `0x…`, or character `'c'`).
    Int(i64),
    /// A string literal with escapes already processed.
    Str(Vec<u8>),
    /// Punctuation or operator, e.g. `"+"`, `"<<="`, `"("`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// All multi-character operators, longest first so maximal munch works.
const PUNCTS: [&str; 45] = [
    "<<=", ">>=", "...", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "->", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
    "<", ">", "=", "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
];

/// Tokenizes `source`.
///
/// # Errors
///
/// [`FrontError`] for unterminated strings/chars, bad escapes, or
/// characters outside the language.
pub fn lex(source: &str) -> Result<Vec<Token>, FrontError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    let mut line = 1u32;
    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b'\n' => {
                line += 1;
                pos += 1;
            }
            _ if b.is_ascii_whitespace() => pos += 1,
            b'/' if bytes.get(pos + 1) == Some(&b'/') => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'/' if bytes.get(pos + 1) == Some(&b'*') => {
                pos += 2;
                loop {
                    if pos + 1 >= bytes.len() {
                        return Err(FrontError::new(line, "unterminated block comment"));
                    }
                    if bytes[pos] == b'\n' {
                        line += 1;
                    }
                    if bytes[pos] == b'*' && bytes[pos + 1] == b'/' {
                        pos += 2;
                        break;
                    }
                    pos += 1;
                }
            }
            b'#' => {
                // Preprocessor lines are ignored (the corpus uses none that matter).
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(
                        String::from_utf8_lossy(&bytes[start..pos]).into_owned(),
                    ),
                    line,
                });
            }
            _ if b.is_ascii_digit() => {
                let start = pos;
                let value = if b == b'0' && matches!(bytes.get(pos + 1), Some(b'x') | Some(b'X')) {
                    pos += 2;
                    let hex_start = pos;
                    while pos < bytes.len() && bytes[pos].is_ascii_hexdigit() {
                        pos += 1;
                    }
                    if pos == hex_start {
                        return Err(FrontError::new(line, "empty hex literal"));
                    }
                    i64::from_str_radix(
                        std::str::from_utf8(&bytes[hex_start..pos]).expect("hex digits"),
                        16,
                    )
                    .map_err(|_| FrontError::new(line, "hex literal out of range"))?
                } else {
                    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                        pos += 1;
                    }
                    std::str::from_utf8(&bytes[start..pos])
                        .expect("digits")
                        .parse::<i64>()
                        .map_err(|_| FrontError::new(line, "integer literal out of range"))?
                };
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    line,
                });
            }
            b'\'' => {
                pos += 1;
                let (c, used) = read_char(bytes, pos, line)?;
                pos += used;
                if bytes.get(pos) != Some(&b'\'') {
                    return Err(FrontError::new(line, "unterminated character literal"));
                }
                pos += 1;
                tokens.push(Token {
                    kind: TokenKind::Int(i64::from(c as i8)),
                    line,
                });
            }
            b'"' => {
                pos += 1;
                let mut s = Vec::new();
                loop {
                    match bytes.get(pos) {
                        None | Some(b'\n') => {
                            return Err(FrontError::new(line, "unterminated string literal"));
                        }
                        Some(b'"') => {
                            pos += 1;
                            break;
                        }
                        Some(_) => {
                            let (c, used) = read_char(bytes, pos, line)?;
                            s.push(c);
                            pos += used;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line,
                });
            }
            _ => {
                let rest = &source[pos..];
                let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) else {
                    return Err(FrontError::new(
                        line,
                        format!("unexpected character {:?}", b as char),
                    ));
                };
                tokens.push(Token {
                    kind: TokenKind::Punct(p),
                    line,
                });
                pos += p.len();
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

/// Reads one possibly-escaped character, returning `(byte, bytes_consumed)`.
fn read_char(bytes: &[u8], pos: usize, line: u32) -> Result<(u8, usize), FrontError> {
    match bytes.get(pos) {
        None => Err(FrontError::new(line, "unexpected end of input in literal")),
        Some(b'\\') => {
            let esc = bytes
                .get(pos + 1)
                .ok_or_else(|| FrontError::new(line, "dangling escape"))?;
            let c = match esc {
                b'n' => b'\n',
                b't' => b'\t',
                b'r' => b'\r',
                b'0' => 0,
                b'\\' => b'\\',
                b'\'' => b'\'',
                b'"' => b'"',
                other => {
                    return Err(FrontError::new(
                        line,
                        format!("unknown escape \\{}", *other as char),
                    ));
                }
            };
            Ok((c, 2))
        }
        Some(&c) => Ok((c, 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Punct("="),
                TokenKind::Int(42),
                TokenKind::Punct(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn maximal_munch_on_operators() {
        assert_eq!(
            kinds("a<<=b >>c<= d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("<<="),
                TokenKind::Ident("b".into()),
                TokenKind::Punct(">>"),
                TokenKind::Ident("c".into()),
                TokenKind::Punct("<="),
                TokenKind::Ident("d".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_hex_and_char() {
        assert_eq!(
            kinds("0x10 255 'A' '\\n' '\\0'"),
            vec![
                TokenKind::Int(16),
                TokenKind::Int(255),
                TokenKind::Int(65),
                TokenKind::Int(10),
                TokenKind::Int(0),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""hi\n\t\"q\"""#),
            vec![TokenKind::Str(b"hi\n\t\"q\"".to_vec()), TokenKind::Eof]
        );
    }

    #[test]
    fn comments_and_preprocessor_skipped() {
        assert_eq!(
            kinds("#include <x.h>\n// line\nint /* block\nspanning */ y;"),
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("y".into()),
                TokenKind::Punct(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn errors_reported() {
        assert!(lex("\"open").is_err());
        assert!(lex("'a").is_err());
        assert!(lex("@").is_err());
        assert!(lex("/* never closed").is_err());
        assert!(lex("'\\q'").is_err());
    }
}
