//! Wire codec perf tracker: measures encode and decode throughput on
//! the bundled corpus and records the result (plus a full telemetry
//! registry dump) in `BENCH_wire.json`.
//!
//! Usage (via `scripts/bench.sh`, from the repo root):
//!
//! ```text
//! bench_wire                   # measure, update "current", keep baseline
//! bench_wire --record-baseline # measure, (re)record the baseline too
//! bench_wire --decode-smoke    # CI gate: decode the corpus byte-exactly
//!                              # and assert decode throughput clears a
//!                              # fixed floor; no JSON is written
//! ```

use codecomp_bench::{subjects, Scale};
use codecomp_core::telemetry;
use codecomp_wire::{compress, decompress, WireOptions};
use std::fmt::Write as _;
use std::time::Instant;

const OUT_PATH: &str = "BENCH_wire.json";
const SAMPLES: usize = 9;
/// Decode-throughput floor for `--decode-smoke`. The cached-table
/// decoder measures ~10.5 MiB/s on the corpus (with telemetry on); the
/// pre-cache decoder measured ~3.4 MiB/s. 6 MiB/s sits far enough above
/// the old decoder to catch a cache-path regression outright, with
/// headroom below the measured figure to absorb CI-machine jitter.
const DECODE_FLOOR_MIB_S: f64 = 6.0;

/// Median wall-clock throughput of `f` in MiB/s for `bytes` of work.
fn measure(bytes: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    bytes as f64 / times[times.len() / 2] / (1024.0 * 1024.0)
}

/// Extracts the number following `"key":` inside the named JSON section.
fn extract(json: &str, section: &str, key: &str) -> Option<f64> {
    let sec = json.find(&format!("\"{section}\""))?;
    let tail = &json[sec..];
    let end = tail.find('}').unwrap_or(tail.len());
    let body = &tail[..end];
    let k = body.find(&format!("\"{key}\""))?;
    let after = &body[k..];
    let colon = after.find(':')?;
    let num: String = after[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let record_baseline = std::env::args().any(|a| a == "--record-baseline");
    let decode_smoke = std::env::args().any(|a| a == "--decode-smoke");
    telemetry::install(telemetry::Collector::metrics_only());

    let subjects = subjects(Scale::CorpusOnly);
    let images: Vec<Vec<u8>> = subjects
        .iter()
        .map(|s| {
            compress(&s.ir, WireOptions::default())
                .expect("corpus wire-compresses")
                .bytes
        })
        .collect();
    let wire_bytes: usize = images.iter().map(Vec::len).sum();

    if decode_smoke {
        // CI gate: correctness first (every image must reproduce its
        // module exactly), then a one-sided throughput floor. No JSON
        // is written so the gate never perturbs the tracker.
        for (s, img) in subjects.iter().zip(&images) {
            assert_eq!(
                decompress(img).expect("corpus image decodes"),
                s.ir,
                "decode smoke: roundtrip mismatch"
            );
        }
        let mib_s = measure(wire_bytes, || {
            for img in &images {
                decompress(img).expect("decodes");
            }
        });
        println!(
            "decode smoke: {mib_s:.2} MiB/s over {wire_bytes} wire bytes (floor {DECODE_FLOOR_MIB_S} MiB/s)"
        );
        if mib_s < DECODE_FLOOR_MIB_S {
            eprintln!("bench_wire: decode throughput fell below the {DECODE_FLOOR_MIB_S} MiB/s floor");
            std::process::exit(1);
        }
        return;
    }

    // Throughput denominators: encode is rated over the produced wire
    // bytes, decode over the wire bytes consumed.
    let encode_mib_s = measure(wire_bytes, || {
        for s in &subjects {
            compress(&s.ir, WireOptions::default()).expect("encodes");
        }
    });
    let decode_mib_s = measure(wire_bytes, || {
        for img in &images {
            decompress(img).expect("decodes");
        }
    });

    let prior = std::fs::read_to_string(OUT_PATH).unwrap_or_default();
    let (base_enc, base_dec) = if record_baseline || prior.is_empty() {
        (encode_mib_s, decode_mib_s)
    } else {
        (
            extract(&prior, "baseline", "encode_mib_s").unwrap_or(encode_mib_s),
            extract(&prior, "baseline", "decode_mib_s").unwrap_or(decode_mib_s),
        )
    };

    let metrics_json = telemetry::collector()
        .expect("collector installed above")
        .metrics
        .snapshot()
        .to_json();

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"wire\",").unwrap();
    writeln!(
        json,
        "  \"payload\": \"bundled corpus, {} modules, {wire_bytes} wire bytes\",",
        subjects.len()
    )
    .unwrap();
    writeln!(json, "  \"samples\": {SAMPLES},").unwrap();
    writeln!(json, "  \"baseline\": {{").unwrap();
    writeln!(json, "    \"encode_mib_s\": {base_enc:.2},").unwrap();
    writeln!(json, "    \"decode_mib_s\": {base_dec:.2}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"current\": {{").unwrap();
    writeln!(json, "    \"encode_mib_s\": {encode_mib_s:.2},").unwrap();
    writeln!(json, "    \"decode_mib_s\": {decode_mib_s:.2}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"metrics\": {metrics_json}").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write(OUT_PATH, &json).expect("write BENCH_wire.json");
    println!("wire encode: {encode_mib_s:.2} MiB/s (baseline {base_enc:.2})");
    println!("wire decode: {decode_mib_s:.2} MiB/s (baseline {base_dec:.2})");
    println!("wrote {OUT_PATH}");
}
