//! Deflate *compression* tracker: measures encode throughput AND
//! compressed size per level on a corpus-derived payload and records
//! both in `BENCH_deflate.json`, so the ratio-vs-speed tradeoff of the
//! match finder is pinned by numbers rather than eyeballed.
//!
//! Usage (via `scripts/bench.sh`, from the repo root):
//!
//! ```text
//! bench_deflate                   # measure, update "current", keep baseline
//! bench_deflate --record-baseline # measure, (re)record the baseline too
//! bench_deflate --ratio-smoke     # no timing: assert compressed sizes per
//!                                 # level are within 1% of the recorded
//!                                 # baseline (the CI regression gate)
//! ```
//!
//! The JSON is deliberately flat and hand-parsed: the workspace builds
//! offline with no serde, and later runs only need scalar fields back.

use codecomp_core::telemetry;
use codecomp_corpus::{benchmarks, synthetic, SynthConfig};
use codecomp_flate::{deflate_compress, inflate, CompressionLevel};
use std::fmt::Write as _;
use std::time::Instant;

const OUT_PATH: &str = "BENCH_deflate.json";
/// Plaintext payload size all figures are measured on.
const PAYLOAD_LEN: usize = 1 << 20;
/// Compressed size may grow this much over the recorded baseline
/// before `--ratio-smoke` fails (fraction of the baseline size).
/// Shrinking is never a failure — an improvement only shows up as a
/// hint to re-record the baseline.
const RATIO_TOLERANCE: f64 = 0.01;

/// Corpus-derived plaintext: the bundled benchmark sources followed by
/// *distinct* synthetic translation units up to [`PAYLOAD_LEN`] bytes —
/// the same mix `bench_inflate` decodes, so the two trackers describe
/// the two directions of one pipeline.
fn corpus_payload() -> Vec<u8> {
    let mut data = Vec::with_capacity(PAYLOAD_LEN + 4096);
    for b in benchmarks() {
        data.extend_from_slice(b.source.as_bytes());
    }
    let mut seed = 1u64;
    while data.len() < PAYLOAD_LEN {
        data.extend_from_slice(synthetic(seed, SynthConfig::default()).as_bytes());
        seed += 1;
    }
    data.truncate(PAYLOAD_LEN);
    data
}

/// Median wall-clock throughput of `f` in MiB/s over `samples` runs,
/// where each run consumes `bytes_in` input bytes.
fn measure(bytes_in: usize, samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    bytes_in as f64 / times[times.len() / 2] / (1024.0 * 1024.0)
}

/// Extracts the number following `"key":` inside the named JSON section.
fn extract(json: &str, section: &str, key: &str) -> Option<f64> {
    let sec = json.find(&format!("\"{section}\""))?;
    let tail = &json[sec..];
    let end = tail.find('}').unwrap_or(tail.len());
    let body = &tail[..end];
    let k = body.find(&format!("\"{key}\""))?;
    let after = &body[k..];
    let colon = after.find(':')?;
    let num: String = after[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// The levels under test, with the JSON key each one reports under.
fn levels() -> Vec<(&'static str, CompressionLevel)> {
    vec![
        ("fast", CompressionLevel::Fast),
        ("default", CompressionLevel::Default),
        ("best", CompressionLevel::Best),
    ]
}

fn main() {
    let record_baseline = std::env::args().any(|a| a == "--record-baseline");
    let ratio_smoke = std::env::args().any(|a| a == "--ratio-smoke");

    let data = corpus_payload();
    let prior = std::fs::read_to_string(OUT_PATH).unwrap_or_default();

    // Compressed size per level, with a decode check so the tracker can
    // never record numbers for a stream the decoder rejects.
    let mut sizes: Vec<(&'static str, usize)> = Vec::new();
    for (key, level) in levels() {
        let packed = deflate_compress(&data, level);
        assert_eq!(
            inflate(&packed).expect("compressor output decodes"),
            data,
            "{key}: roundtrip mismatch"
        );
        sizes.push((key, packed.len()));
    }

    if ratio_smoke {
        // CI gate: no timing, just pin the ratio against the baseline.
        let mut failed = false;
        for &(key, size) in &sizes {
            match extract(&prior, "baseline", &format!("{key}_bytes")) {
                Some(base) => {
                    let drift = (size as f64 - base) / base;
                    let ok = drift <= RATIO_TOLERANCE;
                    let verdict = if !ok {
                        "FAIL"
                    } else if drift < -RATIO_TOLERANCE {
                        "ok (improved; consider --record-baseline)"
                    } else {
                        "ok"
                    };
                    println!(
                        "ratio {key}: {size} bytes vs baseline {base:.0} ({:+.2}%) {verdict}",
                        drift * 100.0,
                    );
                    failed |= !ok;
                }
                None => println!("ratio {key}: {size} bytes (no recorded baseline, skipped)"),
            }
        }
        if failed {
            eprintln!("bench_deflate: compressed size regressed more than 1% from baseline");
            std::process::exit(1);
        }
        return;
    }

    telemetry::install(telemetry::Collector::metrics_only());
    let mut rates: Vec<(&'static str, f64)> = Vec::new();
    for (key, level) in levels() {
        let mib_s = measure(data.len(), 15, || {
            deflate_compress(&data, level);
        });
        rates.push((key, mib_s));
    }
    let metrics_json = telemetry::collector()
        .expect("collector installed above")
        .metrics
        .snapshot()
        .to_json();

    // Baseline: keep whatever was recorded unless asked to re-record.
    // Levels with no recorded baseline (added after the baseline run)
    // fall back to their current numbers with speedup 1.0.
    let baseline: Vec<(&'static str, f64, f64)> = rates
        .iter()
        .zip(&sizes)
        .map(|(&(key, mib_s), &(_, size))| {
            if record_baseline || prior.is_empty() {
                (key, mib_s, size as f64)
            } else {
                (
                    key,
                    extract(&prior, "baseline", &format!("{key}_mib_s")).unwrap_or(mib_s),
                    extract(&prior, "baseline", &format!("{key}_bytes")).unwrap_or(size as f64),
                )
            }
        })
        .collect();

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"deflate\",").unwrap();
    writeln!(
        json,
        "  \"payload\": \"corpus benchmark sources cycled to {PAYLOAD_LEN} bytes\","
    )
    .unwrap();
    writeln!(json, "  \"samples\": 15,").unwrap();
    writeln!(json, "  \"baseline\": {{").unwrap();
    for (i, (key, mib_s, bytes)) in baseline.iter().enumerate() {
        let sep = if i + 1 == baseline.len() { "" } else { "," };
        writeln!(json, "    \"{key}_mib_s\": {mib_s:.1},").unwrap();
        writeln!(json, "    \"{key}_bytes\": {bytes:.0}{sep}").unwrap();
    }
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"current\": {{").unwrap();
    for (i, ((key, mib_s), (_, size))) in rates.iter().zip(&sizes).enumerate() {
        let sep = if i + 1 == rates.len() { "" } else { "," };
        writeln!(json, "    \"{key}_mib_s\": {mib_s:.1},").unwrap();
        writeln!(json, "    \"{key}_bytes\": {size}{sep}").unwrap();
    }
    writeln!(json, "  }},").unwrap();
    for ((key, mib_s), (bkey, base_mib_s, _)) in rates.iter().zip(&baseline) {
        assert_eq!(key, bkey);
        writeln!(json, "  \"speedup_{key}\": {:.2},", mib_s / base_mib_s).unwrap();
    }
    writeln!(json, "  \"metrics\": {metrics_json}").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write(OUT_PATH, &json).expect("write BENCH_deflate.json");
    for ((key, mib_s), (_, base_mib_s, base_bytes)) in rates.iter().zip(&baseline) {
        let size = sizes.iter().find(|(k, _)| k == key).unwrap().1;
        println!(
            "deflate {key:>7}: {mib_s:.1} MiB/s (baseline {base_mib_s:.1}), \
             {size} bytes (baseline {base_bytes:.0})"
        );
    }
    println!("wrote {OUT_PATH}");
}
