//! BRISC perf tracker: measures image load (decode + validate) and
//! in-place interpretation speed on the bundled corpus and records the
//! result (plus a full telemetry registry dump) in `BENCH_brisc.json`.
//!
//! Usage (via `scripts/bench.sh`, from the repo root):
//!
//! ```text
//! bench_brisc                   # measure, update "current", keep baseline
//! bench_brisc --record-baseline # measure, (re)record the baseline too
//! ```

use codecomp_bench::{subjects, Scale};
use codecomp_brisc::interp::BriscMachine;
use codecomp_brisc::{compress, BriscImage, BriscOptions};
use codecomp_core::telemetry;
use std::fmt::Write as _;
use std::time::Instant;

const OUT_PATH: &str = "BENCH_brisc.json";
const SAMPLES: usize = 9;
const MEM: u32 = 1 << 22;
const FUEL: u64 = 1 << 32;

/// Median wall-clock rate of `f` in `units`-per-second terms, where one
/// run of `f` covers `units` of work (bytes or instructions).
fn measure(units: f64, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    units / times[times.len() / 2]
}

/// Extracts the number following `"key":` inside the named JSON section.
fn extract(json: &str, section: &str, key: &str) -> Option<f64> {
    let sec = json.find(&format!("\"{section}\""))?;
    let tail = &json[sec..];
    let end = tail.find('}').unwrap_or(tail.len());
    let body = &tail[..end];
    let k = body.find(&format!("\"{key}\""))?;
    let after = &body[k..];
    let colon = after.find(':')?;
    let num: String = after[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let record_baseline = std::env::args().any(|a| a == "--record-baseline");
    telemetry::install(telemetry::Collector::metrics_only());

    let subjects = subjects(Scale::CorpusOnly);
    let images: Vec<Vec<u8>> = subjects
        .iter()
        .map(|s| {
            compress(&s.vm, BriscOptions::default())
                .expect("corpus brisc-compresses")
                .image
                .to_bytes()
        })
        .collect();
    let image_bytes: usize = images.iter().map(Vec::len).sum();

    // Load rate: deserialize every image (MiB/s of image bytes).
    let load_mib_s = measure(image_bytes as f64 / (1024.0 * 1024.0), || {
        for img in &images {
            BriscImage::from_bytes(img).expect("loads");
        }
    });

    // Interpretation rate: run every benchmark's `main` to completion
    // and rate the total dispatched instructions (million instrs/s).
    let loaded: Vec<BriscImage> = images
        .iter()
        .map(|img| BriscImage::from_bytes(img).expect("loads"))
        .collect();
    let total_instrs: u64 = loaded
        .iter()
        .map(|image| {
            let mut m = BriscMachine::new(image, MEM, FUEL).expect("machine");
            m.run("main", &[]).expect("corpus runs").instructions
        })
        .sum();
    let interp_mips = measure(total_instrs as f64 / 1.0e6, || {
        for image in &loaded {
            let mut m = BriscMachine::new(image, MEM, FUEL).expect("machine");
            m.run("main", &[]).expect("corpus runs");
        }
    });

    let prior = std::fs::read_to_string(OUT_PATH).unwrap_or_default();
    let (base_load, base_interp) = if record_baseline || prior.is_empty() {
        (load_mib_s, interp_mips)
    } else {
        (
            extract(&prior, "baseline", "load_mib_s").unwrap_or(load_mib_s),
            extract(&prior, "baseline", "interp_mips").unwrap_or(interp_mips),
        )
    };

    let metrics_json = telemetry::collector()
        .expect("collector installed above")
        .metrics
        .snapshot()
        .to_json();

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"brisc\",").unwrap();
    writeln!(
        json,
        "  \"payload\": \"bundled corpus, {} images, {image_bytes} image bytes, {total_instrs} instrs\",",
        subjects.len()
    )
    .unwrap();
    writeln!(json, "  \"samples\": {SAMPLES},").unwrap();
    writeln!(json, "  \"baseline\": {{").unwrap();
    writeln!(json, "    \"load_mib_s\": {base_load:.2},").unwrap();
    writeln!(json, "    \"interp_mips\": {base_interp:.2}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"current\": {{").unwrap();
    writeln!(json, "    \"load_mib_s\": {load_mib_s:.2},").unwrap();
    writeln!(json, "    \"interp_mips\": {interp_mips:.2}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"metrics\": {metrics_json}").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write(OUT_PATH, &json).expect("write BENCH_brisc.json");
    println!("brisc load:   {load_mib_s:.2} MiB/s (baseline {base_load:.2})");
    println!("brisc interp: {interp_mips:.2} M instrs/s (baseline {base_interp:.2})");
    println!("wrote {OUT_PATH}");
}
