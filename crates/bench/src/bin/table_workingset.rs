//! E3 — the working-set experiment.
//!
//! Paper claim (§1/§4): "We can interpret BRISC code with a typical 12×
//! time penalty while cutting working set size by over 40%."
//!
//! For each program, the native-tier working set is the set of pages of
//! x86 code containing instructions that actually executed; the BRISC
//! working set is the set of pages of compressed code actually decoded.
//! Page size is scaled down (256 B) because our programs are KB-scale
//! where the paper's were MB-scale; the reduction *ratio* is the
//! measurement of interest.
//!
//! Usage: `table_workingset [--full] [--page <bytes>]`.

use codecomp_bench::{subjects, Scale, Table};
use codecomp_brisc::interp::BriscMachine;
use codecomp_brisc::{compress, BriscOptions};
use codecomp_memsim::Pager;
use codecomp_vm::interp::Machine;
use codecomp_vm::native::X86Encoder;
use codecomp_vm::program::FlatProgram;

const MEM: u32 = 1 << 22;
const FUEL: u64 = 1 << 34;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::WithSynthetic
    } else {
        Scale::CorpusOnly
    };
    let page: u32 = args
        .iter()
        .position(|a| a == "--page")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);

    println!("E3: working sets of executed code ({page}-byte pages)\n");
    let mut table = Table::new(&[
        "program",
        "native pages",
        "brisc pages",
        "reduction",
        "interp insts/item",
    ]);
    let mut total_native = 0usize;
    let mut total_brisc = 0usize;
    for s in subjects(scale) {
        // Native tier: per-instruction x86 offsets + execution counts.
        let flat = FlatProgram::link(&s.vm).expect("link succeeds");
        let mut offsets = Vec::with_capacity(flat.code.len());
        let mut enc = X86Encoder::new();
        let mut at = 0usize;
        for inst in &flat.code {
            let n = enc.emit(inst);
            offsets.push((at as u32, n as u32));
            at += n;
        }
        let mut machine = Machine::new(&s.vm, MEM, FUEL).expect("machine");
        machine.run("main", &[]).expect("native run succeeds");
        let mut native_pager = Pager::new(page, 1 << 20);
        for (i, &count) in machine.exec_counts.iter().enumerate() {
            if count > 0 {
                let (off, len) = offsets[i];
                native_pager.access_run(off, len.max(1));
            }
        }

        // BRISC tier: decoded-byte touch map.
        let report = compress(&s.vm, BriscOptions::default()).expect("compression succeeds");
        let mut bm = BriscMachine::new(&report.image, MEM, FUEL).expect("machine");
        let outcome = bm.run("main", &[]).expect("interp run succeeds");
        let mut brisc_pager = Pager::new(page, 1 << 20);
        for (off, len) in bm.touched_runs() {
            brisc_pager.access_run(off, len);
        }

        let np = native_pager.working_set_pages();
        let bp = brisc_pager.working_set_pages();
        total_native += np;
        total_brisc += bp;
        table.row(&[
            s.name.clone(),
            np.to_string(),
            bp.to_string(),
            format!("{:.0}%", 100.0 * (1.0 - bp as f64 / np as f64)),
            format!(
                "{:.2}",
                outcome.instructions as f64 / outcome.items_decoded as f64
            ),
        ]);
    }
    table.print();
    println!(
        "\ntotal: native {total_native} pages, brisc {total_brisc} pages \
         ({:.0}% reduction). paper reference: >40% working-set cut.",
        100.0 * (1.0 - total_brisc as f64 / total_native as f64)
    );
}
