//! E2 — regenerates the paper's §4 BRISC results table.
//!
//! Paper shape (sizes relative to MSVC 5.0 Pentium executables = 1.0):
//! BRISC ≈ gzip-competitive in size; native code generated from BRISC at
//! > 2.5 MB/s; JIT-tier runtime ≈ 1.08× native; interpreted ≈ 12×.
//!
//! Here the "native" execution tier is the VM interpreter over the
//! original (uncompressed) program — the reference all ratios divide by;
//! the interpreted tier decodes the compressed image in place at every
//! step; the JIT tier translates once, then runs the reconstruction.
//!
//! Usage: `table_brisc [--full]`.

use codecomp_bench::{frac, sizes, subjects, Scale, Table};
use codecomp_brisc::interp::BriscMachine;
use codecomp_brisc::translate::{emit_x86, translate};
use codecomp_brisc::{compress, BriscOptions};
use codecomp_vm::interp::Machine;
use std::time::Instant;

const MEM: u32 = 1 << 22;
const FUEL: u64 = 1 << 34;

fn best_of<F: FnMut() -> f64>(n: usize, mut f: F) -> f64 {
    (0..n).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::WithSynthetic
    } else {
        Scale::CorpusOnly
    };
    println!("E2: BRISC results (paper §4 table; x86 native size = 1.0)\n");
    let mut table = Table::new(&[
        "program",
        "x86 bytes",
        "gzip/x86",
        "brisc/x86",
        "jit MB/s",
        "jit time",
        "interp time",
    ]);
    for s in subjects(scale) {
        let sz = sizes(&s.vm);
        let report = compress(&s.vm, BriscOptions::default()).expect("compression succeeds");
        let brisc_total = report.image.total_bytes();

        // Translation ("JIT") rate: bytes of produced native code per
        // second of translation work.
        let (produced, t_translate) = {
            let start = Instant::now();
            let (_, bytes) = emit_x86(&report.image).expect("translation succeeds");
            (bytes.len(), start.elapsed().as_secs_f64())
        };
        let t_translate = best_of(3, || {
            let start = Instant::now();
            let _ = emit_x86(&report.image).expect("translation succeeds");
            start.elapsed().as_secs_f64()
        })
        .min(t_translate);
        let jit_rate = produced as f64 / t_translate / 1e6;

        // Execution tiers.
        let t_native = best_of(3, || {
            let mut m = Machine::new(&s.vm, MEM, FUEL).expect("machine");
            let start = Instant::now();
            m.run("main", &[]).expect("native tier runs");
            start.elapsed().as_secs_f64()
        });
        let translated = translate(&report.image).expect("translation succeeds");
        let t_jit_run = best_of(3, || {
            let mut m = Machine::new(&translated, MEM, FUEL).expect("machine");
            let start = Instant::now();
            m.run("main", &[]).expect("jit tier runs");
            start.elapsed().as_secs_f64()
        });
        let t_interp = best_of(3, || {
            let mut m = BriscMachine::new(&report.image, MEM, FUEL).expect("machine");
            let start = Instant::now();
            m.run("main", &[]).expect("interp tier runs");
            start.elapsed().as_secs_f64()
        });

        table.row(&[
            s.name.clone(),
            sz.x86_native.to_string(),
            frac(sz.gzip_x86, sz.x86_native),
            frac(brisc_total, sz.x86_native),
            format!("{jit_rate:.1}"),
            format!("{:.2}", (t_translate + t_jit_run) / t_native),
            format!("{:.2}", t_interp / t_native),
        ]);
    }
    table.print();
    println!(
        "\npaper reference: brisc size ~ gzip size; jit > 2.5 MB/s on a \
         120 MHz Pentium; jit runtime 1.08x; interpreted ~12x."
    );
}
