//! E6 — the introduction's delivery-time scenarios.
//!
//! Paper claim (§1): "it can be significantly faster to send compressed
//! code that is then interpreted or decompressed and executed. This fact
//! is self-evident when delivering code over 28.8 kbaud modems, but it
//! can be true for faster networks \[and\] for paging from disk"; and "the
//! delivery time from the network or disk can mask some or even all of
//! the recompilation time".
//!
//! Measured sizes for one corpus program feed the analytical model: for
//! each channel, total time = deliver + prepare (+ overlap) + run, for
//! each of five delivery plans. Crossover bandwidths between the
//! native-code plan and each compressed plan are reported.
//!
//! Usage: `table_scenarios [--run-seconds <s>]`.

use codecomp_bench::{sizes, subjects, Scale, Table};
use codecomp_brisc::{compress, BriscOptions};
use codecomp_memsim::{crossover_bandwidth, total_time, Channel, CpuModel, DeliveryPlan, Overlap};
use codecomp_wire::{compress as wire_compress, WireOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let run_seconds: f64 = args
        .iter()
        .position(|a| a == "--run-seconds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);

    // Aggregate corpus sizes: one "application" made of all benchmarks.
    let subs = subjects(Scale::CorpusOnly);
    let mut native = 0usize;
    let mut gzip_native = 0usize;
    let mut wire = 0usize;
    let mut brisc = 0usize;
    for s in &subs {
        let sz = sizes(&s.vm);
        native += sz.x86_native;
        gzip_native += sz.gzip_x86;
        wire += wire_compress(&s.ir, WireOptions::default())
            .expect("wire compress")
            .total();
        brisc += compress(&s.vm, BriscOptions::default())
            .expect("brisc compress")
            .image
            .total_bytes();
    }
    // Scale everything up to application size (the paper's subjects are
    // 300 KB - 1.4 MB): preserve the measured ratios.
    let scale_to = 1_000_000.0;
    let k = scale_to / native as f64;
    let native = (native as f64 * k) as usize;
    let gzip_native = (gzip_native as f64 * k) as usize;
    let wire = (wire as f64 * k) as usize;
    let brisc = (brisc as f64 * k) as usize;

    let cpu = CpuModel::pentium_like(run_seconds);
    let plans: Vec<(&str, DeliveryPlan)> = vec![
        ("native", DeliveryPlan::Native { bytes: native }),
        (
            "gzip+native",
            DeliveryPlan::CompressedNative {
                compressed: gzip_native,
                native,
            },
        ),
        (
            "wire+jit",
            DeliveryPlan::Wire {
                compressed: wire,
                native,
            },
        ),
        (
            "brisc+jit",
            DeliveryPlan::BriscJit {
                compressed: brisc,
                native,
            },
        ),
        (
            "brisc interp",
            DeliveryPlan::BriscInterp { compressed: brisc },
        ),
    ];

    println!(
        "E6: total time to complete a {run_seconds:.1}s workload \
         (sizes scaled to a 1 MB native app; corpus-measured ratios)\n"
    );
    println!("sizes: native {native} B, gzip {gzip_native} B, wire {wire} B, brisc {brisc} B\n");
    let channels: Vec<(&str, Channel)> = vec![
        ("28.8k modem", Channel::modem_28k8()),
        ("128k ISDN", Channel::from_bits_per_sec(128_000.0)),
        ("1 Mbit", Channel::from_bits_per_sec(1_000_000.0)),
        ("10 Mbit LAN", Channel::lan_10mbit()),
        ("disk", Channel::disk()),
    ];
    let mut table = Table::new(&[
        "plan",
        "28.8k modem",
        "128k ISDN",
        "1 Mbit",
        "10 Mbit LAN",
        "disk",
    ]);
    for (name, plan) in &plans {
        let mut cells = vec![name.to_string()];
        for (_, ch) in &channels {
            cells.push(format!(
                "{:.1}s",
                total_time(plan, ch, &cpu, Overlap::Pipelined)
            ));
        }
        table.row(&cells);
    }
    table.print();

    println!("\ncrossover bandwidths vs shipping native code (pipelined):");
    for (name, plan) in plans.iter().skip(1) {
        match crossover_bandwidth(&plans[0].1, plan, &cpu, Overlap::Pipelined, 1_000.0, 1e12) {
            Some(bits) => println!("  {name:>12}: {:.2} Mbit/s", bits / 1e6),
            None => println!("  {name:>12}: none in range (always on one side)"),
        }
    }
    println!(
        "\npaper reference: compressed delivery wins below the crossover; \
         transfer masks recompilation (pipelined BRISC)."
    );

    if args.iter().any(|a| a == "--sweep") {
        println!("\nbandwidth sweep (CSV: bits/s then total seconds per plan):");
        print!("bits_per_sec");
        for (name, _) in &plans {
            print!(",{name}");
        }
        println!();
        let mut bits = 10_000.0f64;
        while bits <= 1e9 {
            print!("{bits:.0}");
            let ch = Channel::from_bits_per_sec(bits);
            for (_, plan) in &plans {
                print!(",{:.3}", total_time(plan, &ch, &cpu, Overlap::Pipelined));
            }
            println!();
            bits *= 1.4678; // ~30 log-spaced points per 5 decades
        }
    }
}
