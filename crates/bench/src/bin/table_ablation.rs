//! E7 — design-space ablations (paper §2).
//!
//! The paper's design-space section asks: byte codes vs arithmetic
//! coding? dictionaries? move-to-front? stream separation? finite-context
//! modeling? This binary toggles each stage of both compressors and
//! reports total sizes over the corpus, answering those questions for
//! this implementation.
//!
//! Usage: `table_ablation [--full]`.

use codecomp_bench::{subjects, Scale, Table};
use codecomp_brisc::{compress as brisc_compress, BriscOptions};
use codecomp_core::dict::MemoryRegime;
use codecomp_wire::{compress as wire_compress, Coder, WireOptions};

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::WithSynthetic
    } else {
        Scale::CorpusOnly
    };
    let subs = subjects(scale);

    println!("E7a: wire-format pipeline ablations (total bytes over the corpus)\n");
    let variants: Vec<(&str, WireOptions)> = vec![
        ("full pipeline (paper)", WireOptions::default()),
        (
            "no stream splitting",
            WireOptions {
                split_streams: false,
                ..Default::default()
            },
        ),
        (
            "no MTF",
            WireOptions {
                mtf: false,
                ..Default::default()
            },
        ),
        (
            "raw indices (no entropy coder)",
            WireOptions {
                coder: Coder::Raw,
                ..Default::default()
            },
        ),
        (
            "arithmetic instead of Huffman",
            WireOptions {
                coder: Coder::Arithmetic,
                ..Default::default()
            },
        ),
        (
            "no final DEFLATE",
            WireOptions {
                deflate: false,
                ..Default::default()
            },
        ),
        (
            "MTF+Huffman only (no split, no DEFLATE)",
            WireOptions {
                split_streams: false,
                deflate: false,
                ..Default::default()
            },
        ),
    ];
    let mut table = Table::new(&["wire variant", "bytes", "vs full"]);
    let full: usize = subs
        .iter()
        .map(|s| {
            wire_compress(&s.ir, WireOptions::default())
                .expect("compress")
                .total()
        })
        .sum();
    for (name, options) in variants {
        let total: usize = subs
            .iter()
            .map(|s| wire_compress(&s.ir, options).expect("compress").total())
            .sum();
        table.row(&[
            name.to_string(),
            total.to_string(),
            format!("{:+.1}%", 100.0 * (total as f64 / full as f64 - 1.0)),
        ]);
    }
    table.print();

    println!("\nE7b: BRISC compressor ablations (total image bytes over the corpus)\n");
    let variants: Vec<(&str, BriscOptions)> = vec![
        ("full compressor (paper)", BriscOptions::default()),
        (
            "no operand specialization",
            BriscOptions {
                specialization: false,
                ..Default::default()
            },
        ),
        (
            "no opcode combination",
            BriscOptions {
                combination: false,
                ..Default::default()
            },
        ),
        (
            "no -x4 narrowing",
            BriscOptions {
                x4: false,
                ..Default::default()
            },
        ),
        (
            "no epi macro",
            BriscOptions {
                epi: false,
                ..Default::default()
            },
        ),
        (
            "order-0 opcode model",
            BriscOptions {
                order0: true,
                ..Default::default()
            },
        ),
        (
            "abundant memory (B = P)",
            BriscOptions {
                regime: MemoryRegime::Abundant,
                ..Default::default()
            },
        ),
        (
            "K = 5 per pass",
            BriscOptions {
                k: 5,
                ..Default::default()
            },
        ),
        (
            "charge 6 B/entry for model growth",
            BriscOptions {
                table_charge: 6,
                ..Default::default()
            },
        ),
    ];
    let mut table = Table::new(&["brisc variant", "bytes", "vs full", "dict entries"]);
    let full: usize = subs
        .iter()
        .map(|s| {
            brisc_compress(&s.vm, BriscOptions::default())
                .expect("compress")
                .image
                .total_bytes()
        })
        .sum();
    for (name, options) in variants {
        let mut total = 0usize;
        let mut entries = 0usize;
        for s in &subs {
            let report = brisc_compress(&s.vm, options).expect("compress");
            total += report.image.total_bytes();
            entries += report.dictionary_entries;
        }
        table.row(&[
            name.to_string(),
            total.to_string(),
            format!("{:+.1}%", 100.0 * (total as f64 / full as f64 - 1.0)),
            entries.to_string(),
        ]);
    }
    table.print();
    println!(
        "\npaper reference: each §2 design choice (splitting, MTF, entropy \
         coding, specialization, combination, order-1 model) buys size."
    );
}
