//! E1 — regenerates the paper's §3 wire-code table.
//!
//! Paper shape (SPARC code segments): wire divides the uncompressed size
//! by up to 4.9× and beats gzip except on the smallest input
//! (`lcc 315636 → 64475`, `gcc 1381304 → 287260`, `wcp 61036 → 16013`).
//!
//! Wire sizes are read back from the telemetry registry (the
//! `wire.encode.total_bytes` gauge the encoder publishes) and checked
//! against the packed image, so the table and the metrics pipeline can
//! never drift apart.
//!
//! Usage: `table_wire [--full]` — `--full` adds the large synthetic
//! programs (slower).

use codecomp_bench::{factor, subjects, Scale, Table};
use codecomp_core::telemetry;
use codecomp_flate::{gzip_compress, CompressionLevel};
use codecomp_vm::native::fixed_width_bytes;
use codecomp_wire::{compress, WireOptions};

fn main() {
    telemetry::install(telemetry::Collector::metrics_only());
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::WithSynthetic
    } else {
        Scale::CorpusOnly
    };
    println!("E1: wire-format sizes (paper §3 table)");
    println!("native = SPARC-like fixed-width code segment\n");
    let mut table = Table::new(&[
        "program",
        "native",
        "gzip(native)",
        "wire",
        "native/wire",
        "gzip/wire",
    ]);
    for s in subjects(scale) {
        let native = fixed_width_bytes(&s.vm);
        let gz = gzip_compress(&native, CompressionLevel::Best).len();
        let packed = compress(&s.ir, WireOptions::default()).expect("wire compression succeeds");
        // The registry gauge is the source of truth for the table; the
        // packed image keeps it honest.
        let snap = telemetry::collector()
            .expect("collector installed above")
            .metrics
            .snapshot();
        let wire = snap
            .gauge("wire.encode.total_bytes")
            .expect("wire encoder publishes total_bytes") as usize;
        assert_eq!(
            wire,
            packed.total(),
            "{}: registry wire.encode.total_bytes disagrees with the packed image",
            s.name
        );
        table.row(&[
            s.name.clone(),
            native.len().to_string(),
            gz.to_string(),
            wire.to_string(),
            factor(native.len(), wire),
            format!("{:.2}", gz as f64 / wire as f64),
        ]);
    }
    table.print();
    println!(
        "\npaper reference: native/wire up to 4.9x on gcc; wire beats gzip \
         except on the smallest input."
    );
}
