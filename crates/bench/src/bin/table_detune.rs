//! E4 — regenerates the paper's §5 RISC de-tuning table.
//!
//! Paper: compiling lcc itself under progressively de-tuned abstract
//! machines and BRISC-compressing the result gives compressed/native
//! ratios RISC 0.54, −immediates 0.56, −register-displacement 0.57,
//! −both 0.59 — "a minimal abstract machine compresses nearly as well
//! as one with typical ad hoc features".
//!
//! Usage: `table_detune [--full]` (the whole corpus is compiled under
//! each of the four ISA variants and compressed).

use codecomp_bench::{subjects, Scale, Table};
use codecomp_brisc::{compress, BriscOptions};
use codecomp_vm::codegen::compile_module;
use codecomp_vm::isa::IsaConfig;
use codecomp_vm::native::x86_size;

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::WithSynthetic
    } else {
        Scale::CorpusOnly
    };
    let subs = subjects(scale);
    // The native denominator is the full-RISC x86 size: the target
    // machine does not change when the abstract machine is de-tuned.
    let native_total: usize = subs.iter().map(|s| x86_size(&s.vm)).sum();

    println!("E4: abstract-machine de-tuning (paper §5 table)\n");
    let mut table = Table::new(&[
        "abstract machine",
        "vm insts",
        "brisc bytes",
        "compressed/native",
        "paper",
    ]);
    let paper = ["0.54", "0.56", "0.57", "0.59"];
    for (i, (name, isa)) in IsaConfig::variants().iter().enumerate() {
        let mut brisc_total = 0usize;
        let mut inst_total = 0usize;
        for s in &subs {
            let vm = compile_module(&s.ir, *isa).expect("codegen succeeds");
            inst_total += vm.inst_count();
            let report = compress(&vm, BriscOptions::default()).expect("compression succeeds");
            brisc_total += report.image.total_bytes();
        }
        table.row(&[
            name.to_string(),
            inst_total.to_string(),
            brisc_total.to_string(),
            format!("{:.2}", brisc_total as f64 / native_total as f64),
            paper[i].to_string(),
        ]);
    }
    table.print();
    println!(
        "\npaper reference: the four variants fall within 0.54-0.59 — \
         de-tuning costs only a few points of compression."
    );
}
