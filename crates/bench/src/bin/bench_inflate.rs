//! Inflate throughput tracker: measures DEFLATE decode speed on
//! corpus-derived payloads and records the result in
//! `BENCH_inflate.json` so successive PRs have a perf trajectory.
//!
//! Usage (via `scripts/bench.sh`, from the repo root):
//!
//! ```text
//! bench_inflate                   # measure, update "current", keep baseline
//! bench_inflate --record-baseline # measure, (re)record the baseline too
//! ```
//!
//! The JSON is deliberately flat and hand-parsed: the workspace builds
//! offline with no serde, and the only field later runs need back is
//! the baseline throughput.

use codecomp_core::telemetry;
use codecomp_corpus::{benchmarks, synthetic, SynthConfig};
use codecomp_flate::deflate::deflate_compress_fixed;
use codecomp_flate::{deflate_compress, inflate, CompressionLevel};
use std::fmt::Write as _;
use std::time::Instant;

const OUT_PATH: &str = "BENCH_inflate.json";
/// Decompressed payload size all throughput figures are measured on.
const PAYLOAD_LEN: usize = 1 << 20;

/// Corpus-derived plaintext: the bundled benchmark sources followed by
/// *distinct* synthetic translation units up to [`PAYLOAD_LEN`] bytes.
/// Distinct units keep the match/literal mix realistic — cycling one
/// source would collapse the whole payload into maximal matches and
/// measure the copy loop instead of Huffman decoding.
fn corpus_payload() -> Vec<u8> {
    let mut data = Vec::with_capacity(PAYLOAD_LEN + 4096);
    for b in benchmarks() {
        data.extend_from_slice(b.source.as_bytes());
    }
    let mut seed = 1u64;
    while data.len() < PAYLOAD_LEN {
        data.extend_from_slice(synthetic(seed, SynthConfig::default()).as_bytes());
        seed += 1;
    }
    data.truncate(PAYLOAD_LEN);
    data
}

/// Median wall-clock throughput of `f` in MiB/s over `samples` runs,
/// where each run decodes `bytes_out` bytes.
fn measure(bytes_out: usize, samples: usize, mut f: impl FnMut()) -> f64 {
    // Warm-up.
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = times[times.len() / 2];
    bytes_out as f64 / median / (1024.0 * 1024.0)
}

/// Best-of-`samples` throughput of `f` in MiB/s — min time rather than
/// median, so additive system noise cancels. Used for the telemetry
/// overhead comparison, where both sides are measured the same way and
/// the quantity of interest is the small multiplicative difference.
fn measure_best(bytes_out: usize, samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let best = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    bytes_out as f64 / best / (1024.0 * 1024.0)
}

/// Extracts the number following `"key":` inside the named JSON section.
fn extract(json: &str, section: &str, key: &str) -> Option<f64> {
    let sec = json.find(&format!("\"{section}\""))?;
    let tail = &json[sec..];
    let end = tail.find('}').unwrap_or(tail.len());
    let body = &tail[..end];
    let k = body.find(&format!("\"{key}\""))?;
    let after = &body[k..];
    let colon = after.find(':')?;
    let num: String = after[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let record_baseline = std::env::args().any(|a| a == "--record-baseline");

    let data = corpus_payload();
    let fixed = deflate_compress_fixed(&data, CompressionLevel::Best);
    let dynamic = deflate_compress(&data, CompressionLevel::Best);
    assert_eq!(inflate(&fixed).expect("fixed payload decodes"), data);
    assert_eq!(inflate(&dynamic).expect("dynamic payload decodes"), data);

    let fixed_mib_s = measure(data.len(), 15, || {
        inflate(&fixed).expect("decodes");
    });
    let dynamic_mib_s = measure(data.len(), 15, || {
        inflate(&dynamic).expect("decodes");
    });

    // Re-measure with the telemetry collector installed (a process-wide
    // one-way switch, so this must come after the plain runs). The
    // delta is the whole observability tax on the hottest loop;
    // best-of-N on both sides keeps scheduler noise out of it.
    let best_fixed = measure_best(data.len(), 25, || {
        inflate(&fixed).expect("decodes");
    });
    let best_dynamic = measure_best(data.len(), 25, || {
        inflate(&dynamic).expect("decodes");
    });
    telemetry::install(telemetry::Collector::metrics_only());
    let tele_fixed_mib_s = measure_best(data.len(), 25, || {
        inflate(&fixed).expect("decodes");
    });
    let tele_dynamic_mib_s = measure_best(data.len(), 25, || {
        inflate(&dynamic).expect("decodes");
    });
    let overhead_pct =
        (1.0 - (tele_fixed_mib_s + tele_dynamic_mib_s) / (best_fixed + best_dynamic)) * 100.0;
    let metrics_json = telemetry::collector()
        .expect("collector installed above")
        .metrics
        .snapshot()
        .to_json();

    let prior = std::fs::read_to_string(OUT_PATH).unwrap_or_default();
    let (base_fixed, base_dynamic) = if record_baseline || prior.is_empty() {
        (fixed_mib_s, dynamic_mib_s)
    } else {
        (
            extract(&prior, "baseline", "fixed_mib_s").unwrap_or(fixed_mib_s),
            extract(&prior, "baseline", "dynamic_mib_s").unwrap_or(dynamic_mib_s),
        )
    };

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"inflate\",").unwrap();
    writeln!(
        json,
        "  \"payload\": \"corpus benchmark sources cycled to {PAYLOAD_LEN} bytes\","
    )
    .unwrap();
    writeln!(json, "  \"samples\": 15,").unwrap();
    writeln!(json, "  \"baseline\": {{").unwrap();
    writeln!(json, "    \"decoder\": \"bit-at-a-time Huffman walk\",").unwrap();
    writeln!(json, "    \"fixed_mib_s\": {base_fixed:.1},").unwrap();
    writeln!(json, "    \"dynamic_mib_s\": {base_dynamic:.1}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"current\": {{").unwrap();
    writeln!(
        json,
        "    \"decoder\": \"two-level table + 64-bit reservoir\","
    )
    .unwrap();
    writeln!(json, "    \"fixed_mib_s\": {fixed_mib_s:.1},").unwrap();
    writeln!(json, "    \"dynamic_mib_s\": {dynamic_mib_s:.1}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"telemetry\": {{").unwrap();
    writeln!(json, "    \"fixed_mib_s\": {tele_fixed_mib_s:.1},").unwrap();
    writeln!(json, "    \"dynamic_mib_s\": {tele_dynamic_mib_s:.1},").unwrap();
    writeln!(json, "    \"overhead_pct\": {overhead_pct:.2}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(
        json,
        "  \"speedup_fixed\": {:.2},",
        fixed_mib_s / base_fixed
    )
    .unwrap();
    writeln!(
        json,
        "  \"speedup_dynamic\": {:.2},",
        dynamic_mib_s / base_dynamic
    )
    .unwrap();
    writeln!(json, "  \"metrics\": {metrics_json}").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write(OUT_PATH, &json).expect("write BENCH_inflate.json");
    println!("inflate fixed:   {fixed_mib_s:.1} MiB/s (baseline {base_fixed:.1})");
    println!("inflate dynamic: {dynamic_mib_s:.1} MiB/s (baseline {base_dynamic:.1})");
    println!(
        "with collector:  {tele_fixed_mib_s:.1} / {tele_dynamic_mib_s:.1} MiB/s \
         ({overhead_pct:.2}% overhead)"
    );
    println!("wrote {OUT_PATH}");
}
