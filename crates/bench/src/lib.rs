//! Shared harness for the table-regenerating experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md`'s experiment index and `EXPERIMENTS.md` for
//! the paper-vs-measured record):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table_wire` | §3 wire-format size table |
//! | `table_brisc` | §4 BRISC results table |
//! | `table_workingset` | §4 working-set / interpretation claims |
//! | `table_detune` | §5 RISC de-tuning table |
//! | `table_scenarios` | §1 delivery-time scenarios |
//! | `table_ablation` | §2 design-space ablations |

use codecomp_brisc::{compress as brisc_compress, BriscOptions, BriscReport};
use codecomp_corpus::{benchmarks, synthetic, SynthConfig};
use codecomp_flate::{gzip_compress, CompressionLevel};
use codecomp_front::compile;
use codecomp_ir::Module;
use codecomp_vm::codegen::compile_module;
use codecomp_vm::isa::IsaConfig;
use codecomp_vm::native::fixed_width_size;
use codecomp_vm::VmProgram;

/// One program under measurement.
pub struct Subject {
    /// Display name.
    pub name: String,
    /// The IR module.
    pub ir: Module,
    /// Its full-ISA VM compilation.
    pub vm: VmProgram,
}

/// How much synthetic material to include beside the bundled corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Bundled corpus only (fast; used by tests).
    CorpusOnly,
    /// Corpus plus medium and large synthetic programs (the paper's
    /// wcp/lcc/gcc size spread).
    WithSynthetic,
}

/// Builds the measurement subjects.
///
/// # Panics
///
/// Panics if a bundled program fails to compile — the corpus crate's
/// tests guarantee they do not.
pub fn subjects(scale: Scale) -> Vec<Subject> {
    let mut out = Vec::new();
    for b in benchmarks() {
        let ir = b.compile().expect("bundled benchmarks compile");
        let vm = compile_module(&ir, IsaConfig::full()).expect("bundled benchmarks codegen");
        out.push(Subject {
            name: b.name.to_string(),
            ir,
            vm,
        });
    }
    if scale == Scale::WithSynthetic {
        for (name, functions) in [("synth-wcp", 60), ("synth-lcc", 300), ("synth-gcc", 1200)] {
            let src = synthetic(
                0xC0DE,
                SynthConfig {
                    functions,
                    statements_per_function: 10,
                    globals: 12,
                },
            );
            let ir = compile(&src).expect("synthetic programs compile");
            let vm = compile_module(&ir, IsaConfig::full()).expect("synthetic codegen");
            out.push(Subject {
                name: name.to_string(),
                ir,
                vm,
            });
        }
    }
    out
}

/// Size measurements shared by several tables.
#[derive(Debug, Clone, Copy)]
pub struct Sizes {
    /// SPARC-like fixed-width native size (the §3 baseline).
    pub fixed_native: usize,
    /// x86-64 variable-width native size (the §4 baseline).
    pub x86_native: usize,
    /// gzip of the x86 native image.
    pub gzip_x86: usize,
    /// gzip of the fixed-width native image is approximated by gzipping
    /// the base VM encoding scaled to fixed width — instead we gzip the
    /// actual fixed-size stream produced per function.
    pub base_vm: usize,
}

/// Measures the native and baseline sizes of a subject.
pub fn sizes(vm: &VmProgram) -> Sizes {
    let mut enc = codecomp_vm::native::X86Encoder::new();
    enc.emit_program(vm);
    let x86 = enc.into_bytes();
    Sizes {
        fixed_native: fixed_width_size(vm),
        x86_native: x86.len(),
        gzip_x86: gzip_compress(&x86, CompressionLevel::Best).len(),
        base_vm: codecomp_vm::encode::code_segment_size(vm),
    }
}

/// The gzip baseline of an arbitrary byte image.
pub fn gzip_len(data: &[u8]) -> usize {
    gzip_compress(data, CompressionLevel::Best).len()
}

/// BRISC-compresses a subject with default (paper) options.
///
/// # Panics
///
/// Panics on compression failure (subjects are within the envelope).
pub fn brisc(vm: &VmProgram) -> BriscReport {
    brisc_compress(vm, BriscOptions::default()).expect("brisc compression succeeds")
}

/// A simple fixed-width text table writer for experiment output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a fraction to two decimals.
pub fn frac(compressed: usize, original: usize) -> String {
    format!("{:.2}", compressed as f64 / original as f64)
}

/// Formats a multiplication factor to one decimal.
pub fn factor(original: usize, compressed: usize) -> String {
    format!("{:.1}x", original as f64 / compressed as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subjects_build() {
        let subs = subjects(Scale::CorpusOnly);
        assert_eq!(subs.len(), 10);
        for s in &subs {
            assert!(s.vm.inst_count() > 20, "{} too small", s.name);
        }
    }

    #[test]
    fn sizes_are_consistent() {
        let subs = subjects(Scale::CorpusOnly);
        for s in &subs {
            let sz = sizes(&s.vm);
            assert!(sz.x86_native > 0);
            assert!(
                sz.fixed_native >= sz.x86_native,
                "{}: fixed should be larger",
                s.name
            );
            assert!(
                sz.gzip_x86 < sz.x86_native,
                "{}: gzip should compress",
                s.name
            );
            assert!(sz.base_vm > 0);
        }
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "1234".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn brisc_runs_on_a_subject() {
        let subs = subjects(Scale::CorpusOnly);
        let report = brisc(&subs[0].vm);
        assert!(report.image.code_size() > 0);
    }
}
