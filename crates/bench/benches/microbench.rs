//! Criterion microbenchmarks for the compression substrate and the
//! BRISC tiers: DEFLATE throughput, Huffman construction, MTF, wire
//! compression, BRISC compression, direct interpretation, and the
//! translation ("JIT") rate in bytes of produced native code per second.

use codecomp_bench::{subjects, Scale};
use codecomp_brisc::interp::BriscMachine;
use codecomp_brisc::translate::emit_x86;
use codecomp_brisc::{compress as brisc_compress, BriscOptions};
use codecomp_coding::huffman::HuffmanEncoder;
use codecomp_coding::mtf::mtf_encode;
use codecomp_flate::{deflate_compress, inflate, CompressionLevel};
use codecomp_vm::interp::Machine;
use codecomp_wire::{compress as wire_compress, WireOptions};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

fn tuned() -> Criterion {
    // Keep the full suite under a couple of minutes.
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

fn text_corpus(len: usize) -> Vec<u8> {
    let phrase = b"the compressor scans the input program several times, generating \
candidate instruction patterns and estimating their program size reduction; ";
    phrase.iter().copied().cycle().take(len).collect()
}

fn bench_deflate(c: &mut Criterion) {
    let data = text_corpus(64 * 1024);
    let mut g = c.benchmark_group("deflate");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("compress_64k", |b| {
        b.iter(|| deflate_compress(&data, CompressionLevel::Best))
    });
    let packed = deflate_compress(&data, CompressionLevel::Best);
    g.bench_function("inflate_64k", |b| b.iter(|| inflate(&packed).unwrap()));
    g.finish();
}

fn bench_coding(c: &mut Criterion) {
    let mut g = c.benchmark_group("coding");
    let mut freqs = vec![0u64; 256];
    for (i, f) in freqs.iter_mut().enumerate() {
        *f = (i as u64 % 31) * (i as u64 % 7) + 1;
    }
    g.bench_function("huffman_build_256", |b| {
        b.iter(|| HuffmanEncoder::from_frequencies(&freqs, 15).unwrap())
    });
    let stream: Vec<u32> = (0..8192u32).map(|i| (i * i) % 64).collect();
    g.bench_function("mtf_encode_8k", |b| b.iter(|| mtf_encode(&stream)));
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let subs = subjects(Scale::CorpusOnly);
    let big = &subs.iter().max_by_key(|s| s.ir.node_count()).unwrap().ir;
    let mut g = c.benchmark_group("wire");
    g.bench_function("compress_largest_corpus", |b| {
        b.iter(|| wire_compress(big, WireOptions::default()).unwrap())
    });
    g.finish();
}

fn bench_brisc(c: &mut Criterion) {
    let subs = subjects(Scale::CorpusOnly);
    let sub = subs.iter().find(|s| s.name == "sortlib").unwrap();
    let mut g = c.benchmark_group("brisc");
    g.bench_function("compress_sortlib", |b| {
        b.iter(|| brisc_compress(&sub.vm, BriscOptions::default()).unwrap())
    });
    let report = brisc_compress(&sub.vm, BriscOptions::default()).unwrap();
    g.bench_function("interp_sortlib", |b| {
        b.iter(|| {
            let mut m = BriscMachine::new(&report.image, 1 << 22, 1 << 30).unwrap();
            m.run("main", &[]).unwrap().value
        })
    });
    g.bench_function("vm_interp_sortlib", |b| {
        b.iter(|| {
            let mut m = Machine::new(&sub.vm, 1 << 22, 1 << 30).unwrap();
            m.run("main", &[]).unwrap().value
        })
    });
    // Translation rate: bytes of produced x86 per second.
    let (_, bytes) = emit_x86(&report.image).unwrap();
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("jit_translate_sortlib", |b| {
        b.iter(|| emit_x86(&report.image).unwrap().1.len())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = tuned();
    targets = bench_deflate, bench_coding, bench_wire, bench_brisc
}
criterion_main!(benches);
