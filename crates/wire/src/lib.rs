//! The wire format (paper §3).
//!
//! "Compile the input program into trees, patternize out all literals,
//! form one stream for all patterns and one containing the literal
//! operands associated with each opcode or class of related opcodes,
//! MTF-code each stream, Huffman-code all MTF indices but no MTF tables,
//! and gzip the resulting streams in isolation."
//!
//! [`compress`] runs that exact pipeline over an IR [`codecomp_ir::Module`];
//! [`decompress`] inverts it bit-exactly. [`WireOptions`] exposes each
//! stage as a knob for the §2 design-space ablations: stream splitting
//! on/off, MTF on/off, Huffman vs adaptive-arithmetic vs raw index
//! coding, and the final DEFLATE stage on/off — every combination
//! round-trips.
//!
//! # Examples
//!
//! ```
//! use codecomp_front::compile;
//! use codecomp_wire::{compress, decompress, WireOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = compile("int main() { int i; int s = 0; for (i = 0; i < 9; i++) s += i; return s; }")?;
//! let packed = compress(&module, WireOptions::default())?;
//! let back = decompress(&packed.bytes)?;
//! assert_eq!(back, module);
//! # Ok(())
//! # }
//! ```

mod bytesio;
pub mod demand;
mod format;

pub use demand::{DemandError, DemandImage, DemandLoader, DemandReport, SalvageReport};
pub use format::{
    bump_pattern_table_cache_generation, clear_pattern_table_cache, compress, decompress,
    decompress_budgeted, Coder, WireOptions,
    WireReport,
};

use std::error::Error;
use std::fmt;

/// Errors from wire-format compression or decompression.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WireError {
    /// The image ends before the structure it declares.
    Truncated,
    /// The compressed image is malformed.
    Corrupt(String),
    /// A lower layer failed.
    Layer(String),
    /// A decode budget tripped ([`codecomp_core::limits::DecodeLimits`]).
    Limit {
        /// Which limit tripped.
        what: String,
        /// The configured ceiling.
        limit: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire image ended prematurely"),
            WireError::Corrupt(m) => write!(f, "corrupt wire image: {m}"),
            WireError::Layer(m) => write!(f, "{m}"),
            WireError::Limit { what, limit } => {
                write!(f, "limit exceeded: {what} (limit {limit})")
            }
        }
    }
}

impl Error for WireError {}

impl From<WireError> for codecomp_core::DecodeError {
    fn from(e: WireError) -> Self {
        use codecomp_core::DecodeError;
        match e {
            WireError::Truncated => DecodeError::Truncated,
            WireError::Corrupt(m) | WireError::Layer(m) => DecodeError::malformed(m),
            WireError::Limit { what, limit } => DecodeError::LimitExceeded { what, limit },
        }
    }
}

impl From<codecomp_core::DecodeError> for WireError {
    fn from(e: codecomp_core::DecodeError) -> Self {
        use codecomp_core::DecodeError;
        match e {
            DecodeError::Truncated => WireError::Truncated,
            DecodeError::LimitExceeded { what, limit } => WireError::Limit { what, limit },
            other => WireError::Corrupt(other.to_string()),
        }
    }
}

impl From<codecomp_flate::FlateError> for WireError {
    fn from(e: codecomp_flate::FlateError) -> Self {
        match e {
            codecomp_flate::FlateError::Truncated => WireError::Truncated,
            // A budget trip in the DEFLATE stage stays a limit error:
            // the boundary tests rely on shrunk limits never being
            // misreported as structural corruption.
            codecomp_flate::FlateError::LimitExceeded { limit } => WireError::Limit {
                what: "deflate stage output/fuel".into(),
                limit,
            },
            other => WireError::Layer(format!("deflate: {other}")),
        }
    }
}

impl From<codecomp_coding::CodingError> for WireError {
    fn from(e: codecomp_coding::CodingError) -> Self {
        match e {
            codecomp_coding::CodingError::UnexpectedEof => WireError::Truncated,
            codecomp_coding::CodingError::LimitExceeded { what, limit } => {
                WireError::Limit { what, limit }
            }
            other => WireError::Layer(format!("coding: {other}")),
        }
    }
}

impl From<codecomp_core::CoreError> for WireError {
    fn from(e: codecomp_core::CoreError) -> Self {
        WireError::Layer(format!("streams: {e}"))
    }
}

impl From<codecomp_ir::IrError> for WireError {
    fn from(e: codecomp_ir::IrError) -> Self {
        WireError::Layer(format!("ir: {e}"))
    }
}
