//! The wire format (paper §3).
//!
//! "Compile the input program into trees, patternize out all literals,
//! form one stream for all patterns and one containing the literal
//! operands associated with each opcode or class of related opcodes,
//! MTF-code each stream, Huffman-code all MTF indices but no MTF tables,
//! and gzip the resulting streams in isolation."
//!
//! [`compress`] runs that exact pipeline over an IR [`codecomp_ir::Module`];
//! [`decompress`] inverts it bit-exactly. [`WireOptions`] exposes each
//! stage as a knob for the §2 design-space ablations: stream splitting
//! on/off, MTF on/off, Huffman vs adaptive-arithmetic vs raw index
//! coding, and the final DEFLATE stage on/off — every combination
//! round-trips.
//!
//! # Examples
//!
//! ```
//! use codecomp_front::compile;
//! use codecomp_wire::{compress, decompress, WireOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = compile("int main() { int i; int s = 0; for (i = 0; i < 9; i++) s += i; return s; }")?;
//! let packed = compress(&module, WireOptions::default())?;
//! let back = decompress(&packed.bytes)?;
//! assert_eq!(back, module);
//! # Ok(())
//! # }
//! ```

mod bytesio;
pub mod demand;
mod format;

pub use demand::DemandImage;
pub use format::{compress, decompress, Coder, WireOptions, WireReport};

use std::error::Error;
use std::fmt;

/// Errors from wire-format compression or decompression.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WireError {
    /// The image ends before the structure it declares.
    Truncated,
    /// The compressed image is malformed.
    Corrupt(String),
    /// A lower layer failed.
    Layer(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire image ended prematurely"),
            WireError::Corrupt(m) => write!(f, "corrupt wire image: {m}"),
            WireError::Layer(m) => write!(f, "{m}"),
        }
    }
}

impl Error for WireError {}

impl From<WireError> for codecomp_core::DecodeError {
    fn from(e: WireError) -> Self {
        use codecomp_core::DecodeError;
        match e {
            WireError::Truncated => DecodeError::Truncated,
            WireError::Corrupt(m) | WireError::Layer(m) => DecodeError::malformed(m),
        }
    }
}

impl From<codecomp_flate::FlateError> for WireError {
    fn from(e: codecomp_flate::FlateError) -> Self {
        match e {
            codecomp_flate::FlateError::Truncated => WireError::Truncated,
            other => WireError::Layer(format!("deflate: {other}")),
        }
    }
}

impl From<codecomp_coding::CodingError> for WireError {
    fn from(e: codecomp_coding::CodingError) -> Self {
        match e {
            codecomp_coding::CodingError::UnexpectedEof => WireError::Truncated,
            other => WireError::Layer(format!("coding: {other}")),
        }
    }
}

impl From<codecomp_core::CoreError> for WireError {
    fn from(e: codecomp_core::CoreError) -> Self {
        WireError::Layer(format!("streams: {e}"))
    }
}

impl From<codecomp_ir::IrError> for WireError {
    fn from(e: codecomp_ir::IrError) -> Self {
        WireError::Layer(format!("ir: {e}"))
    }
}
