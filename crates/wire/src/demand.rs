//! Function-at-a-time wire compression.
//!
//! §2: arithmetic codes "must be expanded before interpretation, though
//! we have used them successfully by decompressing a function at a
//! time." This module provides that delivery mode for the wire format:
//! each function is an independently decompressible unit, so a client
//! can demand-load only the functions a run actually calls — the
//! transmission-side analogue of BRISC's working-set reduction.

use crate::bytesio::{put_string, put_uvarint, Cursor};
use crate::format::{compress, decompress, WireOptions};
use crate::WireError;
use codecomp_ir::tree::{Function, Global, Module};

const MAGIC: &[u8; 4] = b"CCWD";

/// A module compressed as independently decodable function units.
#[derive(Debug, Clone)]
pub struct DemandImage {
    /// Shared data (globals), compressed once.
    globals: Vec<Global>,
    /// `(name, wire image of a single-function module)`.
    units: Vec<(String, Vec<u8>)>,
    options: WireOptions,
}

impl DemandImage {
    /// Compresses each function of `module` separately.
    ///
    /// # Errors
    ///
    /// Propagates wire-compression errors.
    pub fn build(module: &Module, options: WireOptions) -> Result<DemandImage, WireError> {
        let mut units = Vec::with_capacity(module.functions.len());
        for f in &module.functions {
            let single = Module {
                globals: Vec::new(),
                functions: vec![f.clone()],
            };
            let packed = compress(&single, options)?;
            units.push((f.name.clone(), packed.bytes));
        }
        Ok(DemandImage {
            globals: module.globals.clone(),
            units,
            options,
        })
    }

    /// Function names in definition order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.units.iter().map(|(n, _)| n.as_str())
    }

    /// Compressed size of one function's unit.
    pub fn unit_size(&self, name: &str) -> Option<usize> {
        self.units
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.len())
    }

    /// Total size of all units plus the globals.
    pub fn total_units(&self) -> usize {
        self.units.iter().map(|(_, b)| b.len()).sum()
    }

    /// Decompresses exactly one function — the demand-load primitive.
    ///
    /// # Errors
    ///
    /// [`WireError::Corrupt`] if the name is unknown or the unit is
    /// malformed.
    pub fn load_function(&self, name: &str) -> Result<Function, WireError> {
        let (_, bytes) = self
            .units
            .iter()
            .find(|(n, _)| n == name)
            .ok_or_else(|| WireError::Corrupt(format!("no function {name} in image")))?;
        let module = decompress(bytes)?;
        module
            .functions
            .into_iter()
            .next()
            .ok_or_else(|| WireError::Corrupt("unit holds no function".into()))
    }

    /// Decompresses every unit back into a whole module.
    ///
    /// # Errors
    ///
    /// Propagates unit decode errors.
    pub fn load_all(&self) -> Result<Module, WireError> {
        let mut module = Module {
            globals: self.globals.clone(),
            functions: Vec::new(),
        };
        for (name, _) in &self.units {
            module.functions.push(self.load_function(name)?);
        }
        Ok(module)
    }

    /// Bytes a run needs to transfer-and-decompress when it calls only
    /// `used` functions (plus globals, which always ship).
    pub fn demand_bytes<'a>(&self, used: impl IntoIterator<Item = &'a str>) -> usize {
        used.into_iter().filter_map(|n| self.unit_size(n)).sum()
    }

    /// Serializes the image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(options_byte(self.options));
        put_uvarint(&mut out, self.globals.len() as u64);
        for g in &self.globals {
            put_string(&mut out, &g.name);
            put_uvarint(&mut out, u64::from(g.size));
            put_uvarint(&mut out, g.init.len() as u64);
            out.extend_from_slice(&g.init);
        }
        put_uvarint(&mut out, self.units.len() as u64);
        for (name, bytes) in &self.units {
            put_string(&mut out, name);
            put_uvarint(&mut out, bytes.len() as u64);
            out.extend_from_slice(bytes);
        }
        out
    }

    /// Deserializes an image.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if the bytes end before the declared
    /// structure does; [`WireError::Corrupt`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<DemandImage, WireError> {
        let mut c = Cursor::new(bytes);
        if c.take(4)? != MAGIC {
            return Err(WireError::Corrupt("bad magic".into()));
        }
        let options = options_from_byte(c.u8()?)?;
        let nglobals = c.uvarint()? as usize;
        // Counts are attacker-controlled: cap the preallocation by what
        // the input could possibly hold so a corrupt varint cannot
        // demand an absurd allocation up front.
        let mut globals = Vec::with_capacity(nglobals.min(c.remaining()));
        for _ in 0..nglobals {
            let name = c.string()?;
            let size = c.uvarint()? as u32;
            let init_len = c.uvarint()? as usize;
            globals.push(Global {
                name,
                size,
                init: c.take(init_len)?.to_vec(),
            });
        }
        let nunits = c.uvarint()? as usize;
        let mut units = Vec::with_capacity(nunits.min(c.remaining()));
        for _ in 0..nunits {
            let name = c.string()?;
            let len = c.uvarint()? as usize;
            units.push((name, c.take(len)?.to_vec()));
        }
        if c.remaining() != 0 {
            return Err(WireError::Corrupt("trailing bytes".into()));
        }
        Ok(DemandImage {
            globals,
            units,
            options,
        })
    }
}

// The options byte round-trips through the public WireOptions fields.
fn options_byte(o: WireOptions) -> u8 {
    u8::from(o.split_streams)
        | (u8::from(o.mtf) << 1)
        | (match o.coder {
            crate::format::Coder::Raw => 0,
            crate::format::Coder::Huffman => 1,
            crate::format::Coder::Arithmetic => 2,
        } << 2)
        | (u8::from(o.deflate) << 4)
}

fn options_from_byte(b: u8) -> Result<WireOptions, WireError> {
    Ok(WireOptions {
        split_streams: b & 1 != 0,
        mtf: b & 2 != 0,
        coder: match (b >> 2) & 3 {
            0 => crate::format::Coder::Raw,
            1 => crate::format::Coder::Huffman,
            2 => crate::format::Coder::Arithmetic,
            other => return Err(WireError::Corrupt(format!("bad coder tag {other}"))),
        },
        deflate: b & 16 != 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use codecomp_front::compile;

    fn sample() -> Module {
        compile(
            "int g = 3;
             int used() { return g + 9; }
             int helper(int x) { return x * 2; }
             int unused(int x) { int i; int s = 0; for (i = 0; i < x; i++) s += helper(i); return s; }
             int main() { return used(); }",
        )
        .unwrap()
    }

    #[test]
    fn single_functions_load_independently() {
        let m = sample();
        let img = DemandImage::build(&m, WireOptions::default()).unwrap();
        let f = img.load_function("used").unwrap();
        assert_eq!(&f, m.function("used").unwrap());
        assert!(img.load_function("nope").is_err());
    }

    #[test]
    fn load_all_reconstructs_the_module() {
        let m = sample();
        let img = DemandImage::build(&m, WireOptions::default()).unwrap();
        assert_eq!(img.load_all().unwrap(), m);
    }

    #[test]
    fn serialization_roundtrip() {
        let m = sample();
        let img = DemandImage::build(&m, WireOptions::default()).unwrap();
        let bytes = img.to_bytes();
        let back = DemandImage::from_bytes(&bytes).unwrap();
        assert_eq!(back.load_all().unwrap(), m);
        assert!(DemandImage::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn demand_loading_transfers_fewer_bytes() {
        let m = sample();
        let img = DemandImage::build(&m, WireOptions::default()).unwrap();
        let partial = img.demand_bytes(["main", "used"]);
        let all = img.total_units();
        assert!(partial < all, "demand {partial} should be below full {all}");
        assert_eq!(img.names().count(), 4);
    }

    #[test]
    fn arithmetic_coder_variant_works_per_function() {
        // The paper's remark: arithmetic codes, expanded a function at a time.
        let m = sample();
        let options = WireOptions {
            coder: crate::format::Coder::Arithmetic,
            ..WireOptions::default()
        };
        let img = DemandImage::build(&m, options).unwrap();
        assert_eq!(img.load_all().unwrap(), m);
        let bytes = img.to_bytes();
        assert_eq!(
            DemandImage::from_bytes(&bytes).unwrap().load_all().unwrap(),
            m
        );
    }
}
