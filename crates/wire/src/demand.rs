//! Function-at-a-time wire compression.
//!
//! §2: arithmetic codes "must be expanded before interpretation, though
//! we have used them successfully by decompressing a function at a
//! time." This module provides that delivery mode for the wire format:
//! each function is an independently decompressible unit, so a client
//! can demand-load only the functions a run actually calls — the
//! transmission-side analogue of BRISC's working-set reduction.

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use crate::bytesio::{put_string, put_uvarint, Cursor};
use crate::format::{compress, decompress_budgeted, WireOptions};
use crate::WireError;
use codecomp_core::{telemetry, Budget, DecodeError, DecodeLimits};
use codecomp_ir::eval::{EvalOutcome, Evaluator};
use codecomp_ir::op::Literal;
use codecomp_ir::tree::{Function, Global, Module, Tree};
use codecomp_ir::IrError;

const MAGIC: &[u8; 4] = b"CCWD";

/// A module compressed as independently decodable function units.
#[derive(Debug, Clone)]
pub struct DemandImage {
    /// Shared data (globals), compressed once.
    globals: Vec<Global>,
    /// `(name, wire image of a single-function module)`.
    units: Vec<(String, Vec<u8>)>,
    /// Name → position in `units`, built once at construction so
    /// per-request lookups are O(log n) instead of a linear scan.
    index: BTreeMap<String, usize>,
    options: WireOptions,
}

/// Builds the name→position map, rejecting duplicate unit names (two
/// units under one name would make demand loads ambiguous).
fn index_units(units: &[(String, Vec<u8>)]) -> Result<BTreeMap<String, usize>, WireError> {
    let mut index = BTreeMap::new();
    for (pos, (name, _)) in units.iter().enumerate() {
        if index.insert(name.clone(), pos).is_some() {
            return Err(WireError::Corrupt(format!("duplicate function {name}")));
        }
    }
    Ok(index)
}

impl DemandImage {
    /// Compresses each function of `module` separately.
    ///
    /// # Errors
    ///
    /// Propagates wire-compression errors; [`WireError::Corrupt`] if
    /// two functions share a name.
    pub fn build(module: &Module, options: WireOptions) -> Result<DemandImage, WireError> {
        let mut units = Vec::with_capacity(module.functions.len());
        for f in &module.functions {
            let single = Module {
                globals: Vec::new(),
                functions: vec![f.clone()],
            };
            let packed = compress(&single, options)?;
            units.push((f.name.clone(), packed.bytes));
        }
        let index = index_units(&units)?;
        Ok(DemandImage {
            globals: module.globals.clone(),
            units,
            index,
            options,
        })
    }

    /// Function names in definition order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.units.iter().map(|(n, _)| n.as_str())
    }

    /// Compressed size of one function's unit.
    pub fn unit_size(&self, name: &str) -> Option<usize> {
        self.index.get(name).map(|&i| self.units[i].1.len())
    }

    /// Total size of all units plus the globals.
    pub fn total_units(&self) -> usize {
        self.units.iter().map(|(_, b)| b.len()).sum()
    }

    /// Decompresses exactly one function — the demand-load primitive.
    ///
    /// # Errors
    ///
    /// [`WireError::Corrupt`] if the name is unknown or the unit is
    /// malformed.
    pub fn load_function(&self, name: &str) -> Result<Function, WireError> {
        self.load_function_budgeted(name, &Budget::default())
    }

    /// Budget-governed [`Self::load_function`].
    ///
    /// # Errors
    ///
    /// As [`Self::load_function`], plus [`WireError::Limit`] when the
    /// budget trips.
    pub fn load_function_budgeted(
        &self,
        name: &str,
        budget: &Budget,
    ) -> Result<Function, WireError> {
        let bytes = self
            .unit_bytes(name)
            .ok_or_else(|| WireError::Corrupt(format!("no function {name} in image")))?;
        let module = decompress_budgeted(bytes, budget)?;
        module
            .functions
            .into_iter()
            .next()
            .ok_or_else(|| WireError::Corrupt("unit holds no function".into()))
    }

    /// Raw compressed bytes of one function's unit.
    pub fn unit_bytes(&self, name: &str) -> Option<&[u8]> {
        self.index.get(name).map(|&i| self.units[i].1.as_slice())
    }

    /// Decompresses every unit back into a whole module.
    ///
    /// # Errors
    ///
    /// Propagates unit decode errors.
    pub fn load_all(&self) -> Result<Module, WireError> {
        self.load_all_budgeted(&Budget::default())
    }

    /// Budget-governed [`Self::load_all`].
    ///
    /// # Errors
    ///
    /// As [`Self::load_all`], plus [`WireError::Limit`] when the budget
    /// trips.
    pub fn load_all_budgeted(&self, budget: &Budget) -> Result<Module, WireError> {
        let mut module = Module {
            globals: self.globals.clone(),
            functions: Vec::new(),
        };
        for (name, _) in &self.units {
            module.functions.push(self.load_function_budgeted(name, budget)?);
        }
        Ok(module)
    }

    /// Classifies every unit as salvageable or poisoned under `limits`.
    ///
    /// Each unit is probed with a *fresh* budget so one oversized
    /// function cannot drain the meters for its siblings; this is the
    /// report a loader consults before deciding what to quarantine.
    pub fn salvage_scan(&self, limits: DecodeLimits) -> SalvageReport {
        let _span = telemetry::span("wire.salvage_scan");
        let mut salvageable = Vec::new();
        let mut poisoned = Vec::new();
        for (name, _) in &self.units {
            match self.load_function_budgeted(name, &Budget::new(limits)) {
                Ok(_) => salvageable.push(name.clone()),
                Err(e) => {
                    let cause = DecodeError::from(e);
                    telemetry::event(
                        "demand.salvage_poisoned",
                        vec![
                            ("function", name.as_str().into()),
                            ("cause", cause.to_string().into()),
                        ],
                    );
                    poisoned.push((name.clone(), cause));
                }
            }
        }
        telemetry::event(
            "demand.salvage_scan",
            vec![
                ("salvageable", salvageable.len().into()),
                ("poisoned", poisoned.len().into()),
            ],
        );
        SalvageReport {
            salvageable,
            poisoned,
        }
    }

    /// Bytes a run needs to transfer-and-decompress when it calls only
    /// `used` functions (plus globals, which always ship).
    pub fn demand_bytes<'a>(&self, used: impl IntoIterator<Item = &'a str>) -> usize {
        used.into_iter().filter_map(|n| self.unit_size(n)).sum()
    }

    /// Serializes the image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(self.options.to_byte());
        put_uvarint(&mut out, self.globals.len() as u64);
        for g in &self.globals {
            put_string(&mut out, &g.name);
            put_uvarint(&mut out, u64::from(g.size));
            put_uvarint(&mut out, g.init.len() as u64);
            out.extend_from_slice(&g.init);
        }
        put_uvarint(&mut out, self.units.len() as u64);
        for (name, bytes) in &self.units {
            put_string(&mut out, name);
            put_uvarint(&mut out, bytes.len() as u64);
            out.extend_from_slice(bytes);
        }
        out
    }

    /// Deserializes an image.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if the bytes end before the declared
    /// structure does; [`WireError::Corrupt`] on malformed input,
    /// including two units sharing one name.
    pub fn from_bytes(bytes: &[u8]) -> Result<DemandImage, WireError> {
        let mut c = Cursor::new(bytes);
        if c.take(4)? != MAGIC {
            return Err(WireError::Corrupt("bad magic".into()));
        }
        // Shares the container decoder's strict parse, so demand images
        // reject reserved option bits the same way `decompress` does.
        let options = WireOptions::from_byte(c.u8()?)?;
        let nglobals = c.uvarint()? as usize;
        // Counts are attacker-controlled: cap the preallocation by what
        // the input could possibly hold so a corrupt varint cannot
        // demand an absurd allocation up front.
        let mut globals = Vec::with_capacity(nglobals.min(c.remaining()));
        for _ in 0..nglobals {
            let name = c.string()?;
            let size = c.uvarint()? as u32;
            let init_len = c.uvarint()? as usize;
            globals.push(Global {
                name,
                size,
                init: c.take(init_len)?.to_vec(),
            });
        }
        let nunits = c.uvarint()? as usize;
        let mut units = Vec::with_capacity(nunits.min(c.remaining()));
        for _ in 0..nunits {
            let name = c.string()?;
            let len = c.uvarint()? as usize;
            units.push((name, c.take(len)?.to_vec()));
        }
        if c.remaining() != 0 {
            return Err(WireError::Corrupt("trailing bytes".into()));
        }
        let index = index_units(&units)?;
        Ok(DemandImage {
            globals,
            units,
            index,
            options,
        })
    }
}

/// Salvageable-vs-poisoned classification of a [`DemandImage`]'s units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageReport {
    /// Units that decode cleanly under the probed limits.
    pub salvageable: Vec<String>,
    /// Units that fail, with the failure that poisoned each.
    pub poisoned: Vec<(String, DecodeError)>,
}

/// A failure surfaced by the demand-loading runtime.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DemandError {
    /// The function was quarantined by an earlier decode failure; calls
    /// into it trap here instead of corrupting the run.
    Quarantined {
        /// The quarantined function.
        name: String,
        /// Why its unit failed to decode.
        cause: DecodeError,
    },
    /// The image holds no unit with this name.
    UnknownFunction(String),
    /// A unit failed to decode (also recorded in the quarantine).
    Decode(WireError),
    /// The program itself faulted while running.
    Exec(String),
}

impl fmt::Display for DemandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemandError::Quarantined { name, cause } => {
                write!(f, "function {name} is quarantined: {cause}")
            }
            DemandError::UnknownFunction(name) => write!(f, "no function {name} in image"),
            DemandError::Decode(e) => write!(f, "demand decode failed: {e}"),
            DemandError::Exec(m) => write!(f, "execution failed: {m}"),
        }
    }
}

impl Error for DemandError {}

/// Point-in-time state of a [`DemandLoader`].
#[derive(Debug, Clone, PartialEq)]
pub struct DemandReport {
    /// Functions currently resident, in image order.
    pub resident: Vec<String>,
    /// Functions quarantined with the failure that poisoned each.
    pub quarantined: Vec<(String, DecodeError)>,
    /// Functions not yet demanded.
    pub not_loaded: Vec<String>,
    /// Compressed bytes charged for the resident set.
    pub resident_bytes: u64,
}

/// A demand-paging runtime over a [`DemandImage`] that degrades
/// gracefully: a corrupt or over-budget unit is *quarantined* (recorded
/// with its [`DecodeError`]) instead of failing the module, later calls
/// into it trap with [`DemandError::Quarantined`], and
/// [`DemandLoader::retry_with`] re-demands a function that only failed
/// on limits once the caller raises the budget.
///
/// Residency is accounted in compressed unit bytes — the same metric as
/// [`DemandImage::demand_bytes`] — against the budget's
/// `max_resident_bytes`; [`DemandLoader::evict`] releases it.
#[derive(Debug)]
pub struct DemandLoader<'a> {
    image: &'a DemandImage,
    budget: Budget,
    resident: BTreeMap<String, (Function, u64)>,
    quarantine: BTreeMap<String, DecodeError>,
}

impl<'a> DemandLoader<'a> {
    /// A loader over `image` governed by a fresh budget with `limits`.
    pub fn new(image: &'a DemandImage, limits: DecodeLimits) -> Self {
        Self::with_budget(image, Budget::new(limits))
    }

    /// A loader sharing `budget` with an enclosing pipeline.
    pub fn with_budget(image: &'a DemandImage, budget: Budget) -> Self {
        DemandLoader {
            image,
            budget,
            resident: BTreeMap::new(),
            quarantine: BTreeMap::new(),
        }
    }

    /// The budget governing this loader.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Demand-loads `name`, decoding its unit if not already resident.
    ///
    /// A decode or residency failure quarantines the function and
    /// returns [`DemandError::Quarantined`]; the rest of the module
    /// stays usable.
    ///
    /// # Errors
    ///
    /// [`DemandError::UnknownFunction`] for names outside the image,
    /// [`DemandError::Quarantined`] for poisoned units.
    pub fn demand(&mut self, name: &str) -> Result<&Function, DemandError> {
        if let Some(cause) = self.quarantine.get(name) {
            return Err(DemandError::Quarantined {
                name: name.to_string(),
                cause: cause.clone(),
            });
        }
        if !self.resident.contains_key(name) {
            let unit_len = self
                .image
                .unit_size(name)
                .ok_or_else(|| DemandError::UnknownFunction(name.to_string()))?
                as u64;
            let loaded = self
                .image
                .load_function_budgeted(name, &self.budget)
                .map_err(DecodeError::from)
                .and_then(|f| {
                    self.budget.charge_resident(unit_len)?;
                    Ok(f)
                });
            match loaded {
                Ok(f) => {
                    telemetry::counter_add("wire.demand.loads", 1);
                    self.budget.publish_telemetry();
                    self.resident.insert(name.to_string(), (f, unit_len));
                }
                Err(cause) => {
                    telemetry::counter_add("wire.demand.quarantines", 1);
                    telemetry::event(
                        "demand.quarantine",
                        vec![
                            ("function", name.into()),
                            ("cause", cause.to_string().into()),
                        ],
                    );
                    self.quarantine.insert(name.to_string(), cause.clone());
                    return Err(DemandError::Quarantined {
                        name: name.to_string(),
                        cause,
                    });
                }
            }
        }
        Ok(&self.resident[name].0)
    }

    /// Evicts a resident function, releasing its residency charge.
    /// Returns whether it was resident.
    pub fn evict(&mut self, name: &str) -> bool {
        match self.resident.remove(name) {
            Some((_, bytes)) => {
                self.budget.release_resident(bytes);
                telemetry::counter_add("wire.demand.evictions", 1);
                self.budget.publish_telemetry();
                true
            }
            None => false,
        }
    }

    /// Clears `name`'s quarantine record, rebinds the loader's ceilings
    /// to `limits` (over the same meters), and re-demands it — the
    /// recovery path for a function that only failed on limits. A unit
    /// that failed structurally will simply quarantine again.
    ///
    /// # Errors
    ///
    /// As [`Self::demand`].
    pub fn retry_with(
        &mut self,
        name: &str,
        limits: DecodeLimits,
    ) -> Result<&Function, DemandError> {
        telemetry::event("demand.retry", vec![("function", name.into())]);
        self.quarantine.remove(name);
        self.budget = self.budget.with_limits(limits);
        self.demand(name)
    }

    /// The loader's current resident / quarantined / untouched split.
    pub fn report(&self) -> DemandReport {
        let resident: Vec<String> = self
            .image
            .names()
            .filter(|n| self.resident.contains_key(*n))
            .map(str::to_string)
            .collect();
        let quarantined: Vec<(String, DecodeError)> = self
            .image
            .names()
            .filter_map(|n| self.quarantine.get(n).map(|c| (n.to_string(), c.clone())))
            .collect();
        let not_loaded = self
            .image
            .names()
            .filter(|n| !self.resident.contains_key(*n) && !self.quarantine.contains_key(*n))
            .map(str::to_string)
            .collect();
        let resident_bytes = self.resident.values().map(|(_, b)| b).sum();
        DemandReport {
            resident,
            quarantined,
            not_loaded,
            resident_bytes,
        }
    }

    /// Assembles a module from everything currently resident (image
    /// order), for handing to an evaluator.
    pub fn resident_module(&self) -> Module {
        let mut module = Module {
            globals: self.image.globals.clone(),
            functions: Vec::new(),
        };
        for name in self.image.names() {
            if let Some((f, _)) = self.resident.get(name) {
                module.functions.push(f.clone());
            }
        }
        module
    }

    /// Demand-loads `entry` and everything statically reachable from
    /// it, then runs it; quarantined functions are skipped during the
    /// walk, and a call that actually reaches one traps with
    /// [`DemandError::Quarantined`] instead of a raw evaluator error.
    ///
    /// # Errors
    ///
    /// [`DemandError::Quarantined`] if `entry` itself is poisoned or
    /// execution reaches a poisoned function; [`DemandError::Exec`] for
    /// ordinary program faults.
    pub fn run(
        &mut self,
        entry: &str,
        args: &[i64],
        mem: u32,
        fuel: u64,
    ) -> Result<EvalOutcome, DemandError> {
        self.demand(entry)?;
        // Transitive preload over ADDRG symbols. Over-approximates the
        // call graph (a symbol may name a global or a never-taken
        // call), so failures here only quarantine — they don't abort.
        let mut worklist: Vec<String> = vec![entry.to_string()];
        let mut seen: BTreeSet<String> = worklist.iter().cloned().collect();
        while let Some(name) = worklist.pop() {
            let Some((f, _)) = self.resident.get(&name) else {
                continue;
            };
            let mut targets = BTreeSet::new();
            for tree in &f.body {
                collect_symbols(tree, &mut targets);
            }
            for t in targets {
                if seen.insert(t.clone()) && self.image.unit_size(&t).is_some() {
                    let _ = self.demand(&t);
                    worklist.push(t);
                }
            }
        }
        let module = self.resident_module();
        let eval = Evaluator::new(&module, mem, fuel)
            .map_err(|e| DemandError::Exec(e.to_string()))?;
        match eval.run(entry, args) {
            Ok(out) => Ok(out),
            Err(IrError::Eval(msg)) => {
                // The evaluator reports a missing function as an
                // undefined symbol; if we quarantined it, surface the
                // quarantine instead of the raw evaluator error.
                for (name, cause) in &self.quarantine {
                    if msg == format!("undefined symbol {name}")
                        || msg == format!("undefined function {name}")
                    {
                        return Err(DemandError::Quarantined {
                            name: name.clone(),
                            cause: cause.clone(),
                        });
                    }
                }
                Err(DemandError::Exec(msg))
            }
            Err(e) => Err(DemandError::Exec(e.to_string())),
        }
    }
}

/// Collects every `ADDRG` symbol in `tree` — the static superset of
/// call targets.
fn collect_symbols(tree: &Tree, out: &mut BTreeSet<String>) {
    if let Some(Literal::Symbol(s)) = tree.literal() {
        out.insert(s.clone());
    }
    for k in tree.kids() {
        collect_symbols(k, out);
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use codecomp_front::compile;

    fn sample() -> Module {
        compile(
            "int g = 3;
             int used() { return g + 9; }
             int helper(int x) { return x * 2; }
             int unused(int x) { int i; int s = 0; for (i = 0; i < x; i++) s += helper(i); return s; }
             int main() { return used(); }",
        )
        .unwrap()
    }

    #[test]
    fn single_functions_load_independently() {
        let m = sample();
        let img = DemandImage::build(&m, WireOptions::default()).unwrap();
        let f = img.load_function("used").unwrap();
        assert_eq!(&f, m.function("used").unwrap());
        assert!(img.load_function("nope").is_err());
    }

    #[test]
    fn load_all_reconstructs_the_module() {
        let m = sample();
        let img = DemandImage::build(&m, WireOptions::default()).unwrap();
        assert_eq!(img.load_all().unwrap(), m);
    }

    #[test]
    fn duplicate_unit_names_are_rejected() {
        let m = sample();
        // Construction from a module with two same-named functions.
        let mut dup = m.clone();
        let mut clash = dup.functions[1].clone();
        clash.name = dup.functions[0].name.clone();
        dup.functions.push(clash);
        let err = DemandImage::build(&dup, WireOptions::default()).unwrap_err();
        assert!(
            matches!(err, WireError::Corrupt(ref w) if w.contains("duplicate")),
            "build must reject duplicates, got {err:?}"
        );

        // Deserialization of an image whose unit table repeats a name.
        let mut img = DemandImage::build(&m, WireOptions::default()).unwrap();
        let repeat = img.units[0].clone();
        img.units.push(repeat);
        let bytes = img.to_bytes();
        let err = DemandImage::from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, WireError::Corrupt(ref w) if w.contains("duplicate")),
            "from_bytes must reject duplicates, got {err:?}"
        );
    }

    #[test]
    fn indexed_lookup_matches_unit_order() {
        let m = sample();
        let img = DemandImage::build(&m, WireOptions::default()).unwrap();
        for (name, bytes) in &img.units {
            assert_eq!(img.unit_bytes(name), Some(bytes.as_slice()));
            assert_eq!(img.unit_size(name), Some(bytes.len()));
        }
        assert_eq!(img.unit_bytes("nope"), None);
        assert_eq!(img.unit_size("nope"), None);
    }

    #[test]
    fn serialization_roundtrip() {
        let m = sample();
        let img = DemandImage::build(&m, WireOptions::default()).unwrap();
        let bytes = img.to_bytes();
        let back = DemandImage::from_bytes(&bytes).unwrap();
        assert_eq!(back.load_all().unwrap(), m);
        assert!(DemandImage::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn demand_loading_transfers_fewer_bytes() {
        let m = sample();
        let img = DemandImage::build(&m, WireOptions::default()).unwrap();
        let partial = img.demand_bytes(["main", "used"]);
        let all = img.total_units();
        assert!(partial < all, "demand {partial} should be below full {all}");
        assert_eq!(img.names().count(), 4);
    }

    #[test]
    fn corrupted_unit_is_quarantined_but_module_survives() {
        let m = sample();
        let mut img = DemandImage::build(&m, WireOptions::default()).unwrap();
        let idx = img.units.iter().position(|(n, _)| n == "unused").unwrap();
        let len = img.units[idx].1.len();
        img.units[idx].1.truncate(len / 2);

        let scan = img.salvage_scan(DecodeLimits::default());
        assert_eq!(scan.poisoned.len(), 1);
        assert_eq!(scan.poisoned[0].0, "unused");
        assert_eq!(scan.salvageable.len(), 3);

        let mut loader = DemandLoader::new(&img, DecodeLimits::default());
        let out = loader.run("main", &[], 1 << 20, 1 << 30).unwrap();
        assert_eq!(out.value, 12);
        let err = loader.demand("unused").unwrap_err();
        assert!(matches!(err, DemandError::Quarantined { ref name, .. } if name == "unused"));
        let report = loader.report();
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.resident.contains(&"main".to_string()));
        assert!(report.resident.contains(&"used".to_string()));
    }

    #[test]
    fn calling_into_a_quarantined_function_traps_cleanly() {
        let m = sample();
        let mut img = DemandImage::build(&m, WireOptions::default()).unwrap();
        let idx = img.units.iter().position(|(n, _)| n == "used").unwrap();
        let len = img.units[idx].1.len();
        img.units[idx].1.truncate(len / 2);
        let mut loader = DemandLoader::new(&img, DecodeLimits::default());
        let err = loader.run("main", &[], 1 << 20, 1 << 30).unwrap_err();
        assert!(matches!(err, DemandError::Quarantined { ref name, .. } if name == "used"));
    }

    #[test]
    fn limit_failure_is_recoverable_with_a_larger_budget() {
        let m = sample();
        let img = DemandImage::build(&m, WireOptions::default()).unwrap();
        let tiny = DecodeLimits {
            decode_fuel: 0,
            ..DecodeLimits::default()
        };
        let mut loader = DemandLoader::new(&img, tiny);
        let err = loader.demand("used").unwrap_err();
        assert!(matches!(
            err,
            DemandError::Quarantined {
                cause: DecodeError::LimitExceeded { .. },
                ..
            }
        ));
        let f = loader.retry_with("used", DecodeLimits::default()).unwrap();
        assert_eq!(f, m.function("used").unwrap());
    }

    #[test]
    fn eviction_releases_residency() {
        let m = sample();
        let img = DemandImage::build(&m, WireOptions::default()).unwrap();
        let unit = img.unit_size("main").unwrap() as u64;
        let mut loader = DemandLoader::new(&img, DecodeLimits::default());
        loader.demand("main").unwrap();
        assert_eq!(loader.report().resident_bytes, unit);
        assert!(loader.evict("main"));
        assert!(!loader.evict("main"));
        assert_eq!(loader.report().resident_bytes, 0);
        loader.demand("main").unwrap();
    }

    #[test]
    fn resident_ceiling_enforced_and_recoverable() {
        let m = sample();
        let img = DemandImage::build(&m, WireOptions::default()).unwrap();
        let main_len = img.unit_size("main").unwrap() as u64;
        let used_len = img.unit_size("used").unwrap() as u64;
        let limits = DecodeLimits {
            max_resident_bytes: main_len.max(used_len),
            ..DecodeLimits::default()
        };
        let mut loader = DemandLoader::new(&img, limits);
        loader.demand("main").unwrap();
        let err = loader.demand("used").unwrap_err();
        assert!(matches!(
            err,
            DemandError::Quarantined {
                cause: DecodeError::LimitExceeded { .. },
                ..
            }
        ));
        assert!(loader.evict("main"));
        loader.retry_with("used", limits).unwrap();
    }

    #[test]
    fn arithmetic_coder_variant_works_per_function() {
        // The paper's remark: arithmetic codes, expanded a function at a time.
        let m = sample();
        let options = WireOptions {
            coder: crate::format::Coder::Arithmetic,
            ..WireOptions::default()
        };
        let img = DemandImage::build(&m, options).unwrap();
        assert_eq!(img.load_all().unwrap(), m);
        let bytes = img.to_bytes();
        assert_eq!(
            DemandImage::from_bytes(&bytes).unwrap().load_all().unwrap(),
            m
        );
    }
}
