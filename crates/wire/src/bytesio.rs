//! Byte-level helpers: LEB128 varints, zigzag, length-prefixed strings.

use crate::WireError;

/// Appends an unsigned LEB128 varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a zigzag-encoded signed varint.
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    put_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// A cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Creates a cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.bytes.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(WireError::Truncated)?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads an unsigned varint.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] on truncation, [`WireError::Corrupt`] on
    /// overlong encodings.
    pub fn uvarint(&mut self) -> Result<u64, WireError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 63 && b > 1 {
                return Err(WireError::Corrupt("varint overflow".into()));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a zigzag-encoded signed varint.
    ///
    /// # Errors
    ///
    /// As [`Cursor::uvarint`].
    pub fn ivarint(&mut self) -> Result<i64, WireError> {
        let u = self.uvarint()?;
        Ok(((u >> 1) as i64) ^ -((u & 1) as i64))
    }

    /// Reads a varint declaring an in-memory count or length, checked
    /// into `usize`.
    ///
    /// Every length in the format is bounded by the input that carries
    /// it, so a value above `usize::MAX` (possible on 32-bit hosts) is
    /// structurally corrupt, not merely truncated.
    ///
    /// # Errors
    ///
    /// As [`Cursor::uvarint`], plus [`WireError::Corrupt`] when the
    /// value does not fit a `usize`.
    pub fn usize_varint(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.uvarint()?)
            .map_err(|_| WireError::Corrupt("declared length exceeds address space".into()))
    }

    /// Reads a length-prefixed string.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] on truncation, [`WireError::Corrupt`] on
    /// invalid UTF-8.
    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.usize_varint()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Corrupt("string is not UTF-8".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_roundtrip() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            put_uvarint(&mut buf, v);
        }
        let mut c = Cursor::new(&buf);
        for &v in &values {
            assert_eq!(c.uvarint().unwrap(), v);
        }
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn ivarint_roundtrip() {
        let values = [
            0i64,
            1,
            -1,
            63,
            -64,
            64,
            300,
            -300,
            i32::MAX as i64,
            i64::MIN,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            put_ivarint(&mut buf, v);
        }
        let mut c = Cursor::new(&buf);
        for &v in &values {
            assert_eq!(c.ivarint().unwrap(), v);
        }
    }

    #[test]
    fn small_values_take_one_byte() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 100);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_ivarint(&mut buf, -50);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn strings_roundtrip() {
        let mut buf = Vec::new();
        put_string(&mut buf, "pepper");
        put_string(&mut buf, "");
        let mut c = Cursor::new(&buf);
        assert_eq!(c.string().unwrap(), "pepper");
        assert_eq!(c.string().unwrap(), "");
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 1 << 20);
        let mut c = Cursor::new(&buf[..1]);
        assert!(c.uvarint().is_err());
        let mut c = Cursor::new(&[]);
        assert!(c.u8().is_err());
        assert!(Cursor::new(&[5, b'a']).string().is_err());
    }
}
