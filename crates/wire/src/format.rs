//! The wire-format container: compression pipeline and its inverse.

use crate::bytesio::{put_ivarint, put_string, put_uvarint, Cursor};
use crate::WireError;
use codecomp_coding::arith::{ArithDecoder, ArithEncoder};
use codecomp_coding::huffman::{cached_decoder, HuffmanEncoder};
use codecomp_coding::model::AdaptiveModel;
use codecomp_coding::mtf::{mtf_decode_identity, mtf_encode};
use codecomp_core::cov_hit;
use codecomp_core::profile;
use codecomp_core::streams::SplitStreams;
use codecomp_core::telemetry;
use codecomp_core::treepat::TreePattern;
use codecomp_core::Budget;
use codecomp_flate::{deflate_compress, inflate_budgeted, CompressionLevel};
use codecomp_ir::binary::{byte_for_op, desc_for_byte, desc_to_op};
use codecomp_ir::op::{Literal, Opcode};
use codecomp_ir::tree::{Function, Global, Module, Tree};

const MAGIC: &[u8; 4] = b"CCWF";

/// Index-coder selection for the MTF index streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Coder {
    /// Varint indices, no entropy coding.
    Raw,
    /// Semi-static canonical Huffman (the paper's choice).
    #[default]
    Huffman,
    /// Order-0 adaptive arithmetic coding (the design-space alternative).
    Arithmetic,
}

impl Coder {
    fn tag(self) -> u8 {
        match self {
            Coder::Raw => 0,
            Coder::Huffman => 1,
            Coder::Arithmetic => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            0 => Coder::Raw,
            1 => Coder::Huffman,
            2 => Coder::Arithmetic,
            other => return Err(WireError::Corrupt(format!("bad coder tag {other}"))),
        })
    }
}

/// Pipeline-stage knobs; the default is the paper's full pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireOptions {
    /// Separate literal streams per operator class (vs one mixed stream).
    pub split_streams: bool,
    /// Move-to-front coding of each stream.
    pub mtf: bool,
    /// Entropy coder for the index streams.
    pub coder: Coder,
    /// Final per-stream DEFLATE stage.
    pub deflate: bool,
}

impl Default for WireOptions {
    fn default() -> Self {
        Self {
            split_streams: true,
            mtf: true,
            coder: Coder::Huffman,
            deflate: true,
        }
    }
}

/// Bits 5-7 of the options byte are reserved for future format
/// revisions and must be zero in current-version images.
const RESERVED_OPTION_BITS: u8 = 0xE0;

impl WireOptions {
    pub(crate) fn to_byte(self) -> u8 {
        u8::from(self.split_streams)
            | (u8::from(self.mtf) << 1)
            | (self.coder.tag() << 2)
            | (u8::from(self.deflate) << 4)
    }

    pub(crate) fn from_byte(b: u8) -> Result<Self, WireError> {
        // A set reserved bit means the image was produced by a newer
        // format revision; decoding it as current-version would silently
        // misinterpret the payload, so it is malformed input here.
        if b & RESERVED_OPTION_BITS != 0 {
            cov_hit!("wire.options.reserved_bits");
            return Err(WireError::Corrupt(format!(
                "reserved wire option bits set: {b:#04x}"
            )));
        }
        cov_hit!("wire.options.ok");
        Ok(Self {
            split_streams: b & 1 != 0,
            mtf: b & 2 != 0,
            coder: Coder::from_tag((b >> 2) & 3)?,
            deflate: b & 16 != 0,
        })
    }
}

/// The result of compression: the image plus per-section accounting.
#[derive(Debug, Clone)]
pub struct WireReport {
    /// The complete compressed image.
    pub bytes: Vec<u8>,
    /// The options used.
    pub options: WireOptions,
    /// `(section key, compressed payload size)` in image order.
    pub sections: Vec<(String, usize)>,
}

impl WireReport {
    /// Total image size in bytes.
    pub fn total(&self) -> usize {
        self.bytes.len()
    }
}

/// Compresses a module with the given pipeline options.
///
/// # Errors
///
/// [`WireError`] if the module contains trees outside the operator table.
pub fn compress(module: &Module, options: WireOptions) -> Result<WireReport, WireError> {
    let _span = telemetry::span("wire.compress");
    // 1-2. Gather statement trees and patternize into streams.
    let trees: Vec<Tree> = module
        .functions
        .iter()
        .flat_map(|f| f.body.iter().cloned())
        .collect();
    let split = SplitStreams::split(&trees);
    // Per-section symbol counts, filled in as each stream is encoded
    // and published as gauges next to the byte gauges below.
    let mut section_symbols: Vec<(String, u64)> = Vec::new();

    let mut sections: Vec<(String, Vec<u8>)> = Vec::new();

    // $meta: globals and function shapes.
    let mut meta = Vec::new();
    put_uvarint(&mut meta, module.globals.len() as u64);
    for g in &module.globals {
        put_string(&mut meta, &g.name);
        put_uvarint(&mut meta, u64::from(g.size));
        put_uvarint(&mut meta, g.init.len() as u64);
        meta.extend_from_slice(&g.init);
    }
    put_uvarint(&mut meta, module.functions.len() as u64);
    for f in &module.functions {
        put_string(&mut meta, &f.name);
        put_uvarint(&mut meta, f.param_count as u64);
        put_uvarint(&mut meta, u64::from(f.frame_size));
        put_uvarint(&mut meta, f.body.len() as u64);
    }
    sections.push(("$meta".into(), meta));

    // $patterns: the operator-pattern stream.
    let mut pat_payload = Vec::new();
    encode_symbol_stream(
        &mut pat_payload,
        split.patterns.len(),
        |out, i| encode_pattern(out, &split.patterns[i]),
        &split.pattern_stream,
        options,
    )?;
    sections.push(("$patterns".into(), pat_payload));
    section_symbols.push(("$patterns".into(), split.pattern_stream.len() as u64));

    // Literal streams: per class, or one mixed stream.
    if options.split_streams {
        for (key, lits) in &split.literals {
            let mut payload = Vec::new();
            encode_literal_stream(&mut payload, lits, options)?;
            sections.push((key.clone(), payload));
            section_symbols.push((key.clone(), lits.len() as u64));
        }
    } else {
        let mut all = Vec::new();
        for tree in &trees {
            collect_literals_prefix(tree, &mut all);
        }
        let mut payload = Vec::new();
        encode_literal_stream(&mut payload, &all, options)?;
        sections.push(("$literals".into(), payload));
        section_symbols.push(("$literals".into(), all.len() as u64));
    }

    // 5. DEFLATE each stream in isolation and assemble the container.
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(options.to_byte());
    put_uvarint(&mut out, sections.len() as u64);
    let mut report_sections = Vec::with_capacity(sections.len());
    for (key, raw) in sections {
        let payload = if options.deflate {
            deflate_compress(&raw, CompressionLevel::Best)
        } else {
            raw
        };
        put_string(&mut out, &key);
        put_uvarint(&mut out, payload.len() as u64);
        report_sections.push((key, payload.len()));
        out.extend_from_slice(&payload);
    }
    if telemetry::enabled() {
        // The --stats contract: per-section byte gauges plus the
        // container framing gauge always sum to `total_bytes` exactly,
        // so the printed table can never disagree with the image.
        // Section names are per-module, so first zero every gauge a
        // previously encoded module may have left behind.
        if let Some(c) = telemetry::collector() {
            c.metrics.zero_gauges_with_prefix("wire.encode.section_bytes.");
            c.metrics.zero_gauges_with_prefix("wire.encode.section_symbols.");
        }
        let mut section_total = 0usize;
        for (key, len) in &report_sections {
            telemetry::gauge_set(&format!("wire.encode.section_bytes.{key}"), *len as u64);
            section_total += len;
        }
        for (key, symbols) in &section_symbols {
            telemetry::gauge_set(&format!("wire.encode.section_symbols.{key}"), *symbols);
        }
        telemetry::gauge_set(
            "wire.encode.container_bytes",
            (out.len() - section_total) as u64,
        );
        telemetry::gauge_set("wire.encode.total_bytes", out.len() as u64);
        telemetry::counter_add("wire.encode.modules", 1);
        telemetry::counter_add(
            "wire.encode.symbols",
            section_symbols.iter().map(|&(_, n)| n).sum(),
        );
    }
    Ok(WireReport {
        bytes: out,
        options,
        sections: report_sections,
    })
}

/// Decompresses a wire image back into the original module under the
/// default [`codecomp_core::DecodeLimits`] (historical behaviour).
///
/// # Errors
///
/// [`WireError::Corrupt`] on malformed images.
pub fn decompress(bytes: &[u8]) -> Result<Module, WireError> {
    decompress_budgeted(bytes, &Budget::default())
}

/// Batched decode telemetry: the hot loop mutates plain fields and one
/// [`DecodeStats::flush`] on success publishes everything — the old
/// per-section `counter_add` calls each paid a registry lock and a
/// name lookup inside the measured region.
#[derive(Debug, Default)]
struct DecodeStats {
    enabled: bool,
    ns_inflate: u64,
    ns_entry_table: u64,
    ns_indices: u64,
    ns_table_build: u64,
    ns_mtf: u64,
    ns_join: u64,
    symbols: u64,
    table_entries: u64,
    /// `(section key, compressed payload bytes, symbols)` in image order;
    /// `$meta` carries no symbol stream and reports 0 symbols.
    sections: Vec<(String, u64, u64)>,
}

impl DecodeStats {
    fn new() -> Self {
        DecodeStats {
            enabled: telemetry::enabled(),
            ..DecodeStats::default()
        }
    }

    #[inline]
    fn start(&self) -> Option<std::time::Instant> {
        self.enabled.then(std::time::Instant::now)
    }

    #[inline]
    fn elapsed(t: Option<std::time::Instant>) -> u64 {
        t.map_or(0, |t| t.elapsed().as_nanos() as u64)
    }

    /// Publishes the batch, mirroring the encode side's reset-and-set
    /// gauge contract: stale `wire.decode.section_*` gauges from a
    /// previously decoded module are zeroed before this module's
    /// sections are set, and `container_bytes` plus the section byte
    /// gauges sum exactly to `total_bytes`.
    fn flush(&self, total_bytes: u64) {
        // Cache stats accumulate in relaxed atomics across every
        // lookup; drain them here so hit/miss counters cost one
        // registry walk per decode instead of one per section.
        codecomp_coding::huffman::flush_decoder_cache_stats();
        codecomp_flate::inflate::flush_table_cache_stats();
        PATTERN_TABLE_CACHE.flush_stats();
        if !self.enabled {
            return;
        }
        telemetry::counter_add("wire.decode.ns.inflate", self.ns_inflate);
        telemetry::counter_add("wire.decode.ns.entry_table", self.ns_entry_table);
        telemetry::counter_add("wire.decode.ns.indices", self.ns_indices);
        telemetry::counter_add("wire.decode.ns.table_build", self.ns_table_build);
        telemetry::counter_add("wire.decode.ns.mtf", self.ns_mtf);
        telemetry::counter_add("wire.decode.ns.join", self.ns_join);
        telemetry::counter_add("wire.decode.symbols", self.symbols);
        telemetry::counter_add("wire.decode.table_entries", self.table_entries);
        if let Some(c) = telemetry::collector() {
            c.metrics.zero_gauges_with_prefix("wire.decode.section_bytes.");
            c.metrics.zero_gauges_with_prefix("wire.decode.section_symbols.");
        }
        let mut section_total = 0u64;
        for (key, bytes, symbols) in &self.sections {
            telemetry::gauge_set(&format!("wire.decode.section_bytes.{key}"), *bytes);
            telemetry::gauge_set(&format!("wire.decode.section_symbols.{key}"), *symbols);
            section_total += bytes;
        }
        telemetry::gauge_set(
            "wire.decode.container_bytes",
            total_bytes.saturating_sub(section_total),
        );
        telemetry::gauge_set("wire.decode.total_bytes", total_bytes);
    }
}

/// A decoded `$patterns` section: the interned pattern table plus the
/// per-statement symbol stream, with the admission facts a cold decode
/// checked so cache hits replay the same budget decisions.
#[derive(Debug)]
struct PatternTable {
    patterns: Vec<TreePattern>,
    stream: Vec<u32>,
    /// Deepest `check_pattern_depth` argument the cold decode issued.
    max_depth: u32,
}

/// The pattern table *is* a decode structure — the symbol table the
/// tree stream indexes into — so it is interned like a Huffman table,
/// keyed by the options byte plus the exact inflated section payload:
/// equal payloads decode to equal tables. Demand loaders re-decode the
/// same per-function images repeatedly and hit this on every call
/// after the first.
static PATTERN_TABLE_CACHE: codecomp_coding::cache::DescCache<PatternTable> =
    codecomp_coding::cache::DescCache::new("wire.patterns.table_cache", 64);

/// Empties the pattern-table cache (test hook for cold-cache runs).
pub fn clear_pattern_table_cache() {
    PATTERN_TABLE_CACHE.clear();
}

/// Starts a new pattern-table cache generation: O(1) lazy invalidation
/// of every interned table. The fuzz campaign's per-case reset.
pub fn bump_pattern_table_cache_generation() {
    PATTERN_TABLE_CACHE.bump_generation();
}

/// Depth of the deepest node, counted the way `decode_pattern_node`
/// counts it (root at 0).
fn pattern_depth(p: &TreePattern) -> u32 {
    p.kids.iter().map(pattern_depth).max().map_or(0, |d| d + 1)
}

/// The decoded pattern table for a `$patterns` payload, interning it
/// on first sight.
///
/// A cache hit replays exactly the admission checks and fuel charges
/// the cold decode issued against `budget` — table entries, pattern
/// depth, stream symbols, and (for the arithmetic coder) the model
/// alphabet — so a tight budget rejects a hot table the same way it
/// rejects a cold one.
fn cached_pattern_table(
    payload: &[u8],
    options: WireOptions,
    budget: &Budget,
    stats: &mut DecodeStats,
) -> Result<std::sync::Arc<PatternTable>, WireError> {
    let mut key = Vec::with_capacity(1 + payload.len());
    key.push(options.to_byte());
    key.extend_from_slice(payload);
    let mut was_cold = false;
    let table = PATTERN_TABLE_CACHE.get_or_build(&key, || {
        was_cold = true;
        cov_hit!("wire.patterns.cold");
        let mut pc = Cursor::new(payload);
        let (patterns, stream) = decode_symbol_stream(&mut pc, options, budget, stats, |c| {
            decode_pattern(c, budget)
        })?;
        let max_depth = patterns.iter().map(pattern_depth).max().unwrap_or(0);
        Ok::<_, WireError>(PatternTable {
            patterns,
            stream,
            max_depth,
        })
    })?;
    if !was_cold {
        cov_hit!("wire.patterns.warm");
        budget.check_table_entries(table.patterns.len() as u64)?;
        budget.charge_fuel(table.patterns.len() as u64)?;
        if !table.patterns.is_empty() {
            budget.check_pattern_depth(table.max_depth)?;
        }
        if !table.stream.is_empty() {
            budget.check_stream_symbols(table.stream.len() as u64)?;
            budget.charge_fuel(table.stream.len() as u64)?;
            if options.coder == Coder::Arithmetic {
                let alphabet = if options.mtf {
                    table.patterns.len() + 1
                } else {
                    table.patterns.len()
                };
                budget.check_table_entries(alphabet.max(1) as u64)?;
            }
        }
        stats.symbols += table.stream.len() as u64;
        stats.table_entries += table.patterns.len() as u64;
    }
    Ok(table)
}

/// Reads one framed section (key, length, payload) at the cursor and
/// inflates its payload.
fn read_section<'a>(
    c: &mut Cursor<'a>,
    options: WireOptions,
    budget: &Budget,
    stats: &mut DecodeStats,
) -> Result<(String, Vec<u8>, u64), WireError> {
    let _prof = profile::scope("frame");
    let key = c.string()?;
    let len = c.usize_varint()?;
    let payload = c.take(len)?;
    let t = stats.start();
    let raw = if options.deflate {
        cov_hit!("wire.section.deflated");
        let _prof = profile::scope("inflate");
        inflate_budgeted(payload, budget)?
    } else {
        cov_hit!("wire.section.raw");
        budget.check_output_bytes(payload.len() as u64)?;
        payload.to_vec()
    };
    stats.ns_inflate += DecodeStats::elapsed(t);
    Ok((key, raw, len as u64))
}

/// Budget-governed [`decompress`]: every stage — section DEFLATE,
/// stream symbol counts, table sizes, pattern nesting, decode fuel —
/// is checked against `budget`, and usage high-water marks are
/// recorded on it.
///
/// Decoding is single-pass over the container framing: each section is
/// inflated and handed straight to its stream decoder as the cursor
/// reaches it, with no intermediate `(key, payload)` section list.
///
/// # Errors
///
/// [`WireError::Limit`] when a budget knob trips (never misreported as
/// `Corrupt`); otherwise as [`decompress`].
pub fn decompress_budgeted(bytes: &[u8], budget: &Budget) -> Result<Module, WireError> {
    let _span = telemetry::span("wire.decompress");
    let _prof = profile::scope("wire.decode");
    telemetry::counter_add("wire.decode.modules", 1);
    telemetry::counter_add("wire.decode.input_bytes", bytes.len() as u64);
    let mut stats = DecodeStats::new();
    let mut c = Cursor::new(bytes);
    if c.take(4)? != MAGIC {
        cov_hit!("wire.magic.bad");
        return Err(WireError::Corrupt("bad magic".into()));
    }
    cov_hit!("wire.magic.ok");
    let options = WireOptions::from_byte(c.u8()?)?;
    let n_sections = c.usize_varint()?;

    // Section 1: $meta — globals and function shapes.
    if n_sections == 0 {
        cov_hit!("wire.meta.missing");
        return Err(WireError::Corrupt("missing $meta".into()));
    }
    let (meta_key, meta, meta_len) = read_section(&mut c, options, budget, &mut stats)?;
    if meta_key != "$meta" {
        cov_hit!("wire.meta.wrong_key");
        return Err(WireError::Corrupt("first section is not $meta".into()));
    }
    cov_hit!("wire.meta.ok");
    if stats.enabled {
        stats.sections.push((meta_key, meta_len, 0));
    }
    let mut mc = Cursor::new(&meta);
    let nglobals = mc.usize_varint()?;
    budget.check_table_entries(nglobals as u64)?;
    budget.charge_fuel(nglobals as u64)?;
    let mut globals = Vec::with_capacity(nglobals.min(mc.remaining() / 3));
    for _ in 0..nglobals {
        let name = mc.string()?;
        let size = u32::try_from(mc.uvarint()?)
            .map_err(|_| WireError::Corrupt("global size out of range".into()))?;
        let init_len = mc.usize_varint()?;
        globals.push(Global {
            name,
            size,
            init: mc.take(init_len)?.to_vec(),
        });
    }
    let nfuncs = mc.usize_varint()?;
    budget.check_table_entries(nfuncs as u64)?;
    budget.charge_fuel(nfuncs as u64)?;
    let mut func_meta = Vec::with_capacity(nfuncs.min(mc.remaining() / 4));
    for _ in 0..nfuncs {
        let name = mc.string()?;
        let params = mc.usize_varint()?;
        let frame = u32::try_from(mc.uvarint()?)
            .map_err(|_| WireError::Corrupt("frame size out of range".into()))?;
        let stmts = mc.usize_varint()?;
        func_meta.push((name, params, frame, stmts));
    }

    // Section 2: $patterns — the operator-pattern stream.
    if n_sections == 1 {
        cov_hit!("wire.patterns.missing");
        return Err(WireError::Corrupt("missing $patterns".into()));
    }
    let (pat_key, pat_raw, pat_len) = read_section(&mut c, options, budget, &mut stats)?;
    if pat_key != "$patterns" {
        cov_hit!("wire.patterns.wrong_key");
        return Err(WireError::Corrupt("second section is not $patterns".into()));
    }
    let table = cached_pattern_table(&pat_raw, options, budget, &mut stats)?;
    if stats.enabled {
        stats
            .sections
            .push((pat_key, pat_len, table.stream.len() as u64));
    }

    // Remaining sections: literal streams, decoded as they are framed.
    let mut literal_sections: Vec<(String, Vec<Literal>)> =
        Vec::with_capacity((n_sections - 2).min(c.remaining() / 2));
    for _ in 2..n_sections {
        let (key, raw, len) = read_section(&mut c, options, budget, &mut stats)?;
        let mut lc = Cursor::new(&raw);
        let lits = decode_literal_stream(&mut lc, options, budget, &mut stats)?;
        if stats.enabled {
            stats.sections.push((key.clone(), len, lits.len() as u64));
        }
        literal_sections.push((key, lits));
    }
    if c.remaining() != 0 {
        cov_hit!("wire.trailing_bytes");
        return Err(WireError::Corrupt(
            "trailing bytes after last section".into(),
        ));
    }

    // Rebuild trees against the (possibly shared) pattern table.
    let _prof_join = profile::scope("join");
    let t_join = stats.start();
    let trees: Vec<Tree> = if options.split_streams {
        cov_hit!("wire.join.split");
        SplitStreams::join_parts(
            &table.patterns,
            &table.stream,
            literal_sections.into_iter().collect(),
        )?
    } else {
        cov_hit!("wire.join.mixed");
        let (_, all) = literal_sections
            .into_iter()
            .next()
            .ok_or_else(|| WireError::Corrupt("missing $literals".into()))?;
        let mut queue = all.into_iter();
        let mut trees = Vec::with_capacity(table.stream.len());
        for &sym in &table.stream {
            let pat = table
                .patterns
                .get(sym as usize)
                .ok_or_else(|| WireError::Corrupt(format!("bad pattern symbol {sym}")))?;
            let tree = pat.rebuild_slots(&mut || {
                queue
                    .next()
                    .ok_or_else(|| codecomp_core::CoreError::StreamUnderflow("literals".into()))
            })?;
            trees.push(tree);
        }
        trees
    };
    stats.ns_join += DecodeStats::elapsed(t_join);
    drop(_prof_join);

    // Slice trees into functions.
    let mut module = Module {
        globals,
        functions: Vec::new(),
    };
    let mut trees = trees.into_iter();
    let mut remaining = trees.len();
    for (name, params, frame, stmts) in func_meta {
        // `stmts` is attacker-controlled; compare against what is left,
        // never `cursor + stmts`, which could overflow.
        if stmts > remaining {
            cov_hit!("wire.functions.stmt_overrun");
            return Err(WireError::Corrupt(
                "statement count overruns tree stream".into(),
            ));
        }
        let mut f = Function::new(name, params, frame);
        f.body = trees.by_ref().take(stmts).collect();
        remaining -= stmts;
        module.functions.push(f);
    }
    if remaining != 0 {
        cov_hit!("wire.functions.trailing_trees");
        return Err(WireError::Corrupt(
            "trailing trees after last function".into(),
        ));
    }
    cov_hit!("wire.decode.ok");
    stats.flush(bytes.len() as u64);
    Ok(module)
}

// ---- pattern (de)serialization ---------------------------------------------

fn encode_pattern(out: &mut Vec<u8>, pat: &TreePattern) -> Result<(), WireError> {
    put_uvarint(out, pat.node_count() as u64);
    fn emit(out: &mut Vec<u8>, p: &TreePattern) -> Result<(), WireError> {
        out.push(byte_for_op(p.op, p.width)?);
        for k in &p.kids {
            emit(out, k)?;
        }
        Ok(())
    }
    emit(out, pat)
}

fn decode_pattern(c: &mut Cursor<'_>, budget: &Budget) -> Result<TreePattern, WireError> {
    let count = c.usize_varint()?;
    let (pat, used) = decode_pattern_node(c, 0, budget)?;
    if used != count {
        cov_hit!("wire.pattern.count_mismatch");
        return Err(WireError::Corrupt(format!(
            "pattern node count mismatch: header {count}, actual {used}"
        )));
    }
    Ok(pat)
}

fn decode_pattern_node(
    c: &mut Cursor<'_>,
    depth: u32,
    budget: &Budget,
) -> Result<(TreePattern, usize), WireError> {
    // Bounds stack use against hand-crafted deeply-nested inputs.
    budget.check_pattern_depth(depth)?;
    let byte = c.u8()?;
    let Some(desc) = desc_for_byte(byte) else {
        cov_hit!("wire.pattern.unknown_op");
        return Err(WireError::Corrupt(format!("unknown operator byte {byte}")));
    };
    cov_hit!("wire.pattern.node");
    let (op, width) = desc_to_op(desc);
    let arity = match op.opcode {
        Opcode::Ret => usize::from(op.ty != codecomp_ir::op::IrType::V),
        other => other.arity().expect("only RET is variable"),
    };
    let mut kids = Vec::with_capacity(arity);
    let mut used = 1usize;
    for _ in 0..arity {
        let (k, n) = decode_pattern_node(c, depth + 1, budget)?;
        used += n;
        kids.push(k);
    }
    let has_literal = op.opcode.literal_kind() != codecomp_ir::op::LiteralKind::None;
    Ok((
        TreePattern {
            op,
            width,
            has_literal,
            kids,
        },
        used,
    ))
}

// ---- literal (de)serialization ----------------------------------------------

fn encode_literal(out: &mut Vec<u8>, lit: &Literal) {
    match lit {
        Literal::Int(v) => {
            out.push(0);
            put_ivarint(out, *v);
        }
        Literal::Offset(v) => {
            out.push(1);
            put_ivarint(out, i64::from(*v));
        }
        Literal::Label(v) => {
            out.push(2);
            put_uvarint(out, u64::from(*v));
        }
        Literal::Symbol(s) => {
            out.push(3);
            put_string(out, s);
        }
    }
}

fn decode_literal(c: &mut Cursor<'_>) -> Result<Literal, WireError> {
    Ok(match c.u8()? {
        0 => {
            cov_hit!("wire.literal.int");
            Literal::Int(c.ivarint()?)
        }
        1 => {
            cov_hit!("wire.literal.offset");
            Literal::Offset(
                i32::try_from(c.ivarint()?)
                    .map_err(|_| WireError::Corrupt("offset out of range".into()))?,
            )
        }
        2 => {
            cov_hit!("wire.literal.label");
            Literal::Label(
                u32::try_from(c.uvarint()?)
                    .map_err(|_| WireError::Corrupt("label out of range".into()))?,
            )
        }
        3 => {
            cov_hit!("wire.literal.symbol");
            Literal::Symbol(c.string()?)
        }
        other => {
            cov_hit!("wire.literal.bad_tag");
            return Err(WireError::Corrupt(format!("bad literal tag {other}")));
        }
    })
}

fn collect_literals_prefix(tree: &Tree, out: &mut Vec<Literal>) {
    if let Some(l) = tree.literal() {
        out.push(l.clone());
    }
    for k in tree.kids() {
        collect_literals_prefix(k, out);
    }
}

// ---- generic symbol-stream coding --------------------------------------------

/// Encodes a stream of occurrences over a first-occurrence-ordered table.
///
/// `table_len` entries are written with `write_entry`; `occurrences` are
/// indices into that table in program order.
fn encode_symbol_stream(
    out: &mut Vec<u8>,
    table_len: usize,
    mut write_entry: impl FnMut(&mut Vec<u8>, usize) -> Result<(), WireError>,
    occurrences: &[u32],
    options: WireOptions,
) -> Result<(), WireError> {
    put_uvarint(out, table_len as u64);
    for i in 0..table_len {
        write_entry(out, i)?;
    }
    let (indices, alphabet) = if options.mtf {
        // The paper's MTF variant: index 0 denotes a first occurrence.
        // Occurrence values are first-occurrence-ordered table indices,
        // so the MTF side table is the identity and is not transmitted.
        let enc = mtf_encode(occurrences);
        debug_assert!(enc.table.iter().copied().eq(0..table_len as u32));
        (enc.indices, table_len + 1)
    } else {
        (occurrences.to_vec(), table_len)
    };
    encode_indices(out, &indices, alphabet.max(1), options.coder)
}

fn decode_symbol_stream<T>(
    c: &mut Cursor<'_>,
    options: WireOptions,
    budget: &Budget,
    stats: &mut DecodeStats,
    mut read_entry: impl FnMut(&mut Cursor<'_>) -> Result<T, WireError>,
) -> Result<(Vec<T>, Vec<u32>), WireError> {
    let table_len = c.usize_varint()?;
    budget.check_table_entries(table_len as u64)?;
    budget.charge_fuel(table_len as u64)?;
    let t_table = stats.start();
    let mut table = Vec::with_capacity(table_len.min(c.remaining()));
    {
        let _prof = profile::scope("tables");
        for _ in 0..table_len {
            table.push(read_entry(c)?);
        }
    }
    stats.ns_entry_table += DecodeStats::elapsed(t_table);
    let alphabet = if options.mtf {
        table_len + 1
    } else {
        table_len
    };
    let t_idx = stats.start();
    let indices = {
        let _prof = profile::scope("huffman");
        decode_indices(c, alphabet.max(1), options.coder, budget, stats)?
    };
    stats.ns_indices += DecodeStats::elapsed(t_idx);
    let _prof_mtf = profile::scope("mtf");
    let t_mtf = stats.start();
    let occurrences = if options.mtf {
        cov_hit!("wire.stream.mtf");
        // Occurrence values are first-occurrence table indices, so the
        // MTF side table is the identity and the batched array decoder
        // applies.
        let Some(occ) = mtf_decode_identity(&indices, table_len) else {
            cov_hit!("wire.stream.bad_mtf_index");
            return Err(WireError::Corrupt("bad MTF index".into()));
        };
        occ
    } else {
        cov_hit!("wire.stream.direct");
        indices
    };
    stats.ns_mtf += DecodeStats::elapsed(t_mtf);
    drop(_prof_mtf);
    if occurrences.iter().any(|&o| o as usize >= table_len) && !occurrences.is_empty() {
        cov_hit!("wire.stream.occurrence_overflow");
        return Err(WireError::Corrupt("occurrence beyond table".into()));
    }
    stats.symbols += occurrences.len() as u64;
    stats.table_entries += table_len as u64;
    Ok((table, occurrences))
}

fn encode_literal_stream(
    out: &mut Vec<u8>,
    lits: &[Literal],
    options: WireOptions,
) -> Result<(), WireError> {
    // Build the first-occurrence table.
    let mut table: Vec<Literal> = Vec::new();
    let mut occurrences = Vec::with_capacity(lits.len());
    for l in lits {
        let idx = match table.iter().position(|t| t == l) {
            Some(i) => i,
            None => {
                table.push(l.clone());
                table.len() - 1
            }
        };
        occurrences.push(idx as u32);
    }
    encode_symbol_stream(
        out,
        table.len(),
        |o, i| {
            encode_literal(o, &table[i]);
            Ok(())
        },
        &occurrences,
        options,
    )
}

fn decode_literal_stream(
    c: &mut Cursor<'_>,
    options: WireOptions,
    budget: &Budget,
    stats: &mut DecodeStats,
) -> Result<Vec<Literal>, WireError> {
    let (table, occurrences) = decode_symbol_stream(c, options, budget, stats, decode_literal)?;
    occurrences
        .into_iter()
        .map(|o| {
            table
                .get(o as usize)
                .cloned()
                .ok_or_else(|| WireError::Corrupt("occurrence beyond table".into()))
        })
        .collect()
}

// ---- index coding ---------------------------------------------------------------

fn encode_indices(
    out: &mut Vec<u8>,
    indices: &[u32],
    alphabet: usize,
    coder: Coder,
) -> Result<(), WireError> {
    put_uvarint(out, indices.len() as u64);
    if indices.is_empty() {
        return Ok(());
    }
    match coder {
        Coder::Raw => {
            for &i in indices {
                put_uvarint(out, u64::from(i));
            }
        }
        Coder::Huffman => {
            let mut freqs = vec![0u64; alphabet];
            for &i in indices {
                freqs[i as usize] += 1;
            }
            let enc = HuffmanEncoder::from_frequencies(&freqs, 15)?;
            out.extend_from_slice(enc.lengths());
            debug_assert_eq!(enc.lengths().len(), alphabet);
            let bits = enc.encode_symbols(indices.iter().map(|&i| i as usize))?;
            put_uvarint(out, bits.len() as u64);
            out.extend_from_slice(&bits);
        }
        Coder::Arithmetic => {
            let mut model = AdaptiveModel::new(alphabet);
            let mut enc = ArithEncoder::new();
            for &i in indices {
                let (lo, hi) = model.bounds(i as usize)?;
                enc.encode(lo, hi, model.total())?;
                model.update(i as usize)?;
            }
            let bytes = enc.finish();
            put_uvarint(out, bytes.len() as u64);
            out.extend_from_slice(&bytes);
        }
    }
    Ok(())
}

fn decode_indices(
    c: &mut Cursor<'_>,
    alphabet: usize,
    coder: Coder,
    budget: &Budget,
    stats: &mut DecodeStats,
) -> Result<Vec<u32>, WireError> {
    let count = c.usize_varint()?;
    if count == 0 {
        cov_hit!("wire.indices.empty");
        return Ok(Vec::new());
    }
    // An attacker-supplied count above the stream-symbol ceiling is
    // rejected before any decode work happens; the adaptive arithmetic
    // coder can represent near-zero bits per symbol, so without this
    // cap a tiny payload could demand unbounded decode effort.
    budget.check_stream_symbols(count as u64)?;
    budget.charge_fuel(count as u64)?;
    match coder {
        Coder::Raw => {
            cov_hit!("wire.indices.raw");
            let mut out = Vec::with_capacity(count.min(c.remaining()));
            for _ in 0..count {
                out.push(
                    u32::try_from(c.uvarint()?)
                        .map_err(|_| WireError::Corrupt("index out of range".into()))?,
                );
            }
            Ok(out)
        }
        Coder::Huffman => {
            cov_hit!("wire.indices.huffman");
            let lengths = c.take(alphabet)?;
            let nbytes = c.usize_varint()?;
            let bits = c.take(nbytes)?;
            let t_build = stats.start();
            // The length vector keys a process-wide decoder cache, so a
            // code description seen in any earlier section (or module)
            // skips the table build entirely.
            let dec = cached_decoder(lengths)?;
            stats.ns_table_build += DecodeStats::elapsed(t_build);
            // Table-driven bulk decode: two-level lookup against a
            // 64-bit reservoir instead of a bit-walk per symbol.
            let out = dec.decode_exact(bits, count)?;
            Ok(out.into_iter().map(|s| s as u32).collect())
        }
        Coder::Arithmetic => {
            cov_hit!("wire.indices.arith");
            let nbytes = c.usize_varint()?;
            let bytes = c.take(nbytes)?;
            let mut model = AdaptiveModel::with_budget(alphabet, budget)?;
            let mut dec = ArithDecoder::new(bytes)?;
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                let point = dec.decode_point(model.total())?;
                let (sym, lo, hi) = model.locate(point)?;
                dec.consume(lo, hi, model.total())?;
                model.update(sym)?;
                out.push(sym as u32);
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codecomp_front::compile;

    fn sample_module() -> Module {
        compile(
            "int data[16];
             int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
             int main() {
                 int i;
                 int s = 0;
                 for (i = 0; i < 16; i++) { data[i] = fib(i % 10); s += data[i]; }
                 print_int(s);
                 return s;
             }",
        )
        .unwrap()
    }

    #[test]
    fn default_pipeline_roundtrips() {
        let m = sample_module();
        let packed = compress(&m, WireOptions::default()).unwrap();
        assert_eq!(decompress(&packed.bytes).unwrap(), m);
    }

    #[test]
    fn all_option_combinations_roundtrip() {
        let m = sample_module();
        for split in [true, false] {
            for mtf in [true, false] {
                for coder in [Coder::Raw, Coder::Huffman, Coder::Arithmetic] {
                    for deflate in [true, false] {
                        let options = WireOptions {
                            split_streams: split,
                            mtf,
                            coder,
                            deflate,
                        };
                        let packed = compress(&m, options).unwrap();
                        assert_eq!(
                            decompress(&packed.bytes).unwrap(),
                            m,
                            "roundtrip failed for {options:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn compresses_below_uncompressed_binary() {
        // Per-stream overheads dominate on tiny inputs (the paper sees
        // the same small-input loss), so use a realistically sized
        // program: many functions with the usual idioms.
        let mut src = String::from("int acc;\n");
        for i in 0..40 {
            src.push_str(&format!(
                "int work{i}(int a, int b) {{
                     int s = 0; int j;
                     for (j = a; j < b; j++) {{ s += j * {i}; acc += s % 7; }}
                     if (s > 100) return s - b; else return s + a;
                 }}\n"
            ));
        }
        src.push_str("int main() { return work3(1, 5) + work7(2, 9); }");
        let m = compile(&src).unwrap();
        let packed = compress(&m, WireOptions::default()).unwrap();
        let uncompressed = codecomp_ir::binary::encode_module(&m).unwrap().len();
        assert!(
            packed.total() < uncompressed / 2,
            "wire {} should be well below raw {}",
            packed.total(),
            uncompressed
        );
    }

    #[test]
    fn sections_report_accounts_for_image() {
        let m = sample_module();
        let packed = compress(&m, WireOptions::default()).unwrap();
        assert_eq!(packed.sections[0].0, "$meta");
        assert_eq!(packed.sections[1].0, "$patterns");
        let payload_total: usize = packed.sections.iter().map(|(_, n)| n).sum();
        assert!(payload_total < packed.total());
        assert!(packed
            .sections
            .iter()
            .any(|(k, _)| k == "ADDRLP8" || k == "CNSTC"));
    }

    #[test]
    fn empty_module_roundtrips() {
        let m = Module::new();
        let packed = compress(&m, WireOptions::default()).unwrap();
        assert_eq!(decompress(&packed.bytes).unwrap(), m);
    }

    #[test]
    fn corrupt_images_rejected() {
        let m = sample_module();
        let packed = compress(&m, WireOptions::default()).unwrap();
        assert!(decompress(&packed.bytes[..10]).is_err());
        let mut bad = packed.bytes.clone();
        bad[0] = b'X';
        assert!(decompress(&bad).is_err());
        // Flipping a payload byte must not roundtrip silently to a
        // different module without erroring in most cases; at minimum it
        // must not panic.
        for i in (5..packed.bytes.len()).step_by(7) {
            let mut bad = packed.bytes.clone();
            bad[i] ^= 0x5A;
            let _ = decompress(&bad);
        }
    }

    #[test]
    fn reserved_option_bits_rejected() {
        // Every value with any of bits 5-7 set is a future-revision
        // marker and must not decode as a current-version options byte.
        for b in 0u8..=255 {
            let parsed = WireOptions::from_byte(b);
            if b & 0xE0 != 0 {
                assert!(parsed.is_err(), "byte {b:#04x} should be rejected");
            }
        }
        // A whole image with a reserved bit set is malformed, even when
        // the rest of the image is a valid current-version module.
        let m = sample_module();
        let mut packed = compress(&m, WireOptions::default()).unwrap().bytes;
        assert_eq!(packed[4] & 0xE0, 0, "encoder must not emit reserved bits");
        packed[4] |= 0x80;
        match decompress(&packed) {
            Err(WireError::Corrupt(msg)) => assert!(msg.contains("reserved")),
            other => panic!("expected Corrupt(reserved ...), got {other:?}"),
        }
    }

    #[test]
    fn options_byte_roundtrip() {
        for split in [true, false] {
            for mtf in [true, false] {
                for coder in [Coder::Raw, Coder::Huffman, Coder::Arithmetic] {
                    for deflate in [true, false] {
                        let o = WireOptions {
                            split_streams: split,
                            mtf,
                            coder,
                            deflate,
                        };
                        assert_eq!(WireOptions::from_byte(o.to_byte()).unwrap(), o);
                    }
                }
            }
        }
    }
}
