//! Wire-format edge cases: degenerate modules and hostile containers.

use codecomp_front::compile;
use codecomp_ir::Module;
use codecomp_wire::{compress, decompress, WireOptions};

#[test]
fn empty_module_roundtrips() {
    let module = Module::new();
    let packed = compress(&module, WireOptions::default()).unwrap();
    assert_eq!(decompress(&packed.bytes).unwrap(), module);
}

#[test]
fn zero_function_module_with_globals_roundtrips() {
    // Globals only; the function-count field is zero on the wire.
    let module = compile("int g = 5; char buf[16]; int zeros[4];").unwrap();
    assert!(module.functions.is_empty());
    let packed = compress(&module, WireOptions::default()).unwrap();
    assert_eq!(decompress(&packed.bytes).unwrap(), module);
}

#[test]
fn empty_input_rejected() {
    assert!(decompress(&[]).is_err());
}

#[test]
fn bad_magic_rejected() {
    let module = Module::new();
    let mut bytes = compress(&module, WireOptions::default()).unwrap().bytes;
    bytes[0] ^= 0xFF;
    assert!(decompress(&bytes).is_err());
}

#[test]
fn every_prefix_of_a_real_image_rejected() {
    let module = compile("int main() { return 40 + 2; }").unwrap();
    let bytes = compress(&module, WireOptions::default()).unwrap().bytes;
    for len in 0..bytes.len() {
        assert!(decompress(&bytes[..len]).is_err(), "prefix {len} accepted");
    }
}
