//! Property tests for [`DescCache`]: seeded random op sequences must
//! uphold the cache's three contracts no matter how lookups, failed
//! builds, generation bumps, and clears interleave.
//!
//! 1. *Soundness*: a lookup never serves a wrong table (the value always
//!    equals what a fresh build of that key would produce) and never
//!    serves an entry interned under an older generation.
//! 2. *No failure residue*: a build that returns `Err` leaves the cache
//!    exactly as it was — the next lookup of that key rebuilds.
//! 3. *Eviction keeps the newest*: overflowing the capacity drops the
//!    least-recently-used half; the most recent accesses survive.

use std::sync::Arc;

use codecomp_coding::cache::DescCache;
use codecomp_core::fault::XorShift64;

/// The "table" under test: remembers the key it was built from and a
/// build serial, so a hit is distinguishable from a rebuild.
#[derive(Debug, PartialEq)]
struct Table {
    key: Vec<u8>,
    serial: u64,
}

/// Looks `key` up, building on a miss; returns the table and whether
/// the builder ran (`true` = miss).
fn lookup(cache: &DescCache<Table>, key: &[u8], serial: u64) -> (Arc<Table>, bool) {
    let mut built = false;
    let table = cache
        .get_or_build(key, || {
            built = true;
            Ok::<_, ()>(Table {
                key: key.to_vec(),
                serial,
            })
        })
        .expect("successful build");
    (table, built)
}

#[test]
fn random_ops_never_serve_wrong_or_stale_tables() {
    const KEYS: u64 = 24;
    const CAPACITY: usize = 16;
    for seed in 1..=4u64 {
        let cache: DescCache<Table> = DescCache::new("test.props.ops", CAPACITY);
        let mut rng = XorShift64::new(0xD15C_CAFE ^ seed);
        // Generation each key's live entry was interned under, if any.
        let mut interned_gen: Vec<Option<u64>> = vec![None; KEYS as usize];
        let mut generation = 0u64;
        let mut serial = 0u64;
        for _ in 0..2_000 {
            match rng.below(100) {
                // Successful lookup.
                0..=69 => {
                    let k = rng.below(KEYS);
                    let key = [k as u8, 0xAB];
                    serial += 1;
                    let (table, built) = lookup(&cache, &key, serial);
                    assert_eq!(table.key, key, "cache served a table for the wrong key");
                    if !built {
                        // A hit must come from the current generation.
                        assert_eq!(
                            interned_gen[k as usize],
                            Some(generation),
                            "cache served a stale-generation entry for key {k}"
                        );
                    }
                    interned_gen[k as usize] = Some(generation);
                }
                // Failed build: either a hit on a live entry (the
                // builder never runs) or an error with no residue.
                70..=79 => {
                    let k = rng.below(KEYS);
                    let key = [k as u8, 0xAB];
                    let before = cache.len();
                    match cache.get_or_build(&key, || Err::<Table, ()>(())) {
                        Ok(table) => {
                            // Only reachable as a hit on a live entry.
                            assert_eq!(table.key, key);
                            assert_eq!(
                                interned_gen[k as usize],
                                Some(generation),
                                "failed-build lookup hit a stale entry for key {k}"
                            );
                        }
                        Err(()) => {
                            // No insert; at most this key's stale
                            // carcass was dropped.
                            assert!(cache.len() <= before, "failed build grew the cache");
                            interned_gen[k as usize] = None;
                        }
                    }
                }
                // Generation bump: everything goes logically invisible.
                80..=89 => {
                    cache.bump_generation();
                    generation += 1;
                    assert_eq!(cache.generation(), generation);
                    assert_eq!(cache.live_len(), 0, "bump left live entries");
                }
                // Clear: everything goes physically.
                _ => {
                    cache.clear();
                    assert!(cache.is_empty());
                    interned_gen.iter_mut().for_each(|g| *g = None);
                }
            }
            assert!(
                cache.len() <= CAPACITY,
                "cache exceeded capacity: {}",
                cache.len()
            );
            assert!(cache.live_len() <= cache.len());
        }
    }
}

#[test]
fn failed_builds_never_cached_under_random_interleaving() {
    let cache: DescCache<Table> = DescCache::new("test.props.fail", 8);
    let mut rng = XorShift64::new(0xFA11_FA11);
    let mut serial = 0u64;
    let mut failures_exercised = 0u32;
    for _ in 0..500 {
        // Bump occasionally so live entries go stale and the failure
        // path actually runs (a live hit never reaches the builder).
        if rng.chance(1, 4) {
            cache.bump_generation();
        }
        let key = [rng.below(6) as u8];
        if rng.chance(1, 2) {
            let res = cache.get_or_build(&key, || Err::<Table, ()>(()));
            if res.is_err() {
                failures_exercised += 1;
                // The failure left nothing behind: the next successful
                // lookup of this key must run the builder.
                serial += 1;
                let (_, built) = lookup(&cache, &key, serial);
                assert!(built, "lookup hit a slot left by a failed build");
            }
        } else {
            serial += 1;
            lookup(&cache, &key, serial);
        }
    }
    assert!(
        failures_exercised > 50,
        "failure path barely exercised: {failures_exercised}"
    );
}

#[test]
fn eviction_keeps_the_most_recent_accesses() {
    const CAPACITY: usize = 8;
    for seed in 1..=8u64 {
        let cache: DescCache<Table> = DescCache::new("test.props.evict", CAPACITY);
        let mut rng = XorShift64::new(0xE71C_7000 ^ seed);
        // Fill to capacity, then touch a random subset to refresh their
        // stamps, recording the access order (most recent last).
        let mut order: Vec<u8> = Vec::new();
        let touch = |order: &mut Vec<u8>, k: u8| {
            order.retain(|&x| x != k);
            order.push(k);
        };
        let mut serial = 0u64;
        for k in 0..CAPACITY as u8 {
            serial += 1;
            lookup(&cache, &[k], serial);
            touch(&mut order, k);
        }
        for _ in 0..5 {
            let k = rng.below(CAPACITY as u64) as u8;
            serial += 1;
            lookup(&cache, &[k], serial);
            touch(&mut order, k);
        }
        // Overflow: the insert makes capacity + 1 entries, and the LRU
        // sweep keeps only those *newer* than the median stamp — the
        // newest floor((capacity + 1) / 2) accesses.
        serial += 1;
        lookup(&cache, &[0xFF], serial);
        touch(&mut order, 0xFF);
        assert!(cache.len() <= CAPACITY / 2 + 1, "eviction kept too much");
        let survivors = (CAPACITY + 1) / 2;
        for &k in order.iter().rev().take(survivors) {
            serial += 1;
            let (_, built) = lookup(&cache, &[k], serial);
            assert!(
                !built,
                "recently-used key {k} was evicted (seed {seed}, order {order:?})"
            );
        }
    }
}
