//! Property-based tests for the entropy-coding substrate.

use codecomp_coding::arith::{compress_bytes_adaptive, decompress_bytes_adaptive};
use codecomp_coding::bits::{BitReader, BitWriter, LsbBitReader, LsbBitWriter};
use codecomp_coding::huffman::{HuffmanDecoder, HuffmanEncoder};
use codecomp_coding::model::ContextModel;
use codecomp_coding::mtf::{mtf_decode, mtf_decode_classic, mtf_encode, mtf_encode_classic};
use proptest::prelude::*;

proptest! {
    #[test]
    fn msb_bits_roundtrip(chunks in prop::collection::vec((any::<u64>(), 1u8..=64), 0..64)) {
        let mut w = BitWriter::new();
        for &(v, n) in &chunks {
            w.write_bits(v & (u64::MAX >> (64 - n)), n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &chunks {
            prop_assert_eq!(r.read_bits(n).unwrap(), v & (u64::MAX >> (64 - n)));
        }
    }

    #[test]
    fn lsb_bits_roundtrip(chunks in prop::collection::vec((any::<u32>(), 0u8..=24), 0..64)) {
        let mut w = LsbBitWriter::new();
        for &(v, n) in &chunks {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = LsbBitReader::new(&bytes);
        for &(v, n) in &chunks {
            let mask = if n == 0 { 0 } else { u32::MAX >> (32 - n) };
            prop_assert_eq!(r.read_bits(n).unwrap(), v & mask);
        }
    }

    #[test]
    fn huffman_roundtrip(data in prop::collection::vec(0usize..64, 1..512)) {
        let mut freqs = vec![0u64; 64];
        for &s in &data {
            freqs[s] += 1;
        }
        let enc = HuffmanEncoder::from_frequencies(&freqs, 15).unwrap();
        let bits = enc.encode_symbols(data.iter().copied()).unwrap();
        let dec = HuffmanDecoder::from_lengths(enc.lengths()).unwrap();
        prop_assert_eq!(dec.decode_exact(&bits, data.len()).unwrap(), data);
    }

    #[test]
    fn huffman_length_limited_roundtrip(data in prop::collection::vec(0usize..200, 1..512)) {
        let mut freqs = vec![0u64; 200];
        for &s in &data {
            freqs[s] += 1;
        }
        let enc = HuffmanEncoder::from_frequencies(&freqs, 9).unwrap();
        prop_assert!(enc.lengths().iter().all(|&l| l <= 9));
        let bits = enc.encode_symbols(data.iter().copied()).unwrap();
        let dec = HuffmanDecoder::from_lengths(enc.lengths()).unwrap();
        prop_assert_eq!(dec.decode_exact(&bits, data.len()).unwrap(), data);
    }

    #[test]
    fn mtf_paper_variant_roundtrip(data in prop::collection::vec(0u32..32, 0..256)) {
        let enc = mtf_encode(&data);
        prop_assert_eq!(mtf_decode(&enc).unwrap(), data);
    }

    #[test]
    fn mtf_classic_roundtrip(data in prop::collection::vec(0u32..32, 0..256)) {
        let enc = mtf_encode_classic(&data, 32).unwrap();
        prop_assert_eq!(mtf_decode_classic(&enc, 32).unwrap(), data);
    }

    #[test]
    fn mtf_table_len_equals_distinct_symbols(data in prop::collection::vec(0u32..16, 0..256)) {
        let enc = mtf_encode(&data);
        let distinct = {
            let mut v = data.clone();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        prop_assert_eq!(enc.table.len(), distinct);
        prop_assert_eq!(enc.indices.iter().filter(|&&i| i == 0).count(), distinct);
    }

    #[test]
    fn arith_adaptive_roundtrip(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let packed = compress_bytes_adaptive(&data);
        prop_assert_eq!(decompress_bytes_adaptive(&packed, data.len()).unwrap(), data);
    }

    #[test]
    fn context_model_estimate_is_finite_and_positive(
        data in prop::collection::vec(0u32..8, 1..256),
        order in 0usize..3,
    ) {
        let mut m = ContextModel::new(order, 8);
        m.train(&data);
        let bits = m.estimate_bits(&data);
        prop_assert!(bits.is_finite());
        prop_assert!(bits >= 0.0);
    }
}
