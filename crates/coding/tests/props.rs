//! Randomized (deterministic, seeded) tests for the entropy-coding
//! substrate. Formerly proptest-based; the container builds offline with
//! no registry, so these now drive the same properties from the in-tree
//! [`codecomp_core::fault::XorShift64`] PRNG.

use codecomp_coding::arith::{compress_bytes_adaptive, decompress_bytes_adaptive};
use codecomp_coding::bits::{BitReader, BitWriter, LsbBitReader, LsbBitWriter};
use codecomp_coding::huffman::{HuffmanDecoder, HuffmanEncoder};
use codecomp_coding::model::ContextModel;
use codecomp_coding::mtf::{mtf_decode, mtf_decode_classic, mtf_encode, mtf_encode_classic};
use codecomp_core::fault::XorShift64;

const CASES: u64 = 64;

fn sym_vec(rng: &mut XorShift64, alphabet: u64, max_len: usize) -> Vec<u32> {
    let len = rng.below(max_len as u64 + 1) as usize;
    (0..len).map(|_| rng.below(alphabet) as u32).collect()
}

#[test]
fn msb_bits_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x1000 + case);
        let n_chunks = rng.below(64) as usize;
        let chunks: Vec<(u64, u8)> = (0..n_chunks)
            .map(|_| (rng.next_u64(), rng.range_usize(1, 65) as u8))
            .collect();
        let mut w = BitWriter::new();
        for &(v, n) in &chunks {
            w.write_bits(v & (u64::MAX >> (64 - n)), n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &chunks {
            assert_eq!(r.read_bits(n).unwrap(), v & (u64::MAX >> (64 - n)));
        }
    }
}

#[test]
fn lsb_bits_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x2000 + case);
        let n_chunks = rng.below(64) as usize;
        let chunks: Vec<(u32, u8)> = (0..n_chunks)
            .map(|_| (rng.next_u64() as u32, rng.below(25) as u8))
            .collect();
        let mut w = LsbBitWriter::new();
        for &(v, n) in &chunks {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = LsbBitReader::new(&bytes);
        for &(v, n) in &chunks {
            let mask = if n == 0 { 0 } else { u32::MAX >> (32 - n) };
            assert_eq!(r.read_bits(n).unwrap(), v & mask);
        }
    }
}

fn huffman_case(seed: u64, alphabet: usize, limit: u8) {
    let mut rng = XorShift64::new(seed);
    let len = rng.range_usize(1, 512);
    let data: Vec<usize> = (0..len)
        .map(|_| rng.below(alphabet as u64) as usize)
        .collect();
    let mut freqs = vec![0u64; alphabet];
    for &s in &data {
        freqs[s] += 1;
    }
    let enc = HuffmanEncoder::from_frequencies(&freqs, limit).unwrap();
    assert!(enc.lengths().iter().all(|&l| l <= limit));
    let bits = enc.encode_symbols(data.iter().copied()).unwrap();
    let dec = HuffmanDecoder::from_lengths(enc.lengths()).unwrap();
    assert_eq!(dec.decode_exact(&bits, data.len()).unwrap(), data);
}

#[test]
fn huffman_roundtrip() {
    for case in 0..CASES {
        huffman_case(0x3000 + case, 64, 15);
    }
}

#[test]
fn huffman_length_limited_roundtrip() {
    for case in 0..CASES {
        huffman_case(0x4000 + case, 200, 9);
    }
}

#[test]
fn mtf_paper_variant_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x5000 + case);
        let data = sym_vec(&mut rng, 32, 256);
        let enc = mtf_encode(&data);
        assert_eq!(mtf_decode(&enc).unwrap(), data);
    }
}

#[test]
fn mtf_classic_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x6000 + case);
        let data = sym_vec(&mut rng, 32, 256);
        let enc = mtf_encode_classic(&data, 32).unwrap();
        assert_eq!(mtf_decode_classic(&enc, 32).unwrap(), data);
    }
}

#[test]
fn mtf_table_len_equals_distinct_symbols() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x7000 + case);
        let data = sym_vec(&mut rng, 16, 256);
        let enc = mtf_encode(&data);
        let distinct = {
            let mut v = data.clone();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        assert_eq!(enc.table.len(), distinct);
        assert_eq!(enc.indices.iter().filter(|&&i| i == 0).count(), distinct);
    }
}

#[test]
fn arith_adaptive_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x8000 + case);
        let len = rng.below(512) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let packed = compress_bytes_adaptive(&data);
        assert_eq!(decompress_bytes_adaptive(&packed, data.len()).unwrap(), data);
    }
}

#[test]
fn context_model_estimate_is_finite_and_positive() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x9000 + case);
        let len = rng.range_usize(1, 256);
        let data: Vec<u32> = (0..len).map(|_| rng.below(8) as u32).collect();
        let order = rng.below(3) as usize;
        let mut m = ContextModel::new(order, 8);
        m.train(&data).unwrap();
        let bits = m.estimate_bits(&data);
        assert!(bits.is_finite());
        assert!(bits >= 0.0);
    }
}
