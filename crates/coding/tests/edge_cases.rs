//! Decoder edge cases: empty inputs, EOF mid-symbol, hostile MTF
//! indices, and Huffman code-length completeness.

use codecomp_coding::bits::{BitReader, BitWriter, LsbBitReader};
use codecomp_coding::huffman::HuffmanDecoder;
use codecomp_coding::mtf::{mtf_decode, mtf_decode_classic, mtf_encode, MtfEncoded};
use codecomp_coding::CodingError;

#[test]
fn empty_input_hits_eof_immediately() {
    assert_eq!(BitReader::new(&[]).read_bit(), Err(CodingError::UnexpectedEof));
    assert_eq!(
        BitReader::new(&[]).read_bits(1),
        Err(CodingError::UnexpectedEof)
    );
    assert_eq!(
        LsbBitReader::new(&[]).read_bit(),
        Err(CodingError::UnexpectedEof)
    );
    assert_eq!(
        LsbBitReader::new(&[]).read_bits(1),
        Err(CodingError::UnexpectedEof)
    );
}

#[test]
fn lsb_reader_eof_mid_symbol() {
    // One byte holds 8 bits; a 4-bit read succeeds, the following 8-bit
    // read starts inside the stream but runs off the end.
    let mut r = LsbBitReader::new(&[0xA5]);
    assert!(r.read_bits(4).is_ok());
    assert_eq!(r.read_bits(8), Err(CodingError::UnexpectedEof));
    // The MSB-first reader behaves identically.
    let mut r = BitReader::new(&[0xA5]);
    assert!(r.read_bits(4).is_ok());
    assert_eq!(r.read_bits(8), Err(CodingError::UnexpectedEof));
}

#[test]
fn lsb_reader_reads_all_bits_then_eof() {
    let mut r = LsbBitReader::new(&[0xFF, 0x00]);
    assert_eq!(r.read_bits(16).unwrap(), 0x00FF);
    assert_eq!(r.read_bit(), Err(CodingError::UnexpectedEof));
}

#[test]
fn mtf_decode_rejects_out_of_range_recency_index() {
    // Index 7 refers to recency position 6 of an empty list.
    let bad = MtfEncoded::<u32> {
        indices: vec![7],
        table: vec![],
    };
    assert_eq!(mtf_decode(&bad), None);
    // Index 2 after a single "new" symbol: recency list has one entry.
    let bad = MtfEncoded::<u32> {
        indices: vec![0, 2],
        table: vec![42],
    };
    assert_eq!(mtf_decode(&bad), None);
}

#[test]
fn mtf_decode_rejects_exhausted_side_table() {
    // Two "new symbol" indices but only one table entry.
    let bad = MtfEncoded::<u32> {
        indices: vec![0, 0],
        table: vec![42],
    };
    assert_eq!(mtf_decode(&bad), None);
}

#[test]
fn mtf_classic_rejects_out_of_alphabet_index() {
    assert_eq!(mtf_decode_classic(&[5], 3), None);
    assert_eq!(mtf_decode_classic(&[0, 1, 3], 3), None);
    // In-range indices still decode.
    assert!(mtf_decode_classic(&[0, 1, 2], 3).is_some());
}

#[test]
fn mtf_empty_stream_roundtrips() {
    let enc = mtf_encode::<u32>(&[]);
    assert!(enc.indices.is_empty() && enc.table.is_empty());
    assert_eq!(mtf_decode(&enc), Some(vec![]));
    assert_eq!(mtf_decode_classic(&[], 4), Some(vec![]));
}

#[test]
fn huffman_decoder_rejects_incomplete_length_sets() {
    // Oversubscribed: three 1-bit codes.
    assert!(HuffmanDecoder::from_lengths(&[1, 1, 1]).is_err());
    // Undersubscribed with more than one code: two 2-bit codes.
    assert!(HuffmanDecoder::from_lengths(&[2, 2]).is_err());
    // Degenerate single code is the only tolerated incomplete set (the
    // wire format emits it for single-symbol streams).
    assert!(HuffmanDecoder::from_lengths(&[1]).is_ok());
    // Complete sets decode.
    assert!(HuffmanDecoder::from_lengths(&[1, 2, 2]).is_ok());
}

#[test]
fn huffman_decode_eof_mid_symbol() {
    let dec = HuffmanDecoder::from_lengths(&[2, 2, 2, 2]).unwrap();
    // One bit of input: every symbol needs two.
    let mut w = BitWriter::new();
    w.write_bit(true);
    let bytes = w.finish();
    let mut r = BitReader::new(&bytes);
    // The trailing pad bits of the byte may decode as a symbol; the
    // guarantee under test is totality, not rejection.
    for _ in 0..16 {
        if dec.decode_one(&mut r).is_err() {
            return;
        }
    }
    panic!("decoder consumed more symbols than the stream can hold");
}
