//! Decoder edge cases: empty inputs, EOF mid-symbol, hostile MTF
//! indices, Huffman code-length completeness, and out-of-range model
//! queries (every model API returns `Result` rather than panicking, so
//! corrupt streams fail cleanly all the way up the decode stack).

use codecomp_coding::arith::{
    compress_bytes_adaptive, decompress_bytes_adaptive, ArithDecoder, ArithEncoder,
};
use codecomp_coding::bits::{BitReader, BitWriter, LsbBitReader};
use codecomp_coding::huffman::HuffmanDecoder;
use codecomp_coding::model::{AdaptiveModel, ContextModel, FrequencyTable};
use codecomp_coding::mtf::{mtf_decode, mtf_decode_classic, mtf_encode, MtfEncoded};
use codecomp_coding::CodingError;

#[test]
fn empty_input_hits_eof_immediately() {
    assert_eq!(BitReader::new(&[]).read_bit(), Err(CodingError::UnexpectedEof));
    assert_eq!(
        BitReader::new(&[]).read_bits(1),
        Err(CodingError::UnexpectedEof)
    );
    assert_eq!(
        LsbBitReader::new(&[]).read_bit(),
        Err(CodingError::UnexpectedEof)
    );
    assert_eq!(
        LsbBitReader::new(&[]).read_bits(1),
        Err(CodingError::UnexpectedEof)
    );
}

#[test]
fn lsb_reader_eof_mid_symbol() {
    // One byte holds 8 bits; a 4-bit read succeeds, the following 8-bit
    // read starts inside the stream but runs off the end.
    let mut r = LsbBitReader::new(&[0xA5]);
    assert!(r.read_bits(4).is_ok());
    assert_eq!(r.read_bits(8), Err(CodingError::UnexpectedEof));
    // The MSB-first reader behaves identically.
    let mut r = BitReader::new(&[0xA5]);
    assert!(r.read_bits(4).is_ok());
    assert_eq!(r.read_bits(8), Err(CodingError::UnexpectedEof));
}

#[test]
fn lsb_reader_reads_all_bits_then_eof() {
    let mut r = LsbBitReader::new(&[0xFF, 0x00]);
    assert_eq!(r.read_bits(16).unwrap(), 0x00FF);
    assert_eq!(r.read_bit(), Err(CodingError::UnexpectedEof));
}

#[test]
fn mtf_decode_rejects_out_of_range_recency_index() {
    // Index 7 refers to recency position 6 of an empty list.
    let bad = MtfEncoded::<u32> {
        indices: vec![7],
        table: vec![],
    };
    assert_eq!(mtf_decode(&bad), None);
    // Index 2 after a single "new" symbol: recency list has one entry.
    let bad = MtfEncoded::<u32> {
        indices: vec![0, 2],
        table: vec![42],
    };
    assert_eq!(mtf_decode(&bad), None);
}

#[test]
fn mtf_decode_rejects_exhausted_side_table() {
    // Two "new symbol" indices but only one table entry.
    let bad = MtfEncoded::<u32> {
        indices: vec![0, 0],
        table: vec![42],
    };
    assert_eq!(mtf_decode(&bad), None);
}

#[test]
fn mtf_classic_rejects_out_of_alphabet_index() {
    assert_eq!(mtf_decode_classic(&[5], 3), None);
    assert_eq!(mtf_decode_classic(&[0, 1, 3], 3), None);
    // In-range indices still decode.
    assert!(mtf_decode_classic(&[0, 1, 2], 3).is_some());
}

#[test]
fn mtf_empty_stream_roundtrips() {
    let enc = mtf_encode::<u32>(&[]);
    assert!(enc.indices.is_empty() && enc.table.is_empty());
    assert_eq!(mtf_decode(&enc), Some(vec![]));
    assert_eq!(mtf_decode_classic(&[], 4), Some(vec![]));
}

#[test]
fn huffman_decoder_rejects_incomplete_length_sets() {
    // Oversubscribed: three 1-bit codes.
    assert!(HuffmanDecoder::from_lengths(&[1, 1, 1]).is_err());
    // Undersubscribed with more than one code: two 2-bit codes.
    assert!(HuffmanDecoder::from_lengths(&[2, 2]).is_err());
    // Degenerate single code is the only tolerated incomplete set (the
    // wire format emits it for single-symbol streams).
    assert!(HuffmanDecoder::from_lengths(&[1]).is_ok());
    // Complete sets decode.
    assert!(HuffmanDecoder::from_lengths(&[1, 2, 2]).is_ok());
}

#[test]
fn frequency_table_rejects_out_of_range_queries() {
    let t = FrequencyTable::with_smoothing(&[3, 1, 5]);
    assert!(matches!(
        t.bounds(3),
        Err(CodingError::SymbolOutOfRange {
            symbol: 3,
            alphabet: 3
        })
    ));
    // Cumulative point at or past the total is a data error, not a
    // panic: a corrupt arithmetic stream can produce any point.
    assert!(matches!(
        t.symbol_for(t.total()),
        Err(CodingError::InvalidModel(_))
    ));
    assert!(t.symbol_for(t.total() - 1).is_ok());
    let mut t = t;
    assert!(t.bump(7, 1).is_err());
    assert!(t.bump(2, 1).is_ok());
}

#[test]
fn adaptive_model_rejects_out_of_range_queries() {
    let mut m = AdaptiveModel::new(4);
    assert!(matches!(
        m.bounds(4),
        Err(CodingError::SymbolOutOfRange {
            symbol: 4,
            alphabet: 4
        })
    ));
    assert!(matches!(
        m.locate(m.total()),
        Err(CodingError::InvalidModel(_))
    ));
    assert!(m.locate(m.total() - 1).is_ok());
    assert!(m.update(4).is_err());
    assert!(m.update(3).is_ok());
}

#[test]
fn context_model_train_rejects_out_of_range_but_keeps_prior_counts() {
    let mut m = ContextModel::new(1, 3);
    assert_eq!(
        m.train(&[0, 1, 9]),
        Err(CodingError::SymbolOutOfRange {
            symbol: 9,
            alphabet: 3
        })
    );
    // The symbols before the bad one were counted.
    assert_eq!(m.order0_counts(), &[1, 1, 0]);
}

#[test]
fn arith_decoder_on_empty_input_is_total() {
    // An empty stream decodes as an endless run of zero bits; whatever
    // symbols fall out, nothing may panic and every point stays valid.
    let model = AdaptiveModel::new(5);
    let dec = ArithDecoder::new(&[]).unwrap();
    let point = dec.decode_point(model.total()).unwrap();
    assert!(point < model.total());
    assert_eq!(
        decompress_bytes_adaptive(&[], 0).unwrap(),
        Vec::<u8>::new()
    );
    // Asking for output from nothing still must not panic.
    assert!(decompress_bytes_adaptive(&[], 64).is_ok());
}

#[test]
fn arith_decoder_survives_exhausted_input_mid_symbol() {
    // Compress 256 bytes, then hand the decoder every strict prefix.
    // Missing bits read as zeros, so decoding may produce wrong bytes —
    // but it must stay total and in-range for the declared length.
    let data: Vec<u8> = (0..=255).collect();
    let packed = compress_bytes_adaptive(&data);
    for cut in 0..packed.len().min(64) {
        let _ = decompress_bytes_adaptive(&packed[..cut], data.len());
    }
    let _ = decompress_bytes_adaptive(&packed[..packed.len() - 1], data.len());
}

#[test]
fn arith_decode_with_mismatched_table_fails_cleanly() {
    // Encode under a 4-symbol table, decode under a 2-symbol one: the
    // decoder sees cumulative points beyond the smaller table's range
    // of symbols, which must surface as errors, never indexing panics.
    let enc_table = FrequencyTable::with_smoothing(&[1, 1, 1, 1]);
    let mut enc = ArithEncoder::new();
    for s in [3usize, 3, 3, 3] {
        enc.encode_with_table(s, &enc_table).unwrap();
    }
    let bytes = enc.finish();
    let dec_table = FrequencyTable::with_smoothing(&[1, 1]);
    let mut dec = ArithDecoder::new(&bytes).unwrap();
    for _ in 0..4 {
        if dec.decode_with_table(&dec_table).is_err() {
            return; // clean rejection is the expected outcome
        }
    }
    // All four decoding as valid 2-symbol output is acceptable too
    // (the streams are ambiguous); the test asserts totality.
}

#[test]
fn encode_with_table_rejects_out_of_alphabet_symbol() {
    let table = FrequencyTable::with_smoothing(&[1, 1]);
    let mut enc = ArithEncoder::new();
    assert!(matches!(
        enc.encode_with_table(2, &table),
        Err(CodingError::SymbolOutOfRange { .. })
    ));
}

#[test]
fn huffman_decode_eof_mid_symbol() {
    let dec = HuffmanDecoder::from_lengths(&[2, 2, 2, 2]).unwrap();
    // One bit of input: every symbol needs two.
    let mut w = BitWriter::new();
    w.write_bit(true);
    let bytes = w.finish();
    let mut r = BitReader::new(&bytes);
    // The trailing pad bits of the byte may decode as a symbol; the
    // guarantee under test is totality, not rejection.
    for _ in 0..16 {
        if dec.decode_one(&mut r).is_err() {
            return;
        }
    }
    panic!("decoder consumed more symbols than the stream can hold");
}
