//! Frequency tables and finite-context (Markov) models.
//!
//! The paper's design space (§2) asks whether the coder should use
//! "finite-context or Markov modeling, which uses the last few symbols to
//! predict the next symbol more precisely". [`ContextModel`] implements
//! an order-N semi-static model: trained in one pass, then queried for
//! per-context frequency tables that feed Huffman or arithmetic coders.
//! BRISC's order-1 opcode model (§4) is the `order = 1` instance, with
//! the paper's dedicated basic-block-entry context provided by reserving
//! a context symbol.

use crate::CodingError;
use std::collections::HashMap;

/// A cumulative frequency table over symbols `0..n`, for arithmetic coding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequencyTable {
    freqs: Vec<u32>,
    cumulative: Vec<u32>,
    total: u32,
}

impl FrequencyTable {
    /// Builds a table from raw counts; zero counts are bumped to one so
    /// every symbol stays codable (Laplace smoothing).
    pub fn with_smoothing(counts: &[u64]) -> Self {
        let freqs: Vec<u32> = counts
            .iter()
            .map(|&c| u32::try_from(c.max(1)).unwrap_or(u32::MAX / counts.len().max(1) as u32))
            .collect();
        Self::from_freqs(freqs)
    }

    /// Builds a uniform table over `n` symbols.
    pub fn uniform(n: usize) -> Self {
        Self::from_freqs(vec![1; n])
    }

    fn from_freqs(mut freqs: Vec<u32>) -> Self {
        // Rescale so the total stays comfortably below the range coder's
        // precision bound (2^16).
        let mut total: u64 = freqs.iter().map(|&f| u64::from(f)).sum();
        while total > (1 << 16) {
            for f in &mut freqs {
                *f = (*f / 2).max(1);
            }
            total = freqs.iter().map(|&f| u64::from(f)).sum();
        }
        let mut cumulative = Vec::with_capacity(freqs.len() + 1);
        let mut acc = 0u32;
        cumulative.push(0);
        for &f in &freqs {
            acc += f;
            cumulative.push(acc);
        }
        Self {
            freqs,
            total: acc,
            cumulative,
        }
    }

    /// Number of symbols in the alphabet.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Total of all frequencies.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// `(low, high)` cumulative bounds of `symbol`.
    ///
    /// # Errors
    ///
    /// [`CodingError::SymbolOutOfRange`] for a symbol outside the
    /// alphabet.
    pub fn bounds(&self, symbol: usize) -> Result<(u32, u32), CodingError> {
        if symbol >= self.freqs.len() {
            return Err(CodingError::SymbolOutOfRange {
                symbol,
                alphabet: self.freqs.len(),
            });
        }
        Ok((self.cumulative[symbol], self.cumulative[symbol + 1]))
    }

    /// The symbol whose cumulative interval contains `point`.
    ///
    /// # Errors
    ///
    /// [`CodingError::InvalidModel`] if `point >= self.total()` — a
    /// corrupt stream can hand the decoder any point, so this is a
    /// data error, not a programmer error.
    pub fn symbol_for(&self, point: u32) -> Result<usize, CodingError> {
        if point >= self.total {
            return Err(CodingError::InvalidModel(format!(
                "point {point} beyond cumulative total {}",
                self.total
            )));
        }
        // Binary search over the cumulative bounds.
        Ok(match self.cumulative.binary_search(&point) {
            Ok(mut i) => {
                // `point` equals a boundary; skip zero-width intervals.
                while self.cumulative[i + 1] == self.cumulative[i] {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        })
    }

    /// Increments `symbol` by `delta`, rebuilding the cumulative table.
    ///
    /// This is O(n); adaptive coders that update per symbol should prefer
    /// [`AdaptiveModel`].
    ///
    /// # Errors
    ///
    /// [`CodingError::SymbolOutOfRange`] for a symbol outside the
    /// alphabet.
    pub fn bump(&mut self, symbol: usize, delta: u32) -> Result<(), CodingError> {
        let alphabet = self.freqs.len();
        let f = self
            .freqs
            .get_mut(symbol)
            .ok_or(CodingError::SymbolOutOfRange { symbol, alphabet })?;
        *f += delta;
        *self = Self::from_freqs(std::mem::take(&mut self.freqs));
        Ok(())
    }
}

/// An adaptive frequency model with per-symbol updates, for adaptive
/// arithmetic coding.
#[derive(Debug, Clone)]
pub struct AdaptiveModel {
    freqs: Vec<u32>,
    total: u32,
    increment: u32,
    max_total: u32,
}

impl AdaptiveModel {
    /// Creates a model over `n` symbols, all starting at frequency 1.
    pub fn new(n: usize) -> Self {
        Self {
            freqs: vec![1; n],
            total: n as u32,
            increment: 32,
            max_total: 1 << 16,
        }
    }

    /// Budget-governed [`Self::new`]: the alphabet size `n` (one table
    /// row per symbol) is checked against the table-entry ceiling
    /// before the table is allocated.
    ///
    /// # Errors
    ///
    /// [`CodingError::LimitExceeded`] if `n` exceeds the budget's
    /// `max_table_entries`.
    pub fn with_budget(n: usize, budget: &codecomp_core::Budget) -> Result<Self, CodingError> {
        budget.check_table_entries(n as u64)?;
        Ok(Self::new(n))
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Total frequency mass.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// `(low, high)` cumulative bounds of `symbol` (computed by scan).
    ///
    /// # Errors
    ///
    /// [`CodingError::SymbolOutOfRange`] for a symbol outside the
    /// alphabet.
    pub fn bounds(&self, symbol: usize) -> Result<(u32, u32), CodingError> {
        if symbol >= self.freqs.len() {
            return Err(CodingError::SymbolOutOfRange {
                symbol,
                alphabet: self.freqs.len(),
            });
        }
        let low: u32 = self.freqs[..symbol].iter().sum();
        Ok((low, low + self.freqs[symbol]))
    }

    /// The symbol whose interval contains `point`, with its bounds.
    ///
    /// # Errors
    ///
    /// [`CodingError::InvalidModel`] if `point >= self.total()` — the
    /// point comes from decoder state driven by untrusted input.
    pub fn locate(&self, point: u32) -> Result<(usize, u32, u32), CodingError> {
        if point >= self.total {
            return Err(CodingError::InvalidModel(format!(
                "point {point} beyond cumulative total {}",
                self.total
            )));
        }
        let mut low = 0u32;
        for (sym, &f) in self.freqs.iter().enumerate() {
            if point < low + f {
                return Ok((sym, low, low + f));
            }
            low += f;
        }
        // point < total and the frequencies sum to total, so some
        // interval above must have contained it.
        Err(CodingError::InvalidModel(
            "cumulative frequencies do not cover the total".into(),
        ))
    }

    /// Records an occurrence of `symbol`, halving all counts when the
    /// total would exceed the coder's precision bound.
    ///
    /// # Errors
    ///
    /// [`CodingError::SymbolOutOfRange`] for a symbol outside the
    /// alphabet.
    pub fn update(&mut self, symbol: usize) -> Result<(), CodingError> {
        let alphabet = self.freqs.len();
        let f = self
            .freqs
            .get_mut(symbol)
            .ok_or(CodingError::SymbolOutOfRange { symbol, alphabet })?;
        *f += self.increment;
        self.total += self.increment;
        if self.total > self.max_total {
            self.total = 0;
            for f in &mut self.freqs {
                *f = (*f / 2).max(1);
                self.total += *f;
            }
        }
        Ok(())
    }
}

/// An order-N semi-static finite-context model.
///
/// Contexts are the previous `order` symbols; unseen contexts fall back
/// to the order-0 table. Train with [`ContextModel::train`], then query
/// [`ContextModel::table`] per context.
#[derive(Debug, Clone)]
pub struct ContextModel {
    order: usize,
    alphabet: usize,
    order0: Vec<u64>,
    contexts: HashMap<Vec<u32>, Vec<u64>>,
}

impl ContextModel {
    /// Creates an untrained model.
    ///
    /// # Panics
    ///
    /// Panics if `alphabet == 0`.
    pub fn new(order: usize, alphabet: usize) -> Self {
        assert!(alphabet > 0, "alphabet must be nonempty");
        Self {
            order,
            alphabet,
            order0: vec![0; alphabet],
            contexts: HashMap::new(),
        }
    }

    /// The model order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// The alphabet size.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// Accumulates counts from `stream` (symbols must be `< alphabet`).
    ///
    /// # Errors
    ///
    /// [`CodingError::SymbolOutOfRange`] for any symbol outside the
    /// alphabet; counts accumulated before the offending symbol are
    /// kept.
    pub fn train(&mut self, stream: &[u32]) -> Result<(), CodingError> {
        for (i, &sym) in stream.iter().enumerate() {
            if sym as usize >= self.alphabet {
                return Err(CodingError::SymbolOutOfRange {
                    symbol: sym as usize,
                    alphabet: self.alphabet,
                });
            }
            self.order0[sym as usize] += 1;
            if self.order > 0 && i >= self.order {
                let ctx = stream[i - self.order..i].to_vec();
                self.contexts
                    .entry(ctx)
                    .or_insert_with(|| vec![0; self.alphabet])[sym as usize] += 1;
            }
        }
        Ok(())
    }

    /// Raw order-0 counts.
    pub fn order0_counts(&self) -> &[u64] {
        &self.order0
    }

    /// Counts for `context`, falling back to order-0 when unseen or when
    /// the context is shorter than the model order.
    pub fn counts_for(&self, context: &[u32]) -> &[u64] {
        if self.order == 0 || context.len() < self.order {
            return &self.order0;
        }
        self.contexts
            .get(&context[context.len() - self.order..])
            .map(Vec::as_slice)
            .unwrap_or(&self.order0)
    }

    /// A smoothed [`FrequencyTable`] for `context`.
    pub fn table(&self, context: &[u32]) -> FrequencyTable {
        FrequencyTable::with_smoothing(self.counts_for(context))
    }

    /// Number of distinct contexts observed.
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }

    /// Static entropy estimate in bits of coding `stream` with this model
    /// (useful for ablations comparing model orders).
    pub fn estimate_bits(&self, stream: &[u32]) -> f64 {
        let mut bits = 0.0;
        for (i, &sym) in stream.iter().enumerate() {
            let ctx_start = i.saturating_sub(self.order);
            let counts = self.counts_for(&stream[ctx_start..i]);
            let total: u64 = counts.iter().map(|&c| c.max(1)).sum();
            // Out-of-alphabet symbols estimate as count 1 rather than
            // panicking: the estimate is advisory, not a decode path.
            let c = counts.get(sym as usize).copied().unwrap_or(0).max(1);
            bits += (total as f64 / c as f64).log2();
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_table_bounds_partition_the_range() {
        let t = FrequencyTable::with_smoothing(&[3, 0, 5]);
        assert_eq!(t.total(), 9); // 3 + 1 (smoothed) + 5
        assert_eq!(t.bounds(0).unwrap(), (0, 3));
        assert_eq!(t.bounds(1).unwrap(), (3, 4));
        assert_eq!(t.bounds(2).unwrap(), (4, 9));
        assert!(t.bounds(3).is_err());
    }

    #[test]
    fn symbol_for_inverts_bounds() {
        let t = FrequencyTable::with_smoothing(&[3, 1, 5, 2]);
        for sym in 0..4 {
            let (lo, hi) = t.bounds(sym).unwrap();
            for p in lo..hi {
                assert_eq!(t.symbol_for(p).unwrap(), sym);
            }
        }
    }

    #[test]
    fn table_rescales_when_total_too_large() {
        let t = FrequencyTable::with_smoothing(&[u64::from(u32::MAX), 1]);
        assert!(t.total() <= 1 << 16);
        assert!(
            t.bounds(1).unwrap().1 > t.bounds(1).unwrap().0,
            "rare symbol keeps nonzero width"
        );
    }

    #[test]
    fn adaptive_model_update_shifts_mass() {
        let mut m = AdaptiveModel::new(4);
        let before = m.bounds(2).unwrap();
        for _ in 0..10 {
            m.update(2).unwrap();
        }
        let after = m.bounds(2).unwrap();
        assert!(after.1 - after.0 > before.1 - before.0);
        // locate() agrees with bounds().
        let (sym, lo, hi) = m.locate(after.0).unwrap();
        assert_eq!((sym, lo, hi), (2, after.0, after.1));
    }

    #[test]
    fn adaptive_model_rescale_keeps_all_symbols_codable() {
        let mut m = AdaptiveModel::new(3);
        for _ in 0..10_000 {
            m.update(0).unwrap();
        }
        assert!(m.total() <= 1 << 16);
        for s in 0..3 {
            let (lo, hi) = m.bounds(s).unwrap();
            assert!(hi > lo);
        }
    }

    #[test]
    fn context_model_order1_predicts_successor() {
        // Alternating stream: after 0 always comes 1 and vice versa.
        let stream: Vec<u32> = (0..100).map(|i| i % 2).collect();
        let mut m = ContextModel::new(1, 2);
        m.train(&stream).unwrap();
        let after0 = m.counts_for(&[0]);
        assert!(after0[1] > 0 && after0[0] == 0);
        let after1 = m.counts_for(&[1]);
        assert!(after1[0] > 0 && after1[1] == 0);
    }

    #[test]
    fn context_model_falls_back_to_order0() {
        let mut m = ContextModel::new(2, 4);
        m.train(&[0, 1, 2, 3]).unwrap();
        // Context never observed: falls back to order-0 counts.
        assert_eq!(m.counts_for(&[3, 3]), m.order0_counts());
        // Context shorter than order: same.
        assert_eq!(m.counts_for(&[1]), m.order0_counts());
    }

    #[test]
    fn higher_order_model_estimates_fewer_bits_on_structured_input() {
        let stream: Vec<u32> = (0..400).map(|i| (i % 4) as u32).collect();
        let mut m0 = ContextModel::new(0, 4);
        m0.train(&stream).unwrap();
        let mut m1 = ContextModel::new(1, 4);
        m1.train(&stream).unwrap();
        assert!(m1.estimate_bits(&stream) < m0.estimate_bits(&stream));
    }

    #[test]
    fn train_rejects_out_of_range() {
        assert_eq!(
            ContextModel::new(1, 2).train(&[5]),
            Err(CodingError::SymbolOutOfRange {
                symbol: 5,
                alphabet: 2
            })
        );
    }
}
