//! Move-to-front coding.
//!
//! The wire format (paper §3 step 3) MTF-codes each literal stream in
//! isolation, with the convention that **index 0 denotes a symbol not
//! seen previously**; the first occurrence of a symbol is therefore
//! emitted as `0` followed by the symbol itself in a side table, and
//! subsequent occurrences are emitted as their 1-based position in the
//! recency list. This is the paper's exact example: the `ADDRLP8` stream
//! `[72 72 68 72 68 68 68 68]` codes to `[0 1 0 2 2 1 1 1]`.
//!
//! A classic MTF transform over a fixed alphabet ([`mtf_encode_classic`])
//! is also provided for ablation experiments.

use crate::CodingError;

/// Output of [`mtf_encode`]: recency indices plus the first-occurrence table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MtfEncoded<T> {
    /// One index per input symbol; `0` means "new symbol", `k > 0` means
    /// "the symbol at 1-based recency position `k`".
    pub indices: Vec<u32>,
    /// Symbols in order of first occurrence (consumed by the decoder each
    /// time it reads a `0` index).
    pub table: Vec<T>,
}

/// MTF-encodes a stream with the paper's "0 = unseen" convention.
///
/// # Examples
///
/// ```
/// use codecomp_coding::mtf::mtf_encode;
///
/// // The paper's ADDRLP8 example.
/// let stream = [72u32, 72, 68, 72, 68, 68, 68, 68];
/// let enc = mtf_encode(&stream);
/// assert_eq!(enc.indices, vec![0, 1, 0, 2, 2, 1, 1, 1]);
/// assert_eq!(enc.table, vec![72, 68]);
/// ```
pub fn mtf_encode<T: Clone + PartialEq>(stream: &[T]) -> MtfEncoded<T> {
    let mut recency: Vec<T> = Vec::new();
    let mut indices = Vec::with_capacity(stream.len());
    let mut table = Vec::new();
    for sym in stream {
        match recency.iter().position(|s| s == sym) {
            Some(pos) => {
                indices.push(pos as u32 + 1);
                let s = recency.remove(pos);
                recency.insert(0, s);
            }
            None => {
                indices.push(0);
                table.push(sym.clone());
                recency.insert(0, sym.clone());
            }
        }
    }
    if codecomp_core::telemetry::enabled() {
        // Index 0 is a first occurrence (dictionary miss); k > 0 is a
        // hit at recency distance k — the paper's locality argument in
        // histogram form.
        let misses = table.len() as u64;
        codecomp_core::telemetry::counter_add("coding.mtf.misses", misses);
        codecomp_core::telemetry::counter_add("coding.mtf.hits", indices.len() as u64 - misses);
        let mut distances = codecomp_core::telemetry::LocalHistogram::default();
        for &idx in indices.iter().filter(|&&idx| idx > 0) {
            distances.record(u64::from(idx));
        }
        codecomp_core::telemetry::histogram_merge("coding.mtf.hit_distance", &distances);
    }
    MtfEncoded { indices, table }
}

/// Inverts [`mtf_encode`].
///
/// Returns `None` if the indices reference recency positions that do not
/// exist or the table is shorter than the number of `0` indices.
pub fn mtf_decode<T: Clone + PartialEq>(encoded: &MtfEncoded<T>) -> Option<Vec<T>> {
    let mut recency: Vec<T> = Vec::new();
    let mut table_iter = encoded.table.iter();
    let mut out = Vec::with_capacity(encoded.indices.len());
    for &idx in &encoded.indices {
        if idx == 0 {
            let sym = table_iter.next()?.clone();
            // A "new" symbol that is already in the recency list means the
            // encoding is corrupt.
            if recency.contains(&sym) {
                return None;
            }
            recency.insert(0, sym.clone());
            out.push(sym);
        } else {
            let pos = idx as usize - 1;
            if pos >= recency.len() {
                return None;
            }
            let sym = recency.remove(pos);
            recency.insert(0, sym.clone());
            out.push(sym);
        }
    }
    Some(out)
}

/// Budget-governed [`mtf_decode`]: the index count is checked against
/// the stream-symbol ceiling and charged as decode fuel; a corrupt
/// encoding surfaces as [`CodingError::InvalidCode`] instead of `None`.
///
/// # Errors
///
/// [`CodingError::LimitExceeded`] when the budget trips,
/// [`CodingError::InvalidCode`] when the encoding is corrupt.
pub fn mtf_decode_budgeted<T: Clone + PartialEq>(
    encoded: &MtfEncoded<T>,
    budget: &codecomp_core::Budget,
) -> Result<Vec<T>, CodingError> {
    budget.check_stream_symbols(encoded.indices.len() as u64)?;
    budget.charge_fuel(encoded.indices.len() as u64)?;
    mtf_decode(encoded).ok_or(CodingError::InvalidCode)
}

/// Batched inverse MTF for the wire format's identity side table.
///
/// The wire decoder always reconstructs streams whose first-occurrence
/// table is the identity permutation `0..table_len` (the occurrence
/// index *is* the symbol), so the generic [`mtf_decode`] machinery —
/// recency membership scans, `remove` + `insert` double shifts, a
/// clone per symbol — collapses to one array pass: a new symbol is the
/// next counter value, a repeat is a single bounded `copy_within`
/// front-move. Output is identical to [`mtf_decode`] over
/// `MtfEncoded { indices, table: (0..table_len).collect() }`.
///
/// Returns `None` when an index references a recency position that
/// does not exist or more than `table_len` first occurrences appear.
pub fn mtf_decode_identity(indices: &[u32], table_len: usize) -> Option<Vec<u32>> {
    let mut recency: Vec<u32> = Vec::with_capacity(table_len);
    let mut next_new: u32 = 0;
    let mut out = Vec::with_capacity(indices.len());
    for &idx in indices {
        if idx == 0 {
            if next_new as usize >= table_len {
                return None;
            }
            recency.insert(0, next_new);
            out.push(next_new);
            next_new += 1;
        } else {
            let pos = idx as usize - 1;
            if pos >= recency.len() {
                return None;
            }
            let sym = recency[pos];
            recency.copy_within(0..pos, 1);
            recency[0] = sym;
            out.push(sym);
        }
    }
    Some(out)
}

/// Classic MTF transform over the alphabet `0..alphabet`.
///
/// The recency list is initialized to the identity permutation, so no
/// side table is needed. Returns `None` if any symbol is `>= alphabet`.
pub fn mtf_encode_classic(stream: &[u32], alphabet: u32) -> Option<Vec<u32>> {
    let mut recency: Vec<u32> = (0..alphabet).collect();
    let mut out = Vec::with_capacity(stream.len());
    for &sym in stream {
        let pos = recency.iter().position(|&s| s == sym)?;
        out.push(pos as u32);
        recency.remove(pos);
        recency.insert(0, sym);
    }
    Some(out)
}

/// Inverts [`mtf_encode_classic`].
///
/// Returns `None` if any index is `>= alphabet`.
pub fn mtf_decode_classic(indices: &[u32], alphabet: u32) -> Option<Vec<u32>> {
    let mut recency: Vec<u32> = (0..alphabet).collect();
    let mut out = Vec::with_capacity(indices.len());
    for &idx in indices {
        if idx >= alphabet {
            return None;
        }
        let sym = recency.remove(idx as usize);
        recency.insert(0, sym);
        out.push(sym);
    }
    Some(out)
}

/// Budget-governed [`mtf_decode_classic`]: the recency list is one
/// table of `alphabet` entries and the indices are one stream.
///
/// # Errors
///
/// [`CodingError::LimitExceeded`] when the budget trips,
/// [`CodingError::InvalidCode`] on an out-of-alphabet index.
pub fn mtf_decode_classic_budgeted(
    indices: &[u32],
    alphabet: u32,
    budget: &codecomp_core::Budget,
) -> Result<Vec<u32>, CodingError> {
    budget.check_table_entries(u64::from(alphabet))?;
    budget.check_stream_symbols(indices.len() as u64)?;
    budget.charge_fuel(indices.len() as u64)?;
    mtf_decode_classic(indices, alphabet).ok_or(CodingError::InvalidCode)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_addrlp8_example() {
        let stream = [72u32, 72, 68, 72, 68, 68, 68, 68];
        let enc = mtf_encode(&stream);
        assert_eq!(enc.indices, vec![0, 1, 0, 2, 2, 1, 1, 1]);
        assert_eq!(enc.table, vec![72, 68]);
        assert_eq!(mtf_decode(&enc).unwrap(), stream);
    }

    #[test]
    fn empty_stream() {
        let enc = mtf_encode::<u32>(&[]);
        assert!(enc.indices.is_empty());
        assert!(enc.table.is_empty());
        assert_eq!(mtf_decode(&enc).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn all_distinct_symbols_code_to_zeroes() {
        let stream = [1u32, 2, 3, 4, 5];
        let enc = mtf_encode(&stream);
        assert_eq!(enc.indices, vec![0; 5]);
        assert_eq!(enc.table, stream.to_vec());
    }

    #[test]
    fn repeated_symbol_codes_to_ones() {
        let stream = [9u32; 6];
        let enc = mtf_encode(&stream);
        assert_eq!(enc.indices, vec![0, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn works_with_string_symbols() {
        let stream: Vec<String> = ["a", "b", "a", "c", "b"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let enc = mtf_encode(&stream);
        assert_eq!(mtf_decode(&enc).unwrap(), stream);
    }

    #[test]
    fn decode_rejects_truncated_table() {
        let stream = [1u32, 2, 3];
        let mut enc = mtf_encode(&stream);
        enc.table.pop();
        assert!(mtf_decode(&enc).is_none());
    }

    #[test]
    fn decode_rejects_out_of_range_index() {
        let enc = MtfEncoded {
            indices: vec![0, 5],
            table: vec![7u32],
        };
        assert!(mtf_decode(&enc).is_none());
    }

    #[test]
    fn decode_rejects_duplicate_new_symbol() {
        let enc = MtfEncoded {
            indices: vec![0, 0],
            table: vec![7u32, 7],
        };
        assert!(mtf_decode(&enc).is_none());
    }

    #[test]
    fn identity_decode_matches_generic_decode() {
        // Exhaustive-ish: every encodable stream shape over a small
        // alphabet plus the paper's example, checked against the
        // generic decoder with an identity table.
        let streams: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![0, 0, 0],
            vec![0, 1, 0, 2, 2, 1, 1, 1],
            (0..40).map(|i| i % 5).collect(),
            vec![3, 1, 4, 1, 5, 2, 6, 5, 3, 5, 0, 0, 2],
        ];
        for stream in streams {
            let enc = mtf_encode(&stream);
            let table_len = enc.table.len();
            // Relabel so the side table is the identity permutation,
            // which is exactly what the wire decoder reconstructs.
            let relabeled: Vec<u32> = stream
                .iter()
                .map(|s| enc.table.iter().position(|t| t == s).unwrap() as u32)
                .collect();
            let enc_id = mtf_encode(&relabeled);
            assert_eq!(enc_id.indices, enc.indices);
            assert_eq!(enc_id.table, (0..table_len as u32).collect::<Vec<_>>());
            assert_eq!(
                mtf_decode_identity(&enc.indices, table_len),
                mtf_decode(&enc_id),
                "stream {stream:?}"
            );
        }
    }

    #[test]
    fn identity_decode_rejects_bad_input() {
        // More zeros than the declared table.
        assert!(mtf_decode_identity(&[0, 0], 1).is_none());
        // Recency position that does not exist yet.
        assert!(mtf_decode_identity(&[1], 4).is_none());
        assert!(mtf_decode_identity(&[0, 3], 4).is_none());
        // Valid boundary: position exactly at the list edge.
        assert_eq!(mtf_decode_identity(&[0, 0, 2], 2), Some(vec![0, 1, 0]));
    }

    #[test]
    fn classic_roundtrip() {
        let stream = [3u32, 3, 1, 0, 1, 3, 2, 2, 2];
        let enc = mtf_encode_classic(&stream, 4).unwrap();
        assert_eq!(mtf_decode_classic(&enc, 4).unwrap(), stream);
    }

    #[test]
    fn classic_locality_yields_small_indices() {
        let stream = [5u32, 5, 5, 5, 6, 6, 6, 6];
        let enc = mtf_encode_classic(&stream, 16).unwrap();
        // After the first access, repeated symbols index 0.
        assert_eq!(&enc[1..4], &[0, 0, 0]);
        assert_eq!(&enc[5..], &[0, 0, 0]);
    }

    #[test]
    fn classic_rejects_out_of_alphabet() {
        assert!(mtf_encode_classic(&[4], 4).is_none());
        assert!(mtf_decode_classic(&[4], 4).is_none());
    }
}
