//! Description-keyed decode-table caching.
//!
//! Wire modules and DEFLATE streams re-transmit the same canonical code
//! descriptions over and over — every section of every module carries
//! its own length vector, and most of them repeat across sections and
//! across modules (the fixed DEFLATE trees being the extreme case).
//! Building a two-level lookup table is far more expensive than looking
//! one up, so decoders intern finished tables here, keyed by the exact
//! byte description they were built from: equal descriptions build
//! equal tables, which makes a cached table indistinguishable from a
//! fresh per-section rebuild.
//!
//! [`DescCache`] is a generation-stamped LRU behind a mutex. Lookups
//! bump a logical clock; when the map outgrows its capacity the
//! least-recently-used half is evicted in one sweep, so the steady
//! state oscillates between `capacity / 2` and `capacity` entries
//! instead of paying an eviction per insert. Hits, misses and
//! evictions accumulate in relaxed atomics — a lookup never touches
//! the telemetry registry — and are published as counters under the
//! cache's name (`<name>.hits`, `<name>.misses`, `<name>.evictions`)
//! when a decoder calls [`DescCache::flush_stats`] at the end of a
//! pass.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use codecomp_core::telemetry;

/// A table interned under its byte description.
#[derive(Debug)]
struct Slot<T> {
    value: Arc<T>,
    /// Logical time of the last hit (or the insert).
    stamp: u64,
    /// Cache generation the entry was interned under; entries from an
    /// older generation are treated as misses and dropped on contact.
    generation: u64,
}

#[derive(Debug)]
struct Inner<T> {
    map: BTreeMap<Box<[u8]>, Slot<T>>,
    clock: u64,
    generation: u64,
}

impl<T> Default for Inner<T> {
    fn default() -> Self {
        Inner {
            map: BTreeMap::new(),
            clock: 0,
            generation: 0,
        }
    }
}

/// A process-wide cache of decode tables keyed by the byte description
/// they were built from.
///
/// Only successful builds are cached: a description that fails to
/// build (oversubscribed lengths, say) is rebuilt — and re-rejected —
/// on every appearance, so corrupt inputs cannot pin cache slots.
#[derive(Debug)]
pub struct DescCache<T> {
    name: &'static str,
    capacity: usize,
    inner: Mutex<Inner<T>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<T> DescCache<T> {
    /// A cache publishing telemetry under `name`, holding at most
    /// `capacity` tables (halved on overflow).
    ///
    /// `const` so instances can live in `static`s without lazy-init
    /// wrappers.
    #[must_use]
    pub const fn new(name: &'static str, capacity: usize) -> Self {
        DescCache {
            name,
            capacity,
            inner: Mutex::new(Inner {
                map: BTreeMap::new(),
                clock: 0,
                generation: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // A panic mid-update cannot leave the map structurally torn
        // (every mutation is a single BTreeMap call), so poisoning is
        // safe to shrug off.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Publishes and drains the accumulated hit/miss/eviction counts.
    ///
    /// Lookups only touch relaxed atomics; this is the single point
    /// that renders counter names and walks the telemetry registry, so
    /// decoders call it once per pass rather than once per section.
    /// Counts are drained even when no collector is installed, so a
    /// later flush never attributes earlier uncollected activity.
    pub fn flush_stats(&self) {
        let hits = self.hits.swap(0, Ordering::Relaxed);
        let misses = self.misses.swap(0, Ordering::Relaxed);
        let evictions = self.evictions.swap(0, Ordering::Relaxed);
        if !telemetry::enabled() {
            return;
        }
        if hits > 0 {
            telemetry::counter_add(&format!("{}.hits", self.name), hits);
        }
        if misses > 0 {
            telemetry::counter_add(&format!("{}.misses", self.name), misses);
        }
        if evictions > 0 {
            telemetry::counter_add(&format!("{}.evictions", self.name), evictions);
        }
    }

    /// The cached table for `key`, building and interning it on a miss.
    ///
    /// The build runs outside the lock; if two threads race on the same
    /// fresh key both build and the later insert wins, which is
    /// harmless because equal descriptions build equal tables.
    ///
    /// # Errors
    ///
    /// Whatever `build` returns; failed builds are never cached.
    pub fn get_or_build<E>(
        &self,
        key: &[u8],
        build: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E> {
        {
            let mut inner = self.lock();
            inner.clock += 1;
            let clock = inner.clock;
            let generation = inner.generation;
            match inner.map.get_mut(key) {
                Some(slot) if slot.generation == generation => {
                    slot.stamp = clock;
                    let value = Arc::clone(&slot.value);
                    drop(inner);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(value);
                }
                Some(_) => {
                    // A stale generation is a miss; drop the carcass so
                    // it cannot pin a slot through the next eviction.
                    inner.map.remove(key);
                }
                None => {}
            }
        }
        let value = Arc::new(build()?);
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let generation = inner.generation;
        inner
            .map
            .insert(key.to_vec().into_boxed_slice(), Slot {
                value: Arc::clone(&value),
                stamp: clock,
                generation,
            });
        let evicted = if inner.map.len() > self.capacity {
            Self::evict_oldest_half(&mut inner)
        } else {
            0
        };
        drop(inner);
        self.misses.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        Ok(value)
    }

    /// Drops the least-recently-used half of the map (rounded up), so
    /// the survivors are the newer half by stamp. Returns the count.
    fn evict_oldest_half(inner: &mut Inner<T>) -> u64 {
        let mut stamps: Vec<u64> = inner.map.values().map(|s| s.stamp).collect();
        stamps.sort_unstable();
        let cutoff = stamps[stamps.len() / 2];
        let before = inner.map.len();
        inner.map.retain(|_, slot| slot.stamp > cutoff);
        (before - inner.map.len()) as u64
    }

    /// Empties the cache — the test hook that turns the next lookup of
    /// every description into a cold per-section rebuild.
    pub fn clear(&self) {
        self.lock().map.clear();
    }

    /// Starts a new cache generation in O(1): every existing entry
    /// becomes logically invisible (a lookup treats it as a miss and
    /// removes it lazily). The fuzzing campaign uses this as its
    /// per-case snapshot/reset — hostile inputs cannot warm state that
    /// a later case observes — without paying [`Self::clear`]'s full
    /// sweep on the hot path.
    pub fn bump_generation(&self) {
        self.lock().generation += 1;
    }

    /// The current generation stamp (starts at 0, bumped by
    /// [`Self::bump_generation`]).
    pub fn generation(&self) -> u64 {
        self.lock().generation
    }

    /// Number of entries interned under the *current* generation, i.e.
    /// the entries a lookup can actually hit.
    pub fn live_len(&self) -> usize {
        let inner = self.lock();
        inner
            .map
            .values()
            .filter(|s| s.generation == inner.generation)
            .count()
    }

    /// Number of cached tables.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Table(Vec<u8>);

    fn build_ok(key: &[u8]) -> Result<Table, ()> {
        Ok(Table(key.to_vec()))
    }

    #[test]
    fn hit_returns_same_table() {
        let cache: DescCache<Table> = DescCache::new("test.cache.a", 8);
        let a = cache.get_or_build(b"abc", || build_ok(b"abc")).unwrap();
        let b = cache.get_or_build(b"abc", || -> Result<Table, ()> {
            panic!("must not rebuild on a hit")
        });
        assert!(Arc::ptr_eq(&a, &b.unwrap()));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_distinct_tables() {
        let cache: DescCache<Table> = DescCache::new("test.cache.b", 8);
        let a = cache.get_or_build(b"a", || build_ok(b"a")).unwrap();
        let b = cache.get_or_build(b"b", || build_ok(b"b")).unwrap();
        assert_ne!(*a, *b);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn failed_builds_are_not_cached() {
        let cache: DescCache<Table> = DescCache::new("test.cache.c", 8);
        assert!(cache.get_or_build(b"bad", || Err::<Table, ()>(())).is_err());
        assert!(cache.is_empty());
        // The same key still reaches the builder next time.
        assert!(cache.get_or_build(b"bad", || build_ok(b"bad")).is_ok());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn overflow_evicts_the_older_half() {
        let cache: DescCache<Table> = DescCache::new("test.cache.d", 4);
        for i in 0..4u8 {
            cache.get_or_build(&[i], || build_ok(&[i])).unwrap();
        }
        // Touch key 0 so it is the most recently used.
        cache
            .get_or_build(&[0], || -> Result<Table, ()> { panic!("hit expected") })
            .unwrap();
        // The fifth insert overflows; the LRU half goes.
        cache.get_or_build(&[9], || build_ok(&[9])).unwrap();
        assert!(cache.len() <= 3, "len {} after eviction", cache.len());
        // The most recent entries survive.
        cache
            .get_or_build(&[9], || -> Result<Table, ()> { panic!("9 was just inserted") })
            .unwrap();
        cache
            .get_or_build(&[0], || -> Result<Table, ()> { panic!("0 was just touched") })
            .unwrap();
    }

    #[test]
    fn generation_bump_invalidates_without_sweeping() {
        let cache: DescCache<Table> = DescCache::new("test.cache.g", 8);
        let a = cache.get_or_build(b"k", || build_ok(b"k")).unwrap();
        assert_eq!(cache.live_len(), 1);
        cache.bump_generation();
        assert_eq!(cache.generation(), 1);
        // The stale entry is invisible: the builder runs again and the
        // new value replaces the carcass.
        assert_eq!(cache.live_len(), 0);
        let b = cache.get_or_build(b"k", || build_ok(b"k")).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "stale-generation entry was served");
        assert_eq!(cache.live_len(), 1);
        // Within the new generation it hits normally.
        let c = cache
            .get_or_build(b"k", || -> Result<Table, ()> { panic!("hit expected") })
            .unwrap();
        assert!(Arc::ptr_eq(&b, &c));
    }

    #[test]
    fn clear_empties() {
        let cache: DescCache<Table> = DescCache::new("test.cache.e", 8);
        cache.get_or_build(b"x", || build_ok(b"x")).unwrap();
        cache.clear();
        assert!(cache.is_empty());
    }
}
