//! Arithmetic coding (Witten–Neal–Cleary style).
//!
//! The paper's design space (§2) contrasts byte codes with arithmetic
//! codes, "which can compress better by coding for sequences longer than
//! individual symbols, but complicate direct interpretation" and "must be
//! expanded before interpretation". This module supplies that end of the
//! spectrum for the ablation experiments: a 32-bit integer arithmetic
//! coder usable with either semi-static [`FrequencyTable`]s or the
//! adaptive [`AdaptiveModel`].
//!
//! # Examples
//!
//! ```
//! use codecomp_coding::arith::{ArithEncoder, ArithDecoder};
//! use codecomp_coding::model::AdaptiveModel;
//!
//! # fn main() -> Result<(), codecomp_coding::CodingError> {
//! let data = [0usize, 1, 0, 0, 2, 0, 0, 1];
//! let mut model = AdaptiveModel::new(3);
//! let mut enc = ArithEncoder::new();
//! for &s in &data {
//!     let (lo, hi) = model.bounds(s)?;
//!     enc.encode(lo, hi, model.total())?;
//!     model.update(s)?;
//! }
//! let bytes = enc.finish();
//!
//! let mut model = AdaptiveModel::new(3);
//! let mut dec = ArithDecoder::new(&bytes)?;
//! for &expect in &data {
//!     let point = dec.decode_point(model.total())?;
//!     let (sym, lo, hi) = model.locate(point)?;
//!     dec.consume(lo, hi, model.total())?;
//!     model.update(sym)?;
//!     assert_eq!(sym, expect);
//! }
//! # Ok(())
//! # }
//! ```

use crate::bits::{BitReader, BitWriter};
use crate::model::{AdaptiveModel, FrequencyTable};
use crate::CodingError;

const PRECISION: u32 = 32;
const TOP: u64 = 1 << PRECISION;
const HALF: u64 = TOP / 2;
const QUARTER: u64 = TOP / 4;
const THREE_QUARTERS: u64 = 3 * QUARTER;
/// Frequency totals must stay below this so intervals never collapse.
pub const MAX_TOTAL: u32 = 1 << 16;

/// The encoding half of the arithmetic coder.
#[derive(Debug, Clone)]
pub struct ArithEncoder {
    low: u64,
    high: u64,
    pending: u64,
    out: BitWriter,
}

impl Default for ArithEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl ArithEncoder {
    /// Creates an encoder with the full `[0, 1)` interval.
    pub fn new() -> Self {
        Self {
            low: 0,
            high: TOP - 1,
            pending: 0,
            out: BitWriter::new(),
        }
    }

    /// Narrows the interval to the symbol spanning cumulative
    /// `[cum_low, cum_high)` out of `total`.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::InvalidModel`] if the bounds are empty,
    /// exceed `total`, or `total` is zero or above [`MAX_TOTAL`].
    pub fn encode(&mut self, cum_low: u32, cum_high: u32, total: u32) -> Result<(), CodingError> {
        if total == 0 || total > MAX_TOTAL || cum_low >= cum_high || cum_high > total {
            return Err(CodingError::InvalidModel(format!(
                "bad interval [{cum_low},{cum_high})/{total}"
            )));
        }
        let range = self.high - self.low + 1;
        self.high = self.low + range * u64::from(cum_high) / u64::from(total) - 1;
        self.low += range * u64::from(cum_low) / u64::from(total);
        loop {
            if self.high < HALF {
                self.emit(false);
            } else if self.low >= HALF {
                self.emit(true);
                self.low -= HALF;
                self.high -= HALF;
            } else if self.low >= QUARTER && self.high < THREE_QUARTERS {
                self.pending += 1;
                self.low -= QUARTER;
                self.high -= QUARTER;
            } else {
                break;
            }
            self.low *= 2;
            self.high = self.high * 2 + 1;
        }
        Ok(())
    }

    /// Encodes `symbol` against a semi-static table.
    ///
    /// # Errors
    ///
    /// As for [`ArithEncoder::encode`]; also
    /// [`CodingError::SymbolOutOfRange`] for a symbol outside the table.
    pub fn encode_with_table(
        &mut self,
        symbol: usize,
        table: &FrequencyTable,
    ) -> Result<(), CodingError> {
        if symbol >= table.len() {
            return Err(CodingError::SymbolOutOfRange {
                symbol,
                alphabet: table.len(),
            });
        }
        let (lo, hi) = table.bounds(symbol)?;
        self.encode(lo, hi, table.total())
    }

    fn emit(&mut self, bit: bool) {
        self.out.write_bit(bit);
        while self.pending > 0 {
            self.out.write_bit(!bit);
            self.pending -= 1;
        }
    }

    /// Flushes the final interval and returns the encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        // Two disambiguation bits select a quarter inside [low, high).
        self.pending += 1;
        if self.low < QUARTER {
            self.emit(false);
        } else {
            self.emit(true);
        }
        self.out.finish()
    }
}

/// The decoding half of the arithmetic coder.
#[derive(Debug, Clone)]
pub struct ArithDecoder<'a> {
    low: u64,
    high: u64,
    value: u64,
    input: BitReader<'a>,
}

impl<'a> ArithDecoder<'a> {
    /// Creates a decoder over encoder output.
    ///
    /// # Errors
    ///
    /// Never fails in practice: missing bits past the end of the stream
    /// are read as zeros, matching the encoder's implicit zero tail.
    pub fn new(bytes: &'a [u8]) -> Result<Self, CodingError> {
        let mut input = BitReader::new(bytes);
        let mut value = 0u64;
        for _ in 0..PRECISION {
            value = (value << 1) | u64::from(input.read_bit().unwrap_or(false));
        }
        Ok(Self {
            low: 0,
            high: TOP - 1,
            value,
            input,
        })
    }

    /// Returns the cumulative-frequency point of the next symbol under a
    /// model with the given `total`.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::InvalidModel`] for a zero or oversized total.
    pub fn decode_point(&self, total: u32) -> Result<u32, CodingError> {
        if total == 0 || total > MAX_TOTAL {
            return Err(CodingError::InvalidModel(format!("bad total {total}")));
        }
        let range = self.high - self.low + 1;
        let offset = self.value - self.low;
        let point = ((offset + 1) * u64::from(total) - 1) / range;
        Ok(point.min(u64::from(total) - 1) as u32)
    }

    /// Consumes the symbol spanning `[cum_low, cum_high)` out of `total`,
    /// mirroring the encoder's interval narrowing.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::InvalidModel`] for inconsistent bounds.
    pub fn consume(&mut self, cum_low: u32, cum_high: u32, total: u32) -> Result<(), CodingError> {
        if total == 0 || total > MAX_TOTAL || cum_low >= cum_high || cum_high > total {
            return Err(CodingError::InvalidModel(format!(
                "bad interval [{cum_low},{cum_high})/{total}"
            )));
        }
        let range = self.high - self.low + 1;
        self.high = self.low + range * u64::from(cum_high) / u64::from(total) - 1;
        self.low += range * u64::from(cum_low) / u64::from(total);
        loop {
            if self.high < HALF {
                // nothing
            } else if self.low >= HALF {
                self.low -= HALF;
                self.high -= HALF;
                self.value -= HALF;
            } else if self.low >= QUARTER && self.high < THREE_QUARTERS {
                self.low -= QUARTER;
                self.high -= QUARTER;
                self.value -= QUARTER;
            } else {
                break;
            }
            self.low *= 2;
            self.high = self.high * 2 + 1;
            self.value = (self.value << 1) | u64::from(self.input.read_bit().unwrap_or(false));
        }
        Ok(())
    }

    /// Decodes one symbol against a semi-static table.
    ///
    /// # Errors
    ///
    /// As for [`ArithDecoder::decode_point`] / [`ArithDecoder::consume`].
    pub fn decode_with_table(&mut self, table: &FrequencyTable) -> Result<usize, CodingError> {
        let point = self.decode_point(table.total())?;
        let sym = table.symbol_for(point)?;
        let (lo, hi) = table.bounds(sym)?;
        self.consume(lo, hi, table.total())?;
        Ok(sym)
    }
}

/// Compresses a byte slice with an order-0 adaptive model — a convenience
/// wrapper used by ablation experiments and tests.
pub fn compress_bytes_adaptive(data: &[u8]) -> Vec<u8> {
    let mut model = AdaptiveModel::new(256);
    let mut enc = ArithEncoder::new();
    for &b in data {
        let (lo, hi) = model
            .bounds(b as usize)
            .expect("byte symbols fit the 256-symbol model");
        enc.encode(lo, hi, model.total())
            .expect("adaptive model always yields valid intervals");
        model
            .update(b as usize)
            .expect("byte symbols fit the 256-symbol model");
    }
    enc.finish()
}

/// Inverts [`compress_bytes_adaptive`] given the original length.
///
/// # Errors
///
/// Returns an error if the stream is corrupt.
pub fn decompress_bytes_adaptive(bytes: &[u8], len: usize) -> Result<Vec<u8>, CodingError> {
    let mut model = AdaptiveModel::new(256);
    let mut dec = ArithDecoder::new(bytes)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let point = dec.decode_point(model.total())?;
        let (sym, lo, hi) = model.locate(point)?;
        dec.consume(lo, hi, model.total())?;
        model.update(sym)?;
        out.push(sym as u8);
    }
    Ok(out)
}

/// Budget-governed [`decompress_bytes_adaptive`]: `len` is checked
/// against the output-byte ceiling and charged as decode fuel up front.
///
/// # Errors
///
/// [`CodingError::LimitExceeded`] when the budget trips, plus the
/// corrupt-stream errors of the unbudgeted variant.
pub fn decompress_bytes_adaptive_budgeted(
    bytes: &[u8],
    len: usize,
    budget: &codecomp_core::Budget,
) -> Result<Vec<u8>, CodingError> {
    budget.check_output_bytes(len as u64)?;
    budget.charge_fuel(len as u64)?;
    decompress_bytes_adaptive(bytes, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FrequencyTable;

    #[test]
    fn adaptive_bytes_roundtrip() {
        let data = b"compression programs compress compressible code".to_vec();
        let packed = compress_bytes_adaptive(&data);
        assert_eq!(
            decompress_bytes_adaptive(&packed, data.len()).unwrap(),
            data
        );
    }

    #[test]
    fn adaptive_beats_raw_on_redundant_input() {
        let data = vec![b'a'; 10_000];
        let packed = compress_bytes_adaptive(&data);
        assert!(packed.len() < data.len() / 10, "got {} bytes", packed.len());
    }

    #[test]
    fn empty_input_roundtrip() {
        let packed = compress_bytes_adaptive(&[]);
        assert_eq!(
            decompress_bytes_adaptive(&packed, 0).unwrap(),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn semi_static_table_roundtrip() {
        let data = [0usize, 2, 2, 1, 0, 2, 2, 2, 1, 0];
        let mut counts = [0u64; 3];
        for &s in &data {
            counts[s] += 1;
        }
        let table = FrequencyTable::with_smoothing(&counts);
        let mut enc = ArithEncoder::new();
        for &s in &data {
            enc.encode_with_table(s, &table).unwrap();
        }
        let bytes = enc.finish();
        let mut dec = ArithDecoder::new(&bytes).unwrap();
        for &expect in &data {
            assert_eq!(dec.decode_with_table(&table).unwrap(), expect);
        }
    }

    #[test]
    fn encode_rejects_bad_intervals() {
        let mut enc = ArithEncoder::new();
        assert!(enc.encode(5, 5, 10).is_err());
        assert!(enc.encode(0, 11, 10).is_err());
        assert!(enc.encode(0, 1, 0).is_err());
        assert!(enc.encode(0, 1, MAX_TOTAL + 1).is_err());
    }

    #[test]
    fn decode_rejects_bad_total() {
        let dec = ArithDecoder::new(&[0u8; 8]).unwrap();
        assert!(dec.decode_point(0).is_err());
        assert!(dec.decode_point(MAX_TOTAL + 1).is_err());
    }

    #[test]
    fn single_symbol_alphabet() {
        // One symbol with the whole range still round-trips.
        let table = FrequencyTable::with_smoothing(&[7]);
        let mut enc = ArithEncoder::new();
        for _ in 0..50 {
            enc.encode_with_table(0, &table).unwrap();
        }
        let bytes = enc.finish();
        let mut dec = ArithDecoder::new(&bytes).unwrap();
        for _ in 0..50 {
            assert_eq!(dec.decode_with_table(&table).unwrap(), 0);
        }
    }

    #[test]
    fn close_to_entropy_on_skewed_source() {
        // P(0)=15/16, P(1)=1/16: entropy ~0.337 bits/symbol.
        let data: Vec<usize> = (0..16_000).map(|i| usize::from(i % 16 == 0)).collect();
        let table = FrequencyTable::with_smoothing(&[15_000, 1_000]);
        let mut enc = ArithEncoder::new();
        for &s in &data {
            enc.encode_with_table(s, &table).unwrap();
        }
        let bytes = enc.finish();
        let bits_per_symbol = bytes.len() as f64 * 8.0 / data.len() as f64;
        assert!(bits_per_symbol < 0.4, "got {bits_per_symbol} bits/symbol");
        // And it still decodes.
        let mut dec = ArithDecoder::new(&bytes).unwrap();
        for &expect in &data {
            assert_eq!(dec.decode_with_table(&table).unwrap(), expect);
        }
    }
}
