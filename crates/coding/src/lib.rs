//! Entropy-coding substrate for the PLDI '97 *Code Compression* reproduction.
//!
//! This crate collects the low-level coding machinery shared by the wire
//! format and BRISC compressors:
//!
//! - [`bits`]: MSB-first and LSB-first bit-stream readers and writers.
//! - [`huffman`]: canonical, length-limited Huffman coding.
//! - [`mtf`]: move-to-front transform, including the paper's
//!   "zero denotes a symbol not seen previously" variant.
//! - [`arith`]: a binary-free range coder with adaptive and semi-static
//!   models (the "arithmetic coding" end of the paper's design space).
//! - [`model`]: frequency tables and order-N finite-context (Markov)
//!   models used to predict the next operator or operand.
//!
//! # Examples
//!
//! Round-tripping a byte stream through canonical Huffman coding:
//!
//! ```
//! use codecomp_coding::huffman::{HuffmanEncoder, HuffmanDecoder};
//!
//! # fn main() -> Result<(), codecomp_coding::CodingError> {
//! let data = b"abracadabra abracadabra";
//! let mut freqs = [0u64; 256];
//! for &b in data {
//!     freqs[b as usize] += 1;
//! }
//! let encoder = HuffmanEncoder::from_frequencies(&freqs, 15)?;
//! let bits = encoder.encode_symbols(data.iter().map(|&b| b as usize))?;
//! let decoder = HuffmanDecoder::from_lengths(encoder.lengths())?;
//! let decoded: Vec<u8> = decoder
//!     .decode_exact(&bits, data.len())?
//!     .into_iter()
//!     .map(|s| s as u8)
//!     .collect();
//! assert_eq!(decoded, data);
//! # Ok(())
//! # }
//! ```

pub mod arith;
pub mod bits;
pub mod cache;
pub mod huffman;
pub mod model;
pub mod mtf;

use std::error::Error;
use std::fmt;

/// Errors produced by the coders in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodingError {
    /// The bit stream ended before a complete symbol was decoded.
    UnexpectedEof,
    /// A symbol outside the alphabet was presented for encoding.
    SymbolOutOfRange {
        /// The offending symbol.
        symbol: usize,
        /// The alphabet size of the coder.
        alphabet: usize,
    },
    /// A code table could not be constructed (e.g. over-subscribed or
    /// empty Kraft sum where codes were required).
    InvalidCodeTable(String),
    /// A decoded bit pattern did not correspond to any symbol.
    InvalidCode,
    /// The caller asked for a code length limit that cannot represent the
    /// alphabet (e.g. `2^limit < symbols`).
    LimitTooSmall {
        /// The requested maximum code length.
        limit: u8,
        /// Number of symbols with nonzero frequency.
        symbols: usize,
    },
    /// Arithmetic-coder model misuse, such as a zero-total model.
    InvalidModel(String),
    /// A decode budget tripped ([`codecomp_core::limits::DecodeLimits`]).
    LimitExceeded {
        /// Which limit tripped.
        what: String,
        /// The configured ceiling.
        limit: u64,
    },
}

impl fmt::Display for CodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodingError::UnexpectedEof => write!(f, "unexpected end of bit stream"),
            CodingError::SymbolOutOfRange { symbol, alphabet } => {
                write!(f, "symbol {symbol} out of range for alphabet of {alphabet}")
            }
            CodingError::InvalidCodeTable(msg) => write!(f, "invalid code table: {msg}"),
            CodingError::InvalidCode => write!(f, "bit pattern does not decode to any symbol"),
            CodingError::LimitTooSmall { limit, symbols } => {
                write!(f, "length limit {limit} too small for {symbols} symbols")
            }
            CodingError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
            CodingError::LimitExceeded { what, limit } => {
                write!(f, "limit exceeded: {what} (limit {limit})")
            }
        }
    }
}

impl Error for CodingError {}

impl From<CodingError> for codecomp_core::DecodeError {
    fn from(e: CodingError) -> Self {
        use codecomp_core::DecodeError;
        match e {
            CodingError::UnexpectedEof => DecodeError::Truncated,
            CodingError::LimitExceeded { what, limit } => DecodeError::LimitExceeded { what, limit },
            other => DecodeError::malformed(other.to_string()),
        }
    }
}

impl From<codecomp_core::DecodeError> for CodingError {
    fn from(e: codecomp_core::DecodeError) -> Self {
        use codecomp_core::DecodeError;
        match e {
            DecodeError::Truncated => CodingError::UnexpectedEof,
            DecodeError::LimitExceeded { what, limit } => CodingError::LimitExceeded { what, limit },
            other => CodingError::InvalidModel(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let errs: Vec<CodingError> = vec![
            CodingError::UnexpectedEof,
            CodingError::SymbolOutOfRange {
                symbol: 9,
                alphabet: 4,
            },
            CodingError::InvalidCodeTable("x".into()),
            CodingError::InvalidCode,
            CodingError::LimitTooSmall {
                limit: 1,
                symbols: 5,
            },
            CodingError::InvalidModel("y".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CodingError>();
    }
}
