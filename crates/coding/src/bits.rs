//! Bit-granular readers and writers.
//!
//! Two bit orders are provided because the two consumers in this
//! workspace disagree: canonical Huffman streams in the wire format are
//! written MSB-first ([`BitWriter`]/[`BitReader`]), while DEFLATE
//! mandates LSB-first packing ([`LsbBitWriter`]/[`LsbBitReader`]).

use crate::CodingError;

/// Writes bits into a byte buffer, most-significant bit first.
///
/// # Examples
///
/// ```
/// use codecomp_coding::bits::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bit(true);
/// let bytes = w.finish();
/// assert_eq!(bytes, vec![0b1011_0000]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits accumulated in `acc`, aligned to the high end.
    acc: u8,
    used: u8,
    total_bits: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | u8::from(bit);
        self.used += 1;
        self.total_bits += 1;
        if self.used == 8 {
            self.bytes.push(self.acc);
            self.acc = 0;
            self.used = 0;
        }
    }

    /// Appends the low `count` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn write_bits(&mut self, value: u64, count: u8) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        for i in (0..count).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.total_bits
    }

    /// Pads the final partial byte with zero bits and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.used > 0 {
            self.acc <<= 8 - self.used;
            self.bytes.push(self.acc);
        }
        self.bytes
    }
}

/// Reads bits from a byte slice, most-significant bit first.
///
/// # Examples
///
/// ```
/// use codecomp_coding::bits::BitReader;
///
/// let mut r = BitReader::new(&[0b1011_0000]);
/// assert_eq!(r.read_bits(3)?, 0b101);
/// assert!(r.read_bit()?);
/// # Ok::<(), codecomp_coding::CodingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next bit index within `bytes`.
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::UnexpectedEof`] when the stream is exhausted.
    pub fn read_bit(&mut self) -> Result<bool, CodingError> {
        let byte = self
            .bytes
            .get((self.pos / 8) as usize)
            .ok_or(CodingError::UnexpectedEof)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `count` bits, most significant first.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::UnexpectedEof`] when fewer than `count` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn read_bits(&mut self, count: u8) -> Result<u64, CodingError> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        let mut value = 0u64;
        for _ in 0..count {
            value = (value << 1) | u64::from(self.read_bit()?);
        }
        Ok(value)
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    /// Bits remaining in the underlying slice (including padding bits).
    pub fn remaining_bits(&self) -> u64 {
        (self.bytes.len() as u64 * 8).saturating_sub(self.pos)
    }
}

/// Writes bits LSB-first within each byte, as required by DEFLATE.
///
/// Multi-bit values are written least-significant bit first, matching
/// RFC 1951's packing of "non-Huffman" fields; Huffman codes must be fed
/// to [`LsbBitWriter::write_huffman_code`] which reverses them.
#[derive(Debug, Clone, Default)]
pub struct LsbBitWriter {
    bytes: Vec<u8>,
    /// 64-bit accumulator: `used` is always < 8 after a push, so a full
    /// 32-bit value shifted by at most 7 still fits.
    acc: u64,
    used: u8,
}

impl LsbBitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `count` bits of `value`, least significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn write_bits(&mut self, value: u32, count: u8) {
        assert!(count <= 32, "cannot write more than 32 bits at once");
        if count == 0 {
            return;
        }
        self.acc |= (u64::from(value) & ((1u64 << count) - 1)) << self.used;
        self.used += count;
        while self.used >= 8 {
            self.bytes.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.used -= 8;
        }
    }

    /// Appends a Huffman code of `len` bits: DEFLATE stores Huffman codes
    /// with their first (most significant) bit in the lowest position, so
    /// the code is bit-reversed before packing.
    pub fn write_huffman_code(&mut self, code: u32, len: u8) {
        let mut reversed = 0u32;
        for i in 0..len {
            if (code >> i) & 1 == 1 {
                reversed |= 1 << (len - 1 - i);
            }
        }
        self.write_bits(reversed, len);
    }

    /// Pads to a byte boundary with zero bits.
    pub fn align_to_byte(&mut self) {
        if self.used > 0 {
            self.bytes.push((self.acc & 0xFF) as u8);
            self.acc = 0;
            self.used = 0;
        }
    }

    /// Appends a whole byte (the stream must currently be byte-aligned
    /// only if exact layout matters; bits are packed continuously).
    pub fn write_aligned_bytes(&mut self, data: &[u8]) {
        self.align_to_byte();
        self.bytes.extend_from_slice(data);
    }

    /// Pads the final byte with zeros and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.bytes
    }
}

/// Reads bits LSB-first within each byte, as required by DEFLATE.
#[derive(Debug, Clone)]
pub struct LsbBitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
}

impl<'a> LsbBitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::UnexpectedEof`] when the stream is exhausted.
    pub fn read_bit(&mut self) -> Result<bool, CodingError> {
        let byte = self
            .bytes
            .get((self.pos / 8) as usize)
            .ok_or(CodingError::UnexpectedEof)?;
        let bit = (byte >> (self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `count` bits, least significant first.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::UnexpectedEof`] when fewer than `count` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn read_bits(&mut self, count: u8) -> Result<u32, CodingError> {
        assert!(count <= 32, "cannot read more than 32 bits at once");
        let mut value = 0u32;
        for i in 0..count {
            value |= u32::from(self.read_bit()?) << i;
        }
        Ok(value)
    }

    /// Skips forward to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Reads `len` whole bytes after aligning to a byte boundary.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::UnexpectedEof`] when fewer than `len` bytes remain.
    pub fn read_aligned_bytes(&mut self, len: usize) -> Result<&'a [u8], CodingError> {
        self.align_to_byte();
        let start = (self.pos / 8) as usize;
        let end = start.checked_add(len).ok_or(CodingError::UnexpectedEof)?;
        if end > self.bytes.len() {
            return Err(CodingError::UnexpectedEof);
        }
        self.pos += len as u64 * 8;
        Ok(&self.bytes[start..end])
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msb_roundtrip_various_widths() {
        let mut w = BitWriter::new();
        let values = [
            (0b1u64, 1u8),
            (0b1010, 4),
            (0xDEAD, 16),
            (0x1F2F3F4F5u64, 33),
            (0, 7),
        ];
        for &(v, n) in &values {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &values {
            assert_eq!(r.read_bits(n).unwrap(), v);
        }
    }

    #[test]
    fn msb_eof_detected() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bit(), Err(CodingError::UnexpectedEof));
    }

    #[test]
    fn msb_bit_len_tracks_writes() {
        let mut w = BitWriter::new();
        w.write_bits(0, 3);
        w.write_bits(1, 9);
        assert_eq!(w.bit_len(), 12);
        assert_eq!(w.finish().len(), 2);
    }

    #[test]
    fn lsb_roundtrip_various_widths() {
        let mut w = LsbBitWriter::new();
        let values = [
            (0b1u32, 1u8),
            (0b1010, 4),
            (0xDEAD, 16),
            (0x3F4F5, 20),
            (0, 7),
        ];
        for &(v, n) in &values {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = LsbBitReader::new(&bytes);
        for &(v, n) in &values {
            assert_eq!(r.read_bits(n).unwrap(), v);
        }
    }

    #[test]
    fn lsb_wide_pushes_roundtrip_at_exact_boundaries() {
        // The old ceiling was 24 bits; 24, 25 and 32 must all survive,
        // both byte-aligned and at the worst misalignment (7 bits used).
        for lead in [0u8, 7] {
            let mut w = LsbBitWriter::new();
            w.write_bits(0x55, lead);
            w.write_bits(0xAB_CDEF, 24);
            w.write_bits(0x1AB_CDEF, 25);
            w.write_bits(0xDEAD_BEEF, 32);
            w.write_bits(u32::MAX, 32);
            let bytes = w.finish();
            let mut r = LsbBitReader::new(&bytes);
            assert_eq!(r.read_bits(lead).unwrap(), u32::from(0x55 & ((1u16 << lead) - 1) as u8));
            assert_eq!(r.read_bits(24).unwrap(), 0xAB_CDEF);
            assert_eq!(r.read_bits(25).unwrap(), 0x1AB_CDEF);
            assert_eq!(r.read_bits(32).unwrap(), 0xDEAD_BEEF);
            assert_eq!(r.read_bits(32).unwrap(), u32::MAX);
        }
    }

    #[test]
    #[should_panic(expected = "more than 32 bits")]
    fn lsb_rejects_33_bit_push() {
        LsbBitWriter::new().write_bits(0, 33);
    }

    #[test]
    fn lsb_bit_order_matches_deflate_convention() {
        // Writing 0b1 as one bit must set the lowest bit of the first byte.
        let mut w = LsbBitWriter::new();
        w.write_bits(1, 1);
        assert_eq!(w.finish(), vec![0x01]);
    }

    #[test]
    fn lsb_huffman_code_is_reversed() {
        // A 3-bit Huffman code 0b110 must appear reversed: 0b011.
        let mut w = LsbBitWriter::new();
        w.write_huffman_code(0b110, 3);
        assert_eq!(w.finish(), vec![0b011]);
    }

    #[test]
    fn lsb_aligned_bytes_roundtrip() {
        let mut w = LsbBitWriter::new();
        w.write_bits(0b101, 3);
        w.write_aligned_bytes(b"hi");
        let bytes = w.finish();
        let mut r = LsbBitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_aligned_bytes(2).unwrap(), b"hi");
    }

    #[test]
    fn lsb_align_is_idempotent() {
        let mut r = LsbBitReader::new(&[0xAA, 0xBB]);
        r.read_bits(2).unwrap();
        r.align_to_byte();
        let p = r.bit_pos();
        r.align_to_byte();
        assert_eq!(r.bit_pos(), p);
        assert_eq!(r.read_bits(8).unwrap(), 0xBB);
    }
}
