//! Canonical, length-limited Huffman coding.
//!
//! The wire format Huffman-codes move-to-front indices (paper §3 step 4),
//! and DEFLATE needs length-limited canonical codes for its literal,
//! distance, and code-length alphabets. Both uses are served here:
//! [`build_code_lengths`] computes optimal code lengths under a maximum
//! length (heap-based Huffman with Kraft-sum repair), canonical codes are
//! assigned in the standard (length, symbol-order) fashion, and
//! [`HuffmanDecoder`] decodes with a canonical first-code table rather
//! than a pointer tree.

use crate::bits::{BitReader, BitWriter};
use crate::CodingError;
use codecomp_core::cov_hit;
use std::collections::BinaryHeap;

/// Computes optimal code lengths for `freqs`, limited to `max_len` bits.
///
/// Symbols with zero frequency receive length 0 (no code). If exactly one
/// symbol has nonzero frequency it receives length 1, matching DEFLATE's
/// convention that a code always consumes at least one bit.
///
/// The construction is ordinary heap-based Huffman; if the resulting tree
/// exceeds `max_len`, lengths are clamped and the Kraft sum repaired by
/// the standard "demote the deepest leaves" adjustment, which preserves
/// prefix-freeness at a negligible cost in optimality.
///
/// # Errors
///
/// Returns [`CodingError::LimitTooSmall`] when `2^max_len` is smaller
/// than the number of used symbols.
#[allow(clippy::needless_range_loop)] // index walks two parallel arrays
pub fn build_code_lengths(freqs: &[u64], max_len: u8) -> Result<Vec<u8>, CodingError> {
    let used: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
    let mut lengths = vec![0u8; freqs.len()];
    match used.len() {
        0 => return Ok(lengths),
        1 => {
            lengths[used[0]] = 1;
            return Ok(lengths);
        }
        n => {
            // A limit of 64+ bits can always host the alphabet.
            if (max_len as u32) < 64 && (1u64 << max_len) < n as u64 {
                return Err(CodingError::LimitTooSmall {
                    limit: max_len,
                    symbols: n,
                });
            }
        }
    }

    // Heap node: (weight, tie-break id, node index).
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        id: u32,
        index: usize,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for min-heap; tie-break on id for determinism.
            other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    // parent[i] for internal tree; leaves first, internals appended.
    let mut parent: Vec<usize> = vec![usize::MAX; used.len()];
    let mut heap = BinaryHeap::new();
    for (i, &sym) in used.iter().enumerate() {
        heap.push(Node {
            weight: freqs[sym],
            id: i as u32,
            index: i,
        });
    }
    let mut next_id = used.len() as u32;
    while heap.len() > 1 {
        let a = heap.pop().expect("heap has >1 element");
        let b = heap.pop().expect("heap has >1 element");
        let idx = parent.len();
        parent.push(usize::MAX);
        parent[a.index] = idx;
        parent[b.index] = idx;
        heap.push(Node {
            weight: a.weight.saturating_add(b.weight),
            id: next_id,
            index: idx,
        });
        next_id += 1;
    }

    // Depth of each leaf = chain length to the root.
    let mut depth = vec![0u8; used.len()];
    for i in 0..used.len() {
        let mut d = 0u16;
        let mut n = i;
        while parent[n] != usize::MAX {
            n = parent[n];
            d += 1;
        }
        depth[i] = d.min(255) as u8;
    }

    // Clamp to max_len and repair the Kraft sum.
    let mut counts = vec![0u64; max_len as usize + 1];
    for d in depth.iter_mut() {
        if *d > max_len {
            *d = max_len;
        }
        counts[*d as usize] += 1;
    }
    // Kraft sum measured in units of 2^-max_len.
    let unit = |len: u8| 1u64 << (max_len - len);
    let mut kraft: u64 = depth.iter().map(|&d| unit(d)).sum();
    let budget = 1u64 << max_len;
    // Over-subscribed: push some max-length leaves' siblings deeper by
    // shortening... the standard fix: repeatedly find a leaf at depth
    // < max_len with the greatest depth, and move one max-depth leaf to
    // depth+1 by pairing. Equivalent repair: while kraft > budget, take a
    // leaf with the smallest unit>1 contribution... Implement the classic
    // zlib-style repair on the counts histogram.
    if kraft > budget {
        // Demote: move nodes from max_len-1.. upward until it fits.
        while kraft > budget {
            // Find the deepest non-max level with at least one code and
            // demote one code from it to max (reduces kraft).
            let mut level = max_len - 1;
            while counts[level as usize] == 0 {
                level -= 1;
            }
            counts[level as usize] -= 1;
            counts[level as usize + 1] += 1;
            kraft -= unit(level) - unit(level + 1);
        }
        // Re-assign depths from the histogram: longest codes to the
        // rarest symbols. Sort used leaves by frequency descending.
        let mut order: Vec<usize> = (0..used.len()).collect();
        order.sort_by(|&a, &b| {
            freqs[used[b]]
                .cmp(&freqs[used[a]])
                .then(used[a].cmp(&used[b]))
        });
        let mut assign = Vec::with_capacity(used.len());
        for (len, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                assign.push(len as u8);
            }
        }
        assign.sort_unstable();
        for (leaf_rank, &leaf) in order.iter().enumerate() {
            depth[leaf] = assign[leaf_rank];
        }
    }

    // The demote loop can overshoot and leave the code incomplete when
    // the only demotable level sits well above max_len. Decoders reject
    // incomplete codes, so fall back to a flat complete code: with
    // L = ceil(log2 n), give 2^L - n symbols length L-1 and the rest
    // length L. Always complete, always within max_len.
    let kraft_now: u64 = depth.iter().map(|&d| unit(d)).sum();
    if kraft_now != budget {
        let n = used.len() as u64;
        let flat_len = (64 - (n - 1).leading_zeros()) as u8;
        let short = (1u64 << flat_len) - n;
        let mut order: Vec<usize> = (0..used.len()).collect();
        order.sort_by(|&a, &b| {
            freqs[used[b]]
                .cmp(&freqs[used[a]])
                .then(used[a].cmp(&used[b]))
        });
        for (rank, &leaf) in order.iter().enumerate() {
            depth[leaf] = if (rank as u64) < short {
                flat_len - 1
            } else {
                flat_len
            };
        }
    }

    for (i, &sym) in used.iter().enumerate() {
        lengths[sym] = depth[i];
    }
    Ok(lengths)
}

/// Assigns canonical codes for a code-length vector.
///
/// Returns `codes[sym]` valid when `lengths[sym] > 0`. Canonical order:
/// shorter codes first, and within a length, smaller symbols first.
///
/// # Errors
///
/// Returns [`CodingError::InvalidCodeTable`] if the lengths oversubscribe
/// the code space.
#[allow(clippy::needless_range_loop)] // Kraft accumulation is index-keyed
pub fn canonical_codes(lengths: &[u8]) -> Result<Vec<u32>, CodingError> {
    let max_len = lengths.iter().copied().max().unwrap_or(0);
    if max_len == 0 {
        return Ok(vec![0; lengths.len()]);
    }
    if max_len > 32 {
        return Err(CodingError::InvalidCodeTable(
            "code length exceeds 32".into(),
        ));
    }
    let mut count = vec![0u32; max_len as usize + 1];
    for &l in lengths {
        count[l as usize] += 1;
    }
    count[0] = 0;
    let mut code = 0u64;
    let mut next = vec![0u64; max_len as usize + 1];
    for len in 1..=max_len as usize {
        code = (code + u64::from(count[len - 1])) << 1;
        next[len] = code;
    }
    // Kraft check: the last code of the longest length must fit.
    let mut kraft = 0u64;
    for len in 1..=max_len as usize {
        kraft += u64::from(count[len]) << (max_len as usize - len);
    }
    if kraft > 1u64 << max_len {
        return Err(CodingError::InvalidCodeTable(
            "oversubscribed lengths".into(),
        ));
    }
    let mut codes = vec![0u32; lengths.len()];
    for (sym, &l) in lengths.iter().enumerate() {
        if l > 0 {
            codes[sym] = next[l as usize] as u32;
            next[l as usize] += 1;
        }
    }
    Ok(codes)
}

/// A canonical Huffman encoder over symbols `0..alphabet`.
#[derive(Debug, Clone)]
pub struct HuffmanEncoder {
    lengths: Vec<u8>,
    codes: Vec<u32>,
}

impl HuffmanEncoder {
    /// Builds an encoder from symbol frequencies with codes at most
    /// `max_len` bits.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`build_code_lengths`].
    pub fn from_frequencies(freqs: &[u64], max_len: u8) -> Result<Self, CodingError> {
        let lengths = build_code_lengths(freqs, max_len)?;
        Self::from_lengths(&lengths)
    }

    /// Builds an encoder from explicit code lengths.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`canonical_codes`].
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, CodingError> {
        let codes = canonical_codes(lengths)?;
        Ok(Self {
            lengths: lengths.to_vec(),
            codes,
        })
    }

    /// The code length per symbol (0 = symbol has no code).
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// The canonical code per symbol.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Encoded length in bits of `symbol`, if it has a code.
    pub fn bit_len(&self, symbol: usize) -> Option<u8> {
        match self.lengths.get(symbol) {
            Some(&l) if l > 0 => Some(l),
            _ => None,
        }
    }

    /// Appends the code for `symbol` to `w`.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::SymbolOutOfRange`] if `symbol` has no code.
    pub fn encode_into(&self, symbol: usize, w: &mut BitWriter) -> Result<(), CodingError> {
        match self.bit_len(symbol) {
            Some(len) => {
                w.write_bits(u64::from(self.codes[symbol]), len);
                Ok(())
            }
            None => Err(CodingError::SymbolOutOfRange {
                symbol,
                alphabet: self.lengths.len(),
            }),
        }
    }

    /// Encodes a symbol sequence into a fresh MSB-first bit buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::SymbolOutOfRange`] for any symbol lacking a code.
    pub fn encode_symbols<I>(&self, symbols: I) -> Result<Vec<u8>, CodingError>
    where
        I: IntoIterator<Item = usize>,
    {
        let mut w = BitWriter::new();
        let mut count: u64 = 0;
        for s in symbols {
            self.encode_into(s, &mut w)?;
            count += 1;
        }
        codecomp_core::telemetry::counter_add("coding.huffman.bits_emitted", w.bit_len());
        codecomp_core::telemetry::counter_add("coding.huffman.symbols", count);
        Ok(w.finish())
    }
}

/// Bits of the root lookup in a [`DecodeTable`]: codes up to this long
/// resolve in a single probe.
const ROOT_BITS: u32 = 10;
/// Table-entry flag marking a link to an overflow subtable.
const LINK: u32 = 1 << 31;
/// Symbols must fit the 26 bits an entry leaves after the link flag and
/// the 5-bit length field; larger alphabets fall back to the bit-walk.
const MAX_TABLE_SYMBOL: usize = 1 << 26;

/// Two-level lookup table over MSB-first canonical Huffman codes — the
/// same root-table + link-subtable technique as `flate::inflate`'s
/// DEFLATE decoder, transposed to the wire format's bit order (codes
/// are left-aligned in the peek window, so a root probe reads the top
/// [`ROOT_BITS`] of the reservoir and each code `c` of length `l` fills
/// the contiguous index range `c·2^(root-l) .. (c+1)·2^(root-l)`).
///
/// Entry layout (`u32`): `0` = no code reaches this slot;
/// direct = `symbol << 5 | len`; link = [`LINK`]` | base << 5 | sub_bits`
/// where `base` indexes the subtable and the next `sub_bits` bits after
/// the root index select within it.
#[derive(Debug, Clone)]
struct DecodeTable {
    entries: Vec<u32>,
    root_bits: u32,
}

/// A canonical Huffman decoder driven by first-code/first-index tables.
#[derive(Debug, Clone)]
pub struct HuffmanDecoder {
    max_len: u8,
    /// `first_code[len]`: canonical code value of the first code of `len` bits.
    first_code: Vec<u64>,
    /// `first_index[len]`: index into `sorted_symbols` of that first code.
    first_index: Vec<u32>,
    count: Vec<u32>,
    sorted_symbols: Vec<u32>,
    /// Fast path for [`Self::decode_exact`]; `None` when the code shape
    /// is outside the table's envelope (see [`DecodeTable::build`]).
    table: Option<DecodeTable>,
}

impl DecodeTable {
    /// Builds the table from the decoder's canonical description, or
    /// `None` when the code is outside the table envelope: empty codes
    /// and codes longer than 15 bits (the bit-walk handles those; 15
    /// covers every code this system emits) or absurdly large symbol
    /// values that would not fit an entry.
    fn build(
        max_len: u8,
        count: &[u32],
        first_code: &[u64],
        first_index: &[u32],
        sorted_symbols: &[u32],
    ) -> Option<Self> {
        if max_len == 0 || max_len > 15 {
            return None;
        }
        if sorted_symbols.iter().any(|&s| s as usize >= MAX_TABLE_SYMBOL) {
            return None;
        }
        let max_len = u32::from(max_len);
        let root_bits = ROOT_BITS.min(max_len);
        let mut entries = vec![0u32; 1 << root_bits];

        // Pass 1: direct entries, and the deepest code length under
        // each overflowing root prefix (which sets its subtable width).
        // BTreeMap keeps subtable layout deterministic across builds.
        let mut sub_max: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
        let for_each_code = |f: &mut dyn FnMut(u32, u32, u32)| {
            for len in 1..=max_len {
                let n = count[len as usize];
                for k in 0..n {
                    let code = first_code[len as usize] as u32 + k;
                    let sym = sorted_symbols[(first_index[len as usize] + k) as usize];
                    f(code, len, sym);
                }
            }
        };
        for_each_code(&mut |code, len, sym| {
            if len <= root_bits {
                let lo = (code as usize) << (root_bits - len);
                let hi = lo + (1usize << (root_bits - len));
                for e in &mut entries[lo..hi] {
                    *e = (sym << 5) | len;
                }
            } else {
                let prefix = code >> (len - root_bits);
                let deep = sub_max.entry(prefix).or_insert(0);
                *deep = (*deep).max(len - root_bits);
            }
        });

        // Pass 2: allocate subtables and point their root slots at them.
        for (&prefix, &sub_bits) in &sub_max {
            let base = entries.len() as u32;
            entries[prefix as usize] = LINK | (base << 5) | sub_bits;
            entries.extend(std::iter::repeat_n(0u32, 1 << sub_bits));
        }
        for_each_code(&mut |code, len, sym| {
            if len > root_bits {
                let prefix = code >> (len - root_bits);
                let link = entries[prefix as usize];
                let sub_bits = link & 0x1F;
                let base = ((link & !LINK) >> 5) as usize;
                let low = code & ((1 << (len - root_bits)) - 1);
                let pad = sub_bits - (len - root_bits);
                let lo = base + ((low as usize) << pad);
                let hi = lo + (1usize << pad);
                for e in &mut entries[lo..hi] {
                    *e = (sym << 5) | len;
                }
            }
        });
        Some(Self { entries, root_bits })
    }
}

/// A 64-bit MSB-first bit reservoir over a byte slice: the next unread
/// bit of the stream sits in bit 63 of `bits`. Bits past the end of the
/// stream read as zero, which [`HuffmanDecoder::decode_exact`] relies
/// on to keep truncation errors identical to the bit-walk's.
struct MsbReservoir<'a> {
    data: &'a [u8],
    /// Next byte not yet (fully) loaded into `bits`.
    next: usize,
    /// Left-aligned reservoir; top `count` bits are valid.
    bits: u64,
    count: u32,
}

impl<'a> MsbReservoir<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            next: 0,
            bits: 0,
            count: 0,
        }
    }

    /// Tops the reservoir up to ≥ 56 valid bits (all remaining bits
    /// near the end of the stream). The word-wide path may leave up to
    /// 7 loaded-but-uncounted lookahead bits after the counted region;
    /// re-ORing them later is idempotent because they re-load from the
    /// same bytes.
    #[inline]
    fn refill(&mut self) {
        if self.next + 8 <= self.data.len() {
            let chunk = u64::from_be_bytes(
                self.data[self.next..self.next + 8]
                    .try_into()
                    .expect("8 bytes"),
            );
            self.bits |= chunk >> self.count;
            self.next += ((63 - self.count) >> 3) as usize;
            self.count |= 56;
        } else {
            while self.count <= 56 && self.next < self.data.len() {
                self.bits |= u64::from(self.data[self.next]) << (56 - self.count);
                self.next += 1;
                self.count += 8;
            }
        }
    }

    /// Bits of real stream left (valid reservoir + unloaded bytes).
    #[inline]
    fn remaining_bits(&self) -> u64 {
        u64::from(self.count) + 8 * (self.data.len() - self.next) as u64
    }

    #[inline]
    fn consume(&mut self, n: u32) {
        self.bits <<= n;
        self.count -= n;
    }
}

impl HuffmanDecoder {
    /// Builds a decoder from the same code lengths used by the encoder.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::InvalidCodeTable`] for oversubscribed lengths.
    #[allow(clippy::needless_range_loop)] // Kraft accumulation is index-keyed
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, CodingError> {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        if max_len > 32 {
            cov_hit!("huffman.tables.len_over_32");
            return Err(CodingError::InvalidCodeTable(
                "code length exceeds 32".into(),
            ));
        }
        let mut count = vec![0u32; max_len as usize + 1];
        for &l in lengths {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        let mut kraft = 0u64;
        for len in 1..=max_len as usize {
            kraft += u64::from(count[len]) << (max_len as usize - len);
        }
        if max_len > 0 && kraft > 1u64 << max_len {
            cov_hit!("huffman.tables.oversubscribed");
            return Err(CodingError::InvalidCodeTable(
                "oversubscribed lengths".into(),
            ));
        }
        // Undersubscribed sets leave bit patterns that decode to nothing;
        // reject them so decode failures surface at table-build time. The
        // one legitimate incomplete shape is a degenerate single-code
        // table (one symbol, one bit), which semi-static coding of a
        // single-symbol stream produces.
        let used: u32 = count.iter().skip(1).sum();
        if max_len > 0 && kraft < 1u64 << max_len && used > 1 {
            cov_hit!("huffman.tables.undersubscribed");
            return Err(CodingError::InvalidCodeTable(
                "undersubscribed (incomplete) lengths".into(),
            ));
        }
        let mut first_code = vec![0u64; max_len as usize + 2];
        let mut first_index = vec![0u32; max_len as usize + 2];
        let mut code = 0u64;
        let mut index = 0u32;
        for len in 1..=max_len as usize {
            code = (code + u64::from(count[len - 1])) << 1;
            first_code[len] = code;
            first_index[len] = index;
            index += count[len];
        }
        // Symbols sorted by (length, symbol).
        let mut sorted_symbols = Vec::with_capacity(index as usize);
        for len in 1..=max_len {
            for (sym, &l) in lengths.iter().enumerate() {
                if l == len {
                    sorted_symbols.push(sym as u32);
                }
            }
        }
        let table = DecodeTable::build(max_len, &count, &first_code, &first_index, &sorted_symbols);
        Ok(Self {
            max_len,
            first_code,
            first_index,
            count,
            sorted_symbols,
            table,
        })
    }

    /// Decodes one symbol from `r`.
    ///
    /// # Errors
    ///
    /// [`CodingError::UnexpectedEof`] if the stream ends mid-code;
    /// [`CodingError::InvalidCode`] if no symbol matches.
    pub fn decode_one(&self, r: &mut BitReader<'_>) -> Result<usize, CodingError> {
        let mut code = 0u64;
        for len in 1..=self.max_len as usize {
            code = (code << 1) | u64::from(r.read_bit()?);
            let c = u64::from(self.count[len]);
            if c > 0 && code >= self.first_code[len] && code < self.first_code[len] + c {
                let idx = self.first_index[len] as u64 + (code - self.first_code[len]);
                return Ok(self.sorted_symbols[idx as usize] as usize);
            }
        }
        Err(CodingError::InvalidCode)
    }

    /// Decodes exactly `n` symbols from a byte buffer.
    ///
    /// Uses the two-level [`DecodeTable`] when the code fits its
    /// envelope (one or two probes per symbol against a 64-bit
    /// reservoir), falling back to the bit-walk otherwise. Both paths
    /// report identical errors on identical inputs.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::decode_one`] errors.
    pub fn decode_exact(&self, bytes: &[u8], n: usize) -> Result<Vec<usize>, CodingError> {
        let Some(table) = &self.table else {
            cov_hit!("huffman.decode.bit_walk");
            let mut r = BitReader::new(bytes);
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(self.decode_one(&mut r)?);
            }
            return Ok(out);
        };
        let mut src = MsbReservoir::new(bytes);
        let mut out = Vec::with_capacity(n);
        let max_len = u64::from(self.max_len);
        for _ in 0..n {
            src.refill();
            let idx = (src.bits >> (64 - table.root_bits)) as usize;
            let mut entry = table.entries[idx];
            if entry & LINK != 0 {
                let sub_bits = entry & 0x1F;
                let base = ((entry & !LINK) >> 5) as usize;
                let low = ((src.bits << table.root_bits) >> (64 - sub_bits)) as usize;
                entry = table.entries[base + low];
            }
            if entry == 0 {
                // No code matches any extension of the peeked bits. The
                // bit-walk would keep reading: it hits end-of-stream
                // first unless a full max_len bits remain.
                return Err(if src.remaining_bits() >= max_len {
                    cov_hit!("huffman.decode.invalid_code");
                    CodingError::InvalidCode
                } else {
                    cov_hit!("huffman.decode.eof_in_code");
                    CodingError::UnexpectedEof
                });
            }
            let len = entry & 0x1F;
            if len > src.count {
                // Matched only thanks to zero padding past the end.
                cov_hit!("huffman.decode.padded_match");
                return Err(CodingError::UnexpectedEof);
            }
            src.consume(len);
            out.push((entry >> 5) as usize);
        }
        Ok(out)
    }

    /// Budget-governed [`Self::decode_exact`]: `n` is checked against
    /// the stream-symbol ceiling and charged as decode fuel before any
    /// symbol is decoded.
    ///
    /// # Errors
    ///
    /// [`CodingError::LimitExceeded`] when the budget trips, plus all
    /// [`Self::decode_one`] errors.
    pub fn decode_exact_budgeted(
        &self,
        bytes: &[u8],
        n: usize,
        budget: &codecomp_core::Budget,
    ) -> Result<Vec<usize>, CodingError> {
        budget.check_stream_symbols(n as u64)?;
        budget.charge_fuel(n as u64)?;
        self.decode_exact(bytes, n)
    }
}

/// Process-wide decoder cache keyed by the raw code-length vector.
///
/// The length vector is the complete description of a canonical decoder,
/// so equal keys build byte-identical tables; capacity covers the full
/// working set of a multi-module corpus (tens of distinct codes) with
/// room to spare.
static DECODER_CACHE: crate::cache::DescCache<HuffmanDecoder> =
    crate::cache::DescCache::new("coding.huffman.table_cache", 256);

/// The cached decoder for `lengths`, building and interning it on first
/// sight. Semantically identical to [`HuffmanDecoder::from_lengths`] —
/// including its errors, which are never cached — but repeat
/// descriptions skip the table build entirely.
///
/// # Errors
///
/// As [`HuffmanDecoder::from_lengths`].
pub fn cached_decoder(lengths: &[u8]) -> Result<std::sync::Arc<HuffmanDecoder>, CodingError> {
    DECODER_CACHE.get_or_build(lengths, || HuffmanDecoder::from_lengths(lengths))
}

/// Empties the process-wide decoder cache (test hook for cold-cache
/// differential runs).
pub fn clear_decoder_cache() {
    DECODER_CACHE.clear();
}

/// Starts a new decoder-cache generation: O(1) lazy invalidation of
/// every interned decoder. The fuzz campaign's per-case reset.
pub fn bump_decoder_cache_generation() {
    DECODER_CACHE.bump_generation();
}

/// Publishes the decoder cache's accumulated hit/miss/eviction counts
/// to telemetry. Decoders call this once per pass.
pub fn flush_decoder_cache_stats() {
    DECODER_CACHE.flush_stats();
}

/// Total encoded size in bits of `freqs` under an optimal `max_len`-limited code.
///
/// Convenience for compressors estimating stream sizes without encoding.
///
/// # Errors
///
/// Propagates errors from [`build_code_lengths`].
pub fn encoded_size_bits(freqs: &[u64], max_len: u8) -> Result<u64, CodingError> {
    let lengths = build_code_lengths(freqs, max_len)?;
    Ok(freqs
        .iter()
        .zip(&lengths)
        .map(|(&f, &l)| f * u64::from(l))
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[usize], alphabet: usize) {
        let mut freqs = vec![0u64; alphabet];
        for &s in data {
            freqs[s] += 1;
        }
        let enc = HuffmanEncoder::from_frequencies(&freqs, 15).unwrap();
        let bits = enc.encode_symbols(data.iter().copied()).unwrap();
        let dec = HuffmanDecoder::from_lengths(enc.lengths()).unwrap();
        assert_eq!(dec.decode_exact(&bits, data.len()).unwrap(), data);
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip(&[0, 1, 2, 0, 0, 1, 3, 0, 0, 0], 4);
    }

    #[test]
    fn roundtrip_single_symbol() {
        roundtrip(&[5; 100], 8);
    }

    #[test]
    fn cached_decoder_matches_fresh_build() {
        let data: Vec<usize> = (0..64).map(|i| i % 7).collect();
        let mut freqs = vec![0u64; 7];
        for &s in &data {
            freqs[s] += 1;
        }
        let enc = HuffmanEncoder::from_frequencies(&freqs, 15).unwrap();
        let bits = enc.encode_symbols(data.iter().copied()).unwrap();
        let fresh = HuffmanDecoder::from_lengths(enc.lengths()).unwrap();
        let warm = cached_decoder(enc.lengths()).unwrap();
        assert_eq!(
            fresh.decode_exact(&bits, data.len()).unwrap(),
            warm.decode_exact(&bits, data.len()).unwrap()
        );
        // A second lookup hands back the interned table.
        let again = cached_decoder(enc.lengths()).unwrap();
        assert!(std::sync::Arc::ptr_eq(&warm, &again));
        // Bad descriptions keep failing through the cache.
        assert!(cached_decoder(&[1, 1, 1]).is_err());
        assert!(cached_decoder(&[1, 1, 1]).is_err());
    }

    #[test]
    fn roundtrip_uniform() {
        let data: Vec<usize> = (0..256).cycle().take(4096).collect();
        roundtrip(&data, 256);
    }

    #[test]
    fn empty_frequencies_yield_empty_code() {
        let lengths = build_code_lengths(&[0, 0, 0], 15).unwrap();
        assert_eq!(lengths, vec![0, 0, 0]);
    }

    #[test]
    fn skewed_distribution_gives_short_code_to_common_symbol() {
        let mut freqs = vec![1u64; 8];
        freqs[3] = 10_000;
        let lengths = build_code_lengths(&freqs, 15).unwrap();
        assert_eq!(
            *lengths.iter().filter(|&&l| l > 0).min().unwrap(),
            lengths[3]
        );
    }

    #[test]
    fn length_limit_is_respected() {
        // Fibonacci-ish frequencies force deep trees without a limit.
        let freqs: Vec<u64> = {
            let mut v = vec![1u64, 1];
            for i in 2..30 {
                let next = v[i - 1] + v[i - 2];
                v.push(next);
            }
            v
        };
        let lengths = build_code_lengths(&freqs, 10).unwrap();
        assert!(lengths.iter().all(|&l| l <= 10));
        // Still decodable.
        let enc = HuffmanEncoder::from_lengths(&lengths).unwrap();
        let data: Vec<usize> = (0..freqs.len()).collect();
        let bits = enc.encode_symbols(data.iter().copied()).unwrap();
        let dec = HuffmanDecoder::from_lengths(&lengths).unwrap();
        assert_eq!(dec.decode_exact(&bits, data.len()).unwrap(), data);
    }

    #[test]
    fn limit_too_small_is_error() {
        let freqs = vec![1u64; 9];
        assert_eq!(
            build_code_lengths(&freqs, 3),
            Err(CodingError::LimitTooSmall {
                limit: 3,
                symbols: 9
            })
        );
    }

    #[test]
    fn oversubscribed_lengths_rejected() {
        // Three codes of length 1 is impossible.
        assert!(matches!(
            HuffmanDecoder::from_lengths(&[1, 1, 1]),
            Err(CodingError::InvalidCodeTable(_))
        ));
        assert!(matches!(
            canonical_codes(&[1, 1, 1]),
            Err(CodingError::InvalidCodeTable(_))
        ));
    }

    #[test]
    fn canonical_codes_are_prefix_free_and_ordered() {
        let lengths = [2u8, 1, 3, 3];
        let codes = canonical_codes(&lengths).unwrap();
        // length-1 symbol gets 0; length-2 gets 10; length-3 get 110, 111.
        assert_eq!(codes[1], 0b0);
        assert_eq!(codes[0], 0b10);
        assert_eq!(codes[2], 0b110);
        assert_eq!(codes[3], 0b111);
    }

    #[test]
    fn encode_unknown_symbol_is_error() {
        let enc = HuffmanEncoder::from_frequencies(&[5, 5, 0], 15).unwrap();
        assert!(matches!(
            enc.encode_symbols([2usize]),
            Err(CodingError::SymbolOutOfRange { symbol: 2, .. })
        ));
    }

    #[test]
    fn encoded_size_matches_actual_encoding() {
        let data: Vec<usize> = b"the quick brown fox jumps over the lazy dog"
            .iter()
            .map(|&b| b as usize)
            .collect();
        let mut freqs = vec![0u64; 256];
        for &s in &data {
            freqs[s] += 1;
        }
        let bits = encoded_size_bits(&freqs, 15).unwrap();
        let enc = HuffmanEncoder::from_frequencies(&freqs, 15).unwrap();
        let buf = enc.encode_symbols(data.iter().copied()).unwrap();
        assert_eq!(buf.len() as u64, bits.div_ceil(8));
    }

    /// The pre-table decode path: one [`HuffmanDecoder::decode_one`]
    /// bit-walk per symbol. The oracle the table path must match.
    fn decode_walk(dec: &HuffmanDecoder, bytes: &[u8], n: usize) -> Result<Vec<usize>, CodingError> {
        let mut r = BitReader::new(bytes);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(dec.decode_one(&mut r)?);
        }
        Ok(out)
    }

    /// Deep, skewed lengths (up to the 15-bit limit) so the table needs
    /// link subtables. `1,2,…,14,15,15` is complete (Kraft sum exactly
    /// 1) and pushes five codes past the 10-bit root.
    fn deep_code_lengths() -> Vec<u8> {
        let mut lengths: Vec<u8> = (1..=15).collect();
        lengths.push(15);
        assert!(
            lengths.iter().any(|&l| l > ROOT_BITS as u8),
            "test premise: some codes must overflow the root table"
        );
        lengths
    }

    #[test]
    fn table_decode_matches_bit_walk_on_valid_streams() {
        let lengths = deep_code_lengths();
        let enc = HuffmanEncoder::from_lengths(&lengths).unwrap();
        let dec = HuffmanDecoder::from_lengths(&lengths).unwrap();
        assert!(dec.table.is_some(), "15-bit code must take the table path");
        let mut state = 0xDEADBEEFu64;
        let symbols: Vec<usize> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                loop {
                    let s = (state >> 33) as usize % lengths.len();
                    if lengths[s] > 0 {
                        break s;
                    }
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
            })
            .collect();
        let bits = enc.encode_symbols(symbols.iter().copied()).unwrap();
        assert_eq!(dec.decode_exact(&bits, symbols.len()).unwrap(), symbols);
        assert_eq!(
            dec.decode_exact(&bits, symbols.len()).unwrap(),
            decode_walk(&dec, &bits, symbols.len()).unwrap()
        );
    }

    #[test]
    fn table_decode_errors_match_bit_walk() {
        // Identical accept/reject behaviour on every truncation and on
        // corrupted bytes: same Ok values, same error variant.
        let lengths = deep_code_lengths();
        let enc = HuffmanEncoder::from_lengths(&lengths).unwrap();
        let dec = HuffmanDecoder::from_lengths(&lengths).unwrap();
        let symbols: Vec<usize> = (0..200)
            .map(|i| {
                let used: Vec<usize> =
                    (0..lengths.len()).filter(|&s| lengths[s] > 0).collect();
                used[i % used.len()]
            })
            .collect();
        let bits = enc.encode_symbols(symbols.iter().copied()).unwrap();
        for cut in 0..bits.len() {
            assert_eq!(
                dec.decode_exact(&bits[..cut], symbols.len()),
                decode_walk(&dec, &bits[..cut], symbols.len()),
                "truncation at byte {cut} diverged"
            );
        }
        let mut corrupt = bits.clone();
        for i in 0..corrupt.len() {
            corrupt[i] ^= 0xA5;
            assert_eq!(
                dec.decode_exact(&corrupt, symbols.len()),
                decode_walk(&dec, &corrupt, symbols.len()),
                "corruption at byte {i} diverged"
            );
            corrupt[i] ^= 0xA5;
        }
    }

    #[test]
    fn degenerate_single_code_table_errors_match() {
        // One symbol, one bit: the only legal incomplete code. A set
        // bit matches nothing at full length -> InvalidCode, same as
        // the walk; an empty stream mid-symbol is UnexpectedEof.
        let mut lengths = vec![0u8; 8];
        lengths[5] = 1;
        let dec = HuffmanDecoder::from_lengths(&lengths).unwrap();
        assert!(dec.table.is_some());
        assert_eq!(dec.decode_exact(&[0x00], 8).unwrap(), vec![5; 8]);
        assert_eq!(dec.decode_exact(&[0x80], 1), decode_walk(&dec, &[0x80], 1));
        assert!(matches!(
            dec.decode_exact(&[0x80], 1),
            Err(CodingError::InvalidCode)
        ));
        assert_eq!(dec.decode_exact(&[], 1), decode_walk(&dec, &[], 1));
        assert!(matches!(
            dec.decode_exact(&[], 1),
            Err(CodingError::UnexpectedEof)
        ));
        // 9th symbol from a 1-byte stream runs off the end.
        assert_eq!(dec.decode_exact(&[0x00], 9), decode_walk(&dec, &[0x00], 9));
    }

    #[test]
    fn oversized_code_lengths_fall_back_to_bit_walk() {
        // A 20-bit code is legal for the decoder but outside the table
        // envelope; decode_exact must still work via decode_one.
        let mut lengths: Vec<u8> = (1..=20).collect();
        lengths.push(20);
        let enc = HuffmanEncoder::from_lengths(&lengths).unwrap();
        let dec = HuffmanDecoder::from_lengths(&lengths).unwrap();
        assert!(dec.table.is_none());
        let symbols: Vec<usize> = (0..lengths.len()).filter(|&s| lengths[s] > 0).collect();
        let bits = enc.encode_symbols(symbols.iter().copied()).unwrap();
        assert_eq!(dec.decode_exact(&bits, symbols.len()).unwrap(), symbols);
    }

    #[test]
    fn huffman_beats_fixed_width_on_skewed_input() {
        let mut freqs = vec![1u64; 16];
        freqs[0] = 1000;
        let bits = encoded_size_bits(&freqs, 15).unwrap();
        let total: u64 = freqs.iter().sum();
        assert!(bits < total * 4, "huffman {bits} >= fixed {}", total * 4);
    }
}
