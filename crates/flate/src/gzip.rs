//! gzip member framing (RFC 1952).

use crate::crc32::crc32;
use crate::deflate::{deflate_compress, CompressionLevel};
use crate::inflate::{inflate, inflate_budgeted};
use crate::FlateError;
use codecomp_core::{cov_hit, Budget};

const MAGIC: [u8; 2] = [0x1F, 0x8B];
const CM_DEFLATE: u8 = 8;

const FTEXT: u8 = 1 << 0;
const FHCRC: u8 = 1 << 1;
const FEXTRA: u8 = 1 << 2;
const FNAME: u8 = 1 << 3;
const FCOMMENT: u8 = 1 << 4;

/// Compresses `data` into a single-member gzip file image.
///
/// # Examples
///
/// ```
/// use codecomp_flate::{gzip_compress, gzip_decompress, CompressionLevel};
///
/// let packed = gzip_compress(b"data data data", CompressionLevel::Best);
/// assert_eq!(gzip_decompress(&packed)?, b"data data data");
/// # Ok::<(), codecomp_flate::FlateError>(())
/// ```
pub fn gzip_compress(data: &[u8], level: CompressionLevel) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 32);
    out.extend_from_slice(&MAGIC);
    out.push(CM_DEFLATE);
    out.push(0); // FLG: no extras
    out.extend_from_slice(&[0, 0, 0, 0]); // MTIME: unknown
    out.push(match level {
        CompressionLevel::Best => 2,
        CompressionLevel::Default => 0,
        CompressionLevel::Fast => 4,
    }); // XFL
    out.push(255); // OS: unknown
    out.extend_from_slice(&deflate_compress(data, level));
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// Decompresses a single-member gzip file image, verifying the trailer.
///
/// # Errors
///
/// [`FlateError::BadHeader`] for malformed headers,
/// [`FlateError::ChecksumMismatch`] when the CRC trailer disagrees, and
/// DEFLATE errors from the body.
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>, FlateError> {
    gzip_decompress_governed(data, None)
}

/// Budget-governed [`gzip_decompress`]: the DEFLATE body is decoded
/// through [`inflate_budgeted`], so the budget's output ceiling and
/// fuel meter apply.
///
/// # Errors
///
/// As [`gzip_decompress`], plus [`FlateError::LimitExceeded`] when the
/// budget trips.
pub fn gzip_decompress_budgeted(data: &[u8], budget: &Budget) -> Result<Vec<u8>, FlateError> {
    gzip_decompress_governed(data, Some(budget))
}

fn gzip_decompress_governed(data: &[u8], budget: Option<&Budget>) -> Result<Vec<u8>, FlateError> {
    if data.len() < 18 {
        cov_hit!("gzip.header.short");
        return Err(FlateError::BadHeader(
            "shorter than minimal gzip member".into(),
        ));
    }
    if data[0..2] != MAGIC {
        cov_hit!("gzip.header.bad_magic");
        return Err(FlateError::BadHeader("bad magic".into()));
    }
    if data[2] != CM_DEFLATE {
        cov_hit!("gzip.header.bad_method");
        return Err(FlateError::BadHeader(format!(
            "unsupported method {}",
            data[2]
        )));
    }
    let flg = data[3];
    if flg & !(FTEXT | FHCRC | FEXTRA | FNAME | FCOMMENT) != 0 {
        cov_hit!("gzip.header.reserved_flags");
        return Err(FlateError::BadHeader("reserved flag bits set".into()));
    }
    let mut pos = 10usize;
    if flg & FEXTRA != 0 {
        cov_hit!("gzip.header.extra_field");
        if pos + 2 > data.len() {
            return Err(FlateError::Truncated);
        }
        let xlen = usize::from(u16::from_le_bytes([data[pos], data[pos + 1]]));
        pos += 2;
        if xlen > data.len() - pos {
            return Err(FlateError::Truncated);
        }
        pos += xlen;
    }
    for flag in [FNAME, FCOMMENT] {
        if flg & flag != 0 {
            cov_hit!("gzip.header.zstring_field");
            let end = data
                .get(pos..)
                .and_then(|rest| rest.iter().position(|&b| b == 0))
                .ok_or(FlateError::Truncated)?;
            pos += end + 1;
        }
    }
    if flg & FHCRC != 0 {
        pos += 2;
    }
    if pos + 8 > data.len() {
        return Err(FlateError::Truncated);
    }
    let body = &data[pos..data.len() - 8];
    let decoded = match budget {
        Some(b) => inflate_budgeted(body, b)?,
        None => inflate(body)?,
    };
    let trailer = &data[data.len() - 8..];
    let stored_crc = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let stored_len = u32::from_le_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);
    let actual_crc = crc32(&decoded);
    if stored_crc != actual_crc {
        cov_hit!("gzip.trailer.crc_mismatch");
        return Err(FlateError::ChecksumMismatch {
            expected: stored_crc,
            actual: actual_crc,
        });
    }
    if stored_len != decoded.len() as u32 {
        cov_hit!("gzip.trailer.isize_mismatch");
        return Err(FlateError::Corrupt("ISIZE mismatch".into()));
    }
    cov_hit!("gzip.decode.ok");
    Ok(decoded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let data = b"gzip framing around deflate".repeat(10);
        let packed = gzip_compress(&data, CompressionLevel::Best);
        assert_eq!(gzip_decompress(&packed).unwrap(), data);
    }

    #[test]
    fn roundtrip_empty() {
        let packed = gzip_compress(b"", CompressionLevel::Fast);
        assert_eq!(gzip_decompress(&packed).unwrap(), b"");
    }

    #[test]
    fn rejects_bad_magic() {
        let mut packed = gzip_compress(b"x", CompressionLevel::Fast);
        packed[0] = 0;
        assert!(matches!(
            gzip_decompress(&packed),
            Err(FlateError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_bad_method() {
        let mut packed = gzip_compress(b"x", CompressionLevel::Fast);
        packed[2] = 7;
        assert!(matches!(
            gzip_decompress(&packed),
            Err(FlateError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_corrupt_crc() {
        let data = b"checksum protected".repeat(5);
        let mut packed = gzip_compress(&data, CompressionLevel::Best);
        let n = packed.len();
        packed[n - 5] ^= 0xFF; // flip a CRC byte
        assert!(matches!(
            gzip_decompress(&packed),
            Err(FlateError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_truncation() {
        let data = b"will be truncated".repeat(20);
        let packed = gzip_compress(&data, CompressionLevel::Best);
        assert!(gzip_decompress(&packed[..packed.len() - 9]).is_err());
        assert!(gzip_decompress(&packed[..10]).is_err());
    }

    #[test]
    fn parses_member_with_name_field() {
        // Hand-build a member with FNAME set.
        let data = b"named member";
        let bare = gzip_compress(data, CompressionLevel::Fast);
        let mut with_name = Vec::new();
        with_name.extend_from_slice(&bare[..3]);
        with_name.push(FNAME);
        with_name.extend_from_slice(&bare[4..10]);
        with_name.extend_from_slice(b"file.txt\0");
        with_name.extend_from_slice(&bare[10..]);
        assert_eq!(gzip_decompress(&with_name).unwrap(), data);
    }
}
