//! A deliberately naive RFC 1951 reference decoder.
//!
//! This is the oracle for the table-driven fast path in
//! [`crate::inflate`], in the spirit of Senjak & Hofmann's verified
//! Coq Deflate: slow but obviously correct, written straight off the
//! RFC. Its value depends on **independence** — it shares *no* decoding
//! machinery with the production path:
//!
//! - its own bit reader ([`Bits`]), one bit at a time, no reservoir;
//! - its own canonical-code representation: a flat list of
//!   `(symbol, length, code)` triples searched linearly per bit — no
//!   lookup tables, no per-length index arithmetic;
//! - its own header/stored/match handling, transcribed from the RFC
//!   sections rather than from `inflate.rs`.
//!
//! The only shared items are the [`FlateError`] taxonomy (so the
//! differential harness can compare error categories) and the RFC's
//! own constant tables, which both decoders must transcribe anyway.
//!
//! Both decoders classify end-of-stream identically: a Huffman symbol
//! is resolved against the zero-padded tail, `Truncated` if the
//! matched code needs more bits than the stream holds, `Corrupt` if no
//! code can match at all (possible only under a degenerate distance
//! table). `tests/differential.rs` asserts byte-identical output on
//! accept and same-category errors on reject.

use crate::FlateError;

/// Base lengths and extra-bit counts for length codes 257..=285
/// (RFC 1951 §3.2.5), transcribed independently of `deflate.rs`.
const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LEN_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// Base distances and extra-bit counts for distance codes 0..=29.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12_289, 16_385, 24_577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
/// Code-length-code transmission order (RFC 1951 §3.2.7).
const CL_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// One-bit-at-a-time LSB-first reader over a byte slice.
struct Bits<'a> {
    data: &'a [u8],
    /// Absolute bit index into `data`.
    pos: usize,
}

impl<'a> Bits<'a> {
    fn new(data: &'a [u8]) -> Self {
        Bits { data, pos: 0 }
    }

    /// The next bit, or `None` past the end of the stream.
    fn next(&mut self) -> Option<u8> {
        let byte = *self.data.get(self.pos / 8)?;
        let bit = (byte >> (self.pos % 8)) & 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads an `n`-bit little-endian integer field.
    fn field(&mut self, n: u8) -> Result<u32, FlateError> {
        let mut v = 0u32;
        for i in 0..n {
            let b = self.next().ok_or(FlateError::Truncated)?;
            v |= u32::from(b) << i;
        }
        Ok(v)
    }

    /// Skips to the next byte boundary and copies `n` whole bytes.
    fn bytes(&mut self, n: usize) -> Result<Vec<u8>, FlateError> {
        self.pos = self.pos.div_ceil(8) * 8;
        let start = self.pos / 8;
        let end = start.checked_add(n).ok_or(FlateError::Truncated)?;
        if end > self.data.len() {
            return Err(FlateError::Truncated);
        }
        self.pos = end * 8;
        Ok(self.data[start..end].to_vec())
    }
}

/// A canonical Huffman code as a bare list of `(symbol, length, code)`
/// triples, searched linearly — no tables, no indices.
///
/// The linear scan is the semantic definition; `by_len_code` memoizes
/// it as a `(length, code-prefix) → symbol` map so the per-bit probe in
/// [`Code::decode`] is a hash lookup instead of a pass over every
/// entry. `lookup_scan` keeps the original scan alive as the oracle
/// the memo is tested against, bit pattern by bit pattern.
struct Code {
    /// Read only by the oracle scan, which production decode paths
    /// never call — the memo answers every probe.
    #[cfg_attr(not(test), allow(dead_code))]
    entries: Vec<(u16, u8, u16)>,
    by_len_code: std::collections::HashMap<(u8, u16), u16>,
}

impl Code {
    /// Builds the canonical code for `lengths` per RFC 1951 §3.2.2,
    /// validating the Kraft sum. `degenerate_ok` admits the §3.2.7
    /// distance-table carve-out: at most one code present.
    fn build(lengths: &[u8], degenerate_ok: bool) -> Result<Code, FlateError> {
        let mut used = 0u64;
        let mut kraft = 0u64; // in units of 2^-15
        for &l in lengths {
            if l > 15 {
                return Err(FlateError::Corrupt("code length > 15".into()));
            }
            if l > 0 {
                used += 1;
                kraft += 1 << (15 - u32::from(l));
            }
        }
        if kraft > 1 << 15 {
            return Err(FlateError::Corrupt("oversubscribed code lengths".into()));
        }
        if kraft < 1 << 15 && !(degenerate_ok && used <= 1) {
            return Err(FlateError::Corrupt(
                "incomplete (undersubscribed) code lengths".into(),
            ));
        }
        // §3.2.2: count codes per length, then assign numerically
        // increasing codes in symbol order within each length.
        let mut bl_count = [0u16; 16];
        for &l in lengths {
            bl_count[l as usize] += 1;
        }
        bl_count[0] = 0;
        let mut next_code = [0u16; 16];
        let mut code = 0u16;
        for bits in 1..16 {
            code = (code + bl_count[bits - 1]) << 1;
            next_code[bits] = code;
        }
        let mut entries = Vec::new();
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                entries.push((sym as u16, l, next_code[l as usize]));
                next_code[l as usize] += 1;
            }
        }
        // Canonical construction assigns each (length, code) pair at
        // most once, so the memo can never shadow a competing entry.
        let by_len_code = entries.iter().map(|&(sym, l, code)| ((l, code), sym)).collect();
        Ok(Code {
            entries,
            by_len_code,
        })
    }

    /// The original linear probe: the symbol whose code of length
    /// `len` equals `acc`, scanning every entry. Kept as the oracle
    /// for the memoized lookup.
    #[cfg_attr(not(test), allow(dead_code))]
    fn lookup_scan(&self, len: u8, acc: u16) -> Option<u16> {
        self.entries
            .iter()
            .find(|&&(_, l, code)| l == len && code == acc)
            .map(|&(sym, _, _)| sym)
    }

    /// Walks the stream one bit at a time until a code matches.
    ///
    /// Bits past the end of the stream read as zero; if the code that
    /// finally matches used any such padding the stream was cut mid-
    /// symbol (`Truncated`). If no code matches 15 real or padded bits,
    /// no continuation of the stream could ever decode (`Corrupt`).
    fn decode(&self, bits: &mut Bits<'_>) -> Result<u16, FlateError> {
        let mut acc = 0u16;
        let mut padded = false;
        for len in 1..=15u8 {
            let bit = match bits.next() {
                Some(b) => b,
                None => {
                    padded = true;
                    0
                }
            };
            acc = (acc << 1) | u16::from(bit);
            if let Some(&sym) = self.by_len_code.get(&(len, acc)) {
                if padded {
                    return Err(FlateError::Truncated);
                }
                return Ok(sym);
            }
        }
        Err(FlateError::Corrupt("invalid Huffman code".into()))
    }
}

/// The fixed literal/length code of §3.2.6.
fn fixed_litlen() -> Result<Code, FlateError> {
    let mut lengths = [8u8; 288];
    for l in &mut lengths[144..256] {
        *l = 9;
    }
    for l in &mut lengths[256..280] {
        *l = 7;
    }
    Code::build(&lengths, false)
}

/// The fixed distance code: 32 five-bit codes (30–31 never valid in
/// data but participate in construction).
fn fixed_dist() -> Result<Code, FlateError> {
    Code::build(&[5u8; 32], false)
}

/// Decompresses a raw DEFLATE stream with the naive reference decoder.
///
/// # Errors
///
/// As [`crate::inflate`]: `Truncated`, `Corrupt`, or `LimitExceeded`
/// against the default [`crate::MAX_OUTPUT`] ceiling.
pub fn reference_inflate(data: &[u8]) -> Result<Vec<u8>, FlateError> {
    reference_inflate_with_limit(data, crate::inflate::MAX_OUTPUT)
}

/// Budget-governed [`reference_inflate`]: mirrors
/// [`crate::inflate::inflate_budgeted`] — the output ceiling comes from
/// the budget and fuel is charged one unit per output byte plus one per
/// block, so the two implementations stay differentially comparable
/// under identical budgets.
///
/// # Errors
///
/// As [`reference_inflate`], plus [`FlateError::LimitExceeded`] when
/// the budget trips.
pub fn reference_inflate_budgeted(
    data: &[u8],
    budget: &codecomp_core::Budget,
) -> Result<Vec<u8>, FlateError> {
    let max_output = usize::try_from(budget.limits().max_output_bytes).unwrap_or(usize::MAX);
    let mut bits = Bits::new(data);
    let mut out = Vec::new();
    loop {
        let block_start = out.len();
        let bfinal = bits.field(1)?;
        let btype = bits.field(2)?;
        match btype {
            0b00 => stored_block(&mut bits, &mut out, max_output)?,
            0b01 => {
                let lit = fixed_litlen()?;
                let dist = fixed_dist()?;
                coded_block(&mut bits, &lit, &dist, &mut out, max_output)?;
            }
            0b10 => {
                let (lit, dist) = dynamic_codes(&mut bits)?;
                coded_block(&mut bits, &lit, &dist, &mut out, max_output)?;
            }
            _ => return Err(FlateError::Corrupt("reserved block type 11".into())),
        }
        budget.charge_fuel(1 + (out.len() - block_start) as u64)?;
        if bfinal == 1 {
            budget.check_output_bytes(out.len() as u64)?;
            return Ok(out);
        }
    }
}

/// [`reference_inflate`] with an explicit output ceiling.
///
/// # Errors
///
/// [`FlateError::LimitExceeded`] once the output would pass
/// `max_output`; otherwise as [`reference_inflate`].
pub fn reference_inflate_with_limit(
    data: &[u8],
    max_output: usize,
) -> Result<Vec<u8>, FlateError> {
    let mut bits = Bits::new(data);
    let mut out = Vec::new();
    loop {
        let bfinal = bits.field(1)?;
        let btype = bits.field(2)?;
        match btype {
            0b00 => stored_block(&mut bits, &mut out, max_output)?,
            0b01 => {
                let lit = fixed_litlen()?;
                let dist = fixed_dist()?;
                coded_block(&mut bits, &lit, &dist, &mut out, max_output)?;
            }
            0b10 => {
                let (lit, dist) = dynamic_codes(&mut bits)?;
                coded_block(&mut bits, &lit, &dist, &mut out, max_output)?;
            }
            _ => return Err(FlateError::Corrupt("reserved block type 11".into())),
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

/// §3.2.4: a stored (uncompressed) block.
fn stored_block(
    bits: &mut Bits<'_>,
    out: &mut Vec<u8>,
    max_output: usize,
) -> Result<(), FlateError> {
    bits.pos = bits.pos.div_ceil(8) * 8;
    let len = bits.field(16)? as u16;
    let nlen = bits.field(16)? as u16;
    if len != !nlen {
        return Err(FlateError::Corrupt("stored block LEN/NLEN mismatch".into()));
    }
    if usize::from(len) > max_output.saturating_sub(out.len()) {
        return Err(FlateError::LimitExceeded {
            limit: max_output as u64,
        });
    }
    let payload = bits.bytes(usize::from(len))?;
    out.extend_from_slice(&payload);
    Ok(())
}

/// §3.2.7: reads the code-length code, then the literal/length and
/// distance code lengths it encodes.
fn dynamic_codes(bits: &mut Bits<'_>) -> Result<(Code, Code), FlateError> {
    let hlit = bits.field(5)? as usize + 257;
    let hdist = bits.field(5)? as usize + 1;
    let hclen = bits.field(4)? as usize + 4;
    let mut cl_lengths = [0u8; 19];
    for &slot in CL_ORDER.iter().take(hclen) {
        cl_lengths[slot] = bits.field(3)? as u8;
    }
    let cl_code = Code::build(&cl_lengths, false)?;
    let mut lengths: Vec<u8> = Vec::with_capacity(hlit + hdist);
    while lengths.len() < hlit + hdist {
        match cl_code.decode(bits)? {
            sym @ 0..=15 => lengths.push(sym as u8),
            16 => {
                let prev = *lengths
                    .last()
                    .ok_or_else(|| FlateError::Corrupt("repeat with no previous length".into()))?;
                let n = bits.field(2)? + 3;
                lengths.extend(std::iter::repeat_n(prev, n as usize));
            }
            17 => {
                let n = bits.field(3)? + 3;
                lengths.extend(std::iter::repeat_n(0, n as usize));
            }
            18 => {
                let n = bits.field(7)? + 11;
                lengths.extend(std::iter::repeat_n(0, n as usize));
            }
            _ => return Err(FlateError::Corrupt("invalid code-length symbol".into())),
        }
    }
    if lengths.len() != hlit + hdist {
        return Err(FlateError::Corrupt("code length overrun".into()));
    }
    let lit = Code::build(&lengths[..hlit], false)?;
    let dist = Code::build(&lengths[hlit..], true)?;
    Ok((lit, dist))
}

/// §3.2.3: the literal/match decode loop shared by fixed and dynamic
/// blocks.
fn coded_block(
    bits: &mut Bits<'_>,
    lit: &Code,
    dist: &Code,
    out: &mut Vec<u8>,
    max_output: usize,
) -> Result<(), FlateError> {
    loop {
        let sym = lit.decode(bits)?;
        if sym < 256 {
            if out.len() >= max_output {
                return Err(FlateError::LimitExceeded {
                    limit: max_output as u64,
                });
            }
            out.push(sym as u8);
        } else if sym == 256 {
            return Ok(());
        } else if (257..=285).contains(&sym) {
            let idx = usize::from(sym) - 257;
            let len =
                usize::from(LEN_BASE[idx]) + bits.field(LEN_EXTRA[idx])? as usize;
            let dsym = dist.decode(bits)?;
            if dsym >= 30 {
                return Err(FlateError::Corrupt("invalid distance code".into()));
            }
            let didx = usize::from(dsym);
            let d = usize::from(DIST_BASE[didx]) + bits.field(DIST_EXTRA[didx])? as usize;
            if d == 0 || d > out.len() {
                return Err(FlateError::Corrupt("distance beyond output start".into()));
            }
            if len > max_output.saturating_sub(out.len()) {
                return Err(FlateError::LimitExceeded {
                    limit: max_output as u64,
                });
            }
            // Byte-at-a-time copy re-deriving the source index after
            // every push: the §3.2.3 overlap semantics (d < len
            // repeats the window) fall out with no special case.
            for _ in 0..len {
                let byte = out[out.len() - d];
                out.push(byte);
            }
        } else {
            return Err(FlateError::Corrupt("invalid literal/length symbol".into()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::{deflate_compress, deflate_compress_fixed, CompressionLevel};

    #[test]
    fn reference_roundtrips_compressor_output() {
        let data = b"a reference decoder decodes reference output".repeat(8);
        for level in [CompressionLevel::Fast, CompressionLevel::Best] {
            assert_eq!(
                reference_inflate(&deflate_compress(&data, level)).unwrap(),
                data
            );
            assert_eq!(
                reference_inflate(&deflate_compress_fixed(&data, level)).unwrap(),
                data
            );
        }
    }

    #[test]
    fn reference_decodes_handmade_stored_block() {
        let bytes = [0x01, 0x03, 0x00, 0xFC, 0xFF, b'a', b'b', b'c'];
        assert_eq!(reference_inflate(&bytes).unwrap(), b"abc");
    }

    #[test]
    fn reference_rejects_empty_and_reserved() {
        assert_eq!(reference_inflate(&[]), Err(FlateError::Truncated));
        assert!(matches!(
            reference_inflate(&[0b0000_0111]),
            Err(FlateError::Corrupt(_))
        ));
    }

    #[test]
    fn memoized_lookup_matches_linear_scan() {
        // Every (length, prefix) pair the decoder can ever probe must
        // accept and reject identically through the memo and through
        // the defining linear scan.
        // One code per length 1..=15 plus a second 15-bit code is a
        // complete Kraft sum and exercises every probe depth.
        let deep: Vec<u8> = (1..=15).chain(std::iter::once(15)).collect();
        let codes = [
            fixed_litlen().unwrap(),
            fixed_dist().unwrap(),
            Code::build(&[0, 0, 5, 0], true).unwrap(),
            Code::build(&deep, false).unwrap(),
        ];
        for code in &codes {
            for len in 1..=15u8 {
                for acc in 0..(1u32 << len) {
                    let acc = acc as u16;
                    assert_eq!(
                        code.by_len_code.get(&(len, acc)).copied(),
                        code.lookup_scan(len, acc),
                        "len={len} acc={acc:#b}"
                    );
                }
            }
        }
    }

    #[test]
    fn reference_enforces_limit() {
        let data = vec![7u8; 2048];
        let packed = deflate_compress(&data, CompressionLevel::Best);
        assert_eq!(reference_inflate_with_limit(&packed, 2048).unwrap(), data);
        assert!(matches!(
            reference_inflate_with_limit(&packed, 2047),
            Err(FlateError::LimitExceeded { .. })
        ));
    }
}
