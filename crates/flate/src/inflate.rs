//! DEFLATE decoding (RFC 1951).

use crate::deflate::{
    fixed_dist_lengths, fixed_litlen_lengths, CLC_ORDER, DIST_TABLE, LENGTH_TABLE,
};
use crate::FlateError;
use codecomp_coding::bits::LsbBitReader;
use codecomp_coding::huffman::canonical_codes;

/// A Huffman decoding table for LSB-first DEFLATE streams.
///
/// Decoding walks bit by bit through the canonical code space; code
/// lengths in DEFLATE are at most 15 so the walk is short.
#[derive(Debug)]
struct Decoder {
    /// `(length, code) -> symbol`, stored as per-length sorted ranges.
    count: [u32; 16],
    first_code: [u32; 16],
    first_index: [u32; 16],
    symbols: Vec<u16>,
}

/// How strictly a code-length set must fill the code space.
///
/// RFC 1951 §3.2.7 requires complete codes, with one carve-out: a
/// distance table may consist of a single code (one length-1 entry,
/// leaving one unused pattern) or of no codes at all when the block
/// contains no matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Completeness {
    /// The Kraft sum must be exactly 1: every bit pattern decodes.
    Exact,
    /// Complete, or degenerate: at most one code present.
    ExactOrDegenerate,
}

impl Decoder {
    #[allow(clippy::needless_range_loop)] // Kraft accumulation is index-keyed
    fn from_lengths(lengths: &[u8], completeness: Completeness) -> Result<Self, FlateError> {
        let mut count = [0u32; 16];
        let mut used = 0u32;
        for &l in lengths {
            if l > 15 {
                return Err(FlateError::Corrupt("code length > 15".into()));
            }
            if l > 0 {
                count[l as usize] += 1;
                used += 1;
            }
        }
        let mut kraft: u64 = 0;
        for len in 1..16 {
            kraft += u64::from(count[len]) << (15 - len);
        }
        if kraft > 1 << 15 {
            return Err(FlateError::Corrupt("oversubscribed code lengths".into()));
        }
        let degenerate_ok = completeness == Completeness::ExactOrDegenerate && used <= 1;
        if kraft < 1 << 15 && !degenerate_ok {
            return Err(FlateError::Corrupt(
                "incomplete (undersubscribed) code lengths".into(),
            ));
        }
        let mut first_code = [0u32; 16];
        let mut first_index = [0u32; 16];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..16 {
            code = (code + count[len - 1]) << 1;
            first_code[len] = code;
            first_index[len] = index;
            index += count[len];
        }
        let mut symbols = vec![0u16; index as usize];
        let mut next = first_index;
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                symbols[next[l as usize] as usize] = sym as u16;
                next[l as usize] += 1;
            }
        }
        Ok(Self {
            count,
            first_code,
            first_index,
            symbols,
        })
    }

    fn decode(&self, r: &mut LsbBitReader<'_>) -> Result<usize, FlateError> {
        let mut code = 0u32;
        for len in 1..16 {
            code = (code << 1) | r.read_bits(1).map_err(|_| FlateError::Truncated)?;
            let c = self.count[len];
            if c > 0 && code >= self.first_code[len] && code < self.first_code[len] + c {
                let idx = self.first_index[len] + (code - self.first_code[len]);
                return Ok(usize::from(self.symbols[idx as usize]));
            }
        }
        Err(FlateError::Corrupt("invalid Huffman code".into()))
    }
}

/// Decompresses a raw DEFLATE stream.
///
/// # Errors
///
/// Returns [`FlateError::Truncated`] or [`FlateError::Corrupt`] on
/// malformed input.
///
/// # Examples
///
/// ```
/// use codecomp_flate::{deflate_compress, inflate, CompressionLevel};
///
/// let packed = deflate_compress(b"hello hello hello", CompressionLevel::Fast);
/// assert_eq!(inflate(&packed)?, b"hello hello hello");
/// # Ok::<(), codecomp_flate::FlateError>(())
/// ```
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, FlateError> {
    inflate_with_limit(data, MAX_OUTPUT)
}

/// Default output ceiling for [`inflate`]: far beyond any legitimate
/// payload in this system, small enough to stop a decompression bomb
/// from exhausting memory.
pub const MAX_OUTPUT: usize = 1 << 28;

/// Decompresses a raw DEFLATE stream, refusing to produce more than
/// `max_output` bytes.
///
/// # Errors
///
/// [`FlateError::LimitExceeded`] once the output would pass
/// `max_output`; otherwise as [`inflate`].
pub fn inflate_with_limit(data: &[u8], max_output: usize) -> Result<Vec<u8>, FlateError> {
    let mut r = LsbBitReader::new(data);
    let mut out = Vec::new();
    loop {
        let bfinal = r.read_bits(1).map_err(|_| FlateError::Truncated)? == 1;
        let btype = r.read_bits(2).map_err(|_| FlateError::Truncated)?;
        match btype {
            0b00 => inflate_stored(&mut r, &mut out, max_output)?,
            0b01 => {
                let lit = Decoder::from_lengths(&fixed_litlen_lengths(), Completeness::Exact)?;
                let dist = Decoder::from_lengths(&fixed_dist_lengths(), Completeness::Exact)?;
                inflate_block(&mut r, &lit, &dist, &mut out, max_output)?;
            }
            0b10 => {
                let (lit, dist) = read_dynamic_tables(&mut r)?;
                inflate_block(&mut r, &lit, &dist, &mut out, max_output)?;
            }
            _ => return Err(FlateError::Corrupt("reserved block type 11".into())),
        }
        if bfinal {
            return Ok(out);
        }
    }
}

fn inflate_stored(
    r: &mut LsbBitReader<'_>,
    out: &mut Vec<u8>,
    max_output: usize,
) -> Result<(), FlateError> {
    r.align_to_byte();
    let len = r.read_bits(16).map_err(|_| FlateError::Truncated)? as u16;
    let nlen = r.read_bits(16).map_err(|_| FlateError::Truncated)? as u16;
    if len != !nlen {
        return Err(FlateError::Corrupt("stored block LEN/NLEN mismatch".into()));
    }
    if usize::from(len) > max_output.saturating_sub(out.len()) {
        return Err(FlateError::LimitExceeded {
            limit: max_output as u64,
        });
    }
    let bytes = r
        .read_aligned_bytes(usize::from(len))
        .map_err(|_| FlateError::Truncated)?;
    out.extend_from_slice(bytes);
    Ok(())
}

#[allow(clippy::same_item_push)] // RLE expansion genuinely repeats values
fn read_dynamic_tables(r: &mut LsbBitReader<'_>) -> Result<(Decoder, Decoder), FlateError> {
    let hlit = r.read_bits(5).map_err(|_| FlateError::Truncated)? as usize + 257;
    let hdist = r.read_bits(5).map_err(|_| FlateError::Truncated)? as usize + 1;
    let hclen = r.read_bits(4).map_err(|_| FlateError::Truncated)? as usize + 4;
    let mut clc_lengths = [0u8; 19];
    for &o in CLC_ORDER.iter().take(hclen) {
        clc_lengths[o] = r.read_bits(3).map_err(|_| FlateError::Truncated)? as u8;
    }
    let clc = Decoder::from_lengths(&clc_lengths, Completeness::Exact)?;
    let mut lengths = Vec::with_capacity(hlit + hdist);
    while lengths.len() < hlit + hdist {
        let sym = clc.decode(r)?;
        match sym {
            0..=15 => lengths.push(sym as u8),
            16 => {
                let &last = lengths
                    .last()
                    .ok_or_else(|| FlateError::Corrupt("repeat with no previous length".into()))?;
                let n = r.read_bits(2).map_err(|_| FlateError::Truncated)? + 3;
                for _ in 0..n {
                    lengths.push(last);
                }
            }
            17 => {
                let n = r.read_bits(3).map_err(|_| FlateError::Truncated)? + 3;
                for _ in 0..n {
                    lengths.push(0);
                }
            }
            18 => {
                let n = r.read_bits(7).map_err(|_| FlateError::Truncated)? + 11;
                for _ in 0..n {
                    lengths.push(0);
                }
            }
            _ => return Err(FlateError::Corrupt("invalid code-length symbol".into())),
        }
    }
    if lengths.len() != hlit + hdist {
        return Err(FlateError::Corrupt("code length overrun".into()));
    }
    let lit = Decoder::from_lengths(&lengths[..hlit], Completeness::Exact)?;
    // RFC 1951 §3.2.7: a block with no matches may carry one distance
    // code (or none); anything else must be complete.
    let dist = Decoder::from_lengths(&lengths[hlit..], Completeness::ExactOrDegenerate)?;
    Ok((lit, dist))
}

fn inflate_block(
    r: &mut LsbBitReader<'_>,
    lit: &Decoder,
    dist: &Decoder,
    out: &mut Vec<u8>,
    max_output: usize,
) -> Result<(), FlateError> {
    loop {
        let sym = lit.decode(r)?;
        match sym {
            0..=255 => {
                if out.len() >= max_output {
                    return Err(FlateError::LimitExceeded {
                        limit: max_output as u64,
                    });
                }
                out.push(sym as u8);
            }
            256 => return Ok(()),
            257..=285 => {
                let (base, extra) = LENGTH_TABLE[sym - 257];
                let len = base + r.read_bits(extra).map_err(|_| FlateError::Truncated)? as u16;
                let dsym = dist.decode(r)?;
                if dsym >= 30 {
                    return Err(FlateError::Corrupt("invalid distance code".into()));
                }
                let (dbase, dextra) = DIST_TABLE[dsym];
                let d = usize::from(dbase)
                    + r.read_bits(dextra).map_err(|_| FlateError::Truncated)? as usize;
                if d == 0 || d > out.len() {
                    return Err(FlateError::Corrupt("distance beyond output start".into()));
                }
                if usize::from(len) > max_output.saturating_sub(out.len()) {
                    return Err(FlateError::LimitExceeded {
                        limit: max_output as u64,
                    });
                }
                let start = out.len() - d;
                for i in 0..usize::from(len) {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            _ => return Err(FlateError::Corrupt("invalid literal/length symbol".into())),
        }
    }
}

/// Re-exported for tests: canonical code assignment consistency check.
#[doc(hidden)]
pub fn check_tables_consistent(lengths: &[u8]) -> bool {
    canonical_codes(lengths).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::{deflate_compress, CompressionLevel};

    #[test]
    fn inflate_rejects_empty() {
        assert_eq!(inflate(&[]), Err(FlateError::Truncated));
    }

    #[test]
    fn from_lengths_rejects_oversubscribed() {
        // Three codes of length 1: Kraft sum 3/2 > 1 (RFC 1951 §3.2.7).
        for c in [Completeness::Exact, Completeness::ExactOrDegenerate] {
            assert!(Decoder::from_lengths(&[1, 1, 1], c).is_err());
        }
    }

    #[test]
    fn from_lengths_rejects_undersubscribed() {
        // Two codes of length 2: Kraft sum 1/2 < 1 leaves bit patterns
        // that decode to nothing.
        for c in [Completeness::Exact, Completeness::ExactOrDegenerate] {
            assert!(Decoder::from_lengths(&[2, 2], c).is_err());
        }
    }

    #[test]
    fn from_lengths_degenerate_single_code() {
        // One 1-bit code: incomplete, but legal for DEFLATE distance
        // tables — and only there.
        assert!(Decoder::from_lengths(&[1, 0], Completeness::Exact).is_err());
        assert!(Decoder::from_lengths(&[1, 0], Completeness::ExactOrDegenerate).is_ok());
        // The all-unused table is likewise degenerate-only.
        assert!(Decoder::from_lengths(&[0, 0], Completeness::Exact).is_err());
        assert!(Decoder::from_lengths(&[0, 0], Completeness::ExactOrDegenerate).is_ok());
    }

    #[test]
    fn from_lengths_accepts_complete_sets() {
        assert!(Decoder::from_lengths(&[1, 1], Completeness::Exact).is_ok());
        assert!(Decoder::from_lengths(&[1, 2, 2], Completeness::Exact).is_ok());
        assert!(Decoder::from_lengths(&[2, 2, 2, 2], Completeness::Exact).is_ok());
    }

    #[test]
    fn output_limit_enforced() {
        let data = vec![0u8; 4096];
        let packed = deflate_compress(&data, CompressionLevel::Best);
        assert_eq!(inflate_with_limit(&packed, 4096).unwrap(), data);
        assert!(matches!(
            inflate_with_limit(&packed, 100),
            Err(FlateError::LimitExceeded { .. })
        ));
    }

    #[test]
    fn inflate_rejects_reserved_block_type() {
        // BFINAL=1, BTYPE=11.
        assert!(matches!(
            inflate(&[0b0000_0111]),
            Err(FlateError::Corrupt(_))
        ));
    }

    #[test]
    fn inflate_rejects_bad_stored_nlen() {
        // BFINAL=1, BTYPE=00, then LEN=1, NLEN=0 (mismatch).
        let bytes = [0b0000_0001, 0x01, 0x00, 0x00, 0x00, 0xAA];
        assert!(matches!(inflate(&bytes), Err(FlateError::Corrupt(_))));
    }

    #[test]
    fn stored_block_roundtrip_handmade() {
        // BFINAL=1 BTYPE=00, LEN=3, NLEN=!3, "abc".
        let bytes = [0x01, 0x03, 0x00, 0xFC, 0xFF, b'a', b'b', b'c'];
        assert_eq!(inflate(&bytes).unwrap(), b"abc");
    }

    #[test]
    fn fixed_block_roundtrip() {
        // Compress something small enough that fixed coding wins.
        let data = b"abc";
        let packed = deflate_compress(data, CompressionLevel::Best);
        assert_eq!(inflate(&packed).unwrap(), data);
    }

    #[test]
    fn truncated_stream_detected() {
        let data = b"hello world hello world hello world".repeat(10);
        let packed = deflate_compress(&data, CompressionLevel::Best);
        for cut in [1, packed.len() / 2, packed.len() - 1] {
            let r = inflate(&packed[..cut]);
            assert!(r.is_err(), "truncation at {cut} not detected");
        }
    }

    #[test]
    fn distance_before_start_rejected() {
        // Fixed block: a match with distance 1 as the very first symbol.
        use codecomp_coding::bits::LsbBitWriter;
        use codecomp_coding::huffman::canonical_codes;
        let lit_lengths = fixed_litlen_lengths();
        let lit_codes = canonical_codes(&lit_lengths).unwrap();
        let mut w = LsbBitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b01, 2);
        // length code 257 (len 3).
        w.write_huffman_code(lit_codes[257], lit_lengths[257]);
        // distance code 0 (dist 1), 5 bits.
        w.write_huffman_code(0, 5);
        let bytes = w.finish();
        assert!(matches!(inflate(&bytes), Err(FlateError::Corrupt(_))));
    }
}
