//! DEFLATE decoding (RFC 1951) — the table-driven fast path.
//!
//! This is the hottest decode path in the reproduction: the paper's
//! wire format finishes by gzipping its split streams, so every
//! compressed image funnels through [`inflate`]. Decoding is built on
//! two components:
//!
//! - a **64-bit bit reservoir** ([`BitSource`]) that refills from the
//!   input a byte-batch at a time instead of pulling single bits, and
//! - a **two-level Huffman lookup table** ([`Decoder`]): a root table
//!   indexed by the next [`ROOT_BITS`] bits resolves every short code
//!   in one probe; codes longer than the root width chain through a
//!   per-prefix overflow subtable (at most one extra probe, since
//!   DEFLATE codes are ≤ 15 bits).
//!
//! Correctness is pinned by `crate::reference` — a deliberately naive,
//! table-free RFC 1951 decoder with no shared code — via the
//! differential harness in `tests/differential.rs`. Both decoders
//! follow the same **truncation rule** so their error categories can be
//! compared: a symbol is resolved against the zero-padded tail of the
//! stream; if the matched code needs more bits than the stream holds
//! the error is `Truncated`, and if no code can match (possible only
//! under a degenerate distance table) the error is `Corrupt`.

use crate::deflate::{
    fixed_dist_lengths, fixed_litlen_lengths, CLC_ORDER, DIST_TABLE, LENGTH_TABLE,
};
use crate::FlateError;
use codecomp_coding::huffman::canonical_codes;
use codecomp_core::cov_hit;

/// Root table index width. 10 bits resolves every fixed-tree code (≤ 9
/// bits) and the vast majority of dynamic codes in one probe while
/// keeping the root table at 1 Ki entries.
const ROOT_BITS: u32 = 10;
/// Table-entry flag marking a link from the root into a subtable.
const LINK: u32 = 1 << 31;

/// A byte-batched LSB-first bit reader with a 64-bit reservoir.
///
/// The reservoir always holds the next `count` unconsumed bits in its
/// low-order positions; [`BitSource::refill`] tops it up to ≥ 56 bits
/// (or to end of input), so a refill covers a whole litlen + extra +
/// distance + extra sequence (15+5+15+13 = 48 bits worst case).
#[derive(Debug)]
struct BitSource<'a> {
    data: &'a [u8],
    /// Next byte of `data` to load into the reservoir.
    next: usize,
    /// The next `count` stream bits, LSB first; upper bits are zero.
    bits: u64,
    count: u32,
}

impl<'a> BitSource<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            next: 0,
            bits: 0,
            count: 0,
        }
    }

    /// Tops the reservoir up to ≥ 56 bits or to end of input.
    ///
    /// The fast path loads 8 bytes in one unaligned read and advances
    /// by however many whole bytes fit, so bytes at the top of the
    /// load may be read again by the next refill — the OR is
    /// idempotent because they carry identical values. Within 8 bytes
    /// of the end it falls back to a byte loop, which keeps `count`
    /// exact and the bits above it zero (the zero padding the decode
    /// truncation rule relies on).
    #[inline]
    fn refill(&mut self) {
        if self.next + 8 <= self.data.len() {
            let chunk = u64::from_le_bytes(self.data[self.next..self.next + 8].try_into().unwrap());
            self.bits |= chunk << self.count;
            self.next += ((63 - self.count) >> 3) as usize;
            self.count |= 56;
        } else {
            while self.count <= 56 {
                match self.data.get(self.next) {
                    Some(&b) => {
                        self.bits |= u64::from(b) << self.count;
                        self.count += 8;
                        self.next += 1;
                    }
                    None => break,
                }
            }
        }
    }

    /// Drops `n` already-available bits (`n <= self.count`).
    #[inline]
    fn consume(&mut self, n: u32) {
        debug_assert!(n <= self.count);
        self.bits >>= n;
        self.count -= n;
    }

    /// Reads `n ≤ 32` bits LSB-first, failing with `Truncated` when the
    /// stream holds fewer.
    #[inline]
    fn read_bits(&mut self, n: u32) -> Result<u32, FlateError> {
        self.refill();
        self.take_bits(n)
    }

    /// As [`BitSource::read_bits`] but without refilling: the caller
    /// must have refilled and consumed at most 56 bits since. A
    /// shortfall is then a genuine end-of-stream.
    #[inline]
    fn take_bits(&mut self, n: u32) -> Result<u32, FlateError> {
        if self.count < n {
            return Err(FlateError::Truncated);
        }
        let v = (self.bits & ((1u64 << n) - 1)) as u32;
        self.consume(n);
        Ok(v)
    }

    /// Skips forward to the next byte boundary of the underlying stream.
    fn align_to_byte(&mut self) {
        // The reservoir is filled in whole bytes, so the stream position
        // is misaligned by exactly `count % 8` bits.
        let drop = self.count % 8;
        self.consume(drop);
    }

    /// Reads `len` whole bytes after aligning to a byte boundary.
    fn read_aligned_bytes(&mut self, len: usize) -> Result<&'a [u8], FlateError> {
        self.align_to_byte();
        // Position of the first unconsumed byte in `data`.
        let pos = self.next - (self.count / 8) as usize;
        let end = pos.checked_add(len).ok_or(FlateError::Truncated)?;
        if end > self.data.len() {
            return Err(FlateError::Truncated);
        }
        self.next = end;
        self.bits = 0;
        self.count = 0;
        Ok(&self.data[pos..end])
    }
}

/// A two-level Huffman decoding table for LSB-first DEFLATE streams.
///
/// `table[0 .. 1<<root_bits]` is the root, indexed by the next
/// `root_bits` stream bits (which hold the code's leading bits, since
/// DEFLATE transmits codes MSB-first into LSB-first bit order). Root
/// entries are either direct hits, links into an overflow subtable
/// stored after the root, or invalid. Entry layout:
///
/// - `0`: invalid — no code matches this pattern (degenerate tables).
/// - direct: `(symbol << 5) | code_len`.
/// - link (root only): `LINK | (subtable_base << 5) | subtable_bits`.
#[derive(Debug)]
struct Decoder {
    table: Vec<u32>,
    root_bits: u32,
}

/// How strictly a code-length set must fill the code space.
///
/// RFC 1951 §3.2.7 requires complete codes, with one carve-out: a
/// distance table may consist of a single code (one length-1 entry,
/// leaving one unused pattern) or of no codes at all when the block
/// contains no matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Completeness {
    /// The Kraft sum must be exactly 1: every bit pattern decodes.
    Exact,
    /// Complete, or degenerate: at most one code present.
    ExactOrDegenerate,
}

/// Reverses the low `len` bits of `code`.
#[inline]
fn reverse_bits(code: u32, len: u32) -> u32 {
    code.reverse_bits() >> (32 - len)
}

impl Decoder {
    #[allow(clippy::needless_range_loop)] // Kraft accumulation is index-keyed
    fn from_lengths(lengths: &[u8], completeness: Completeness) -> Result<Self, FlateError> {
        let mut count = [0u32; 16];
        let mut used = 0u32;
        let mut max_len = 0u32;
        for &l in lengths {
            if l > 15 {
                cov_hit!("flate.tables.len_over_15");
                return Err(FlateError::Corrupt("code length > 15".into()));
            }
            if l > 0 {
                count[l as usize] += 1;
                used += 1;
                max_len = max_len.max(u32::from(l));
            }
        }
        let mut kraft: u64 = 0;
        for len in 1..16 {
            kraft += u64::from(count[len]) << (15 - len);
        }
        if kraft > 1 << 15 {
            cov_hit!("flate.tables.oversubscribed");
            return Err(FlateError::Corrupt("oversubscribed code lengths".into()));
        }
        let degenerate_ok = completeness == Completeness::ExactOrDegenerate && used <= 1;
        if kraft < 1 << 15 && !degenerate_ok {
            cov_hit!("flate.tables.undersubscribed");
            return Err(FlateError::Corrupt(
                "incomplete (undersubscribed) code lengths".into(),
            ));
        }
        if degenerate_ok && kraft < 1 << 15 {
            cov_hit!("flate.tables.degenerate");
        }

        // Canonical first-code per length (MSB-first code values).
        let mut first_code = [0u32; 16];
        let mut code = 0u32;
        for len in 1..16 {
            code = (code + count[len - 1]) << 1;
            first_code[len] = code;
        }

        let root_bits = max_len.clamp(1, ROOT_BITS);
        let mut table = vec![0u32; 1 << root_bits];

        // Pass 1: direct entries for codes that fit in the root, and the
        // per-prefix maximum length of the codes that do not.
        let mut next_code = first_code;
        let mut sub_max: Vec<u32> = Vec::new();
        let mut assigned: Vec<(u16, u32, u32)> = Vec::new(); // (sym, len, rev)
        for (sym, &l) in lengths.iter().enumerate() {
            if l == 0 {
                continue;
            }
            let len = u32::from(l);
            let rev = reverse_bits(next_code[l as usize], len);
            next_code[l as usize] += 1;
            assigned.push((sym as u16, len, rev));
            if len <= root_bits {
                let entry = ((sym as u32) << 5) | len;
                let mut idx = rev as usize;
                while idx < 1 << root_bits {
                    table[idx] = entry;
                    idx += 1 << len;
                }
            } else {
                if sub_max.is_empty() {
                    sub_max = vec![0u32; 1 << root_bits];
                }
                let prefix = (rev & ((1 << root_bits) - 1)) as usize;
                sub_max[prefix] = sub_max[prefix].max(len - root_bits);
            }
        }

        // Pass 2: allocate subtables and fill the long codes.
        if !sub_max.is_empty() {
            for prefix in 0..1usize << root_bits {
                let sub_bits = sub_max[prefix];
                if sub_bits == 0 {
                    continue;
                }
                let base = table.len() as u32;
                table.resize(table.len() + (1 << sub_bits), 0);
                table[prefix] = LINK | (base << 5) | sub_bits;
                for &(sym, len, rev) in &assigned {
                    if len <= root_bits || (rev & ((1 << root_bits) - 1)) as usize != prefix {
                        continue;
                    }
                    let entry = (u32::from(sym) << 5) | len;
                    let sub_rev = (rev >> root_bits) as usize;
                    let mut idx = sub_rev;
                    while idx < 1 << sub_bits {
                        table[base as usize + idx] = entry;
                        idx += 1 << (len - root_bits);
                    }
                }
            }
        }

        Ok(Self { table, root_bits })
    }

    /// Decodes one symbol against the zero-padded stream tail.
    ///
    /// `Truncated` when the matched code is longer than the remaining
    /// stream; `Corrupt` when no code matches (degenerate tables only —
    /// complete codes match every pattern).
    #[inline]
    fn decode(&self, src: &mut BitSource<'_>) -> Result<usize, FlateError> {
        src.refill();
        self.decode_prefilled(src)
    }

    /// As [`Decoder::decode`] but without refilling; the caller must
    /// guarantee a refill happened within the last 41 consumed bits
    /// (56-bit reservoir minus the 15-bit worst-case code).
    #[inline]
    fn decode_prefilled(&self, src: &mut BitSource<'_>) -> Result<usize, FlateError> {
        // At end of input the upper reservoir bits are zero, so short
        // tails peek as zero-padded.
        let mut e = self.table[(src.bits & ((1 << self.root_bits) - 1)) as usize];
        if e & LINK != 0 {
            let sub_bits = e & 0x1F;
            let base = (e & !LINK) >> 5;
            let sub_idx = (src.bits >> self.root_bits) & ((1 << sub_bits) - 1);
            e = self.table[(base + sub_idx as u32) as usize];
        }
        if e == 0 {
            cov_hit!("flate.decode.invalid_code");
            return Err(FlateError::Corrupt("invalid Huffman code".into()));
        }
        let len = e & 0x1F;
        if len > src.count {
            cov_hit!("flate.decode.truncated_code");
            return Err(FlateError::Truncated);
        }
        src.consume(len);
        Ok((e >> 5) as usize)
    }
}

/// Decompresses a raw DEFLATE stream.
///
/// # Errors
///
/// Returns [`FlateError::Truncated`] or [`FlateError::Corrupt`] on
/// malformed input.
///
/// # Examples
///
/// ```
/// use codecomp_flate::{deflate_compress, inflate, CompressionLevel};
///
/// let packed = deflate_compress(b"hello hello hello", CompressionLevel::Fast);
/// assert_eq!(inflate(&packed)?, b"hello hello hello");
/// # Ok::<(), codecomp_flate::FlateError>(())
/// ```
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, FlateError> {
    inflate_with_limit(data, MAX_OUTPUT)
}

/// Default output ceiling for [`inflate`]: far beyond any legitimate
/// payload in this system, small enough to stop a decompression bomb
/// from exhausting memory. Mirrors `DecodeLimits::default()` — the
/// per-call budget is the enforcement mechanism; this is only the
/// value the convenience entry point passes it.
pub const MAX_OUTPUT: usize = codecomp_core::limits::DEFAULT_MAX_OUTPUT_BYTES as usize;

/// Decompresses a raw DEFLATE stream, refusing to produce more than
/// `max_output` bytes.
///
/// # Errors
///
/// [`FlateError::LimitExceeded`] once the output would pass
/// `max_output`; otherwise as [`inflate`].
pub fn inflate_with_limit(data: &[u8], max_output: usize) -> Result<Vec<u8>, FlateError> {
    inflate_governed(data, max_output, None)
}

/// Budget-governed [`inflate`]: the output ceiling comes from the
/// budget's `max_output_bytes`, and decode fuel is charged per block —
/// one unit per block plus one per output byte it produced — so total
/// spend for a given payload is deterministic.
///
/// # Errors
///
/// [`FlateError::LimitExceeded`] when the output ceiling or the fuel
/// meter trips; otherwise as [`inflate`].
pub fn inflate_budgeted(
    data: &[u8],
    budget: &codecomp_core::Budget,
) -> Result<Vec<u8>, FlateError> {
    let max_output = usize::try_from(budget.limits().max_output_bytes).unwrap_or(usize::MAX);
    let out = inflate_governed(data, max_output, Some(budget))?;
    // Record the high-water mark (cannot trip: len ≤ max_output).
    budget.check_output_bytes(out.len() as u64)?;
    Ok(out)
}

/// Hot-loop-local decode statistics: plain integers bumped inside
/// [`inflate_block`] (no atomics, no name lookups) and flushed to the
/// telemetry registry once per [`inflate_governed`] call. The match-
/// length histogram is only populated when a collector is installed;
/// the two counters are cheap enough to maintain unconditionally.
#[derive(Default)]
struct InflateStats {
    enabled: bool,
    literals: u64,
    matches: u64,
    stored_bytes: u64,
    match_len: codecomp_core::telemetry::LocalHistogram,
}

impl InflateStats {
    fn flush(&self, output_bytes: u64) {
        if !self.enabled {
            return;
        }
        use codecomp_core::telemetry as t;
        t::counter_add("flate.inflate.calls", 1);
        t::counter_add("flate.inflate.literals", self.literals);
        t::counter_add("flate.inflate.matches", self.matches);
        t::counter_add("flate.inflate.stored_bytes", self.stored_bytes);
        t::counter_add("flate.inflate.output_bytes", output_bytes);
        t::histogram_merge("flate.inflate.match_len", &self.match_len);
    }
}

fn inflate_governed(
    data: &[u8],
    max_output: usize,
    budget: Option<&codecomp_core::Budget>,
) -> Result<Vec<u8>, FlateError> {
    let _prof = codecomp_core::profile::scope("inflate.blocks");
    let mut r = BitSource::new(data);
    let mut out = Vec::new();
    let mut stats = InflateStats {
        enabled: codecomp_core::telemetry::enabled(),
        ..InflateStats::default()
    };
    loop {
        let block_start = out.len();
        let bfinal = r.read_bits(1)? == 1;
        let btype = r.read_bits(2)?;
        match btype {
            0b00 => {
                cov_hit!("flate.block.stored");
                inflate_stored(&mut r, &mut out, max_output)?;
                stats.stored_bytes += (out.len() - block_start) as u64;
            }
            0b01 => {
                cov_hit!("flate.block.fixed");
                let (lit, dist) = fixed_tables()?;
                inflate_block(&mut r, lit, dist, &mut out, max_output, &mut stats)?;
            }
            0b10 => {
                cov_hit!("flate.block.dynamic");
                let tables = read_dynamic_tables(&mut r)?;
                inflate_block(&mut r, &tables.0, &tables.1, &mut out, max_output, &mut stats)?;
            }
            _ => {
                cov_hit!("flate.block.reserved");
                return Err(FlateError::Corrupt("reserved block type 11".into()));
            }
        }
        if let Some(b) = budget {
            // Charged after the block so the hot loop stays free of
            // atomics; the batch total is exact and reproducible.
            b.charge_fuel(1 + (out.len() - block_start) as u64)?;
        }
        if bfinal {
            cov_hit!("flate.stream.final_block");
            stats.flush(out.len() as u64);
            return Ok(out);
        }
    }
}

fn inflate_stored(
    r: &mut BitSource<'_>,
    out: &mut Vec<u8>,
    max_output: usize,
) -> Result<(), FlateError> {
    r.align_to_byte();
    let len = r.read_bits(16)? as u16;
    let nlen = r.read_bits(16)? as u16;
    if len != !nlen {
        cov_hit!("flate.stored.len_mismatch");
        return Err(FlateError::Corrupt("stored block LEN/NLEN mismatch".into()));
    }
    if usize::from(len) > max_output.saturating_sub(out.len()) {
        cov_hit!("flate.stored.limit");
        return Err(FlateError::LimitExceeded {
            limit: max_output as u64,
        });
    }
    let bytes = r.read_aligned_bytes(usize::from(len))?;
    out.extend_from_slice(bytes);
    Ok(())
}

/// The fixed-code tables of RFC 1951 §3.2.6, built once per process.
///
/// Every `btype=01` block uses the same two trees, so rebuilding them
/// per block was pure decode overhead.
fn fixed_tables() -> Result<&'static (Decoder, Decoder), FlateError> {
    static FIXED: std::sync::OnceLock<(Decoder, Decoder)> = std::sync::OnceLock::new();
    if let Some(t) = FIXED.get() {
        return Ok(t);
    }
    // The fixed lengths are spec constants, so these builds cannot fail
    // in a correct build; keeping the error path avoids a panic source.
    let lit = Decoder::from_lengths(&fixed_litlen_lengths(), Completeness::Exact)?;
    let dist = Decoder::from_lengths(&fixed_dist_lengths(), Completeness::Exact)?;
    Ok(FIXED.get_or_init(|| (lit, dist)))
}

/// Dynamic-block tables interned by their expanded length vector (plus
/// `hlit`, which fixes the lit/dist split). The code description still
/// has to be *parsed* from the bit stream every block — it is inline
/// data — but repeat descriptions skip the two table builds, which
/// dominate small-block decode.
static DYN_TABLE_CACHE: codecomp_coding::cache::DescCache<(Decoder, Decoder)> =
    codecomp_coding::cache::DescCache::new("flate.inflate.table_cache", 128);

/// Empties the dynamic-table cache (test hook for cold-cache runs).
pub fn clear_table_cache() {
    DYN_TABLE_CACHE.clear();
}

/// Starts a new dynamic-table cache generation: O(1) lazy invalidation
/// of every interned table. The fuzz campaign's per-case reset.
pub fn bump_table_cache_generation() {
    DYN_TABLE_CACHE.bump_generation();
}

/// Publishes the dynamic-table cache's accumulated hit/miss/eviction
/// counts to telemetry. Decoders call this once per pass.
pub fn flush_table_cache_stats() {
    DYN_TABLE_CACHE.flush_stats();
}

#[allow(clippy::same_item_push)] // RLE expansion genuinely repeats values
fn read_dynamic_tables(
    r: &mut BitSource<'_>,
) -> Result<std::sync::Arc<(Decoder, Decoder)>, FlateError> {
    let hlit = r.read_bits(5)? as usize + 257;
    let hdist = r.read_bits(5)? as usize + 1;
    let hclen = r.read_bits(4)? as usize + 4;
    let mut clc_lengths = [0u8; 19];
    for &o in CLC_ORDER.iter().take(hclen) {
        clc_lengths[o] = r.read_bits(3)? as u8;
    }
    let clc = Decoder::from_lengths(&clc_lengths, Completeness::Exact)?;
    let mut lengths = Vec::with_capacity(hlit + hdist);
    while lengths.len() < hlit + hdist {
        let sym = clc.decode(r)?;
        match sym {
            0..=15 => lengths.push(sym as u8),
            16 => {
                let Some(&last) = lengths.last() else {
                    cov_hit!("flate.clc.repeat_without_prior");
                    return Err(FlateError::Corrupt("repeat with no previous length".into()));
                };
                cov_hit!("flate.clc.repeat_prev");
                let n = r.read_bits(2)? + 3;
                for _ in 0..n {
                    lengths.push(last);
                }
            }
            17 => {
                cov_hit!("flate.clc.zero_run_short");
                let n = r.read_bits(3)? + 3;
                for _ in 0..n {
                    lengths.push(0);
                }
            }
            18 => {
                cov_hit!("flate.clc.zero_run_long");
                let n = r.read_bits(7)? + 11;
                for _ in 0..n {
                    lengths.push(0);
                }
            }
            _ => {
                cov_hit!("flate.clc.invalid_symbol");
                return Err(FlateError::Corrupt("invalid code-length symbol".into()));
            }
        }
    }
    if lengths.len() != hlit + hdist {
        cov_hit!("flate.clc.overrun");
        return Err(FlateError::Corrupt("code length overrun".into()));
    }
    // hlit ≤ 288 and hdist ≤ 32, so the key fits a fixed stack buffer.
    let mut key = [0u8; 322];
    key[0] = (hlit & 0xFF) as u8;
    key[1] = (hlit >> 8) as u8;
    key[2..2 + lengths.len()].copy_from_slice(&lengths);
    let mut was_cold = false;
    let tables = DYN_TABLE_CACHE.get_or_build(&key[..2 + lengths.len()], || {
        was_cold = true;
        cov_hit!("flate.tables.cold_build");
        let lit = Decoder::from_lengths(&lengths[..hlit], Completeness::Exact)?;
        // RFC 1951 §3.2.7: a block with no matches may carry one distance
        // code (or none); anything else must be complete.
        let dist = Decoder::from_lengths(&lengths[hlit..], Completeness::ExactOrDegenerate)?;
        Ok::<_, FlateError>((lit, dist))
    })?;
    if !was_cold {
        cov_hit!("flate.tables.warm_hit");
    }
    Ok(tables)
}

fn inflate_block(
    r: &mut BitSource<'_>,
    lit: &Decoder,
    dist: &Decoder,
    out: &mut Vec<u8>,
    max_output: usize,
    stats: &mut InflateStats,
) -> Result<(), FlateError> {
    loop {
        // One refill covers the longest token: 15-bit litlen + 5 extra
        // + 15-bit distance + 13 extra = 48 ≤ 56 reservoir bits.
        r.refill();
        let sym = lit.decode_prefilled(r)?;
        match sym {
            0..=255 => {
                if out.len() >= max_output {
                    cov_hit!("flate.body.literal_limit");
                    return Err(FlateError::LimitExceeded {
                        limit: max_output as u64,
                    });
                }
                out.push(sym as u8);
                stats.literals += 1;
            }
            256 => {
                cov_hit!("flate.body.end_of_block");
                return Ok(());
            }
            257..=285 => {
                let (base, extra) = LENGTH_TABLE[sym - 257];
                let len = usize::from(base) + r.take_bits(u32::from(extra))? as usize;
                stats.matches += 1;
                if stats.enabled {
                    stats.match_len.record(len as u64);
                }
                let dsym = dist.decode_prefilled(r)?;
                if dsym >= 30 {
                    cov_hit!("flate.body.invalid_distance_code");
                    return Err(FlateError::Corrupt("invalid distance code".into()));
                }
                let (dbase, dextra) = DIST_TABLE[dsym];
                let d = usize::from(dbase) + r.take_bits(u32::from(dextra))? as usize;
                if d == 0 || d > out.len() {
                    cov_hit!("flate.body.distance_overreach");
                    return Err(FlateError::Corrupt("distance beyond output start".into()));
                }
                if len > max_output.saturating_sub(out.len()) {
                    cov_hit!("flate.body.match_limit");
                    return Err(FlateError::LimitExceeded {
                        limit: max_output as u64,
                    });
                }
                let start = out.len() - d;
                if d >= len {
                    // Non-overlapping copy: one memmove.
                    out.extend_from_within(start..start + len);
                } else {
                    // Overlapping (d < len): bytes must appear one at a
                    // time, each copy reading what the previous wrote.
                    cov_hit!("flate.body.overlapping_copy");
                    for i in 0..len {
                        let b = out[start + i];
                        out.push(b);
                    }
                }
            }
            _ => {
                cov_hit!("flate.body.invalid_litlen");
                return Err(FlateError::Corrupt("invalid literal/length symbol".into()));
            }
        }
    }
}

/// Re-exported for tests: canonical code assignment consistency check.
#[doc(hidden)]
pub fn check_tables_consistent(lengths: &[u8]) -> bool {
    canonical_codes(lengths).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::{deflate_compress, deflate_compress_fixed, CompressionLevel};

    #[test]
    fn inflate_rejects_empty() {
        assert_eq!(inflate(&[]), Err(FlateError::Truncated));
    }

    #[test]
    fn from_lengths_rejects_oversubscribed() {
        // Three codes of length 1: Kraft sum 3/2 > 1 (RFC 1951 §3.2.7).
        for c in [Completeness::Exact, Completeness::ExactOrDegenerate] {
            assert!(Decoder::from_lengths(&[1, 1, 1], c).is_err());
        }
    }

    #[test]
    fn from_lengths_rejects_undersubscribed() {
        // Two codes of length 2: Kraft sum 1/2 < 1 leaves bit patterns
        // that decode to nothing.
        for c in [Completeness::Exact, Completeness::ExactOrDegenerate] {
            assert!(Decoder::from_lengths(&[2, 2], c).is_err());
        }
    }

    #[test]
    fn from_lengths_degenerate_single_code() {
        // One 1-bit code: incomplete, but legal for DEFLATE distance
        // tables — and only there.
        assert!(Decoder::from_lengths(&[1, 0], Completeness::Exact).is_err());
        assert!(Decoder::from_lengths(&[1, 0], Completeness::ExactOrDegenerate).is_ok());
        // The all-unused table is likewise degenerate-only.
        assert!(Decoder::from_lengths(&[0, 0], Completeness::Exact).is_err());
        assert!(Decoder::from_lengths(&[0, 0], Completeness::ExactOrDegenerate).is_ok());
    }

    #[test]
    fn from_lengths_accepts_complete_sets() {
        assert!(Decoder::from_lengths(&[1, 1], Completeness::Exact).is_ok());
        assert!(Decoder::from_lengths(&[1, 2, 2], Completeness::Exact).is_ok());
        assert!(Decoder::from_lengths(&[2, 2, 2, 2], Completeness::Exact).is_ok());
    }

    #[test]
    fn table_decodes_every_symbol_of_a_long_code() {
        // A complete code whose lengths span the root/subtable split
        // (root is 10 bits): lengths 1,2,…,14,15,15 have Kraft sum
        // exactly 1 and exercise both probe levels.
        let lengths: Vec<u8> = (1u8..=14).chain([15, 15]).collect();
        let dec = Decoder::from_lengths(&lengths, Completeness::Exact).unwrap();
        // Encode each symbol with the writer and decode it back.
        use codecomp_coding::bits::LsbBitWriter;
        let codes = canonical_codes(&lengths).unwrap();
        for (sym, (&code, &len)) in codes.iter().zip(&lengths).enumerate() {
            let mut w = LsbBitWriter::new();
            w.write_huffman_code(code, len);
            let bytes = w.finish();
            let mut src = BitSource::new(&bytes);
            assert_eq!(dec.decode(&mut src).unwrap(), sym, "symbol {sym}");
        }
    }

    #[test]
    fn output_limit_enforced() {
        let data = vec![0u8; 4096];
        let packed = deflate_compress(&data, CompressionLevel::Best);
        assert_eq!(inflate_with_limit(&packed, 4096).unwrap(), data);
        assert!(matches!(
            inflate_with_limit(&packed, 100),
            Err(FlateError::LimitExceeded { .. })
        ));
    }

    #[test]
    fn inflate_rejects_reserved_block_type() {
        // BFINAL=1, BTYPE=11.
        assert!(matches!(
            inflate(&[0b0000_0111]),
            Err(FlateError::Corrupt(_))
        ));
    }

    #[test]
    fn inflate_rejects_bad_stored_nlen() {
        // BFINAL=1, BTYPE=00, then LEN=1, NLEN=0 (mismatch).
        let bytes = [0b0000_0001, 0x01, 0x00, 0x00, 0x00, 0xAA];
        assert!(matches!(inflate(&bytes), Err(FlateError::Corrupt(_))));
    }

    #[test]
    fn stored_block_roundtrip_handmade() {
        // BFINAL=1 BTYPE=00, LEN=3, NLEN=!3, "abc".
        let bytes = [0x01, 0x03, 0x00, 0xFC, 0xFF, b'a', b'b', b'c'];
        assert_eq!(inflate(&bytes).unwrap(), b"abc");
    }

    #[test]
    fn fixed_block_roundtrip() {
        // Compress something small enough that fixed coding wins.
        let data = b"abc";
        let packed = deflate_compress(data, CompressionLevel::Best);
        assert_eq!(inflate(&packed).unwrap(), data);
    }

    #[test]
    fn forced_fixed_block_roundtrip() {
        let data = b"overlapping matches overlap overlappingly".repeat(20);
        let packed = deflate_compress_fixed(&data, CompressionLevel::Best);
        assert_eq!(inflate(&packed).unwrap(), data);
    }

    #[test]
    fn truncated_stream_detected() {
        let data = b"hello world hello world hello world".repeat(10);
        let packed = deflate_compress(&data, CompressionLevel::Best);
        for cut in [1, packed.len() / 2, packed.len() - 1] {
            let r = inflate(&packed[..cut]);
            assert!(r.is_err(), "truncation at {cut} not detected");
        }
    }

    #[test]
    fn distance_before_start_rejected() {
        // Fixed block: a match with distance 1 as the very first symbol.
        use codecomp_coding::bits::LsbBitWriter;
        use codecomp_coding::huffman::canonical_codes;
        let lit_lengths = fixed_litlen_lengths();
        let lit_codes = canonical_codes(&lit_lengths).unwrap();
        let mut w = LsbBitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b01, 2);
        // length code 257 (len 3).
        w.write_huffman_code(lit_codes[257], lit_lengths[257]);
        // distance code 0 (dist 1), 5 bits.
        w.write_huffman_code(0, 5);
        let bytes = w.finish();
        assert!(matches!(inflate(&bytes), Err(FlateError::Corrupt(_))));
    }

    #[test]
    fn bit_source_aligned_reads() {
        let data = [0b101u8, 0xAA, 0xBB, 0xCC];
        let mut src = BitSource::new(&data);
        assert_eq!(src.read_bits(3).unwrap(), 0b101);
        assert_eq!(src.read_aligned_bytes(2).unwrap(), &[0xAA, 0xBB]);
        assert_eq!(src.read_bits(8).unwrap(), 0xCC);
        assert_eq!(src.read_bits(1), Err(FlateError::Truncated));
    }
}
