//! From-scratch DEFLATE (RFC 1951) and gzip (RFC 1952).
//!
//! The paper's wire format finishes by gzipping its split streams
//! (§3 step 5), and "gzipped x86/SPARC code" is the baseline that both
//! compressors are judged against. This crate implements that substrate
//! completely: an LZ77 hash-chain match finder, DEFLATE block encoding
//! (stored, fixed-Huffman, and dynamic-Huffman blocks with the RFC's
//! code-length alphabet), the corresponding decoder, CRC-32, and the
//! gzip member framing.
//!
//! # Examples
//!
//! ```
//! use codecomp_flate::{gzip_compress, gzip_decompress, CompressionLevel};
//!
//! # fn main() -> Result<(), codecomp_flate::FlateError> {
//! let data = b"function prologues look like other function prologues".repeat(8);
//! let packed = gzip_compress(&data, CompressionLevel::Best);
//! assert!(packed.len() < data.len());
//! assert_eq!(gzip_decompress(&packed)?, data);
//! # Ok(())
//! # }
//! ```

pub mod crc32;
pub mod deflate;
pub mod gzip;
pub mod inflate;
pub mod lz77;
pub mod reference;

pub use deflate::{deflate_compress, CompressionLevel};
pub use gzip::{gzip_compress, gzip_decompress, gzip_decompress_budgeted};
pub use inflate::{inflate, inflate_budgeted, inflate_with_limit};
pub use reference::{reference_inflate, reference_inflate_budgeted, reference_inflate_with_limit};

use std::error::Error;
use std::fmt;

/// Errors produced while decoding DEFLATE or gzip streams.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlateError {
    /// The compressed stream ended prematurely.
    Truncated,
    /// A structural rule of RFC 1951/1952 was violated.
    Corrupt(String),
    /// The gzip header is not a gzip header or uses an unsupported method.
    BadHeader(String),
    /// The gzip CRC-32 or length trailer did not match the decoded data.
    ChecksumMismatch {
        /// CRC stored in the trailer.
        expected: u32,
        /// CRC of the decoded data.
        actual: u32,
    },
    /// Decoding would produce more output than the configured ceiling.
    LimitExceeded {
        /// The configured ceiling, in bytes.
        limit: u64,
    },
}

impl fmt::Display for FlateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlateError::Truncated => write!(f, "compressed stream ended prematurely"),
            FlateError::Corrupt(msg) => write!(f, "corrupt deflate stream: {msg}"),
            FlateError::BadHeader(msg) => write!(f, "bad gzip header: {msg}"),
            FlateError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "crc mismatch: stored {expected:#010x}, computed {actual:#010x}"
                )
            }
            FlateError::LimitExceeded { limit } => {
                write!(f, "decoded output exceeds the {limit}-byte ceiling")
            }
        }
    }
}

impl From<FlateError> for codecomp_core::DecodeError {
    fn from(e: FlateError) -> Self {
        use codecomp_core::DecodeError;
        match e {
            FlateError::Truncated => DecodeError::Truncated,
            FlateError::LimitExceeded { limit } => DecodeError::limit("inflate output bytes", limit),
            other => DecodeError::malformed(other.to_string()),
        }
    }
}

impl Error for FlateError {}

impl From<codecomp_core::DecodeError> for FlateError {
    fn from(e: codecomp_core::DecodeError) -> Self {
        use codecomp_core::DecodeError;
        match e {
            DecodeError::Truncated => FlateError::Truncated,
            DecodeError::LimitExceeded { limit, .. } => FlateError::LimitExceeded { limit },
            other => FlateError::Corrupt(other.to_string()),
        }
    }
}

impl From<codecomp_coding::CodingError> for FlateError {
    fn from(e: codecomp_coding::CodingError) -> Self {
        match e {
            codecomp_coding::CodingError::UnexpectedEof => FlateError::Truncated,
            other => FlateError::Corrupt(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        for e in [
            FlateError::Truncated,
            FlateError::Corrupt("x".into()),
            FlateError::BadHeader("y".into()),
            FlateError::ChecksumMismatch {
                expected: 1,
                actual: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
