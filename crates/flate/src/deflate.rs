//! DEFLATE block encoding (RFC 1951).
//!
//! The compressor tokenizes with [`crate::lz77`], then emits one block
//! per input (sufficient for this workspace's stream sizes) choosing the
//! cheapest of stored, fixed-Huffman, and dynamic-Huffman encodings.

use crate::lz77::{self, Token};
use codecomp_coding::bits::LsbBitWriter;
use codecomp_coding::huffman::{build_code_lengths, canonical_codes};

/// End-of-block symbol in the literal/length alphabet.
pub const END_OF_BLOCK: usize = 256;
/// Size of the literal/length alphabet.
pub const LITLEN_SYMBOLS: usize = 288;
/// Size of the distance alphabet.
pub const DIST_SYMBOLS: usize = 30;
/// Order in which code-length code lengths are transmitted.
pub const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// `(base_length, extra_bits)` for length codes 257..=285.
pub const LENGTH_TABLE: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// `(base_distance, extra_bits)` for distance codes 0..=29.
pub const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12_289, 12),
    (16_385, 13),
    (24_577, 13),
];

/// Maps a match length (3..=258) to `(code, extra_bits, extra_value)`.
pub fn length_code(len: u16) -> (usize, u8, u16) {
    debug_assert!((3..=258).contains(&len));
    // O(1): one precomputed entry per encodable length.
    static TABLE: std::sync::OnceLock<[(u8, u8, u16); 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [(0u8, 0u8, 0u16); 256];
        for (slot, l) in t.iter_mut().zip(3u16..=258) {
            let (i, &(base, extra)) = LENGTH_TABLE
                .iter()
                .enumerate()
                .rev()
                .find(|&(_, &(base, _))| l >= base)
                .expect("length ≥ 3 always has a code");
            *slot = (i as u8, extra, base);
        }
        t
    });
    let (i, extra, base) = table[usize::from(len) - 3];
    (257 + usize::from(i), extra, len - base)
}

/// Maps a distance (1..=32768) to `(code, extra_bits, extra_value)`.
pub fn dist_code(dist: u16) -> (usize, u8, u16) {
    debug_assert!(dist >= 1);
    // O(1) via zlib's split index: distances ≤ 256 index directly,
    // larger ones through a 128-wide second half (code boundaries above
    // 256 are all multiples of 128).
    static TABLE: std::sync::OnceLock<[u8; 512]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u8; 512];
        let code_for = |d: u16| -> u8 {
            DIST_TABLE
                .iter()
                .rposition(|&(base, _)| d >= base)
                .expect("distance ≥ 1 always has a code") as u8
        };
        for d in 1u16..=256 {
            t[usize::from(d) - 1] = code_for(d);
        }
        for slot in 0..256 {
            t[256 + slot] = code_for((slot as u16) * 128 + 1);
        }
        t
    });
    let i = usize::from(if dist <= 256 {
        table[usize::from(dist) - 1]
    } else {
        table[256 + usize::from((dist - 1) >> 7)]
    });
    let (base, extra) = DIST_TABLE[i];
    (i, extra, dist - base)
}

/// The fixed literal/length code lengths of RFC 1951 §3.2.6.
pub fn fixed_litlen_lengths() -> Vec<u8> {
    let mut l = vec![8u8; LITLEN_SYMBOLS];
    for item in l.iter_mut().take(256).skip(144) {
        *item = 9;
    }
    for item in l.iter_mut().take(280).skip(256) {
        *item = 7;
    }
    l
}

/// The fixed distance code lengths (all 5 bits).
///
/// RFC 1951 §3.2.6 assigns codes to all 32 distance symbols — 30–31
/// never appear in valid data but participate in code construction, so
/// the table is complete. The decoder rejects symbols ≥ 30 explicitly.
pub fn fixed_dist_lengths() -> Vec<u8> {
    vec![5u8; 32]
}

/// Compression effort level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompressionLevel {
    /// Greedy parsing with short hash chains.
    Fast,
    /// Lazy parsing with medium chains and an early deferral cutoff.
    #[default]
    Default,
    /// Fully lazy parsing with long hash chains.
    Best,
}

impl CompressionLevel {
    fn params(self) -> lz77::MatchParams {
        match self {
            CompressionLevel::Fast => lz77::MatchParams::fast(),
            CompressionLevel::Default => lz77::MatchParams::balanced(),
            CompressionLevel::Best => lz77::MatchParams::best(),
        }
    }
}

/// Compresses `data` into a raw DEFLATE stream.
///
/// # Examples
///
/// ```
/// use codecomp_flate::{deflate_compress, inflate, CompressionLevel};
///
/// let data = b"deflate deflate deflate".repeat(4);
/// let packed = deflate_compress(&data, CompressionLevel::Best);
/// assert_eq!(inflate(&packed)?, data);
/// # Ok::<(), codecomp_flate::FlateError>(())
/// ```
pub fn deflate_compress(data: &[u8], level: CompressionLevel) -> Vec<u8> {
    let tokens = lz77::tokenize(data, level.params());

    // Gather alphabet statistics.
    let mut lit_freq = vec![0u64; LITLEN_SYMBOLS];
    let mut dist_freq = vec![0u64; DIST_SYMBOLS];
    let mut extra_bits_total = 0u64;
    for &t in &tokens {
        match t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                let (lc, le, _) = length_code(len);
                let (dc, de, _) = dist_code(dist);
                lit_freq[lc] += 1;
                dist_freq[dc] += 1;
                extra_bits_total += u64::from(le) + u64::from(de);
            }
        }
    }
    lit_freq[END_OF_BLOCK] += 1;

    // Candidate 1: dynamic Huffman block.
    let lit_lengths = build_code_lengths(&lit_freq, 15).expect("15-bit limit fits 288 symbols");
    let dist_lengths = build_code_lengths(&dist_freq, 15).expect("15-bit limit fits 30 symbols");
    let (clc_tokens, hlit, hdist) = encode_code_lengths(&lit_lengths, &dist_lengths);
    let mut clc_freq = vec![0u64; 19];
    for &(sym, _, _) in &clc_tokens {
        clc_freq[sym] += 1;
    }
    let clc_lengths = build_code_lengths(&clc_freq, 7).expect("7-bit limit fits 19 symbols");
    let hclen = {
        let mut n = 19;
        while n > 4 && clc_lengths[CLC_ORDER[n - 1]] == 0 {
            n -= 1;
        }
        n
    };
    let dyn_header_bits = 3
        + 5
        + 5
        + 4
        + 3 * hclen as u64
        + clc_tokens
            .iter()
            .map(|&(sym, eb, _)| u64::from(clc_lengths[sym]) + u64::from(eb))
            .sum::<u64>();
    let dyn_body_bits: u64 = lit_freq
        .iter()
        .zip(&lit_lengths)
        .map(|(&f, &l)| f * u64::from(l))
        .sum::<u64>()
        + dist_freq
            .iter()
            .zip(&dist_lengths)
            .map(|(&f, &l)| f * u64::from(l))
            .sum::<u64>()
        + extra_bits_total;
    let dyn_bits = dyn_header_bits + dyn_body_bits;

    // Candidate 2: fixed Huffman block.
    let fixed_lit = fixed_litlen_lengths();
    let fixed_dist = fixed_dist_lengths();
    let fixed_bits: u64 = 3
        + lit_freq
            .iter()
            .zip(&fixed_lit)
            .map(|(&f, &l)| f * u64::from(l))
            .sum::<u64>()
        + dist_freq
            .iter()
            .zip(&fixed_dist)
            .map(|(&f, &l)| f * u64::from(l))
            .sum::<u64>()
        + extra_bits_total;

    // Candidate 3: stored. 3 bits + pad + per-chunk 4-byte headers.
    let stored_chunks = data.len().div_ceil(65_535).max(1);
    let stored_bits = (stored_chunks * (4 * 8) + data.len() * 8) as u64 + 8;

    let mut w = LsbBitWriter::new();
    if stored_bits < dyn_bits.min(fixed_bits) {
        write_stored(&mut w, data);
    } else if fixed_bits <= dyn_bits {
        w.write_bits(1, 1); // BFINAL
        w.write_bits(0b01, 2); // fixed
        write_tokens(&mut w, &tokens, &fixed_lit, &fixed_dist);
    } else {
        w.write_bits(1, 1); // BFINAL
        w.write_bits(0b10, 2); // dynamic
        w.write_bits(hlit as u32 - 257, 5);
        w.write_bits(hdist as u32 - 1, 5);
        w.write_bits(hclen as u32 - 4, 4);
        for &o in CLC_ORDER.iter().take(hclen) {
            w.write_bits(u32::from(clc_lengths[o]), 3);
        }
        let clc_codes = canonical_codes(&clc_lengths).expect("lengths from builder are valid");
        for &(sym, eb, ev) in &clc_tokens {
            w.write_huffman_code(clc_codes[sym], clc_lengths[sym]);
            if eb > 0 {
                w.write_bits(u32::from(ev), eb);
            }
        }
        write_tokens(&mut w, &tokens, &lit_lengths, &dist_lengths);
    }
    w.finish()
}

/// Compresses `data` as a single fixed-Huffman block, regardless of
/// whether stored or dynamic coding would be cheaper.
///
/// The cost-based [`deflate_compress`] only emits a fixed block when it
/// wins, so benchmarks and the differential harness use this to obtain
/// streams guaranteed to exercise the fixed-code decode path.
pub fn deflate_compress_fixed(data: &[u8], level: CompressionLevel) -> Vec<u8> {
    let tokens = lz77::tokenize(data, level.params());
    let mut w = LsbBitWriter::new();
    w.write_bits(1, 1); // BFINAL
    w.write_bits(0b01, 2); // fixed
    write_tokens(
        &mut w,
        &tokens,
        &fixed_litlen_lengths(),
        &fixed_dist_lengths(),
    );
    w.finish()
}

fn write_stored(w: &mut LsbBitWriter, data: &[u8]) {
    let chunks: Vec<&[u8]> = if data.is_empty() {
        vec![&[]]
    } else {
        data.chunks(65_535).collect()
    };
    for (i, chunk) in chunks.iter().enumerate() {
        let last = i + 1 == chunks.len();
        w.write_bits(u32::from(last), 1);
        w.write_bits(0b00, 2);
        w.align_to_byte();
        let len = chunk.len() as u16;
        w.write_bits(u32::from(len), 16);
        w.write_bits(u32::from(!len), 16);
        w.write_aligned_bytes(chunk);
    }
}

/// Canonical codes pre-reversed into the LSB-first bit order DEFLATE
/// streams use, so the per-token loop can emit them with plain
/// `write_bits` instead of reversing bit-by-bit per symbol.
fn reversed_codes(lengths: &[u8]) -> Vec<u32> {
    canonical_codes(lengths)
        .expect("valid lengths")
        .iter()
        .zip(lengths)
        .map(|(&code, &len)| {
            if len == 0 {
                0
            } else {
                code.reverse_bits() >> (32 - u32::from(len))
            }
        })
        .collect()
}

fn write_tokens(w: &mut LsbBitWriter, tokens: &[Token], lit_lengths: &[u8], dist_lengths: &[u8]) {
    let lit_codes = reversed_codes(lit_lengths);
    let dist_codes = reversed_codes(dist_lengths);
    for &t in tokens {
        match t {
            Token::Literal(b) => {
                w.write_bits(lit_codes[b as usize], lit_lengths[b as usize]);
            }
            Token::Match { len, dist } => {
                // Code and extra bits fuse into one write when they fit
                // the writer's 24-bit ceiling (litlen: ≤15+5 always
                // does; dist: ≤15+13 usually does).
                let (lc, le, lv) = length_code(len);
                let ll = lit_lengths[lc];
                w.write_bits(lit_codes[lc] | u32::from(lv) << ll, ll + le);
                let (dc, de, dv) = dist_code(dist);
                let dl = dist_lengths[dc];
                if dl + de <= 24 {
                    w.write_bits(dist_codes[dc] | u32::from(dv) << dl, dl + de);
                } else {
                    w.write_bits(dist_codes[dc], dl);
                    w.write_bits(u32::from(dv), de);
                }
            }
        }
    }
    w.write_bits(lit_codes[END_OF_BLOCK], lit_lengths[END_OF_BLOCK]);
}

/// Run-length-encodes the concatenated literal+distance code lengths with
/// the 16/17/18 repeat codes. Returns `(tokens, hlit, hdist)` where each
/// token is `(symbol, extra_bits, extra_value)`.
fn encode_code_lengths(lit: &[u8], dist: &[u8]) -> (Vec<(usize, u8, u16)>, usize, usize) {
    let hlit = {
        let mut n = lit.len().min(LITLEN_SYMBOLS);
        while n > 257 && lit[n - 1] == 0 {
            n -= 1;
        }
        n
    };
    let hdist = {
        let mut n = dist.len().min(DIST_SYMBOLS);
        while n > 1 && dist[n - 1] == 0 {
            n -= 1;
        }
        n
    };
    let mut seq: Vec<u8> = Vec::with_capacity(hlit + hdist);
    seq.extend_from_slice(&lit[..hlit]);
    seq.extend_from_slice(&dist[..hdist]);

    let mut out = Vec::new();
    let mut i = 0usize;
    while i < seq.len() {
        let v = seq[i];
        let mut run = 1usize;
        while i + run < seq.len() && seq[i + run] == v {
            run += 1;
        }
        if v == 0 {
            let mut remaining = run;
            while remaining >= 11 {
                let take = remaining.min(138);
                out.push((18, 7, (take - 11) as u16));
                remaining -= take;
            }
            while remaining >= 3 {
                let take = remaining.min(10);
                out.push((17, 3, (take - 3) as u16));
                remaining -= take;
            }
            for _ in 0..remaining {
                out.push((0, 0, 0));
            }
        } else {
            out.push((v as usize, 0, 0));
            let mut remaining = run - 1;
            while remaining >= 3 {
                let take = remaining.min(6);
                out.push((16, 2, (take - 3) as u16));
                remaining -= take;
            }
            for _ in 0..remaining {
                out.push((v as usize, 0, 0));
            }
        }
        i += run;
    }
    (out, hlit, hdist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::inflate;

    #[test]
    fn length_code_boundaries() {
        assert_eq!(length_code(3), (257, 0, 0));
        assert_eq!(length_code(10), (264, 0, 0));
        assert_eq!(length_code(11), (265, 1, 0));
        assert_eq!(length_code(12), (265, 1, 1));
        assert_eq!(length_code(257), (284, 5, 30));
        assert_eq!(length_code(258), (285, 0, 0));
    }

    #[test]
    fn dist_code_boundaries() {
        assert_eq!(dist_code(1), (0, 0, 0));
        assert_eq!(dist_code(4), (3, 0, 0));
        assert_eq!(dist_code(5), (4, 1, 0));
        assert_eq!(dist_code(6), (4, 1, 1));
        assert_eq!(dist_code(32_768), (29, 13, 8191));
        assert_eq!(dist_code(24_577), (29, 13, 0));
    }

    #[test]
    fn every_length_and_distance_is_covered() {
        for len in 3u16..=258 {
            let (code, extra, val) = length_code(len);
            assert!((257..=285).contains(&code));
            let (base, eb) = LENGTH_TABLE[code - 257];
            assert_eq!(eb, extra);
            assert_eq!(base + val, len);
        }
        for dist in 1u16..=32_767 {
            let (code, extra, val) = dist_code(dist);
            assert!(code < 30);
            let (base, eb) = DIST_TABLE[code];
            assert_eq!(eb, extra);
            assert_eq!(base + val, dist);
        }
    }

    #[test]
    fn fixed_lengths_match_rfc() {
        let l = fixed_litlen_lengths();
        assert_eq!(l[0], 8);
        assert_eq!(l[143], 8);
        assert_eq!(l[144], 9);
        assert_eq!(l[255], 9);
        assert_eq!(l[256], 7);
        assert_eq!(l[279], 7);
        assert_eq!(l[280], 8);
        assert_eq!(l[287], 8);
    }

    #[test]
    fn roundtrip_empty() {
        let packed = deflate_compress(b"", CompressionLevel::Best);
        assert_eq!(inflate(&packed).unwrap(), b"");
    }

    #[test]
    fn roundtrip_text() {
        let data = b"It was the best of times, it was the worst of times...".repeat(50);
        for level in [CompressionLevel::Fast, CompressionLevel::Best] {
            let packed = deflate_compress(&data, level);
            assert!(packed.len() < data.len() / 3);
            assert_eq!(inflate(&packed).unwrap(), data);
        }
    }

    #[test]
    fn roundtrip_binary_incompressible() {
        let mut state = 0xdeadbeefu32;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (state >> 24) as u8
            })
            .collect();
        let packed = deflate_compress(&data, CompressionLevel::Best);
        assert_eq!(inflate(&packed).unwrap(), data);
        // Stored fallback keeps expansion tiny.
        assert!(packed.len() <= data.len() + 5 * (data.len() / 65_535 + 1) + 8);
    }

    #[test]
    fn roundtrip_all_byte_values() {
        let data: Vec<u8> = (0u16..=255).map(|b| b as u8).cycle().take(2048).collect();
        let packed = deflate_compress(&data, CompressionLevel::Best);
        assert_eq!(inflate(&packed).unwrap(), data);
    }

    #[test]
    #[allow(clippy::same_item_push)] // RLE expansion repeats values
    fn code_length_rle_reconstructs() {
        // Decode the RLE by hand and compare.
        let lit: Vec<u8> = {
            let mut v = vec![0u8; LITLEN_SYMBOLS];
            v[0] = 3;
            v[1] = 3;
            v[2] = 3;
            v[256] = 2;
            v[257] = 2;
            v
        };
        let dist = vec![1u8, 1];
        let (tokens, hlit, hdist) = encode_code_lengths(&lit, &dist);
        assert_eq!(hlit, 258);
        assert_eq!(hdist, 2);
        let mut seq = Vec::new();
        for &(sym, _, ev) in &tokens {
            match sym {
                0..=15 => seq.push(sym as u8),
                16 => {
                    let last = *seq.last().unwrap();
                    for _ in 0..ev + 3 {
                        seq.push(last);
                    }
                }
                17 => {
                    for _ in 0..ev + 3 {
                        seq.push(0);
                    }
                }
                18 => {
                    for _ in 0..ev + 11 {
                        seq.push(0);
                    }
                }
                _ => unreachable!(),
            }
        }
        let mut expect = lit[..hlit].to_vec();
        expect.extend_from_slice(&dist[..hdist]);
        assert_eq!(seq, expect);
    }

    #[test]
    fn large_input_spanning_many_stored_chunks() {
        // Force stored by using high-entropy data > 64 KiB.
        let mut state = 7u64;
        let data: Vec<u8> = (0..200_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1);
                (state >> 56) as u8
            })
            .collect();
        let packed = deflate_compress(&data, CompressionLevel::Fast);
        assert_eq!(inflate(&packed).unwrap(), data);
    }
}
