//! CRC-32 (IEEE 802.3 polynomial, reflected), as used by gzip trailers.

/// Table of CRC remainders for every byte value, built at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (n, entry) in t.iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// A streaming CRC-32 hasher.
///
/// # Examples
///
/// ```
/// use codecomp_flate::crc32::Crc32;
///
/// let mut h = Crc32::new();
/// h.update(b"123456789");
/// assert_eq!(h.finalize(), 0xCBF4_3926);
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the hash.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ u32::from(b)) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Returns the final checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"split across several updates";
        let mut h = Crc32::new();
        for chunk in data.chunks(5) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn finalize_is_idempotent() {
        let mut h = Crc32::new();
        h.update(b"xyz");
        assert_eq!(h.finalize(), h.finalize());
    }
}
