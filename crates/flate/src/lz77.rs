//! LZ77 match finding with hash chains, in DEFLATE's parameter envelope
//! (matches of 3..=258 bytes at distances 1..=32768).
//!
//! The finder is built around zlib-style heuristics:
//!
//! - a **4-byte hash** over the window head selects chain buckets, so a
//!   chain candidate almost always shares ≥ 4 leading bytes and the
//!   verify step starts from real matches instead of collisions;
//! - the **longest-match loop compares 8 bytes per iteration**
//!   (`u64::from_le_bytes` + `trailing_zeros` on the XOR) instead of one;
//! - **`good_len` / `nice_len` chain culling**: once the best match
//!   reaches `nice_len` the search stops outright, and a search entered
//!   with a previous match ≥ `good_len` in hand gets a quartered chain
//!   budget (it only needs to beat an already-good match);
//! - **one-step lazy evaluation with a `max_lazy` cutoff**: a match
//!   shorter than `max_lazy` is held back one position to see whether a
//!   strictly longer match starts at the next byte; matches ≥ `max_lazy`
//!   are taken immediately.

/// Minimum match length DEFLATE can encode.
pub const MIN_MATCH: usize = 3;
/// Maximum match length DEFLATE can encode.
pub const MAX_MATCH: usize = 258;
/// Maximum backwards distance DEFLATE can encode.
pub const MAX_DISTANCE: usize = 32_768;

/// Chain-bucket table size ceiling (15 bits, zlib's choice). Small
/// inputs get proportionally smaller tables — see [`hash_bits_for`] —
/// so deflating a 50-byte wire section does not zero 128 KiB of heads.
const MAX_HASH_BITS: u32 = 15;
/// Floor on the bucket-table size; below this the table is too small
/// for the multiplicative hash to spread even tiny inputs.
const MIN_HASH_BITS: u32 = 8;
/// Bytes folded into the chain hash. Positions with fewer than this
/// many bytes left are never inserted (a tail shorter than `MIN_MATCH`
/// could not start a match anyway, and 3-byte tails only lose matches
/// of exactly 3 at the very end of the input).
const HASH_BYTES: usize = 4;
/// Chain-head sentinel: no position hashed to this bucket yet.
const NIL: u32 = u32::MAX;

/// One LZ77 token: a literal byte or a back-reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference copying `len` bytes from `dist` bytes back.
    Match {
        /// Copy length, in `MIN_MATCH..=MAX_MATCH`.
        len: u16,
        /// Backwards distance, in `1..=MAX_DISTANCE`.
        dist: u16,
    },
}

/// Effort knobs for the match finder, indexed by compression level.
#[derive(Debug, Clone, Copy)]
pub struct MatchParams {
    /// Maximum hash-chain links followed per position.
    pub max_chain: usize,
    /// A search entered while already holding a match at least this
    /// long gets a quartered chain budget.
    pub good_len: usize,
    /// Stop searching once a match at least this long is found.
    pub nice_len: usize,
    /// Lazy cutoff: matches at least this long are emitted immediately
    /// instead of being deferred one position. Only meaningful with
    /// `lazy`.
    pub max_lazy: usize,
    /// Enable one-step lazy matching.
    pub lazy: bool,
}

impl MatchParams {
    /// Fast parameters (short chains, greedy parsing).
    pub fn fast() -> Self {
        Self {
            max_chain: 12,
            good_len: 8,
            nice_len: 32,
            max_lazy: 0,
            lazy: false,
        }
    }

    /// Balanced parameters (medium chains, lazy parsing with an early
    /// cutoff) — the [`crate::CompressionLevel::Default`] knobs.
    pub fn balanced() -> Self {
        Self {
            max_chain: 128,
            good_len: 16,
            nice_len: 128,
            max_lazy: 32,
            lazy: true,
        }
    }

    /// Thorough parameters (long chains, fully lazy parsing).
    pub fn best() -> Self {
        Self {
            max_chain: 1024,
            good_len: 32,
            nice_len: MAX_MATCH,
            max_lazy: MAX_MATCH,
            lazy: true,
        }
    }
}

/// Bucket-table width for an input with `positions` insertable
/// positions: the smallest power of two covering them, clamped to
/// [`MIN_HASH_BITS`]..=[`MAX_HASH_BITS`]. Inputs at or beyond the
/// 32 Ki-position ceiling behave exactly like a fixed 15-bit table;
/// tiny inputs (wire sections are often under 100 bytes) pay for a
/// few-hundred-entry table instead of 32 Ki entries per call.
fn hash_bits_for(positions: usize) -> u32 {
    (usize::BITS - positions.saturating_sub(1).leading_zeros()).clamp(MIN_HASH_BITS, MAX_HASH_BITS)
}

/// Hashes the [`HASH_BYTES`] window head at `pos` into a chain bucket,
/// keeping the top `bits` of the multiplicative mix.
#[inline]
fn hash4(data: &[u8], pos: usize, bits: u32) -> usize {
    let w = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
    (w.wrapping_mul(2_654_435_761) >> (32 - bits)) as usize
}

/// Hashes only the first 3 bytes at `pos`, for the length-3 salvage
/// table (a 4-byte hash can never surface a match of exactly 3).
#[inline]
fn hash3(data: &[u8], pos: usize, bits: u32) -> usize {
    let w = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) & 0x00FF_FFFF;
    (w.wrapping_mul(2_654_435_761) >> (32 - bits)) as usize
}

/// Length of the common prefix of `data[a..]` and `data[b..]`, up to
/// `max_len`, comparing 8 bytes per iteration. Requires
/// `b + max_len <= data.len()` and `a < b`.
#[inline]
fn match_len(data: &[u8], a: usize, b: usize, max_len: usize) -> usize {
    let mut len = 0usize;
    while len + 8 <= max_len {
        let x = u64::from_le_bytes(data[a + len..a + len + 8].try_into().expect("8 bytes"));
        let y = u64::from_le_bytes(data[b + len..b + len + 8].try_into().expect("8 bytes"));
        let xor = x ^ y;
        if xor != 0 {
            return len + (xor.trailing_zeros() >> 3) as usize;
        }
        len += 8;
    }
    while len < max_len && data[a + len] == data[b + len] {
        len += 1;
    }
    len
}

/// A hash-chain dictionary over a byte buffer.
struct ChainFinder<'a> {
    data: &'a [u8],
    head: Vec<u32>,
    prev: Vec<u32>,
    /// Most recent position per 3-byte hash. The chains hash 4 bytes,
    /// so matches of exactly [`MIN_MATCH`] would otherwise be
    /// invisible; the lazy levels probe this one extra candidate to
    /// salvage them (the greedy fast level skips it for speed).
    head3: Vec<u32>,
    /// Bucket-table width for this input (see [`hash_bits_for`]).
    hash_bits: u32,
    params: MatchParams,
    /// Positions `< inserted` are already in the dictionary.
    inserted: usize,
    /// Chain links followed per search — the profile the deflate
    /// match-finder optimisation needs. `None` when telemetry is off.
    probe_depth: Option<codecomp_core::telemetry::LocalHistogram>,
}

impl<'a> ChainFinder<'a> {
    fn new(data: &'a [u8], params: MatchParams) -> Self {
        // Chain links are u32 indices; DEFLATE streams in this system
        // are far below that, and the prev array would be the limit
        // long before the index type.
        assert!(
            data.len() < NIL as usize,
            "input too large for u32 chain links"
        );
        let positions = data.len().saturating_sub(HASH_BYTES - 1);
        let hash_bits = hash_bits_for(positions);
        let hash_size = 1usize << hash_bits;
        Self {
            data,
            head: vec![NIL; hash_size],
            prev: vec![NIL; positions],
            head3: if params.lazy {
                vec![NIL; hash_size]
            } else {
                Vec::new()
            },
            hash_bits,
            params,
            inserted: 0,
            probe_depth: codecomp_core::telemetry::enabled()
                .then(codecomp_core::telemetry::LocalHistogram::default),
        }
    }

    /// Inserts every not-yet-inserted position before `pos` into the
    /// chains, so a search at `pos` sees all earlier candidates but
    /// never itself.
    fn insert_up_to(&mut self, pos: usize) {
        let stop = pos.min(self.prev.len());
        let lazy = self.params.lazy;
        let bits = self.hash_bits;
        while self.inserted < stop {
            let h = hash4(self.data, self.inserted, bits);
            self.prev[self.inserted] = self.head[h];
            self.head[h] = self.inserted as u32;
            if lazy {
                self.head3[hash3(self.data, self.inserted, bits)] = self.inserted as u32;
            }
            self.inserted += 1;
        }
        self.inserted = self.inserted.max(pos);
    }

    /// Longest match starting at `pos`, if at least `MIN_MATCH` long.
    ///
    /// `held_len` is the length of a match already in hand from lazy
    /// evaluation (0 otherwise): per the `good_len` heuristic, a search
    /// that only needs to beat a good match gets a quartered budget.
    fn longest_match(&mut self, pos: usize, held_len: usize) -> Option<(usize, usize)> {
        if pos + HASH_BYTES > self.data.len() {
            return None;
        }
        let max_len = (self.data.len() - pos).min(MAX_MATCH);
        let nice_len = self.params.nice_len.min(max_len);
        let mut chain = self.params.max_chain;
        if held_len >= self.params.good_len {
            chain >>= 2;
        }
        let budget = chain;
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        // Length-3 salvage (lazy levels only): the most recent position
        // sharing the 3-byte prefix. Anything matching ≥ 4 bytes is in
        // the 4-byte chain anyway, so one candidate suffices.
        if self.params.lazy {
            let c3 = self.head3[hash3(self.data, pos, self.hash_bits)];
            if c3 != NIL && pos - (c3 as usize) <= MAX_DISTANCE {
                let len = match_len(self.data, c3 as usize, pos, max_len);
                if len >= MIN_MATCH {
                    best_len = len;
                    best_dist = pos - c3 as usize;
                }
            }
        }
        let mut cand = self.head[hash4(self.data, pos, self.hash_bits)];
        while cand != NIL && chain > 0 && best_len < nice_len {
            let c = cand as usize;
            let dist = pos - c;
            if dist > MAX_DISTANCE {
                break;
            }
            // Quick reject: the two bytes straddling the current best
            // must match before a full compare can possibly win.
            if best_len < max_len
                && self.data[c + best_len] == self.data[pos + best_len]
                && self.data[c + best_len - 1] == self.data[pos + best_len - 1]
            {
                let len = match_len(self.data, c, pos, max_len);
                if len > best_len {
                    best_len = len;
                    best_dist = dist;
                }
            }
            cand = self.prev[c];
            chain -= 1;
        }
        if let Some(h) = &mut self.probe_depth {
            h.record((budget - chain) as u64);
        }
        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    }
}

/// Tokenizes `data` with greedy or lazy LZ77 parsing.
///
/// # Examples
///
/// ```
/// use codecomp_flate::lz77::{tokenize, MatchParams, Token};
///
/// let tokens = tokenize(b"abcabcabcabc", MatchParams::best());
/// // The first three bytes are literals; the rest is one long match.
/// assert!(matches!(tokens[3], Token::Match { dist: 3, .. }));
/// ```
pub fn tokenize(data: &[u8], params: MatchParams) -> Vec<Token> {
    let mut finder = ChainFinder::new(data, params);
    let mut tokens = Vec::new();
    // Length gained per lazy deferral (0 when the held match stood).
    // Repeated deferral is deliberately NOT done: letting the held
    // match lose again at the next position cascades switch-literals
    // through slowly-growing match runs and measurably worsens the
    // corpus ratio, so a match is deferred at most once.
    let mut lazy_gain = codecomp_core::telemetry::enabled()
        .then(codecomp_core::telemetry::LocalHistogram::default);
    let mut lazy_won = 0u64;
    let mut pos = 0usize;
    while pos < data.len() {
        finder.insert_up_to(pos);
        let Some((len, dist)) = finder.longest_match(pos, 0) else {
            tokens.push(Token::Literal(data[pos]));
            pos += 1;
            continue;
        };
        if params.lazy && len < params.max_lazy {
            // One-step lazy evaluation: if a strictly longer match
            // starts at the very next byte, this one shrinks to a
            // literal. The search is told what it has to beat so the
            // good_len heuristic can cull its chain budget.
            finder.insert_up_to(pos + 1);
            let next = finder.longest_match(pos + 1, len);
            if let Some(h) = &mut lazy_gain {
                h.record(next.map_or(0, |(nlen, _)| nlen.saturating_sub(len)) as u64);
            }
            if let Some((nlen, ndist)) = next {
                if nlen > len {
                    tokens.push(Token::Literal(data[pos]));
                    tokens.push(Token::Match {
                        len: nlen as u16,
                        dist: ndist as u16,
                    });
                    lazy_won += 1;
                    pos += 1 + nlen;
                    continue;
                }
            }
        }
        tokens.push(Token::Match {
            len: len as u16,
            dist: dist as u16,
        });
        pos += len;
    }
    if let Some(depths) = finder.probe_depth.take() {
        use codecomp_core::telemetry as t;
        let matches = tokens
            .iter()
            .filter(|tok| matches!(tok, Token::Match { .. }))
            .count() as u64;
        t::counter_add("flate.deflate.match_tokens", matches);
        t::counter_add("flate.deflate.literal_tokens", tokens.len() as u64 - matches);
        t::counter_add("flate.deflate.input_bytes", data.len() as u64);
        t::counter_add("flate.deflate.lazy_won", lazy_won);
        t::histogram_merge("flate.deflate.probe_depth", &depths);
        if let Some(h) = &lazy_gain {
            t::histogram_merge("flate.deflate.lazy_gain", h);
        }
    }
    tokens
}

/// Expands tokens back into bytes; the inverse of [`tokenize`].
///
/// Returns `None` for invalid distances (reaching before the start).
pub fn detokenize(tokens: &[Token]) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    for &t in tokens {
        match t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > out.len() {
                    return None;
                }
                let start = out.len() - dist;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_params() -> [MatchParams; 3] {
        [
            MatchParams::fast(),
            MatchParams::balanced(),
            MatchParams::best(),
        ]
    }

    fn roundtrip(data: &[u8], params: MatchParams) {
        let tokens = tokenize(data, params);
        assert_eq!(detokenize(&tokens).unwrap(), data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for params in all_params() {
            roundtrip(b"", params);
            roundtrip(b"a", params);
            roundtrip(b"ab", params);
            roundtrip(b"abc", params);
            roundtrip(b"abcd", params);
            roundtrip(b"abcdabcd", params);
        }
    }

    #[test]
    fn repeated_pattern_produces_matches() {
        let data = b"abcabcabcabcabcabc";
        let tokens = tokenize(data, MatchParams::best());
        assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
        assert_eq!(detokenize(&tokens).unwrap(), data);
    }

    #[test]
    fn overlapping_match_rle_style() {
        // Runs compress via dist=1 overlapping copies.
        let data = vec![b'x'; 1000];
        for params in all_params() {
            let tokens = tokenize(&data, params);
            assert!(
                tokens.len() < 20,
                "run should collapse, got {} tokens",
                tokens.len()
            );
            assert_eq!(detokenize(&tokens).unwrap(), data);
        }
    }

    #[test]
    fn incompressible_input_roundtrips() {
        // Pseudorandom bytes (xorshift) have few matches but must survive.
        let mut state = 0x12345678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                (state >> 24) as u8
            })
            .collect();
        for params in all_params() {
            roundtrip(&data, params);
        }
    }

    #[test]
    fn long_runs_split_at_max_match() {
        let data = vec![b'y'; MAX_MATCH * 3 + 7];
        let tokens = tokenize(&data, MatchParams::best());
        for t in &tokens {
            if let Token::Match { len, .. } = t {
                assert!((*len as usize) <= MAX_MATCH);
            }
        }
        assert_eq!(detokenize(&tokens).unwrap(), data);
    }

    #[test]
    fn match_len_agrees_with_byte_loop() {
        // The word-wide compare must agree with the obvious loop at
        // every offset parity and boundary length.
        let mut data = b"abcdefgh_abcdefgh_abcdefgX_abcdefgh".to_vec();
        data.extend(std::iter::repeat_n(b'q', 600));
        for a in 0..8 {
            for b in (a + 1)..24 {
                let max_len = (data.len() - b).min(MAX_MATCH);
                let naive = {
                    let mut l = 0;
                    while l < max_len && data[a + l] == data[b + l] {
                        l += 1;
                    }
                    l
                };
                assert_eq!(match_len(&data, a, b, max_len), naive, "a={a} b={b}");
            }
        }
        // A full-length 258 match on the run tail.
        let run_start = data.len() - 600;
        assert_eq!(
            match_len(&data, run_start, run_start + 300, MAX_MATCH),
            MAX_MATCH
        );
    }

    #[test]
    fn lazy_matching_not_worse_than_greedy() {
        let data = b"xyzabcdefgabcdefghijklxyzabcdefghijkl".repeat(20);
        let greedy = tokenize(
            &data,
            MatchParams {
                lazy: false,
                ..MatchParams::best()
            },
        );
        let lazy = tokenize(&data, MatchParams::best());
        assert!(lazy.len() <= greedy.len());
        assert_eq!(detokenize(&lazy).unwrap(), data);
    }

    #[test]
    fn lazy_prefers_longer_next_match() {
        // At the second "abcdefghij" the greedy choice is the 4-byte
        // "abcd" echo; one position later a 10-byte match starts. Lazy
        // parsing must emit the literal 'a' and take the longer match.
        let data = b"abcd......bcdefghijk___abcdefghijk".to_vec();
        let lazy = tokenize(&data, MatchParams::best());
        let greedy = tokenize(
            &data,
            MatchParams {
                lazy: false,
                ..MatchParams::best()
            },
        );
        assert!(lazy.len() <= greedy.len());
        assert_eq!(detokenize(&lazy).unwrap(), data);
        assert_eq!(detokenize(&greedy).unwrap(), data);
    }

    #[test]
    fn held_match_at_end_of_input_is_emitted() {
        // A deferred match whose deferral point is the last byte: the
        // held match must still be flushed.
        let data = b"qrstuqrstu".to_vec();
        for params in all_params() {
            roundtrip(&data, params);
        }
    }

    #[test]
    fn detokenize_rejects_bad_distance() {
        assert!(detokenize(&[Token::Match { len: 3, dist: 1 }]).is_none());
        assert!(detokenize(&[Token::Literal(7), Token::Match { len: 3, dist: 2 }]).is_none());
    }
}
