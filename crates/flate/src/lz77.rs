//! LZ77 match finding with hash chains, in DEFLATE's parameter envelope
//! (matches of 3..=258 bytes at distances 1..=32768).

/// Minimum match length DEFLATE can encode.
pub const MIN_MATCH: usize = 3;
/// Maximum match length DEFLATE can encode.
pub const MAX_MATCH: usize = 258;
/// Maximum backwards distance DEFLATE can encode.
pub const MAX_DISTANCE: usize = 32_768;

const HASH_BITS: usize = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// One LZ77 token: a literal byte or a back-reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference copying `len` bytes from `dist` bytes back.
    Match {
        /// Copy length, in `MIN_MATCH..=MAX_MATCH`.
        len: u16,
        /// Backwards distance, in `1..=MAX_DISTANCE`.
        dist: u16,
    },
}

/// Effort knobs for the match finder, indexed by compression level.
#[derive(Debug, Clone, Copy)]
pub struct MatchParams {
    /// Maximum hash-chain links followed per position.
    pub max_chain: usize,
    /// Stop searching once a match at least this long is found.
    pub good_len: usize,
    /// Enable one-step lazy matching.
    pub lazy: bool,
}

impl MatchParams {
    /// Fast parameters (short chains, greedy parsing).
    pub fn fast() -> Self {
        Self {
            max_chain: 16,
            good_len: 32,
            lazy: false,
        }
    }

    /// Thorough parameters (long chains, lazy parsing).
    pub fn best() -> Self {
        Self {
            max_chain: 1024,
            good_len: 258,
            lazy: true,
        }
    }
}

fn hash(data: &[u8], pos: usize) -> usize {
    let a = u32::from(data[pos]);
    let b = u32::from(data[pos + 1]);
    let c = u32::from(data[pos + 2]);
    (((a << 10) ^ (b << 5) ^ c).wrapping_mul(2_654_435_761) >> (32 - HASH_BITS as u32)) as usize
        & (HASH_SIZE - 1)
}

/// A hash-chain dictionary over a byte buffer.
struct ChainFinder<'a> {
    data: &'a [u8],
    head: Vec<i64>,
    prev: Vec<i64>,
    params: MatchParams,
    /// Chain links followed per search — the profile the deflate
    /// match-finder optimisation needs. `None` when telemetry is off.
    probe_depth: Option<codecomp_core::telemetry::LocalHistogram>,
}

impl<'a> ChainFinder<'a> {
    fn new(data: &'a [u8], params: MatchParams) -> Self {
        Self {
            data,
            head: vec![-1; HASH_SIZE],
            prev: vec![-1; data.len()],
            params,
            probe_depth: codecomp_core::telemetry::enabled()
                .then(codecomp_core::telemetry::LocalHistogram::default),
        }
    }

    fn insert(&mut self, pos: usize) {
        if pos + MIN_MATCH <= self.data.len() {
            let h = hash(self.data, pos);
            self.prev[pos] = self.head[h];
            self.head[h] = pos as i64;
        }
    }

    /// Longest match starting at `pos`, if at least `MIN_MATCH` long.
    fn longest_match(&mut self, pos: usize) -> Option<(usize, usize)> {
        if pos + MIN_MATCH > self.data.len() {
            return None;
        }
        let max_len = (self.data.len() - pos).min(MAX_MATCH);
        let h = hash(self.data, pos);
        let mut cand = self.head[h];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut chain = self.params.max_chain;
        while cand >= 0 && chain > 0 {
            let c = cand as usize;
            let dist = pos - c;
            if dist > MAX_DISTANCE {
                break;
            }
            // Quick reject: compare the byte just past the current best.
            if best_len < max_len && self.data[c + best_len] == self.data[pos + best_len] {
                let mut len = 0;
                while len < max_len && self.data[c + len] == self.data[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = dist;
                    if len >= self.params.good_len {
                        break;
                    }
                }
            }
            cand = self.prev[c];
            chain -= 1;
        }
        if let Some(h) = &mut self.probe_depth {
            h.record((self.params.max_chain - chain) as u64);
        }
        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    }
}

/// Tokenizes `data` with greedy or lazy LZ77 parsing.
///
/// # Examples
///
/// ```
/// use codecomp_flate::lz77::{tokenize, MatchParams, Token};
///
/// let tokens = tokenize(b"abcabcabcabc", MatchParams::best());
/// // The first three bytes are literals; the rest is one long match.
/// assert!(matches!(tokens[3], Token::Match { dist: 3, .. }));
/// ```
pub fn tokenize(data: &[u8], params: MatchParams) -> Vec<Token> {
    let mut finder = ChainFinder::new(data, params);
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    // Positions `< inserted` are already in the dictionary; positions are
    // inserted lazily just before each search so a position never matches
    // itself.
    let mut inserted = 0usize;
    while pos < data.len() {
        while inserted < pos {
            finder.insert(inserted);
            inserted += 1;
        }
        match finder.longest_match(pos) {
            Some((found_len, found_dist)) => {
                let (mut len, mut dist, mut start) = (found_len, found_dist, pos);
                if params.lazy && len < params.good_len && pos + 1 + MIN_MATCH <= data.len() {
                    // Peek one position ahead; if a strictly longer match
                    // starts there, emit a literal and take that one.
                    finder.insert(pos);
                    inserted = pos + 1;
                    if let Some((next_len, next_dist)) = finder.longest_match(pos + 1) {
                        if next_len > len {
                            tokens.push(Token::Literal(data[pos]));
                            start = pos + 1;
                            len = next_len;
                            dist = next_dist;
                        }
                    }
                }
                tokens.push(Token::Match {
                    len: len as u16,
                    dist: dist as u16,
                });
                pos = start + len;
            }
            None => {
                tokens.push(Token::Literal(data[pos]));
                pos += 1;
            }
        }
    }
    if let Some(depths) = finder.probe_depth.take() {
        use codecomp_core::telemetry as t;
        let matches = tokens
            .iter()
            .filter(|tok| matches!(tok, Token::Match { .. }))
            .count() as u64;
        t::counter_add("flate.deflate.match_tokens", matches);
        t::counter_add("flate.deflate.literal_tokens", tokens.len() as u64 - matches);
        t::counter_add("flate.deflate.input_bytes", data.len() as u64);
        t::histogram_merge("flate.deflate.probe_depth", &depths);
    }
    tokens
}

/// Expands tokens back into bytes; the inverse of [`tokenize`].
///
/// Returns `None` for invalid distances (reaching before the start).
pub fn detokenize(tokens: &[Token]) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    for &t in tokens {
        match t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > out.len() {
                    return None;
                }
                let start = out.len() - dist;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], params: MatchParams) {
        let tokens = tokenize(data, params);
        assert_eq!(detokenize(&tokens).unwrap(), data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for params in [MatchParams::fast(), MatchParams::best()] {
            roundtrip(b"", params);
            roundtrip(b"a", params);
            roundtrip(b"ab", params);
            roundtrip(b"abc", params);
        }
    }

    #[test]
    fn repeated_pattern_produces_matches() {
        let data = b"abcabcabcabcabcabc";
        let tokens = tokenize(data, MatchParams::best());
        assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
        assert_eq!(detokenize(&tokens).unwrap(), data);
    }

    #[test]
    fn overlapping_match_rle_style() {
        // Runs compress via dist=1 overlapping copies.
        let data = vec![b'x'; 1000];
        let tokens = tokenize(&data, MatchParams::best());
        assert!(
            tokens.len() < 20,
            "run should collapse, got {} tokens",
            tokens.len()
        );
        assert_eq!(detokenize(&tokens).unwrap(), data);
    }

    #[test]
    fn incompressible_input_roundtrips() {
        // Pseudorandom bytes (xorshift) have few matches but must survive.
        let mut state = 0x12345678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                (state >> 24) as u8
            })
            .collect();
        roundtrip(&data, MatchParams::fast());
        roundtrip(&data, MatchParams::best());
    }

    #[test]
    fn long_runs_split_at_max_match() {
        let data = vec![b'y'; MAX_MATCH * 3 + 7];
        let tokens = tokenize(&data, MatchParams::best());
        for t in &tokens {
            if let Token::Match { len, .. } = t {
                assert!((*len as usize) <= MAX_MATCH);
            }
        }
        assert_eq!(detokenize(&tokens).unwrap(), data);
    }

    #[test]
    fn lazy_matching_not_worse_than_greedy() {
        let data = b"xyzabcdefgabcdefghijklxyzabcdefghijkl".repeat(20);
        let greedy = tokenize(
            &data,
            MatchParams {
                lazy: false,
                ..MatchParams::best()
            },
        );
        let lazy = tokenize(&data, MatchParams::best());
        assert!(lazy.len() <= greedy.len());
        assert_eq!(detokenize(&lazy).unwrap(), data);
    }

    #[test]
    fn detokenize_rejects_bad_distance() {
        assert!(detokenize(&[Token::Match { len: 3, dist: 1 }]).is_none());
        assert!(detokenize(&[Token::Literal(7), Token::Match { len: 3, dist: 2 }]).is_none());
    }
}
