//! Flate decoder edge cases: empty and truncated members, and the
//! output ceiling.

use codecomp_flate::{
    deflate_compress, gzip_compress, gzip_decompress, inflate, inflate_with_limit,
    CompressionLevel, FlateError,
};

#[test]
fn empty_inputs_rejected() {
    assert_eq!(inflate(&[]), Err(FlateError::Truncated));
    assert!(gzip_decompress(&[]).is_err());
}

#[test]
fn gzip_header_truncations_rejected() {
    let member = gzip_compress(b"edge cases", CompressionLevel::Best);
    // Every prefix of the 10-byte fixed header (and beyond) must fail
    // cleanly.
    for len in 0..member.len() {
        assert!(gzip_decompress(&member[..len]).is_err(), "prefix {len}");
    }
    assert_eq!(gzip_decompress(&member).unwrap(), b"edge cases");
}

#[test]
fn gzip_crc_flip_detected() {
    let mut member = gzip_compress(b"checksummed payload", CompressionLevel::Best);
    let n = member.len();
    member[n - 5] ^= 0x01; // inside the CRC32 trailer
    assert!(gzip_decompress(&member).is_err());
}

#[test]
fn inflate_output_ceiling() {
    let data = vec![7u8; 1 << 16];
    let packed = deflate_compress(&data, CompressionLevel::Best);
    assert_eq!(inflate_with_limit(&packed, data.len()).unwrap(), data);
    assert!(matches!(
        inflate_with_limit(&packed, data.len() - 1),
        Err(FlateError::LimitExceeded { .. })
    ));
}
