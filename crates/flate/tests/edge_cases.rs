//! Flate decoder edge cases: empty and truncated members, and the
//! output ceiling.

use codecomp_flate::{
    deflate_compress, gzip_compress, gzip_decompress, inflate, inflate_with_limit,
    reference_inflate_with_limit, CompressionLevel, FlateError,
};

#[test]
fn empty_inputs_rejected() {
    assert_eq!(inflate(&[]), Err(FlateError::Truncated));
    assert!(gzip_decompress(&[]).is_err());
}

#[test]
fn gzip_header_truncations_rejected() {
    let member = gzip_compress(b"edge cases", CompressionLevel::Best);
    // Every prefix of the 10-byte fixed header (and beyond) must fail
    // cleanly.
    for len in 0..member.len() {
        assert!(gzip_decompress(&member[..len]).is_err(), "prefix {len}");
    }
    assert_eq!(gzip_decompress(&member).unwrap(), b"edge cases");
}

#[test]
fn gzip_crc_flip_detected() {
    let mut member = gzip_compress(b"checksummed payload", CompressionLevel::Best);
    let n = member.len();
    member[n - 5] ^= 0x01; // inside the CRC32 trailer
    assert!(gzip_decompress(&member).is_err());
}

#[test]
fn inflate_output_ceiling() {
    let data = vec![7u8; 1 << 16];
    let packed = deflate_compress(&data, CompressionLevel::Best);
    assert_eq!(inflate_with_limit(&packed, data.len()).unwrap(), data);
    assert!(matches!(
        inflate_with_limit(&packed, data.len() - 1),
        Err(FlateError::LimitExceeded { .. })
    ));
}

/// A limit exactly at the output size accepts; one below rejects with
/// `LimitExceeded` — never `Corrupt`, since the stream itself is fine.
/// Checked across all block types (stored, fixed, dynamic, match-heavy)
/// and mirrored by the reference decoder.
#[test]
fn limit_boundary_is_exact_for_every_block_type() {
    let payloads: Vec<(&str, Vec<u8>)> = vec![
        // Short incompressible input → stored block.
        ("stored", (0u8..=63).collect()),
        // Match-heavy input → length/distance codes cross the boundary.
        ("matches", b"boundary ".repeat(400)),
        // Mixed text → dynamic Huffman.
        ("dynamic", b"the limit is checked before each byte lands".repeat(40)),
    ];
    for (name, data) in &payloads {
        for level in [CompressionLevel::Fast, CompressionLevel::Best] {
            let packed = deflate_compress(data, level);
            for decode in [inflate_with_limit, reference_inflate_with_limit] {
                assert_eq!(
                    &decode(&packed, data.len()).unwrap(),
                    data,
                    "{name}: exactly-at-limit decode"
                );
                assert_eq!(
                    decode(&packed, data.len() - 1),
                    Err(FlateError::LimitExceeded {
                        limit: data.len() as u64 - 1
                    }),
                    "{name}: one-under-limit decode"
                );
            }
        }
    }
}

/// Limit zero: any stream producing output must report `LimitExceeded`,
/// while a stream producing nothing decodes to the empty vector.
#[test]
fn limit_zero_only_admits_empty_output() {
    let nonempty = deflate_compress(b"x", CompressionLevel::Best);
    let empty = deflate_compress(&[], CompressionLevel::Best);
    for decode in [inflate_with_limit, reference_inflate_with_limit] {
        assert_eq!(
            decode(&nonempty, 0),
            Err(FlateError::LimitExceeded { limit: 0 })
        );
        assert_eq!(decode(&empty, 0).unwrap(), Vec::<u8>::new());
    }
}
