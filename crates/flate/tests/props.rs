//! Property-based tests: DEFLATE and gzip are inverses on arbitrary input.

use codecomp_flate::lz77::{detokenize, tokenize, MatchParams};
use codecomp_flate::{deflate_compress, gzip_compress, gzip_decompress, inflate, CompressionLevel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deflate_roundtrip_random(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        for level in [CompressionLevel::Fast, CompressionLevel::Best] {
            let packed = deflate_compress(&data, level);
            prop_assert_eq!(inflate(&packed).unwrap(), data.clone());
        }
    }

    #[test]
    fn deflate_roundtrip_lowentropy(data in prop::collection::vec(0u8..4, 0..4096)) {
        let packed = deflate_compress(&data, CompressionLevel::Best);
        prop_assert_eq!(inflate(&packed).unwrap(), data.clone());
        if data.len() > 512 {
            // Low-entropy input must actually compress.
            prop_assert!(packed.len() < data.len());
        }
    }

    #[test]
    fn gzip_roundtrip(data in prop::collection::vec(any::<u8>(), 0..2048)) {
        let packed = gzip_compress(&data, CompressionLevel::Best);
        prop_assert_eq!(gzip_decompress(&packed).unwrap(), data);
    }

    #[test]
    fn lz77_roundtrip(data in prop::collection::vec(any::<u8>(), 0..2048)) {
        for params in [MatchParams::fast(), MatchParams::best()] {
            let tokens = tokenize(&data, params);
            prop_assert_eq!(detokenize(&tokens).unwrap(), data.clone());
        }
    }

    #[test]
    fn inflate_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..512)) {
        // Any result is fine; the decoder must simply not panic or hang.
        let _ = inflate(&data);
        let _ = gzip_decompress(&data);
    }

    #[test]
    fn corrupted_gzip_detected(
        data in prop::collection::vec(any::<u8>(), 64..512),
        flip in 18usize..64,
    ) {
        let mut packed = gzip_compress(&data, CompressionLevel::Best);
        let idx = flip % packed.len();
        if idx >= 10 {
            packed[idx] ^= 0x01;
            // Either an error, or (vanishingly unlikely) identical output.
            if let Ok(out) = gzip_decompress(&packed) { prop_assert_eq!(out, data) }
        }
    }
}
