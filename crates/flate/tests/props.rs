//! Randomized (deterministic, seeded) tests: DEFLATE and gzip are
//! inverses on arbitrary input, and the decoders are total on garbage.

use codecomp_core::fault::XorShift64;
use codecomp_flate::lz77::{detokenize, tokenize, MatchParams};
use codecomp_flate::{deflate_compress, gzip_compress, gzip_decompress, inflate, CompressionLevel};

const CASES: u64 = 64;

fn random_bytes(rng: &mut XorShift64, max_len: usize) -> Vec<u8> {
    let len = rng.below(max_len as u64 + 1) as usize;
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

#[test]
fn deflate_roundtrip_random() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0xF100 + case);
        let data = random_bytes(&mut rng, 4095);
        for level in [CompressionLevel::Fast, CompressionLevel::Best] {
            let packed = deflate_compress(&data, level);
            assert_eq!(inflate(&packed).unwrap(), data);
        }
    }
}

#[test]
fn deflate_roundtrip_lowentropy() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0xF200 + case);
        let len = rng.below(4096) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.below(4) as u8).collect();
        let packed = deflate_compress(&data, CompressionLevel::Best);
        assert_eq!(inflate(&packed).unwrap(), data);
        if data.len() > 512 {
            // Low-entropy input must actually compress.
            assert!(packed.len() < data.len());
        }
    }
}

#[test]
fn gzip_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0xF300 + case);
        let data = random_bytes(&mut rng, 2047);
        let packed = gzip_compress(&data, CompressionLevel::Best);
        assert_eq!(gzip_decompress(&packed).unwrap(), data);
    }
}

#[test]
fn lz77_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0xF400 + case);
        let data = random_bytes(&mut rng, 2047);
        for params in [MatchParams::fast(), MatchParams::best()] {
            let tokens = tokenize(&data, params);
            assert_eq!(detokenize(&tokens).unwrap(), data);
        }
    }
}

#[test]
fn inflate_never_panics_on_garbage() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0xF500 + case);
        let data = random_bytes(&mut rng, 511);
        // Any result is fine; the decoder must simply not panic or hang.
        let _ = inflate(&data);
        let _ = gzip_decompress(&data);
    }
}

#[test]
fn corrupted_gzip_detected() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0xF600 + case);
        let len = rng.range_usize(64, 512);
        let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let mut packed = gzip_compress(&data, CompressionLevel::Best);
        let idx = rng.range_usize(18, 64) % packed.len();
        if idx >= 10 {
            packed[idx] ^= 0x01;
            // Either an error, or (vanishingly unlikely) identical output.
            if let Ok(out) = gzip_decompress(&packed) {
                assert_eq!(out, data);
            }
        }
    }
}
