//! Edge-case integration tests for the VM: indirect calls, block macros,
//! deep call stacks, and encoding limits.

use codecomp_vm::asm::parse_program;
use codecomp_vm::interp::{Machine, FUNC_BASE};
use codecomp_vm::isa::IsaConfig;

fn run(text: &str, entry: &str, args: &[i64]) -> i64 {
    let p = parse_program(text).unwrap();
    Machine::new(&p, 1 << 20, 1 << 26)
        .unwrap()
        .run(entry, args)
        .unwrap()
        .value
}

#[test]
fn indirect_calls_through_function_addresses() {
    // Function pointers are FUNC_BASE + index; callr dispatches on them.
    let text = format!(
        "\
.func double params=1 frame=0
    add.i n0,n0,n0
    rjr ra
.end
.func triple params=1 frame=0
    mov.i n1,n0
    add.i n0,n0,n1
    add.i n0,n0,n1
    rjr ra
.end
.func main params=1 frame=8
    enter sp,sp,8
    spill.i ra,4(sp)
    mov.i n4,n0
    li n5,{double_addr}
    li n6,{triple_addr}
    mov.i n0,n4
    callr n5
    mov.i n4,n0
    mov.i n0,n4
    callr n6
    reload.i ra,4(sp)
    exit sp,sp,8
    rjr ra
.end
",
        double_addr = FUNC_BASE,
        triple_addr = FUNC_BASE + 1,
    );
    assert_eq!(run(&text, "main", &[7]), 7 * 2 * 3);
}

#[test]
fn deep_call_chains_track_sp() {
    // 200-deep recursion through explicit frames.
    let text = "\
.func down params=1 frame=8
    enter sp,sp,8
    spill.i ra,4(sp)
    ble.i n0,0,$L1
    sub.i n0,n0,1
    call down
    add.i n0,n0,1
$L1:
    reload.i ra,4(sp)
    exit sp,sp,8
    rjr ra
.end
";
    assert_eq!(run(text, "down", &[200]), 200);
}

#[test]
fn bcopy_and_bzero_roundtrip_memory() {
    let text = "\
.global src 16 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
.global dst 16
.func main params=0 frame=0
    li n0,36
    li n1,16
    li n2,16
    bcopy n0,n1,n2
    li n2,8
    bzero n0,n2
    li n3,0
    li n4,16
$L1:
    ld.ib n5,0(n0)
    add.i n3,n3,n5
    add.i n0,n0,1
    sub.i n4,n4,1
    bgt.i n4,0,$L1
    mov.i n0,n3
    rjr ra
.end
";
    // First 8 bytes zeroed; remaining copied 9..=16 sum to 100.
    assert_eq!(run(text, "main", &[]), (9..=16).sum::<i64>());
}

#[test]
fn spills_preserve_all_callee_saved_registers() {
    let text = "\
.func clobber params=0 frame=40 saves=n4+n5+n6+n7
    enter sp,sp,40
    spill.i n4,32(sp)
    spill.i n5,28(sp)
    spill.i n6,24(sp)
    spill.i n7,20(sp)
    spill.i ra,36(sp)
    li n4,0
    li n5,0
    li n6,0
    li n7,0
    epi
.end
.func main params=0 frame=24 saves=n4
    enter sp,sp,24
    spill.i n4,16(sp)
    spill.i ra,20(sp)
    li n4,11
    li n5,22
    li n6,33
    li n7,44
    call clobber
    add.i n0,n4,n5
    add.i n0,n0,n6
    add.i n0,n0,n7
    epi
.end
";
    assert_eq!(run(text, "main", &[]), 11 + 22 + 33 + 44);
}

#[test]
fn codegen_rejects_pathological_expression_depth() {
    // A single expression deeper than the scratch file must error, not
    // miscompile. Build (((…(1+1)+1)…)+x) with call-free depth via
    // nested parens on the RIGHT so SU-free allocation exhausts.
    let mut expr = String::from("x");
    for _ in 0..12 {
        expr = format!("(x + {expr} * x)");
    }
    let src = format!("int main(int x) {{ return {expr}; }}");
    let ir = codecomp_front::compile(&src).unwrap();
    match codecomp_vm::codegen::compile_module(&ir, IsaConfig::full()) {
        Ok(p) => {
            // If it compiles, it must compute correctly.
            let got = Machine::new(&p, 1 << 20, 1 << 26)
                .unwrap()
                .run("main", &[2])
                .unwrap();
            let expect = codecomp_ir::eval::Evaluator::new(&ir, 1 << 20, 1 << 26)
                .unwrap()
                .run("main", &[2])
                .unwrap();
            assert_eq!(got.value, expect.value);
        }
        Err(e) => {
            let msg = e.to_string();
            assert!(msg.contains("too deep"), "unexpected error: {msg}");
        }
    }
}

#[test]
fn validate_rejects_label_number_collisions_with_epilogue() {
    // The code generator reserves label 1_000_000 internally; a program
    // using it directly must still behave (labels are per-function).
    let text = "\
.func main params=0 frame=0
    j $L1000000
$L1000000:
    li n0,5
    rjr ra
.end
";
    assert_eq!(run(text, "main", &[]), 5);
}
