//! Property tests: random instructions survive the assembly and binary
//! representations; the encoders never panic on arbitrary bytes.

use codecomp_vm::asm::{parse_inst, parse_program};
use codecomp_vm::encode::{base_op, decode_inst, encode_inst, fields, inst_size, rebuild};
use codecomp_vm::isa::{AluOp, Cond, FuncRef, Inst, MemWidth};
use codecomp_vm::reg::Reg;
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn mem_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![
        Just(MemWidth::Byte),
        Just(MemWidth::Short),
        Just(MemWidth::Word)
    ]
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    (0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i])
}

fn cond() -> impl Strategy<Value = Cond> {
    (0usize..Cond::ALL.len()).prop_map(|i| Cond::ALL[i])
}

/// Any encodable instruction (labels excluded).
fn inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (reg(), any::<i32>()).prop_map(|(rd, imm)| Inst::Li { rd, imm }),
        (reg(), reg()).prop_map(|(rd, rs)| Inst::Mov { rd, rs }),
        (alu_op(), reg(), reg(), reg()).prop_map(|(op, rd, rs, rt)| Inst::Alu { op, rd, rs, rt }),
        (alu_op(), reg(), reg(), any::<i32>()).prop_map(|(op, rd, rs, imm)| Inst::AluImm {
            op,
            rd,
            rs,
            imm
        }),
        (reg(), reg()).prop_map(|(rd, rs)| Inst::Neg { rd, rs }),
        (reg(), reg()).prop_map(|(rd, rs)| Inst::Not { rd, rs }),
        (
            prop_oneof![Just(MemWidth::Byte), Just(MemWidth::Short)],
            reg(),
            reg()
        )
            .prop_map(|(width, rd, rs)| Inst::Sext { width, rd, rs }),
        (mem_width(), reg(), any::<i32>(), reg()).prop_map(|(width, rd, off, base)| Inst::Load {
            width,
            rd,
            off,
            base
        }),
        (mem_width(), reg(), any::<i32>(), reg()).prop_map(|(width, rs, off, base)| Inst::Store {
            width,
            rs,
            off,
            base
        }),
        (reg(), -4096i32..4096).prop_map(|(rs, off)| Inst::Spill { rs, off }),
        (reg(), -4096i32..4096).prop_map(|(rd, off)| Inst::Reload { rd, off }),
        (0i32..100_000).prop_map(|amount| Inst::Enter { amount }),
        (0i32..100_000).prop_map(|amount| Inst::Exit { amount }),
        (cond(), reg(), reg(), 0u32..1000).prop_map(|(cond, rs, rt, target)| Inst::Branch {
            cond,
            rs,
            rt,
            target
        }),
        (cond(), reg(), any::<i32>(), 0u32..1000).prop_map(|(cond, rs, imm, target)| {
            Inst::BranchImm {
                cond,
                rs,
                imm,
                target,
            }
        }),
        (0u32..1000).prop_map(|target| Inst::Jump { target }),
        "[a-z][a-z0-9_]{0,8}".prop_map(|name| Inst::Call {
            target: FuncRef::Symbol(name)
        }),
        reg().prop_map(|rs| Inst::CallR { rs }),
        reg().prop_map(|rs| Inst::Rjr { rs }),
        Just(Inst::Epi),
        Just(Inst::Nop),
        (reg(), reg(), reg()).prop_map(|(rd, rs, rn)| Inst::Bcopy { rd, rs, rn }),
        (reg(), reg()).prop_map(|(rd, rn)| Inst::Bzero { rd, rn }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn asm_text_roundtrip(i in inst()) {
        let text = i.to_string();
        let back = parse_inst(&text, 1).unwrap();
        prop_assert_eq!(back, i);
    }

    #[test]
    fn binary_roundtrip(insts in prop::collection::vec(inst(), 1..32)) {
        let mut symbols: Vec<String> = Vec::new();
        let mut buf = Vec::new();
        for i in &insts {
            let mut intern = |name: &str| -> u16 {
                if let Some(p) = symbols.iter().position(|s| s == name) {
                    return p as u16;
                }
                symbols.push(name.to_string());
                symbols.len() as u16 - 1
            };
            encode_inst(i, &mut intern, &mut buf).unwrap();
        }
        let mut pos = 0;
        for i in &insts {
            let back = decode_inst(&buf, &mut pos, &symbols).unwrap();
            prop_assert_eq!(&back, i);
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn size_matches_encoding(i in inst()) {
        let mut buf = Vec::new();
        let mut intern = |_: &str| 0u16;
        encode_inst(&i, &mut intern, &mut buf).unwrap();
        prop_assert_eq!(buf.len(), inst_size(&i));
    }

    #[test]
    fn field_view_roundtrip(i in inst()) {
        let op = base_op(&i);
        let fs = fields(&i);
        prop_assert_eq!(rebuild(op, &fs).unwrap(), i);
    }

    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let symbols = vec!["f".to_string()];
        let mut pos = 0;
        while pos < bytes.len() {
            if decode_inst(&bytes, &mut pos, &symbols).is_err() {
                break;
            }
        }
    }

    #[test]
    fn asm_parser_never_panics(text in "[a-z0-9.,() $L-]{0,40}") {
        let _ = parse_inst(&text, 1);
        let _ = parse_program(&text);
    }
}
