//! Randomized (deterministic, seeded) tests: random instructions survive
//! the assembly and binary representations; the decoders never panic on
//! arbitrary bytes.

use codecomp_core::fault::XorShift64;
use codecomp_vm::asm::{parse_inst, parse_program};
use codecomp_vm::encode::{base_op, decode_inst, encode_inst, fields, inst_size, rebuild};
use codecomp_vm::isa::{AluOp, Cond, FuncRef, Inst, MemWidth};
use codecomp_vm::reg::Reg;

const CASES: u64 = 256;

fn reg(rng: &mut XorShift64) -> Reg {
    Reg::new(rng.below(16) as u8)
}

fn mem_width(rng: &mut XorShift64) -> MemWidth {
    [MemWidth::Byte, MemWidth::Short, MemWidth::Word][rng.below(3) as usize]
}

fn alu_op(rng: &mut XorShift64) -> AluOp {
    AluOp::ALL[rng.below(AluOp::ALL.len() as u64) as usize]
}

fn cond(rng: &mut XorShift64) -> Cond {
    Cond::ALL[rng.below(Cond::ALL.len() as u64) as usize]
}

fn any_i32(rng: &mut XorShift64) -> i32 {
    rng.next_u64() as i32
}

fn ident(rng: &mut XorShift64) -> String {
    let mut s = String::from((b'a' + rng.below(26) as u8) as char);
    for _ in 0..rng.below(9) {
        let c = match rng.below(37) {
            v @ 0..=25 => (b'a' + v as u8) as char,
            v @ 26..=35 => (b'0' + (v - 26) as u8) as char,
            _ => '_',
        };
        s.push(c);
    }
    s
}

/// Any encodable instruction (labels excluded).
fn inst(rng: &mut XorShift64) -> Inst {
    match rng.below(23) {
        0 => Inst::Li {
            rd: reg(rng),
            imm: any_i32(rng),
        },
        1 => Inst::Mov {
            rd: reg(rng),
            rs: reg(rng),
        },
        2 => Inst::Alu {
            op: alu_op(rng),
            rd: reg(rng),
            rs: reg(rng),
            rt: reg(rng),
        },
        3 => Inst::AluImm {
            op: alu_op(rng),
            rd: reg(rng),
            rs: reg(rng),
            imm: any_i32(rng),
        },
        4 => Inst::Neg {
            rd: reg(rng),
            rs: reg(rng),
        },
        5 => Inst::Not {
            rd: reg(rng),
            rs: reg(rng),
        },
        6 => Inst::Sext {
            width: [MemWidth::Byte, MemWidth::Short][rng.below(2) as usize],
            rd: reg(rng),
            rs: reg(rng),
        },
        7 => Inst::Load {
            width: mem_width(rng),
            rd: reg(rng),
            off: any_i32(rng),
            base: reg(rng),
        },
        8 => Inst::Store {
            width: mem_width(rng),
            rs: reg(rng),
            off: any_i32(rng),
            base: reg(rng),
        },
        9 => Inst::Spill {
            rs: reg(rng),
            off: rng.range_i64(-4096, 4096) as i32,
        },
        10 => Inst::Reload {
            rd: reg(rng),
            off: rng.range_i64(-4096, 4096) as i32,
        },
        11 => Inst::Enter {
            amount: rng.range_i64(0, 100_000) as i32,
        },
        12 => Inst::Exit {
            amount: rng.range_i64(0, 100_000) as i32,
        },
        13 => Inst::Branch {
            cond: cond(rng),
            rs: reg(rng),
            rt: reg(rng),
            target: rng.below(1000) as u32,
        },
        14 => Inst::BranchImm {
            cond: cond(rng),
            rs: reg(rng),
            imm: any_i32(rng),
            target: rng.below(1000) as u32,
        },
        15 => Inst::Jump {
            target: rng.below(1000) as u32,
        },
        16 => Inst::Call {
            target: FuncRef::Symbol(ident(rng)),
        },
        17 => Inst::CallR { rs: reg(rng) },
        18 => Inst::Rjr { rs: reg(rng) },
        19 => Inst::Epi,
        20 => Inst::Nop,
        21 => Inst::Bcopy {
            rd: reg(rng),
            rs: reg(rng),
            rn: reg(rng),
        },
        _ => Inst::Bzero {
            rd: reg(rng),
            rn: reg(rng),
        },
    }
}

#[test]
fn asm_text_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x2A00 + case);
        let i = inst(&mut rng);
        let text = i.to_string();
        let back = parse_inst(&text, 1).unwrap();
        assert_eq!(back, i);
    }
}

#[test]
fn binary_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x2B00 + case);
        let insts: Vec<Inst> = (0..rng.range_usize(1, 32)).map(|_| inst(&mut rng)).collect();
        let mut symbols: Vec<String> = Vec::new();
        let mut buf = Vec::new();
        for i in &insts {
            let mut intern = |name: &str| -> u16 {
                if let Some(p) = symbols.iter().position(|s| s == name) {
                    return p as u16;
                }
                symbols.push(name.to_string());
                symbols.len() as u16 - 1
            };
            encode_inst(i, &mut intern, &mut buf).unwrap();
        }
        let mut pos = 0;
        for i in &insts {
            let back = decode_inst(&buf, &mut pos, &symbols).unwrap();
            assert_eq!(&back, i);
        }
        assert_eq!(pos, buf.len());
    }
}

#[test]
fn size_matches_encoding() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x2C00 + case);
        let i = inst(&mut rng);
        let mut buf = Vec::new();
        let mut intern = |_: &str| 0u16;
        encode_inst(&i, &mut intern, &mut buf).unwrap();
        assert_eq!(buf.len(), inst_size(&i));
    }
}

#[test]
fn field_view_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x2D00 + case);
        let i = inst(&mut rng);
        let op = base_op(&i);
        let fs = fields(&i);
        assert_eq!(rebuild(op, &fs).unwrap(), i);
    }
}

#[test]
fn decoder_never_panics() {
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x2E00 + case);
        let len = rng.below(64) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let symbols = vec!["f".to_string()];
        let mut pos = 0;
        while pos < bytes.len() {
            if decode_inst(&bytes, &mut pos, &symbols).is_err() {
                break;
            }
        }
    }
}

#[test]
fn asm_parser_never_panics() {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789.,() $L-";
    for case in 0..CASES {
        let mut rng = XorShift64::new(0x2F00 + case);
        let len = rng.below(41) as usize;
        let text: String = (0..len)
            .map(|_| CHARS[rng.below(CHARS.len() as u64) as usize] as char)
            .collect();
        let _ = parse_inst(&text, 1);
        let _ = parse_program(&text);
    }
}
