//! IR → VM code generation.
//!
//! The paper's BRISC inputs were "highly optimized using a commercial
//! compiler back end and so contain more information, such as register
//! allocation decisions, than lcc IR". This code generator supplies that
//! information: scalar locals and parameters whose address behaves (only
//! ever loaded or stored directly) are promoted to callee-saved
//! registers, which produces exactly the prologue/epilogue shape of the
//! paper's worked example — `enter`, `spill.i n4,…`, `spill.i ra,…`,
//! `mov.i n4,n0`, …, `reload.i`, `exit`, `rjr ra`.
//!
//! # Calling convention
//!
//! - Arguments 0–3 travel in `n0`–`n3`; *all* arguments are also staged
//!   by the caller at `sp + 4*i` in its outgoing-argument area, which is
//!   where callees find stack arguments (`callee_sp + frame + 4*i`).
//! - The result returns in `n0`.
//! - `ra` is spilled at `frame - 4`; callee-saved registers at
//!   `frame - 8 - 4*i`, the slots `epi` restores from.
//! - `n4`–`n11` are callee-saved; `n0`–`n3`, `n12`, `n13` are scratch.
//!
//! The generator honors [`IsaConfig`]: with `immediates` off, every
//! ALU/branch immediate goes through `li`; with `reg_displacement` off,
//! every memory access computes its address into a register and uses
//! offset-0 loads and stores (the §5 de-tuning experiment).

use crate::isa::{AluOp, Cond, FuncRef, Inst, IsaConfig, MemWidth};
use crate::program::{VmFunction, VmGlobal, VmProgram};
use crate::reg::Reg;
use crate::VmError;
use codecomp_ir::op::{IrType, Literal, Opcode};
use codecomp_ir::tree::{Function, Module, Tree};
use std::collections::HashMap;

/// Label number used for the function epilogue (IR labels stay small).
const EPILOGUE_LABEL: u32 = 1_000_000;

/// Compiles an IR module into a VM program under the given ISA variant.
///
/// # Errors
///
/// [`VmError::Codegen`] on IR the generator cannot handle (expression
/// deeper than the register file, calls in unsupported positions, …).
pub fn compile_module(module: &Module, isa: IsaConfig) -> Result<VmProgram, VmError> {
    let mut program = VmProgram {
        globals: Vec::new(),
        functions: Vec::new(),
        isa,
    };
    for g in &module.globals {
        program.globals.push(VmGlobal {
            name: g.name.clone(),
            size: g.size,
            init: g.init.clone(),
        });
    }
    // Global addresses must match the Machine's load-time layout.
    let global_addrs = layout_globals(&program.globals);
    let func_index: HashMap<String, usize> = module
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), i))
        .collect();
    for f in &module.functions {
        let cg = FuncCodegen::new(f, isa, &global_addrs, &func_index);
        program.functions.push(cg.generate()?);
    }
    program.validate()?;
    if codecomp_core::telemetry::enabled() {
        use codecomp_core::telemetry as t;
        let instrs: usize = program.functions.iter().map(|f| f.code.len()).sum();
        t::counter_add("vm.codegen.instrs", instrs as u64);
        t::counter_add("vm.codegen.functions", program.functions.len() as u64);
    }
    Ok(program)
}

/// Computes the deterministic global layout (identical to the machine's).
pub fn layout_globals(globals: &[VmGlobal]) -> HashMap<String, u32> {
    let mut addrs = HashMap::new();
    let mut next = crate::interp::GLOBAL_BASE;
    for g in globals {
        let aligned = next.div_ceil(4) * 4;
        addrs.insert(g.name.clone(), aligned);
        next = aligned + g.size;
    }
    addrs
}

/// Where a source-level variable lives.
#[derive(Debug, Clone, Copy)]
enum Home {
    /// Promoted into a callee-saved register.
    Reg(Reg),
    /// In the frame at this VM offset from `sp`.
    Frame(i32),
    /// An incoming stack argument at `frame + offset`.
    StackArg(i32),
}

struct FuncCodegen<'a> {
    f: &'a Function,
    isa: IsaConfig,
    global_addrs: &'a HashMap<String, u32>,
    func_index: &'a HashMap<String, usize>,
    /// IR offset → home.
    homes: HashMap<i32, Home>,
    saved_regs: Vec<Reg>,
    frame_size: u32,
    local_base: i32,
    out: Vec<Inst>,
    pool: Vec<Reg>,
    pending_args: usize,
}

impl<'a> FuncCodegen<'a> {
    fn new(
        f: &'a Function,
        isa: IsaConfig,
        global_addrs: &'a HashMap<String, u32>,
        func_index: &'a HashMap<String, usize>,
    ) -> Self {
        Self {
            f,
            isa,
            global_addrs,
            func_index,
            homes: HashMap::new(),
            saved_regs: Vec::new(),
            frame_size: 0,
            local_base: 0,
            out: Vec::new(),
            pool: Vec::new(),
            pending_args: 0,
        }
    }

    fn generate(mut self) -> Result<VmFunction, VmError> {
        self.analyze();
        self.prologue()?;
        for stmt in &self.f.body {
            self.stmt(stmt)?;
        }
        self.out.push(Inst::Label(EPILOGUE_LABEL));
        self.epilogue()?;
        self.drop_fallthrough_jumps();
        let mut vf = VmFunction::new(&self.f.name, self.f.param_count, self.frame_size);
        vf.saved_regs = self.saved_regs;
        vf.code = self.out;
        vf.validate()?;
        Ok(vf)
    }

    /// Removes jumps whose target label follows immediately (only labels
    /// between) — the common `j $Lend` right before `$Lend:` — plus two
    /// move cleanups: `mov x,x` and the redundant back-copy in
    /// `mov a,b; mov b,a` (legal when no label intervenes, since the
    /// registers already hold equal values).
    fn drop_fallthrough_jumps(&mut self) {
        let code = std::mem::take(&mut self.out);
        let mut out: Vec<Inst> = Vec::with_capacity(code.len());
        for (i, inst) in code.iter().enumerate() {
            match inst {
                Inst::Jump { target } => {
                    let falls_to_target = code[i + 1..]
                        .iter()
                        .take_while(|n| n.is_label())
                        .any(|n| matches!(n, Inst::Label(l) if l == target));
                    if falls_to_target {
                        continue;
                    }
                }
                Inst::Mov { rd, rs } => {
                    if rd == rs {
                        continue;
                    }
                    if let Some(Inst::Mov {
                        rd: prev_rd,
                        rs: prev_rs,
                    }) = out.last()
                    {
                        if prev_rd == rs && prev_rs == rd {
                            continue;
                        }
                    }
                }
                _ => {}
            }
            out.push(inst.clone());
        }
        self.out = out;
    }

    // ---- analysis ---------------------------------------------------------

    /// Decides variable homes and the frame layout.
    fn analyze(&mut self) {
        #[derive(Default)]
        struct Stat {
            uses: u32,
            dirty: bool,
        }
        let mut stats: HashMap<i32, Stat> = HashMap::new();
        let mut max_args = 0usize;
        let mut run = 0usize;
        for stmt in &self.f.body {
            if stmt.op().opcode == Opcode::Arg {
                run += 1;
                max_args = max_args.max(run);
            } else {
                run = 0;
            }
            mark_tree(stmt, &mut |off, clean, is_word| {
                let s = stats.entry(off).or_default();
                s.uses += 1;
                if !clean || !is_word {
                    s.dirty = true;
                }
            });
        }

        // Promote the most-used clean offsets to callee-saved registers.
        let mut candidates: Vec<(i32, u32)> = stats
            .iter()
            .filter(|(_, s)| !s.dirty && s.uses >= 2)
            .map(|(&off, s)| (off, s.uses))
            .collect();
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (i, &(off, _)) in candidates.iter().take(Reg::CALLEE_SAVED.len()).enumerate() {
            let r = Reg::CALLEE_SAVED[i];
            self.homes.insert(off, Home::Reg(r));
            self.saved_regs.push(r);
        }

        // Frame layout: [outgoing staging][locals][saved regs][ra].
        let outgoing = 4 * max_args as u32;
        self.local_base = outgoing as i32;
        let locals_end = outgoing + self.f.frame_size;
        let save_area = 4 * self.saved_regs.len() as u32 + 4; // saved + ra
        self.frame_size = (locals_end + save_area).div_ceil(8) * 8;

        // Non-promoted offsets live in the frame; incoming stack args
        // (param index >= 4) live above the frame.
        let offsets: Vec<i32> = stats.keys().copied().collect();
        for off in offsets {
            if self.homes.contains_key(&off) {
                continue;
            }
            let param_index = off / 4;
            if off >= 0
                && (param_index as usize) < self.f.param_count
                && (param_index as usize) >= 4
            {
                self.homes.insert(off, Home::StackArg(off));
            } else {
                self.homes.insert(off, Home::Frame(self.local_base + off));
            }
        }
    }

    // ---- prologue / epilogue ----------------------------------------------

    fn prologue(&mut self) -> Result<(), VmError> {
        self.pool = Reg::SCRATCH.to_vec();
        if self.frame_size > 0 {
            self.out.push(Inst::Enter {
                amount: self.frame_size as i32,
            });
        }
        let frame = self.frame_size as i32;
        let saved = self.saved_regs.clone();
        for (i, &r) in saved.iter().enumerate() {
            self.emit_save(r, frame - 8 - 4 * i as i32)?;
        }
        self.emit_save(Reg::RA, frame - 4)?;
        // Move incoming register arguments to their homes. Scratch n0-n3
        // hold live arguments here, so frame stores must not allocate
        // them: reserve them first.
        let reserved: Vec<Reg> = (0..self.f.param_count.min(4))
            .map(|i| Reg::ARGS[i])
            .collect();
        self.pool.retain(|r| !reserved.contains(r));
        for i in 0..self.f.param_count.min(4) {
            let off = 4 * i as i32;
            let src = Reg::ARGS[i];
            match self.homes.get(&off).copied() {
                Some(Home::Reg(r)) => self.out.push(Inst::Mov { rd: r, rs: src }),
                Some(Home::Frame(slot)) => self.emit_frame_store(MemWidth::Word, src, slot)?,
                Some(Home::StackArg(_)) | None => {}
            }
        }
        for r in reserved {
            self.pool.push(r);
        }
        // Stack arguments that were promoted need an initial load.
        for i in 4..self.f.param_count {
            let off = 4 * i as i32;
            if let Some(Home::Reg(r)) = self.homes.get(&off).copied() {
                self.emit_reg_frame_load(r, self.frame_size as i32 + off)?;
            }
        }
        Ok(())
    }

    /// `spill.i r, slot(sp)` or its de-tuned expansion.
    fn emit_save(&mut self, rs: Reg, slot: i32) -> Result<(), VmError> {
        if self.isa.reg_displacement {
            self.out.push(Inst::Spill { rs, off: slot });
            return Ok(());
        }
        let addr = self.take_reg()?;
        self.emit_add_imm(addr, Reg::SP, slot)?;
        self.out.push(Inst::Store {
            width: MemWidth::Word,
            rs,
            off: 0,
            base: addr,
        });
        self.free_reg(addr);
        Ok(())
    }

    /// `reload.i r, slot(sp)` or its de-tuned expansion. The destination
    /// register doubles as the address scratch, so this never allocates.
    fn emit_reg_frame_load(&mut self, rd: Reg, slot: i32) -> Result<(), VmError> {
        if self.isa.reg_displacement {
            self.out.push(Inst::Reload { rd, off: slot });
            return Ok(());
        }
        self.emit_add_imm(rd, Reg::SP, slot)?;
        self.out.push(Inst::Load {
            width: MemWidth::Word,
            rd,
            off: 0,
            base: rd,
        });
        Ok(())
    }

    fn epilogue(&mut self) -> Result<(), VmError> {
        let frame = self.frame_size as i32;
        let saved = self.saved_regs.clone();
        for (i, &r) in saved.iter().enumerate() {
            self.emit_reg_frame_load(r, frame - 8 - 4 * i as i32)?;
        }
        self.emit_reg_frame_load(Reg::RA, frame - 4)?;
        if self.frame_size > 0 {
            self.out.push(Inst::Exit {
                amount: self.frame_size as i32,
            });
        }
        self.out.push(Inst::Rjr { rs: Reg::RA });
        Ok(())
    }

    // ---- register pool ------------------------------------------------------

    fn take_reg(&mut self) -> Result<Reg, VmError> {
        self.pool
            .pop()
            .ok_or_else(|| VmError::Codegen(format!("expression too deep in {}", self.f.name)))
    }

    fn free_reg(&mut self, r: Reg) {
        debug_assert!(!self.pool.contains(&r), "double free of {r}");
        self.pool.push(r);
    }

    // ---- frame access helpers (honoring the ISA config) --------------------

    fn emit_frame_store(&mut self, width: MemWidth, rs: Reg, slot: i32) -> Result<(), VmError> {
        if self.isa.reg_displacement {
            self.out.push(Inst::Store {
                width,
                rs,
                off: slot,
                base: Reg::SP,
            });
            return Ok(());
        }
        let addr = self.take_reg()?;
        self.emit_add_imm(addr, Reg::SP, slot)?;
        self.out.push(Inst::Store {
            width,
            rs,
            off: 0,
            base: addr,
        });
        self.free_reg(addr);
        Ok(())
    }

    /// `rd = rs + imm` honoring the immediates knob. `rd` must differ
    /// from `rs` or `imm` must be zero when immediates are disabled and
    /// no scratch register is free — both call sites guarantee `rd != rs`.
    fn emit_add_imm(&mut self, rd: Reg, rs: Reg, imm: i32) -> Result<(), VmError> {
        if imm == 0 {
            if rd != rs {
                self.out.push(Inst::Mov { rd, rs });
            }
            return Ok(());
        }
        if self.isa.immediates {
            self.out.push(Inst::AluImm {
                op: AluOp::Add,
                rd,
                rs,
                imm,
            });
        } else if rd != rs {
            self.out.push(Inst::Li { rd, imm });
            self.out.push(Inst::Alu {
                op: AluOp::Add,
                rd,
                rs: rd,
                rt: rs,
            });
        } else {
            let t = self.take_reg()?;
            self.out.push(Inst::Li { rd: t, imm });
            self.out.push(Inst::Alu {
                op: AluOp::Add,
                rd,
                rs,
                rt: t,
            });
            self.free_reg(t);
        }
        Ok(())
    }

    // ---- statements ----------------------------------------------------------

    fn stmt(&mut self, tree: &Tree) -> Result<(), VmError> {
        let op = tree.op();
        match op.opcode {
            Opcode::LabelDef => {
                let Some(Literal::Label(l)) = tree.literal() else {
                    return Err(VmError::Codegen("label without number".into()));
                };
                self.out.push(Inst::Label(*l));
                Ok(())
            }
            Opcode::Jump => {
                let Some(Literal::Label(l)) = tree.literal() else {
                    return Err(VmError::Codegen("jump without label".into()));
                };
                self.out.push(Inst::Jump { target: *l });
                Ok(())
            }
            _ if op.opcode.is_branch() => {
                let Some(Literal::Label(l)) = tree.literal() else {
                    return Err(VmError::Codegen("branch without label".into()));
                };
                let target = *l;
                let unsigned = matches!(op.ty, IrType::U | IrType::P);
                let cond = branch_cond(op.opcode, unsigned);
                let a = self.eval(&tree.kids()[0])?;
                let rhs = &tree.kids()[1];
                if self.isa.immediates {
                    if let Some(imm) = const_value(rhs) {
                        self.out.push(Inst::BranchImm {
                            cond,
                            rs: a,
                            imm,
                            target,
                        });
                        self.free_reg(a);
                        return Ok(());
                    }
                }
                let b = self.eval(rhs)?;
                self.out.push(Inst::Branch {
                    cond,
                    rs: a,
                    rt: b,
                    target,
                });
                self.free_reg(b);
                self.free_reg(a);
                Ok(())
            }
            Opcode::Ret => {
                if let Some(value) = tree.kids().first() {
                    let r = self.eval(value)?;
                    if r != Reg::ARGS[0] {
                        self.out.push(Inst::Mov {
                            rd: Reg::ARGS[0],
                            rs: r,
                        });
                    }
                    self.free_reg(r);
                }
                self.out.push(Inst::Jump {
                    target: EPILOGUE_LABEL,
                });
                Ok(())
            }
            Opcode::Arg => {
                let r = self.eval(&tree.kids()[0])?;
                let slot = 4 * self.pending_args as i32;
                self.emit_frame_store(MemWidth::Word, r, slot)?;
                self.free_reg(r);
                self.pending_args += 1;
                Ok(())
            }
            _ => {
                let r = self.eval(tree)?;
                self.free_reg(r);
                Ok(())
            }
        }
    }

    // ---- expressions -----------------------------------------------------------

    /// Evaluates a tree into a scratch register the caller must free.
    fn eval(&mut self, tree: &Tree) -> Result<Reg, VmError> {
        let op = tree.op();
        match op.opcode {
            Opcode::Cnst => {
                let Some(Literal::Int(v)) = tree.literal() else {
                    return Err(VmError::Codegen("CNST without int".into()));
                };
                let r = self.take_reg()?;
                self.out.push(Inst::Li {
                    rd: r,
                    imm: *v as i32,
                });
                Ok(r)
            }
            Opcode::AddrL | Opcode::AddrF => {
                let off = self.ir_offset(tree)?;
                match self.home(off) {
                    Home::Reg(_) => Err(VmError::Codegen(format!(
                        "address taken of promoted offset {off} in {}",
                        self.f.name
                    ))),
                    Home::Frame(slot) => {
                        let r = self.take_reg()?;
                        self.emit_add_imm(r, Reg::SP, slot)?;
                        Ok(r)
                    }
                    Home::StackArg(off) => {
                        let r = self.take_reg()?;
                        self.emit_add_imm(r, Reg::SP, self.frame_size as i32 + off)?;
                        Ok(r)
                    }
                }
            }
            Opcode::AddrG => {
                let Some(Literal::Symbol(name)) = tree.literal() else {
                    return Err(VmError::Codegen("ADDRG without symbol".into()));
                };
                let addr = self.symbol_addr(name)?;
                let r = self.take_reg()?;
                self.out.push(Inst::Li {
                    rd: r,
                    imm: addr as i32,
                });
                Ok(r)
            }
            Opcode::Indir => {
                let width = mem_width(op.ty)?;
                if let Some(off) = direct_offset(&tree.kids()[0]) {
                    return match self.home(off) {
                        Home::Reg(pr) if width == MemWidth::Word => {
                            let r = self.take_reg()?;
                            self.out.push(Inst::Mov { rd: r, rs: pr });
                            Ok(r)
                        }
                        Home::Reg(_) => Err(VmError::Codegen(
                            "narrow access to promoted variable".into(),
                        )),
                        Home::Frame(slot) => self.load_from_sp(width, slot),
                        Home::StackArg(off) => {
                            self.load_from_sp(width, self.frame_size as i32 + off)
                        }
                    };
                }
                let a = self.eval(&tree.kids()[0])?;
                self.out.push(Inst::Load {
                    width,
                    rd: a,
                    off: 0,
                    base: a,
                });
                Ok(a)
            }
            Opcode::Asgn => {
                let width = mem_width(op.ty)?;
                let value_tree = &tree.kids()[1];
                if let Some(off) = direct_offset(&tree.kids()[0]) {
                    return match self.home(off) {
                        Home::Reg(pr) if width == MemWidth::Word => {
                            let v = self.eval(value_tree)?;
                            self.out.push(Inst::Mov { rd: pr, rs: v });
                            Ok(v)
                        }
                        Home::Reg(_) => {
                            Err(VmError::Codegen("narrow store to promoted variable".into()))
                        }
                        Home::Frame(slot) => {
                            let v = self.eval(value_tree)?;
                            self.emit_frame_store(width, v, slot)?;
                            self.narrow(v, width);
                            Ok(v)
                        }
                        Home::StackArg(off) => {
                            let slot = self.frame_size as i32 + off;
                            let v = self.eval(value_tree)?;
                            self.emit_frame_store(width, v, slot)?;
                            self.narrow(v, width);
                            Ok(v)
                        }
                    };
                }
                let a = self.eval(&tree.kids()[0])?;
                let v = self.eval(value_tree)?;
                self.out.push(Inst::Store {
                    width,
                    rs: v,
                    off: 0,
                    base: a,
                });
                self.free_reg(a);
                self.narrow(v, width);
                Ok(v)
            }
            Opcode::Cvt => {
                let r = self.eval(&tree.kids()[0])?;
                match op.ty {
                    IrType::C => self.out.push(Inst::Sext {
                        width: MemWidth::Byte,
                        rd: r,
                        rs: r,
                    }),
                    IrType::S => self.out.push(Inst::Sext {
                        width: MemWidth::Short,
                        rd: r,
                        rs: r,
                    }),
                    _ => {}
                }
                Ok(r)
            }
            Opcode::Neg => {
                let r = self.eval(&tree.kids()[0])?;
                self.out.push(Inst::Neg { rd: r, rs: r });
                Ok(r)
            }
            Opcode::BCom => {
                let r = self.eval(&tree.kids()[0])?;
                self.out.push(Inst::Not { rd: r, rs: r });
                Ok(r)
            }
            Opcode::Add
            | Opcode::Sub
            | Opcode::Mul
            | Opcode::Div
            | Opcode::Mod
            | Opcode::BAnd
            | Opcode::BOr
            | Opcode::BXor
            | Opcode::Lsh
            | Opcode::Rsh => {
                let unsigned = matches!(op.ty, IrType::U | IrType::P);
                let alu = alu_op(op.opcode, unsigned);
                let a = self.eval(&tree.kids()[0])?;
                let rhs = &tree.kids()[1];
                if self.isa.immediates {
                    if let Some(imm) = const_value(rhs) {
                        self.out.push(Inst::AluImm {
                            op: alu,
                            rd: a,
                            rs: a,
                            imm,
                        });
                        return Ok(a);
                    }
                }
                let b = self.eval(rhs)?;
                self.out.push(Inst::Alu {
                    op: alu,
                    rd: a,
                    rs: a,
                    rt: b,
                });
                self.free_reg(b);
                Ok(a)
            }
            Opcode::Call => {
                if self.pool.len() != Reg::SCRATCH.len() {
                    return Err(VmError::Codegen(format!(
                        "call with live scratch registers in {} (front end must \
                         materialize call results into temporaries)",
                        self.f.name
                    )));
                }
                let nargs = self.pending_args;
                self.pending_args = 0;
                for i in 0..nargs.min(4) {
                    // Argument registers are free here (pool is full); use
                    // plain loads so nothing is allocated.
                    if self.isa.reg_displacement {
                        self.out.push(Inst::Load {
                            width: MemWidth::Word,
                            rd: Reg::ARGS[i],
                            off: 4 * i as i32,
                            base: Reg::SP,
                        });
                    } else {
                        self.emit_reg_frame_load(Reg::ARGS[i], 4 * i as i32)?;
                    }
                }
                let callee = &tree.kids()[0];
                if callee.op().opcode == Opcode::AddrG {
                    let Some(Literal::Symbol(name)) = callee.literal() else {
                        return Err(VmError::Codegen("ADDRG without symbol".into()));
                    };
                    self.out.push(Inst::Call {
                        target: FuncRef::Symbol(name.clone()),
                    });
                } else {
                    // The scratch registers n12/n13 survive until the call
                    // itself, but n0-n3 were just loaded — evaluate the
                    // target before loading arguments would be better, yet
                    // indirect calls through expressions always come from
                    // a plain variable here, which evaluates into n13.
                    let t = self.eval(callee)?;
                    self.out.push(Inst::CallR { rs: t });
                    self.free_reg(t);
                }
                // Result arrives in n0; claim it from the pool.
                let n0 = Reg::ARGS[0];
                let pos = self
                    .pool
                    .iter()
                    .position(|&r| r == n0)
                    .expect("pool was full before the call");
                self.pool.remove(pos);
                Ok(n0)
            }
            Opcode::Arg
            | Opcode::Ret
            | Opcode::Jump
            | Opcode::LabelDef
            | Opcode::Eq
            | Opcode::Ne
            | Opcode::Lt
            | Opcode::Le
            | Opcode::Gt
            | Opcode::Ge => Err(VmError::Codegen(format!(
                "{} is a statement, not an expression",
                op.mnemonic()
            ))),
        }
    }

    fn load_from_sp(&mut self, width: MemWidth, slot: i32) -> Result<Reg, VmError> {
        let r = self.take_reg()?;
        if self.isa.reg_displacement {
            self.out.push(Inst::Load {
                width,
                rd: r,
                off: slot,
                base: Reg::SP,
            });
        } else {
            self.emit_add_imm(r, Reg::SP, slot)?;
            self.out.push(Inst::Load {
                width,
                rd: r,
                off: 0,
                base: r,
            });
        }
        Ok(r)
    }

    /// The C value of an assignment is the stored (truncated) value.
    fn narrow(&mut self, r: Reg, width: MemWidth) {
        if matches!(width, MemWidth::Byte | MemWidth::Short) {
            self.out.push(Inst::Sext {
                width,
                rd: r,
                rs: r,
            });
        }
    }

    fn ir_offset(&self, tree: &Tree) -> Result<i32, VmError> {
        match tree.literal() {
            Some(Literal::Offset(off)) => Ok(*off),
            _ => Err(VmError::Codegen("address operator without offset".into())),
        }
    }

    fn home(&self, off: i32) -> Home {
        self.homes
            .get(&off)
            .copied()
            .unwrap_or(Home::Frame(self.local_base + off))
    }

    fn symbol_addr(&self, name: &str) -> Result<u32, VmError> {
        if let Some(&a) = self.global_addrs.get(name) {
            return Ok(a);
        }
        if let Some(&i) = self.func_index.get(name) {
            return Ok(crate::interp::FUNC_BASE + i as u32);
        }
        if let Some(i) = codecomp_ir::eval::HOST_FUNCTIONS
            .iter()
            .position(|&h| h == name)
        {
            return Ok(crate::interp::HOST_BASE + i as u32);
        }
        Err(VmError::Codegen(format!("undefined symbol {name}")))
    }
}

/// If this tree is a direct `ADDRL`/`ADDRF`, its IR offset.
fn direct_offset(tree: &Tree) -> Option<i32> {
    if matches!(tree.op().opcode, Opcode::AddrL | Opcode::AddrF) {
        if let Some(Literal::Offset(off)) = tree.literal() {
            return Some(*off);
        }
    }
    None
}

/// Marks every `ADDRL`/`ADDRF` occurrence in a tree.
///
/// `clean` is true when the node is a direct operand of a load or the
/// destination of a store; `is_word` when the access width is four bytes.
fn mark_tree(tree: &Tree, visit: &mut impl FnMut(i32, bool, bool)) {
    let op = tree.op();
    for (i, kid) in tree.kids().iter().enumerate() {
        if let Some(off) = direct_offset(kid) {
            let (clean, is_word) = match op.opcode {
                Opcode::Indir => (true, op.ty.size() == 4),
                Opcode::Asgn if i == 0 => (true, op.ty.size() == 4),
                _ => (false, false),
            };
            visit(off, clean, is_word);
            continue;
        }
        mark_tree(kid, visit);
    }
    // A bare address at the statement root (rare) is an escape.
    if let Some(off) = direct_offset(tree) {
        visit(off, false, false);
    }
}

fn mem_width(ty: IrType) -> Result<MemWidth, VmError> {
    match ty {
        IrType::C => Ok(MemWidth::Byte),
        IrType::S => Ok(MemWidth::Short),
        IrType::I | IrType::U | IrType::P => Ok(MemWidth::Word),
        IrType::V => Err(VmError::Codegen("void memory access".into())),
    }
}

fn alu_op(opcode: Opcode, unsigned: bool) -> AluOp {
    match opcode {
        Opcode::Add => AluOp::Add,
        Opcode::Sub => AluOp::Sub,
        Opcode::Mul => AluOp::Mul,
        Opcode::Div => {
            if unsigned {
                AluOp::DivU
            } else {
                AluOp::Div
            }
        }
        Opcode::Mod => {
            if unsigned {
                AluOp::RemU
            } else {
                AluOp::Rem
            }
        }
        Opcode::BAnd => AluOp::And,
        Opcode::BOr => AluOp::Or,
        Opcode::BXor => AluOp::Xor,
        Opcode::Lsh => AluOp::Sll,
        Opcode::Rsh => {
            if unsigned {
                AluOp::Srl
            } else {
                AluOp::Sra
            }
        }
        other => unreachable!("{other:?} is not an ALU opcode"),
    }
}

fn branch_cond(opcode: Opcode, unsigned: bool) -> Cond {
    match (opcode, unsigned) {
        (Opcode::Eq, _) => Cond::Eq,
        (Opcode::Ne, _) => Cond::Ne,
        (Opcode::Lt, false) => Cond::Lt,
        (Opcode::Le, false) => Cond::Le,
        (Opcode::Gt, false) => Cond::Gt,
        (Opcode::Ge, false) => Cond::Ge,
        (Opcode::Lt, true) => Cond::LtU,
        (Opcode::Le, true) => Cond::LeU,
        (Opcode::Gt, true) => Cond::GtU,
        (Opcode::Ge, true) => Cond::GeU,
        (other, _) => unreachable!("{other:?} is not a branch opcode"),
    }
}

/// The constant value of a `CNST` tree, if it is one.
fn const_value(tree: &Tree) -> Option<i32> {
    if tree.op().opcode == Opcode::Cnst {
        if let Some(Literal::Int(v)) = tree.literal() {
            return i32::try_from(*v).ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Machine;
    use codecomp_front::compile;

    fn run_c(src: &str, isa: IsaConfig, entry: &str, args: &[i64]) -> crate::interp::RunOutcome {
        let ir = compile(src).unwrap();
        let p = compile_module(&ir, isa).unwrap();
        Machine::new(&p, 1 << 20, 1 << 26)
            .unwrap()
            .run(entry, args)
            .unwrap()
    }

    /// Front end → IR evaluator and front end → VM must agree.
    fn differential(src: &str, args: &[i64]) {
        let ir = compile(src).unwrap();
        let expect = codecomp_ir::eval::Evaluator::new(&ir, 1 << 20, 1 << 26)
            .unwrap()
            .run("main", args)
            .unwrap();
        for (name, isa) in IsaConfig::variants() {
            let p = compile_module(&ir, isa).unwrap();
            let got = Machine::new(&p, 1 << 20, 1 << 26)
                .unwrap()
                .run("main", args)
                .unwrap();
            assert_eq!(got.value, expect.value, "value mismatch under {name}");
            assert_eq!(got.output, expect.output, "output mismatch under {name}");
        }
    }

    #[test]
    fn simple_arithmetic() {
        differential("int main() { return 2 + 3 * 4 - 6 / 2; }", &[]);
    }

    #[test]
    fn locals_and_promotion() {
        differential(
            "int main() { int s = 0; int i; for (i = 1; i <= 10; i++) s += i; return s; }",
            &[],
        );
    }

    #[test]
    fn recursion() {
        differential(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
             int main() { return fib(12); }",
            &[],
        );
    }

    #[test]
    fn arrays_and_pointers() {
        differential(
            "int a[8];
             int main() {
                 int i;
                 int *p = a;
                 for (i = 0; i < 8; i++) a[i] = i * 3;
                 return p[5] + *(a + 2) + a[7];
             }",
            &[],
        );
    }

    #[test]
    fn chars_shorts_and_strings() {
        differential(
            "char msg[6] = \"hello\";
             int main() {
                 short s = 70000;
                 char c = msg[1];
                 return s + c;
             }",
            &[],
        );
    }

    #[test]
    fn many_arguments_spill_to_stack() {
        differential(
            "int sum6(int a, int b, int c, int d, int e, int f) {
                 return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6;
             }
             int main() { return sum6(1, 2, 3, 4, 5, 6); }",
            &[],
        );
    }

    #[test]
    fn output_and_unsigned() {
        differential(
            "int main() {
                 unsigned u = 0 - 1;
                 print_int(u > 100);
                 print_char('x');
                 return (u >> 28) + (1 << 3);
             }",
            &[],
        );
    }

    #[test]
    fn address_taken_variables_stay_in_frame() {
        differential(
            "int bump(int *p) { *p = *p + 1; return *p; }
             int main() { int x = 41; bump(&x); return x; }",
            &[],
        );
    }

    #[test]
    fn division_and_remainders() {
        differential(
            "int main() { return (-7) / 2 * 100 + (-7) % 2 + 13 % 5 * 10; }",
            &[],
        );
    }

    #[test]
    fn nested_and_chained_calls() {
        differential(
            "int add(int a, int b) { return a + b; }
             int main() { return add(add(1, 2), add(add(3, 4), 5)); }",
            &[],
        );
    }

    #[test]
    fn char_assignment_value_truncates() {
        differential("int main() { char c; return (c = 300); }", &[]);
    }

    #[test]
    fn entry_arguments() {
        let out = run_c(
            "int main(int a, int b) { return a * b; }",
            IsaConfig::full(),
            "main",
            &[6, 7],
        );
        assert_eq!(out.value, 42);
    }

    #[test]
    fn prologue_matches_paper_idiom() {
        let ir = compile(
            "int pepper(int a, int b) { return a + b; }
             int salt(int j, int i) { if (j > 0) { pepper(i, j); j--; } return j; }",
        )
        .unwrap();
        let p = compile_module(&ir, IsaConfig::full()).unwrap();
        let salt = p.function("salt").unwrap();
        assert!(
            matches!(salt.code[0], Inst::Enter { .. }),
            "first inst: {}",
            salt.code[0]
        );
        assert!(
            salt.code
                .iter()
                .any(|i| matches!(i, Inst::Spill { rs, .. } if *rs == Reg::RA)),
            "ra must be spilled"
        );
        assert!(salt.code.iter().any(|i| matches!(i, Inst::Reload { .. })));
        assert!(matches!(salt.code.last(), Some(Inst::Rjr { rs }) if *rs == Reg::RA));
        assert!(!salt.saved_regs.is_empty(), "j should be promoted");
    }

    #[test]
    fn detuned_isa_uses_no_forbidden_forms() {
        let ir = compile(
            "int main() { int a[4]; int i; for (i = 0; i < 4; i++) a[i] = i; return a[2]; }",
        )
        .unwrap();
        let p = compile_module(&ir, IsaConfig::minimal()).unwrap();
        for f in &p.functions {
            for inst in &f.code {
                match inst {
                    Inst::AluImm { .. } | Inst::BranchImm { .. } => {
                        panic!("immediate instruction under minimal ISA: {inst}")
                    }
                    Inst::Load { off, .. } | Inst::Store { off, .. } => {
                        assert_eq!(*off, 0, "displacement under minimal ISA: {inst}");
                    }
                    Inst::Spill { .. } | Inst::Reload { .. } => {
                        panic!("sp-displacement spill under minimal ISA: {inst}")
                    }
                    _ => {}
                }
            }
        }
        let mut m = Machine::new(&p, 1 << 20, 1 << 24).unwrap();
        assert_eq!(m.run("main", &[]).unwrap().value, 2);
    }

    #[test]
    fn detuned_code_is_larger() {
        let ir = compile(
            "int main() { int s = 0; int i; for (i = 0; i < 100; i++) s += i * 2; return s; }",
        )
        .unwrap();
        let full =
            crate::encode::code_segment_size(&compile_module(&ir, IsaConfig::full()).unwrap());
        let minimal =
            crate::encode::code_segment_size(&compile_module(&ir, IsaConfig::minimal()).unwrap());
        assert!(
            minimal > full,
            "minimal {minimal} should exceed full {full}"
        );
    }

    #[test]
    fn global_layout_matches_machine() {
        let ir = compile(
            "int a; char b[3]; int c = 7;
             int main() { return c; }",
        )
        .unwrap();
        let p = compile_module(&ir, IsaConfig::full()).unwrap();
        let addrs = layout_globals(&p.globals);
        let m = Machine::new(&p, 1 << 16, 1000).unwrap();
        for g in &p.globals {
            assert_eq!(
                m.symbol_addr(&g.name),
                Some(addrs[&g.name]),
                "layout mismatch for {}",
                g.name
            );
        }
    }
}
